"""Golden regression tests: pinned simulated throughputs.

These widen the safety net around the calibration: beyond the ratio bands
(tested elsewhere), the *absolute* simulated numbers for a few canonical
configurations are pinned with a 15% tolerance, so an accidental change to
any cost constant, scheduler rule, or workload lowering shows up even if it
happens to preserve the ratios.

If a deliberate recalibration moves these numbers, update the goldens and
record the change in EXPERIMENTS.md.
"""

import pytest

from repro.baselines import FIDDLER, LLAMACPP
from repro.core import KTRANSFORMERS, run_decode, run_prefill
from repro.hw import paper_testbed
from repro.model import DS2, DS3, QW2, MoETransformer, tiny_config
from repro.serving import BatchCostModel, InferenceSession
from repro.tensor import BF16, INT4

MACHINE = paper_testbed("a100")
MACHINE_4080 = paper_testbed("4080")
TOL = 0.15

GOLDEN_DECODE_TPS = {
    ("ktransformers", "ds3"): 6.16,
    ("ktransformers", "ds2"): 12.19,
    ("ktransformers", "qw2"): 22.28,
    ("fiddler", "ds3"): 1.84,
    ("llamacpp", "ds3"): 3.91,
}

GOLDEN_PREFILL_TPS = {
    ("ktransformers", "ds3", 2048): 464.6,
    ("ktransformers", "qw2", 2048): 2690.0,
    ("fiddler", "ds3", 2048): 131.6,
    ("llamacpp", "ds3", 2048): 83.0,
}

SYSTEMS = {s.name: s for s in (FIDDLER, LLAMACPP, KTRANSFORMERS)}
PRESETS = {p.name: p for p in (DS3, DS2, QW2)}


@pytest.mark.parametrize("system,model", sorted(GOLDEN_DECODE_TPS))
def test_golden_decode(system, model):
    expected = GOLDEN_DECODE_TPS[(system, model)]
    r = run_decode(SYSTEMS[system], PRESETS[model], MACHINE, BF16, n_tokens=6)
    assert r.tokens_per_s == pytest.approx(expected, rel=TOL)


@pytest.mark.parametrize("system,model,plen", sorted(GOLDEN_PREFILL_TPS))
def test_golden_prefill(system, model, plen):
    expected = GOLDEN_PREFILL_TPS[(system, model, plen)]
    r = run_prefill(SYSTEMS[system], PRESETS[model], MACHINE, BF16,
                    prompt_len=plen)
    assert r.tokens_per_s == pytest.approx(expected, rel=TOL)


def test_golden_deferral_ds3():
    r = run_decode(KTRANSFORMERS, DS3, MACHINE, BF16, n_tokens=6,
                   n_deferred=3)
    assert r.tokens_per_s == pytest.approx(8.21, rel=TOL)


def test_golden_quantized_ds3_4080():
    r = run_decode(KTRANSFORMERS, DS3, MACHINE_4080, INT4, n_tokens=6)
    assert r.tokens_per_s == pytest.approx(15.43, rel=TOL)


def test_golden_intro_fiddler_prefill():
    """The introduction's motivating number: Fiddler-style prefill on DS-3
    runs at ~70 tokens/s; our simulated Fiddler lands in that regime."""
    r = run_prefill(FIDDLER, DS3, MACHINE, BF16, prompt_len=8192)
    assert 60.0 <= r.tokens_per_s <= 180.0


# Serving-engine pricing pins (DS-3 costs on the A100 testbed).  These are
# what BENCH_serving / BENCH_expert_cache numbers are built from, so a
# pricing refactor that shifts them must be deliberate and recorded.
GOLDEN_DECODE_STEP_US = {
    (1, 64): 162_222.0,
    (8, 64): 801_589.0,
    (16, 256): 1_485_880.0,
}

GOLDEN_BATCHED_PREFILL_US = {
    128: 3_950_184.0,
    2048: 4_407_961.0,
}


@pytest.fixture(scope="module")
def batch_costs():
    model = MoETransformer(tiny_config("tiny-qw"))
    return BatchCostModel(InferenceSession(model, DS3))


@pytest.mark.parametrize("batch,ctx", sorted(GOLDEN_DECODE_STEP_US))
def test_golden_batched_decode_step(batch_costs, batch, ctx):
    expected = GOLDEN_DECODE_STEP_US[(batch, ctx)]
    assert batch_costs.decode_step_us([ctx] * batch) == pytest.approx(
        expected, rel=TOL)


@pytest.mark.parametrize("tokens", sorted(GOLDEN_BATCHED_PREFILL_US))
def test_golden_batched_prefill(batch_costs, tokens):
    expected = GOLDEN_BATCHED_PREFILL_US[tokens]
    assert batch_costs.batched_prefill_us(tokens) == pytest.approx(
        expected, rel=TOL)


# Hybrid (chunked prefill + decode) iteration pricing pins.  DS-3 costs:
# the chunk pays nearly the full expert-streaming bill here because a
# 256-expert pool is far from saturated at batch 8/16 -- which is exactly
# why BENCH_chunked_prefill uses QW2 costs for its headline claim.
GOLDEN_HYBRID_STEP_US = {
    (8, 64, 128): 3_976_719.0,
    (16, 256, 512): 4_078_125.0,
    (0, 0, 256): 4_191_587.0,     # chunk-only iteration, no decodes
}


@pytest.mark.parametrize("batch,ctx,chunk", sorted(GOLDEN_HYBRID_STEP_US))
def test_golden_hybrid_step(batch_costs, batch, ctx, chunk):
    expected = GOLDEN_HYBRID_STEP_US[(batch, ctx, chunk)]
    assert batch_costs.hybrid_step_us([ctx] * batch, chunk) == pytest.approx(
        expected, rel=TOL)
    # A hybrid step must cost strictly more than the pure decode step it
    # extends, and strictly less than decode + a standalone chunk pass.
    if batch:
        decode = batch_costs.decode_step_us([ctx] * batch)
        alone = batch_costs.hybrid_step_us([], chunk)
        hybrid = batch_costs.hybrid_step_us([ctx] * batch, chunk)
        assert decode < hybrid < decode + alone


# Preemption resume-pricing pins (ISSUE 5).  Swap moves the victim's KV
# pages over PCIe (microseconds per leg on a clean A100 link); recompute
# re-prefills the context through the overhead-dominated prefill pass
# (seconds) -- the ~4-orders-of-magnitude gap is why the auto mechanism
# swaps on a healthy link and only tilts to recompute when chaos
# degrades PCIe.
GOLDEN_SWAP_TRANSFER_US = {
    64: 132.9,
    1024: 2_006.8,
    8192: 15_998.8,
}

GOLDEN_RECOMPUTE_RESUME_US = {
    64: 3_950_184.0,
    1024: 4_407_961.0,
}


@pytest.mark.parametrize("tokens", sorted(GOLDEN_SWAP_TRANSFER_US))
def test_golden_swap_transfer(batch_costs, tokens):
    expected = GOLDEN_SWAP_TRANSFER_US[tokens]
    assert batch_costs.swap_transfer_us(tokens) == pytest.approx(
        expected, rel=TOL)
    # Both legs move the same bytes: tokens * per-layer KV unit * layers.
    from repro.sched.workload import kv_token_bytes
    assert batch_costs.kv_swap_bytes(tokens) == pytest.approx(
        tokens * kv_token_bytes(DS3) * DS3.n_layers)


@pytest.mark.parametrize("tokens", sorted(GOLDEN_RECOMPUTE_RESUME_US))
def test_golden_recompute_resume(batch_costs, tokens):
    expected = GOLDEN_RECOMPUTE_RESUME_US[tokens]
    assert batch_costs.recompute_resume_us(tokens) == pytest.approx(
        expected, rel=TOL)
    # Resume pricing reuses the prefill memo the actual re-prefill pays.
    assert (batch_costs.recompute_resume_us(tokens)
            == batch_costs.batched_prefill_us(tokens))


def test_golden_intro_fiddler_decode():
    """Intro: 4.68 tokens/s decode for the Fiddler-style baseline; our
    simulated Fiddler is in the same few-tokens-per-second regime."""
    r = run_decode(FIDDLER, DS3, MACHINE, BF16, n_tokens=6)
    assert 1.0 <= r.tokens_per_s <= 6.0


# --- Canonical chaos scenario (repro.faults) -------------------------------
# One pinned fault storm through the full serving stack.  The stochastic
# draws are seeded, so the fault *counters* are exact integers; the times
# carry the usual calibration tolerance.  A change to any fault-window
# constant, retry stream, or perturbed pricing path moves these.

def test_golden_perturbed_decode_step(batch_costs):
    """Mid-storm perturbation reprices the (8, 64) decode step ~1.44x."""
    from repro.faults import StepPerturbation
    pert = StepPerturbation(cpu_scale=1.3, pcie_scale=0.02, numa_scale=1.2)
    assert batch_costs.perturbed_decode_step_us([64] * 8, pert) == \
        pytest.approx(1_153_919.0, rel=TOL)
    # Identity perturbation must be the *same float*, not merely close.
    assert (batch_costs.perturbed_decode_step_us([64] * 8, StepPerturbation())
            == batch_costs.decode_step_us([64] * 8))


def _chaos_replay(resilience=None):
    from repro.faults import FaultInjector, canonical_chaos_plan
    from repro.serving import (
        BatchSchedulerConfig, ContinuousBatchingServer, poisson_workload,
        serving_expert_cache,
    )
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)
    cache = serving_expert_cache(
        session, vram_budget_bytes=12 * DS3.expert_bytes(BF16))
    server = ContinuousBatchingServer(
        session, BatchSchedulerConfig(kv_budget_tokens=512, max_batch_size=4),
        expert_cache=cache,
        fault_injector=FaultInjector(canonical_chaos_plan()),
        resilience=resilience)
    return server.replay(poisson_workload(
        n_requests=8, mean_interarrival_us=1e6, prompt_len=16,
        max_new_tokens=8, vocab_size=64, seed=11)).summary()


def test_golden_chaos_naive_arm():
    s = _chaos_replay()
    assert s["fault_upload_failures"] == 26.0
    assert s["fault_retries_attempted"] == 123.0
    assert s["fault_retries_succeeded"] == 18.0
    assert s["fault_shed_requests"] == 0.0      # the naive arm never sheds
    assert s["fault_degraded_entries"] == 0.0   # ... and never degrades
    assert s["fault_stall_ms"] == pytest.approx(16928.9, rel=TOL)
    assert s["tpot_p50_ms"] == pytest.approx(2202.6, rel=TOL)
    assert s["ttft_p95_ms"] == pytest.approx(32407.5, rel=TOL)


def test_golden_chaos_hardened_arm():
    from repro.serving import ResilienceConfig
    s = _chaos_replay(ResilienceConfig(queue_timeout_us=8e6,
                                       decode_timeout_us=30e6))
    assert s["fault_upload_failures"] == 16.0
    assert s["fault_shed_requests"] == 3.0
    assert s["fault_degraded_entries"] == 1.0
    assert s["fault_degraded_iterations"] == 11.0
    # Async retries ride the prefetch window: ~0.1s of stall vs. the
    # naive arm's ~17s of blocking re-uploads.
    assert s["fault_stall_ms"] == pytest.approx(96.7, rel=TOL)
    assert s["requests"] == 5.0                 # completed = submitted - shed
    assert s["ttft_p95_ms"] == pytest.approx(10624.8, rel=TOL)


# --- Chunked-prefill equivalence goldens -----------------------------------
# Monolithic is the chunked scheduler's special case: a chunk budget that
# covers every co-admitted fresh prompt must reproduce the un-chunked
# replay *bit for bit* -- same floats, not merely within tolerance.

def _equivalence_replay(chunk_tokens, chunk_policy="decode-priority",
                        chaos=False, priorities=None, sched_extra=None,
                        server_extra=None, workload=None):
    from repro.serving import (
        BatchSchedulerConfig, ContinuousBatchingServer, poisson_workload,
        serving_expert_cache,
    )
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)
    kwargs = dict(server_extra or {})
    if chaos:
        from repro.faults import FaultInjector, canonical_chaos_plan
        from repro.serving import ResilienceConfig
        kwargs.update({
            "expert_cache": serving_expert_cache(
                session, vram_budget_bytes=12 * DS3.expert_bytes(BF16)),
            "fault_injector": FaultInjector(canonical_chaos_plan()),
            "resilience": ResilienceConfig(queue_timeout_us=60e6,
                                           decode_timeout_us=150e6),
        })
    server = ContinuousBatchingServer(
        session,
        BatchSchedulerConfig(kv_budget_tokens=512, max_batch_size=4,
                             prefill_chunk_tokens=chunk_tokens,
                             chunk_policy=chunk_policy,
                             **(sched_extra or {})),
        priorities=priorities, **kwargs)
    stats = server.replay(list(workload) if workload is not None
                          else poisson_workload(
        n_requests=8, mean_interarrival_us=1e6, prompt_len=16,
        max_new_tokens=8, vocab_size=64, seed=11))
    return [(t.arrival_us, t.start_us, t.first_token_us, t.finish_us,
             t.generated_tokens, t.timed_out) for t in stats.timings]


@pytest.mark.parametrize("policy", ["decode-priority", "prefill-priority"])
def test_golden_chunked_reproduces_monolithic(policy):
    """chunk budget >= kv budget: per-request timings are bit-identical
    to the monolithic scheduler under either chunk policy."""
    assert (_equivalence_replay(512, policy)
            == _equivalence_replay(None))


def test_golden_chunked_chaos_bit_reproducible():
    """Chunked replay under the canonical fault storm is deterministic,
    and a covering chunk budget still matches monolithic exactly."""
    chunked = _equivalence_replay(512, chaos=True)
    assert chunked == _equivalence_replay(512, chaos=True)
    assert chunked == _equivalence_replay(None, chaos=True)


def test_golden_graph_disabled_reproduces_legacy():
    """ISSUE 6 acceptance: explicitly disabling the graph cache and
    keeping the legacy GEMM dispatch reproduces the pre-graph scheduler
    *bit for bit* -- same floats, clean and under the canonical fault
    storm (the legacy pricing path is untouched, not merely similar)."""
    off = {"graph_cache": None, "gemm_dispatch": "legacy"}
    assert _equivalence_replay(None, sched_extra=off) == \
        _equivalence_replay(None)
    assert _equivalence_replay(None, chaos=True, sched_extra=off) == \
        _equivalence_replay(None, chaos=True)


def test_golden_legacy_dispatch_cost_model(batch_costs):
    """A cost model built with the default (legacy) dispatch prices the
    golden decode steps with the exact same floats as one passed
    ``gemm_dispatch="legacy"`` explicitly."""
    from repro.serving import BatchCostModel, InferenceSession
    explicit = BatchCostModel(
        InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3),
        gemm_dispatch="legacy")
    for (batch, ctx) in GOLDEN_DECODE_STEP_US:
        assert explicit.decode_step_us([ctx] * batch) == \
            batch_costs.decode_step_us([ctx] * batch)


def test_golden_prefix_disabled_reproduces_pr6():
    """ISSUE 7 acceptance: ``prefix_cache=None`` (the default) keeps the
    PR 6 engine bit-for-bit -- explicitly disabled equals default, clean
    and under the canonical fault storm, and session-tagged requests are
    inert without a cache (the tags must not leak into scheduling)."""
    import dataclasses as _dc

    from repro.serving import poisson_workload
    off = {"prefix_cache": None, "kv_tier": None}
    assert _equivalence_replay(None, server_extra=off) == \
        _equivalence_replay(None)
    assert _equivalence_replay(None, chaos=True, server_extra=off) == \
        _equivalence_replay(None, chaos=True)
    wl = poisson_workload(n_requests=8, mean_interarrival_us=1e6,
                          prompt_len=16, max_new_tokens=8, vocab_size=64,
                          seed=11)
    tagged = [_dc.replace(t, session_id=f"s{i % 3}")
              for i, t in enumerate(wl)]
    assert _equivalence_replay(None, workload=tagged, server_extra=off) == \
        _equivalence_replay(None, workload=wl)


def test_golden_multi_turn_untagged_matches_poisson_shape():
    """The multi-turn generator is deterministic: same seed, same
    workload -- arrival times, prompts, and session tags included."""
    from repro.serving import multi_turn_workload
    kw = dict(n_sessions=2, n_turns=3, system_tokens=8, user_tokens=4,
              assistant_tokens=4, max_new_tokens=4, vocab_size=64,
              mean_think_us=1e6, service_allowance_us=1e6, seed=3)
    a, b = multi_turn_workload(**kw), multi_turn_workload(**kw)
    assert [(t.arrival_us, t.session_id, tuple(t.request.prompt))
            for t in a] == \
           [(t.arrival_us, t.session_id, tuple(t.request.prompt))
            for t in b]


# Parked-session pricing pins (ISSUE 7).  The host KV tier moves whole-
# model pages over the same PCIe formula the preemption swap path uses,
# so the swap goldens above pin the tier too -- asserted here both
# against the absolute numbers and bit-for-bit against swap pricing.
@pytest.mark.parametrize("tokens", sorted(GOLDEN_SWAP_TRANSFER_US))
def test_golden_parked_session_transfer(batch_costs, tokens):
    from repro.sched.kv_offload import kv_page_transfer_us
    expected = GOLDEN_SWAP_TRANSFER_US[tokens]
    got = kv_page_transfer_us(DS3, tokens, MACHINE.interconnect)
    assert got == pytest.approx(expected, rel=TOL)
    assert got == batch_costs.swap_transfer_us(tokens)


# --- Fleet / pipeline goldens (ISSUE 8) ------------------------------------
# Staged decode pricing pins for the 2-stage pipeline split (DS-3 costs on
# the A100 testbed): the same step shapes as GOLDEN_DECODE_STEP_US, priced
# through the ratio decomposition.  The interval model clamps at
# min(serial, max(slowest stage, shared-CPU floor)), so each staged step
# must also stay at or below its serial counterpart.
GOLDEN_STAGED_DECODE_STEP_US = {
    (1, 64): 118_947.0,
    (8, 64): 757_912.0,
    (16, 256): 1_441_471.0,
}


@pytest.fixture(scope="module")
def staged_costs():
    model = MoETransformer(tiny_config("tiny-qw"))
    return BatchCostModel(InferenceSession(model, DS3), pipeline_stages=2)


@pytest.mark.parametrize("batch,ctx", sorted(GOLDEN_STAGED_DECODE_STEP_US))
def test_golden_staged_decode_step(staged_costs, batch_costs, batch, ctx):
    expected = GOLDEN_STAGED_DECODE_STEP_US[(batch, ctx)]
    got = staged_costs.staged_decode_step_us([ctx] * batch)
    assert got == pytest.approx(expected, rel=TOL)
    assert got <= staged_costs.decode_step_us([ctx] * batch)
    # The serial leg of the staged model is the pinned decode step: a
    # pipelined cost model must not perturb single-stage pricing.
    assert staged_costs.decode_step_us([ctx] * batch) == \
        batch_costs.decode_step_us([ctx] * batch)


def test_golden_pipeline_single_stage_reproduces_pr7():
    """ISSUE 8 acceptance: ``pipeline_stages=1`` (the default, passed
    explicitly) keeps the PR 7 engine bit-for-bit -- same floats, clean
    and under the canonical fault storm."""
    one = {"pipeline_stages": 1}
    assert _equivalence_replay(None, sched_extra=one) == \
        _equivalence_replay(None)
    assert _equivalence_replay(None, chaos=True, sched_extra=one) == \
        _equivalence_replay(None, chaos=True)


def test_golden_one_replica_fleet_reproduces_bare_server():
    """ISSUE 8 acceptance: a fault-free 1-replica fleet *is* the bare
    server -- per-request timings and the full stats summary are
    bit-identical under every routing policy (the fleet_* counters are
    additive extras on top of the merged summary)."""
    from repro.serving import (
        BatchSchedulerConfig, ContinuousBatchingServer, FleetConfig,
        FleetRouter, ROUTING_POLICIES, poisson_workload,
    )
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)

    def make_server():
        return ContinuousBatchingServer(
            session,
            BatchSchedulerConfig(kv_budget_tokens=512, max_batch_size=4))

    def key(timings):
        return [(t.arrival_us, t.start_us, t.first_token_us, t.finish_us,
                 t.generated_tokens, t.timed_out) for t in timings]

    wl = poisson_workload(n_requests=8, mean_interarrival_us=1e6,
                          prompt_len=16, max_new_tokens=8, vocab_size=64,
                          seed=11)
    bare = make_server().replay(list(wl))
    for policy in sorted(ROUTING_POLICIES):
        fs = FleetRouter(make_server,
                         FleetConfig(n_replicas=1, policy=policy)
                         ).replay(list(wl))
        assert key(fs.timings) == key(bare.timings)
        assert {k: v for k, v in fs.summary().items()
                if not k.startswith("fleet_")} == bare.summary()


def test_golden_single_priority_reproduces_fifo():
    """ISSUE 5 acceptance: a priority config over single-class traffic
    (every request defaults to STANDARD) reproduces the PR 4 FIFO
    scheduler *bit for bit* -- same floats, clean and under the
    canonical fault storm, preemption enabled or not."""
    from repro.serving import PriorityConfig
    fifo = _equivalence_replay(None)
    for prio in (PriorityConfig(),
                 PriorityConfig(aging_us=None, preemption=False)):
        assert _equivalence_replay(None, priorities=prio) == fifo
    fifo_chaos = _equivalence_replay(None, chaos=True)
    assert (_equivalence_replay(None, chaos=True,
                                priorities=PriorityConfig())
            == fifo_chaos)


# --- Online-controller goldens (ISSUE 9) ------------------------------------
# The control plane is pay-for-play and its decisions are a pure function
# of the (deterministic) simulation, so both the disabled-equals-PR-8
# identity and the full per-window decision trace can be pinned exactly.

def test_golden_controller_disabled_reproduces_pr8():
    """ISSUE 9 acceptance: ``controller=None`` (the default, passed
    explicitly) keeps the PR 8 engine bit-for-bit -- same floats, clean
    and under the canonical fault storm."""
    off = {"controller": None}
    assert _equivalence_replay(None, server_extra=off) == \
        _equivalence_replay(None)
    assert _equivalence_replay(None, chaos=True, server_extra=off) == \
        _equivalence_replay(None, chaos=True)


# One pinned control scenario: QW2 costs, a 0.5 s decision window, and a
# light Poisson trickle whose TTFT pressure walks the chunk budget and
# batch cap up their ladders.  The trace is exact integers/strings -- a
# change to any window, objective, or hill-climb rule moves it.
GOLDEN_CONTROLLER_TRACE = [
    (1, "observe", 4, 16),
    (2, "move:prefill_chunk_tokens:+1", 4, 32),
    (3, "keep:prefill_chunk_tokens", 4, 32),
    (4, "move:max_batch_size:+1", 8, 32),
    (5, "keep:max_batch_size", 8, 32),
    (6, "move:prefill_chunk_tokens:+1", 8, 64),
    (7, "keep:prefill_chunk_tokens", 8, 64),
]


def _controller_replay(with_controller):
    from repro.serving import (
        BatchSchedulerConfig, ContinuousBatchingServer, ControllerConfig,
        ServingSLO, poisson_workload,
    )
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), QW2)
    controller = ControllerConfig(
        slo=ServingSLO(ttft_ms=2000, tpot_ms=500),
        window_us=5e5, warmup_windows=1,
        chunk_ladder=(8, 16, 32, 64), batch_ladder=(2, 4, 8),
    ) if with_controller else None
    server = ContinuousBatchingServer(
        session,
        BatchSchedulerConfig(kv_budget_tokens=512, max_batch_size=4,
                             prefill_chunk_tokens=16),
        controller=controller)
    stats = server.replay(poisson_workload(
        n_requests=10, mean_interarrival_us=2e5, prompt_len=16,
        max_new_tokens=6, vocab_size=64, seed=3))
    return server, stats


def test_golden_controller_decision_trace():
    _, stats = _controller_replay(True)
    assert stats.controller.trace() == GOLDEN_CONTROLLER_TRACE
    s = stats.summary()
    assert s["ctrl_windows"] == 7.0
    assert s["ctrl_moves"] == 3.0
    assert s["ctrl_rollbacks"] == 0.0


def test_golden_controller_warmup_prices_static():
    """Until its first move the controller only observes, so everything
    the engine does before that boundary is bit-identical to the static
    config -- pinned against the first ``move`` decision's timestamp."""
    server_a, adaptive = _controller_replay(True)
    server_s, static = _controller_replay(False)
    first_move = next(d for d in adaptive.controller.decisions
                      if d.action.startswith("move"))
    assert first_move.t_us == 1_000_000.0      # warmup + 1 observe window

    def prefix(stats, t_cut):
        return [(t.arrival_us, t.start_us, t.first_token_us, t.finish_us)
                for t in stats.timings if t.finish_us <= t_cut]

    assert prefix(adaptive, first_move.t_us) == \
        prefix(static, first_move.t_us)
    points_a = [p for p in server_a.timeline.points
                if p.t_us <= first_move.t_us]
    points_s = [p for p in server_s.timeline.points
                if p.t_us <= first_move.t_us]
    assert points_a == points_s
    # ... and past the boundary the configs genuinely diverge (the
    # controller's moves are not a no-op on this scenario).
    assert server_a.config != server_s.config


# --- Kernel-backend registry goldens (ISSUE 10) -----------------------------
# The pluggable backend registry must be a pure refactor for the default
# path: naming "kt-amx-avx512" explicitly (or leaving the knob unset)
# reproduces the PR 9 engine bit-for-bit at every level -- raw engine
# runs, cost-model pricing, and full serving replays, clean and under
# the canonical fault storm.

def test_golden_backend_default_reproduces_pr9():
    """ISSUE 10 acceptance: ``backend="kt-amx-avx512"`` (and the unset
    default) reproduce the PR 9 serving engine *bit for bit* -- same
    floats, clean and under the canonical fault storm."""
    on = {"backend": "kt-amx-avx512"}
    assert _equivalence_replay(None, sched_extra=on) == \
        _equivalence_replay(None)
    assert _equivalence_replay(None, chaos=True, sched_extra=on) == \
        _equivalence_replay(None, chaos=True)


def test_golden_backend_cost_model_bit_identity(batch_costs):
    """A cost model built with ``backend="kt-amx-avx512"`` prices the
    golden decode, hybrid, and prefill steps with the exact same floats
    as the default (backend-unset) model."""
    explicit = BatchCostModel(
        InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3),
        backend="kt-amx-avx512")
    for (batch, ctx) in GOLDEN_DECODE_STEP_US:
        assert explicit.decode_step_us([ctx] * batch) == \
            batch_costs.decode_step_us([ctx] * batch)
    for (batch, ctx, chunk) in GOLDEN_HYBRID_STEP_US:
        assert explicit.hybrid_step_us([ctx] * batch, chunk) == \
            batch_costs.hybrid_step_us([ctx] * batch, chunk)
    for tokens in GOLDEN_BATCHED_PREFILL_US:
        assert explicit.batched_prefill_us(tokens) == \
            batch_costs.batched_prefill_us(tokens)


def test_golden_backend_engine_bit_identity():
    """Raw engine entry points with the default backend named explicitly
    return the exact same elapsed times as the legacy argument path."""
    for preset in (DS3, QW2):
        a = run_decode(KTRANSFORMERS, preset, MACHINE, BF16, n_tokens=4)
        b = run_decode(KTRANSFORMERS, preset, MACHINE, BF16, n_tokens=4,
                       backend="kt-amx-avx512")
        assert b.elapsed_us == a.elapsed_us
        pa = run_prefill(KTRANSFORMERS, preset, MACHINE, BF16,
                         prompt_len=512)
        pb = run_prefill(KTRANSFORMERS, preset, MACHINE, BF16,
                         prompt_len=512, backend="kt-amx-avx512")
        assert pb.elapsed_us == pa.elapsed_us
