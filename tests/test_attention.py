"""Tests for attention modules and KV caches."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model import KVCache, LatentKVCache, MLAAttention, MultiHeadAttention
from repro.model.attention import rope


class TestRope:
    def test_position_zero_is_identity(self):
        x = np.random.default_rng(0).standard_normal((1, 2, 8)).astype(np.float32)
        out = rope(x, np.array([0]))
        assert np.allclose(out, x, atol=1e-6)

    def test_norm_preserved(self):
        x = np.random.default_rng(1).standard_normal((5, 2, 8)).astype(np.float32)
        out = rope(x, np.arange(5))
        assert np.allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-4
        )

    def test_relative_property(self):
        """Dot products depend only on relative offsets."""
        rng = np.random.default_rng(2)
        q = rng.standard_normal((1, 1, 8)).astype(np.float32)
        k = rng.standard_normal((1, 1, 8)).astype(np.float32)
        d1 = (rope(q, np.array([3])) * rope(k, np.array([1]))).sum()
        d2 = (rope(q, np.array([10])) * rope(k, np.array([8]))).sum()
        assert d1 == pytest.approx(d2, abs=1e-4)

    def test_odd_dim_rejected(self):
        with pytest.raises(ConfigError):
            rope(np.zeros((1, 1, 7)), np.array([0]))


class TestKVCache:
    def test_append_and_len(self):
        c = KVCache(2, 4)
        c.append(np.ones((3, 2, 4)), np.ones((3, 2, 4)))
        assert len(c) == 3
        assert c.keys().shape == (3, 2, 4)

    def test_growth_preserves_contents(self):
        c = KVCache(1, 2, initial_capacity=2)
        for i in range(10):
            c.append(np.full((1, 1, 2), i, dtype=np.float32),
                     np.full((1, 1, 2), -i, dtype=np.float32))
        assert len(c) == 10
        assert c.keys()[5, 0, 0] == 5.0
        assert c.values()[7, 0, 0] == -7.0

    def test_shape_mismatch_rejected(self):
        c = KVCache(2, 4)
        with pytest.raises(ConfigError):
            c.append(np.ones((1, 2, 3)), np.ones((1, 2, 3)))

    def test_reset(self):
        c = KVCache(1, 2)
        c.append(np.ones((2, 1, 2)), np.ones((2, 1, 2)))
        c.reset()
        assert len(c) == 0

    def test_latent_cache(self):
        c = LatentKVCache(8)
        c.append(np.ones((4, 8)))
        assert len(c) == 4
        assert c.latents().shape == (4, 8)
        with pytest.raises(ConfigError):
            c.append(np.ones((1, 7)))


@pytest.mark.parametrize("attn_cls,kwargs", [
    (MultiHeadAttention, {}),
    (MLAAttention, {"kv_rank": 8}),
])
class TestAttention:
    def test_output_shape(self, attn_cls, kwargs):
        attn = attn_cls(16, 4, **kwargs)
        cache = attn.make_cache()
        x = np.random.default_rng(0).standard_normal((5, 16)).astype(np.float32)
        assert attn(x, cache).shape == (5, 16)
        assert len(cache) == 5

    def test_incremental_matches_full(self, attn_cls, kwargs):
        """Token-by-token decode must equal one prefill pass."""
        rng = np.random.default_rng(1)
        attn = attn_cls(16, 4, rng=rng, **kwargs)
        x = rng.standard_normal((6, 16)).astype(np.float32)

        full_cache = attn.make_cache()
        full = attn(x, full_cache)

        inc_cache = attn.make_cache()
        outs = [attn(x[i:i + 1], inc_cache) for i in range(6)]
        assert np.allclose(np.concatenate(outs), full, atol=1e-4)

    def test_causality(self, attn_cls, kwargs):
        """Changing a later token never affects earlier outputs."""
        rng = np.random.default_rng(2)
        attn = attn_cls(16, 4, rng=rng, **kwargs)
        x = rng.standard_normal((5, 16)).astype(np.float32)
        y1 = attn(x, attn.make_cache())
        x2 = x.copy()
        x2[4] += 10.0
        y2 = attn(x2, attn.make_cache())
        assert np.allclose(y1[:4], y2[:4], atol=1e-5)
        assert not np.allclose(y1[4], y2[4], atol=1e-3)

    def test_bad_hidden_heads(self, attn_cls, kwargs):
        with pytest.raises(ConfigError):
            attn_cls(15, 4, **kwargs)


def test_mla_cache_smaller_than_mha():
    """The latent cache stores kv_rank floats vs 2*hidden for MHA."""
    hidden, heads, kv_rank = 32, 4, 8
    mha = MultiHeadAttention(hidden, heads)
    mla = MLAAttention(hidden, heads, kv_rank)
    x = np.random.default_rng(3).standard_normal((10, hidden)).astype(np.float32)
    c1, c2 = mha.make_cache(), mla.make_cache()
    mha(x, c1)
    mla(x, c2)
    mha_bytes = c1.keys().nbytes + c1.values().nbytes
    mla_bytes = c2.latents().nbytes
    assert mla_bytes * 4 < mha_bytes
