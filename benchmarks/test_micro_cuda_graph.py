"""Micro-benchmark: single-CUDA-graph decode (Section 3.3).

Paper anchor: capturing the whole decode step in one CUDA graph (with
submit/sync as cudaLaunchHostFunc nodes) improves decode speed by up to
1.23x over per-kernel launching, because host launches and barriers stop
interleaving with the compute stream.
"""

from repro.bench import format_table
from repro.core import KTRANSFORMERS, decode_works, run_decode
from repro.hw import paper_testbed
from repro.model import DS2, DS3, QW2
from repro.sched import LaunchMode
from repro.tensor import BF16

MACHINE = paper_testbed("a100")


def _graph_comparison():
    rows = []
    for preset in (DS3, DS2, QW2):
        per_kernel = KTRANSFORMERS.with_overrides(
            name="kt_no_graph", launch_mode=LaunchMode.PER_KERNEL_CPP,
        )
        base = run_decode(per_kernel, preset, MACHINE, BF16, n_tokens=6)
        graph = run_decode(KTRANSFORMERS, preset, MACHINE, BF16, n_tokens=6)
        rows.append((preset.name, base.tokens_per_s, graph.tokens_per_s,
                     graph.tokens_per_s / base.tokens_per_s))
    return rows


def test_micro_cuda_graph(run_once):
    rows = run_once(_graph_comparison)
    print()
    print(format_table(
        ["model", "per-kernel launch (tok/s)", "CUDA graph (tok/s)", "speedup"],
        rows,
        title="Single-graph decode vs per-kernel launching (BF16, A100)",
    ))
    for model, base, graph, gain in rows:
        assert graph > base, f"{model}: graph must help"
        assert 1.02 <= gain <= 1.35, f"{model}: {gain:.2f} (paper up to 1.23x)"
