"""Tests for adaptive deferral and the calibration self-check."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveDeferralConfig,
    AdaptiveDeferralEngine,
    DeferralConfig,
    DeferralEngine,
    adaptive_split,
)
from repro.errors import ConfigError
from repro.hw import format_calibration_report, paper_anchors, run_calibration_check
from repro.model import MoETransformer, tiny_config
from repro.moe import RouterConfig, route

PROMPT = np.array([1, 2, 3, 4])


def _routing(weights_rows):
    """RoutingResult with explicit (descending) weight rows."""
    w = np.asarray(weights_rows, dtype=np.float32)
    tokens, k = w.shape
    from repro.moe.router import RoutingResult
    idx = np.tile(np.arange(k), (tokens, 1))
    return RoutingResult(idx, w, np.zeros((tokens, 8), dtype=np.float32))


class TestAdaptiveSplit:
    def test_threshold_defers_tail(self):
        r = _routing([[0.5, 0.3, 0.15, 0.05]])
        cfg = AdaptiveDeferralConfig(weight_threshold=0.2, max_deferred=4)
        imm, deferred, n = adaptive_split(r, cfg)
        assert n == 2
        assert np.allclose(imm.weights, [[0.5, 0.3, 0.0, 0.0]])
        assert np.allclose(deferred.weights, [[0.0, 0.0, 0.15, 0.05]])

    def test_partition_exact(self):
        rng = np.random.default_rng(0)
        cfg_r = RouterConfig(n_experts=8, top_k=4)
        r = route(rng.standard_normal((6, 8)).astype(np.float32), cfg_r)
        cfg = AdaptiveDeferralConfig(weight_threshold=0.2, max_deferred=2)
        imm, deferred, __ = adaptive_split(r, cfg)
        assert np.allclose(imm.weights + deferred.weights, r.weights)

    def test_min_immediate_floor(self):
        r = _routing([[0.3, 0.25, 0.25, 0.2]])
        cfg = AdaptiveDeferralConfig(weight_threshold=0.9, max_deferred=4)
        __, __, n = adaptive_split(r, cfg)
        assert n == 2  # 4 - MIN_IMMEDIATE (2)

    def test_max_deferred_cap(self):
        r = _routing([[0.9, 0.05, 0.03, 0.02]])
        cfg = AdaptiveDeferralConfig(weight_threshold=0.1, max_deferred=1)
        __, __, n = adaptive_split(r, cfg)
        assert n == 1

    def test_confident_vs_uncertain_tokens(self):
        """A confident row defers more than an uncertain one; the batch
        takes the conservative count."""
        confident = _routing([[0.85, 0.09, 0.04, 0.02]])
        uncertain = _routing([[0.3, 0.27, 0.23, 0.2]])
        cfg = AdaptiveDeferralConfig(weight_threshold=0.15, max_deferred=2)
        assert adaptive_split(confident, cfg)[2] == 2
        assert adaptive_split(uncertain, cfg)[2] == 0

    def test_zero_threshold_defers_nothing(self):
        r = _routing([[0.5, 0.3, 0.15, 0.05]])
        cfg = AdaptiveDeferralConfig(weight_threshold=0.0, max_deferred=4)
        assert adaptive_split(r, cfg)[2] == 0

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            AdaptiveDeferralConfig(weight_threshold=1.0, max_deferred=1)
        with pytest.raises(ConfigError):
            AdaptiveDeferralConfig(weight_threshold=0.1, max_deferred=-1)


class TestAdaptiveEngine:
    @pytest.fixture(scope="class")
    def model(self):
        return MoETransformer(tiny_config("tiny-qw", top_k=6))

    def test_generates(self, model):
        engine = AdaptiveDeferralEngine(
            model, AdaptiveDeferralConfig(0.12, max_deferred=4))
        out = engine.generate(PROMPT, max_new_tokens=6)
        assert len(out) == 6
        assert engine.deferred_histogram  # something was recorded

    def test_zero_threshold_matches_standard(self, model):
        engine = AdaptiveDeferralEngine(
            model, AdaptiveDeferralConfig(0.0, max_deferred=4))
        a = engine.generate(PROMPT, max_new_tokens=5)
        b = model.generate(PROMPT, max_new_tokens=5)
        assert np.array_equal(a, b)
        assert engine.mean_deferred() == 0.0

    def test_higher_threshold_defers_more(self, model):
        lo = AdaptiveDeferralEngine(
            model, AdaptiveDeferralConfig(0.05, max_deferred=4))
        hi = AdaptiveDeferralEngine(
            model, AdaptiveDeferralConfig(0.3, max_deferred=4))
        lo.generate(PROMPT, max_new_tokens=6)
        hi.generate(PROMPT, max_new_tokens=6)
        assert hi.mean_deferred() >= lo.mean_deferred()

    def test_outputs_stay_close_to_fixed_deferral(self, model):
        """Adaptive deferral is a refinement of fixed deferral: both stay
        near the unmodified model."""
        base = model.generate(PROMPT, max_new_tokens=8)
        adaptive = AdaptiveDeferralEngine(
            model, AdaptiveDeferralConfig(0.12, max_deferred=4)
        ).generate(PROMPT, max_new_tokens=8)
        fixed = DeferralEngine(model, DeferralConfig(2)).generate(
            PROMPT, max_new_tokens=8)
        assert (adaptive == base).mean() >= 0.5
        assert (fixed == base).mean() >= 0.5


class TestCalibrationCheck:
    def test_all_anchors_within_tolerance(self):
        results = run_calibration_check()
        assert len(results) >= 7
        for r in results:
            assert r.ok, f"{r.anchor.name} drifted {r.drift:.1%}"

    def test_report_format(self):
        report = format_calibration_report(run_calibration_check())
        assert "anchors within tolerance" in report
        assert "Fig. 3" in report

    def test_anchor_detects_drift(self):
        from repro.hw.calibration import Anchor
        bad = Anchor("fake", 10.0, 0.05, lambda: 20.0)
        result = bad.check()
        assert not result.ok
        assert result.drift == pytest.approx(1.0)

    def test_anchor_names_unique(self):
        names = [a.name for a in paper_anchors()]
        assert len(names) == len(set(names))
