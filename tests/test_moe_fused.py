"""Tests for expert FFNs and the fused MoE operator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels import AMXKernel, AVX512Kernel, HybridKernel
from repro.moe import (
    FusedMoE,
    RouterConfig,
    expert_forward,
    expert_weight_bytes,
    fuse_expert,
    make_expert,
    moe_forward_reference,
    route,
    silu,
)
from repro.tensor import BF16, INT8

HIDDEN, INTER = 32, 48


@pytest.fixture
def experts():
    rng = np.random.default_rng(0)
    return [make_expert(HIDDEN, INTER, rng) for _ in range(8)]


@pytest.fixture
def routing():
    rng = np.random.default_rng(1)
    cfg = RouterConfig(n_experts=8, top_k=2)
    return route(rng.standard_normal((6, 8)).astype(np.float32), cfg)


def test_silu_basic():
    assert silu(np.float32(0.0)) == 0.0
    assert silu(np.float32(100.0)) == pytest.approx(100.0)
    assert abs(silu(np.float32(-100.0))) < 1e-6


def test_expert_forward_shapes(experts):
    x = np.random.default_rng(2).standard_normal((4, HIDDEN)).astype(np.float32)
    y = expert_forward(x, experts[0], AMXKernel())
    assert y.shape == (4, HIDDEN)


def test_fused_expert_matches_unfused(experts):
    rng = np.random.default_rng(3)
    x = rng.standard_normal((5, HIDDEN)).astype(np.float32)
    kernel = AMXKernel()
    fe = fuse_expert(experts[0])
    gu = kernel.run(x, fe.gate_up)
    h = silu(gu[:, :INTER]) * gu[:, INTER:2 * INTER]
    fused_out = kernel.run(h, fe.down)
    unfused_out = expert_forward(x, experts[0], kernel)
    assert np.allclose(fused_out, unfused_out, atol=1e-3)


def test_fused_moe_matches_reference(experts, routing):
    rng = np.random.default_rng(4)
    x = rng.standard_normal((6, HIDDEN)).astype(np.float32)
    kernel = AMXKernel()
    fused = FusedMoE(experts, kernel).forward(x, routing)
    ref = moe_forward_reference(x, routing, experts, kernel)
    assert np.allclose(fused, ref, atol=1e-3)


def test_fused_moe_unfused_mode_matches(experts, routing):
    rng = np.random.default_rng(5)
    x = rng.standard_normal((6, HIDDEN)).astype(np.float32)
    a = FusedMoE(experts, AMXKernel(), fuse_gate_up=True).forward(x, routing)
    b = FusedMoE(experts, AMXKernel(), fuse_gate_up=False).forward(x, routing)
    assert np.allclose(a, b, atol=1e-3)


def test_fused_moe_kernels_agree(experts, routing):
    rng = np.random.default_rng(6)
    x = rng.standard_normal((6, HIDDEN)).astype(np.float32)
    a = FusedMoE(experts, AMXKernel()).forward(x, routing)
    b = FusedMoE(experts, AVX512Kernel()).forward(x, routing)
    c = FusedMoE(experts, HybridKernel()).forward(x, routing)
    assert np.allclose(a, b, atol=1e-3)
    assert np.allclose(a, c, atol=1e-3)


def test_expert_subset_partitions_output(experts, routing):
    """Immediate + deferred subsets must sum to the full MoE output."""
    rng = np.random.default_rng(7)
    x = rng.standard_normal((6, HIDDEN)).astype(np.float32)
    moe = FusedMoE(experts, AMXKernel())
    full = moe.forward(x, routing)
    lo = moe.forward(x, routing, expert_subset=np.arange(4))
    hi = moe.forward(x, routing, expert_subset=np.arange(4, 8))
    assert np.allclose(full, lo + hi, atol=1e-4)


def test_empty_subset_is_zero(experts, routing):
    x = np.ones((6, HIDDEN), dtype=np.float32)
    moe = FusedMoE(experts, AMXKernel())
    out = moe.forward(x, routing, expert_subset=np.array([], dtype=int))
    assert np.allclose(out, 0.0)


def test_sync_points(experts):
    moe = FusedMoE(experts, AMXKernel(), fuse_gate_up=True)
    assert moe.sync_points(active_experts=8) == 2
    unfused = FusedMoE(experts, AMXKernel(), fuse_gate_up=False)
    assert unfused.sync_points(active_experts=8) == 24


def test_token_row_mismatch_rejected(experts, routing):
    moe = FusedMoE(experts, AMXKernel())
    with pytest.raises(ConfigError):
        moe.forward(np.ones((3, HIDDEN), dtype=np.float32), routing)


def test_empty_expert_list_rejected():
    with pytest.raises(ConfigError):
        FusedMoE([], AMXKernel())


def test_quantized_experts_close_to_bf16():
    rng = np.random.default_rng(8)
    w_rng = np.random.default_rng(9)
    cfg = RouterConfig(n_experts=4, top_k=2)
    routing = route(rng.standard_normal((4, 4)).astype(np.float32), cfg)
    x = rng.standard_normal((4, HIDDEN)).astype(np.float32)

    bf16_experts = [make_expert(HIDDEN, INTER, np.random.default_rng(100 + i))
                    for i in range(4)]
    int8_experts = [make_expert(HIDDEN, INTER, np.random.default_rng(100 + i),
                                dtype=INT8) for i in range(4)]
    a = FusedMoE(bf16_experts, AMXKernel()).forward(x, routing)
    b = FusedMoE(int8_experts, AMXKernel()).forward(x, routing)
    # Same seeds -> same underlying weights; int8 output close, not exact.
    assert np.allclose(a, b, atol=0.05)
    assert not np.array_equal(a, b)


def test_expert_weight_bytes():
    assert expert_weight_bytes(100, 50, BF16) == 3 * 100 * 50 * 2
