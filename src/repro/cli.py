"""Command-line interface.

    python -m repro simulate --model ds3 --system ktransformers --phase decode
    python -m repro compare  --model ds3 --gpu a100
    python -m repro plan     --model ds3 --gpu 4080
    python -m repro trace    --model ds3 --out decode_trace.json
    python -m repro demo

All commands run offline: throughput numbers come from the calibrated
simulator, the demo from the functional tiny model.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .baselines import FIDDLER, LLAMACPP
from .bench.reporting import format_table
from .core import (
    KTRANSFORMERS,
    autotune_deferral,
    decode_works,
    heuristic_deferred_count,
    run_decode,
    run_prefill,
)
from .hw.spec import paper_testbed
from .hw.units import GB
from .model import MoETransformer, preset, tiny_config
from .tensor import BF16, dtype as lookup_dtype

SYSTEMS = {s.name: s for s in (FIDDLER, LLAMACPP, KTRANSFORMERS)}


def _machine(args):
    if getattr(args, "machine", None):
        from .hw.custom import load_machine

        return load_machine(args.machine)
    return paper_testbed(args.gpu)


def _dtype(args):
    return lookup_dtype(args.dtype)


def cmd_simulate(args) -> int:
    """Run one system on one phase and print its throughput."""
    system = SYSTEMS[args.system]
    model = preset(args.model)
    machine = _machine(args)
    dt = _dtype(args)
    if args.phase == "decode":
        r = run_decode(system, model, machine, dt, n_tokens=args.tokens,
                       n_deferred=args.defer)
        print(f"{system.display_name} decode on {model.display_name}: "
              f"{r.tokens_per_s:.2f} tokens/s "
              f"(CPU {r.utilization('cpu'):.0%}, GPU {r.utilization('gpu'):.0%})")
    else:
        r = run_prefill(system, model, machine, dt, prompt_len=args.prompt_len)
        print(f"{system.display_name} prefill on {model.display_name}: "
              f"{r.tokens_per_s:.1f} tokens/s ({args.prompt_len}-token prompt)")
    return 0


def cmd_compare(args) -> int:
    """Compare all systems on both phases for one model."""
    model = preset(args.model)
    machine = _machine(args)
    dt = _dtype(args)
    rows = []
    for system in SYSTEMS.values():
        dec = run_decode(system, model, machine, dt, n_tokens=args.tokens)
        pre = run_prefill(system, model, machine, dt,
                          prompt_len=args.prompt_len)
        rows.append((system.display_name, pre.tokens_per_s, dec.tokens_per_s))
    defer = run_decode(KTRANSFORMERS, model, machine, dt,
                       n_tokens=args.tokens,
                       n_deferred=model.deferred_experts_bf16)
    rows.append(("KT + deferral", float("nan"), defer.tokens_per_s))
    print(format_table(
        ["system", f"prefill tok/s (@{args.prompt_len})", "decode tok/s"],
        rows, title=f"{model.display_name} on {machine.name} ({dt.name})",
    ))
    return 0


def cmd_plan(args) -> int:
    """Capacity-plan a deployment and autotune Expert Deferral."""
    model = preset(args.model)
    machine = _machine(args)
    dt = BF16
    gpu_bytes = model.gpu_params * dt.bytes_per_element
    if gpu_bytes > machine.gpu.vram_capacity * 0.9:
        dt = model.quant_dtype
        print(f"BF16 exceeds VRAM; using {dt.name}.")
    print(f"GPU weights : {model.gpu_params * dt.bytes_per_element / GB:.1f} GiB "
          f"of {machine.gpu.vram_capacity / GB:.0f} GiB VRAM")
    print(f"CPU experts : {model.cpu_dram_bytes(dt) / GB:.1f} GiB "
          f"of {machine.total_dram_capacity / GB:.0f} GiB DRAM")
    works = decode_works(KTRANSFORMERS, model, machine, dt, context_len=128)
    heur = heuristic_deferred_count(works[-1], model.top_k)
    tuned = autotune_deferral(works, machine, model.top_k, n_tokens=4)
    print(f"Deferral    : heuristic {heur}, autotuned {tuned.n_deferred} "
          f"-> {tuned.tokens_per_s:.2f} tokens/s decode")
    return 0


def cmd_trace(args) -> int:
    """Export a decode timeline as Chrome-trace JSON."""
    model = preset(args.model)
    machine = _machine(args)
    r = run_decode(KTRANSFORMERS, model, machine, _dtype(args),
                   n_tokens=args.tokens, n_deferred=args.defer)
    r.trace.save_chrome_trace(args.out)
    print(f"Wrote {len(r.trace.intervals)} events to {args.out} "
          f"(open in chrome://tracing or Perfetto)")
    return 0


def cmd_report(args) -> int:
    """Regenerate every throughput figure as text tables."""
    from .bench.report import generate_report

    report = generate_report(progress=lambda t: print(f"running: {t}..."))
    print()
    print(report.render())
    return 0


def cmd_calibrate(args) -> int:
    """Verify the cost models against the paper anchors."""
    from .hw.calibration import format_calibration_report, run_calibration_check

    results = run_calibration_check()
    print(format_calibration_report(results))
    return 0 if all(r.ok for r in results) else 1


def cmd_demo(args) -> int:
    """Generate a few tokens with the functional tiny model."""
    model = MoETransformer(tiny_config("tiny-ds"))
    prompt = np.array([1, 2, 3, 4])
    out = model.generate(prompt, max_new_tokens=args.tokens)
    print(f"tiny-ds ({model.n_parameters():,} params) "
          f"prompt={prompt.tolist()} -> {out.tolist()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KTransformers reproduction: CPU/GPU hybrid MoE inference",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--model", default="ds3", choices=["ds3", "ds2", "qw2"])
        p.add_argument("--gpu", default="a100", choices=["a100", "4080"])
        p.add_argument("--machine", default=None, metavar="YAML",
                       help="custom machine spec file (overrides --gpu)")
        p.add_argument("--dtype", default="bf16",
                       choices=["bf16", "fp16", "int8", "int4"])

    p = sub.add_parser("simulate", help="one system, one phase")
    common(p)
    p.add_argument("--system", default="ktransformers",
                   choices=sorted(SYSTEMS))
    p.add_argument("--phase", default="decode", choices=["decode", "prefill"])
    p.add_argument("--tokens", type=int, default=8)
    p.add_argument("--prompt-len", type=int, default=2048)
    p.add_argument("--defer", type=int, default=0)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("compare", help="all systems, both phases")
    common(p)
    p.add_argument("--tokens", type=int, default=8)
    p.add_argument("--prompt-len", type=int, default=2048)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("plan", help="capacity planning + deferral autotune")
    common(p)
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("trace", help="export a decode timeline (Chrome trace)")
    common(p)
    p.add_argument("--tokens", type=int, default=4)
    p.add_argument("--defer", type=int, default=0)
    p.add_argument("--out", default="decode_trace.json")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("report",
                       help="regenerate all throughput figures as text")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("calibrate",
                       help="verify cost models against the paper's anchors")
    p.set_defaults(fn=cmd_calibrate)

    p = sub.add_parser("demo", help="generate with the functional tiny model")
    p.add_argument("--tokens", type=int, default=8)
    p.set_defaults(fn=cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
