"""Figure 14: cumulative optimization breakdown vs the Fiddler baseline.

Optimizations merge in order: v (AVX-512 fused kernels), m (AMX kernels for
prefill), d (dynamic work scheduling), n (NUMA-aware tensor parallelism),
c (single CUDA graph).  Paper anchors: AVX-512 *hurts* prefill but helps
decode (up to 2.22x); AMX lifts prefill up to 3.14x; dynamic scheduling is
a prefill optimization (up to 1.83x) and NUMA-TP a decode one (up to
1.63x, vs up to 1.22x at prefill); CUDA graphs add up to 1.23x at decode
and almost nothing at prefill.
"""

from repro.bench import ABLATION_STEPS, fig14_breakdown, format_table


def test_fig14_breakdown(run_once):
    data = run_once(fig14_breakdown)
    for model, rows in data.items():
        print()
        print(format_table(
            ["step", "prefill speedup", "decode speedup"],
            [(step, f"{p:.2f}x", f"{d:.2f}x") for step, (p, d) in rows.items()],
            title=f"Figure 14 [{model}]: cumulative speedup vs Fiddler",
        ))
    assert set(data) == {"ds3", "ds2", "qw2"}
    for model, rows in data.items():
        steps = list(rows)
        assert steps == list(ABLATION_STEPS)
        prefill = {s: rows[s][0] for s in steps}
        decode = {s: rows[s][1] for s in steps}

        # v: AVX-512 only -- prefill gets *worse*, decode improves a lot.
        assert prefill["+v (avx512)"] < 1.0, f"{model}: AVX should hurt prefill"
        assert 1.5 <= decode["+v (avx512)"] <= 3.0, f"{model}: paper up to 2.22x"

        # m: AMX kernels recover and dominate prefill.
        assert prefill["+m (amx)"] > 1.5, f"{model}: AMX prefill gain"
        # AMX applies to prefill only; decode unchanged from v.
        assert abs(decode["+m (amx)"] - decode["+v (avx512)"]) < 0.05

        # d: dynamic scheduling helps prefill, not decode.
        d_prefill = prefill["+d (dyn sched)"] / prefill["+m (amx)"]
        d_decode = decode["+d (dyn sched)"] / decode["+m (amx)"]
        assert d_prefill >= 1.0
        assert d_decode < 1.1

        # n: NUMA-TP is a bigger decode win than prefill win.
        n_prefill = prefill["+n (numa tp)"] / prefill["+d (dyn sched)"]
        n_decode = decode["+n (numa tp)"] / decode["+d (dyn sched)"]
        assert 1.2 <= n_decode <= 1.9, f"{model}: paper up to 1.63x"
        assert 0.95 <= n_prefill <= 1.35, f"{model}: paper up to 1.22x"
        assert n_decode > n_prefill

        # c: CUDA graph matters at decode, is noise at prefill.
        c_prefill = prefill["+c (cuda graph)"] / prefill["+n (numa tp)"]
        c_decode = decode["+c (cuda graph)"] / decode["+n (numa tp)"]
        assert 1.03 <= c_decode <= 1.35, f"{model}: paper up to 1.23x"
        assert c_prefill < c_decode
