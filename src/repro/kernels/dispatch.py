"""ARI-based hybrid kernel dispatch (Section 3.2).

Figure 7 shows the AVX-512 kernel beating AMX whenever at most four tokens
are routed to an expert, because AMX must pad work to full 16-row tiles and
pays higher per-call latency.  :class:`HybridKernel` therefore switches
kernels per GEMM based on the token count -- both kernels consume the same
packed layout, so switching is free.

Which two kernels sit on either side of the crossover is no longer
hard-wired to AMX/AVX-512: a :class:`~repro.kernels.backend.KernelBackend`
from the registry in :mod:`repro.kernels.backend` supplies the latency and
throughput lanes (and the calibrated crossover) per backend, and
``KernelBackend.make_hybrid_kernel()`` builds the matching functional
dispatcher.  Constructed bare, :class:`HybridKernel` defaults to the
paper's KT AMX/AVX-512 pair.
"""

from __future__ import annotations

import numpy as np

from ..hw.spec import CPUSpec
from ..tensor.layout import PackedWeights
from .amx import AMXKernel
from .avx512 import AVX512Kernel
from .base import CPUGemmKernel

# Paper: "AVX-512 consistently outperforming AMX when ARI is four or fewer
# tokens per expert."
DEFAULT_ARI_THRESHOLD = 4


class HybridKernel(CPUGemmKernel):
    """Selects the latency lane for <= ``ari_threshold`` tokens, else the
    throughput lane.

    Defaults to the paper's pair (AVX-512 latency lane, AMX throughput
    lane); backends supply their own lanes via
    :meth:`repro.kernels.backend.KernelBackend.make_hybrid_kernel`.
    """

    def __init__(self, ari_threshold: int = DEFAULT_ARI_THRESHOLD,
                 latency_kernel: CPUGemmKernel | None = None,
                 throughput_kernel: CPUGemmKernel | None = None) -> None:
        if ari_threshold < 0:
            raise ValueError("ari_threshold must be non-negative")
        self.ari_threshold = ari_threshold
        self._throughput = throughput_kernel or AMXKernel()
        self._latency = latency_kernel or AVX512Kernel()

    @property
    def profile(self):  # type: ignore[override]
        # The hybrid kernel has no single profile; expose the throughput
        # lane's for introspection.  Cost and run always go through
        # select().
        return self._throughput.profile

    def select(self, tokens: int) -> CPUGemmKernel:
        """The kernel that will execute a GEMM over ``tokens`` rows."""
        return (self._latency if tokens <= self.ari_threshold
                else self._throughput)

    def run(self, x: np.ndarray, weights: PackedWeights) -> np.ndarray:
        return self.select(np.asarray(x).shape[0]).run(x, weights)

    def cost_us(
        self,
        m: int,
        weights: PackedWeights,
        cpu: CPUSpec,
        threads_fraction: float = 1.0,
        weights_cached: bool = False,
    ) -> float:
        return self.select(m).cost_us(
            m, weights, cpu,
            threads_fraction=threads_fraction,
            weights_cached=weights_cached,
        )
