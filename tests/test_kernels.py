"""Unit + property tests for the CPU kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.hw import XEON_8452Y
from repro.kernels import (
    AMXKernel,
    AVX512Kernel,
    HybridKernel,
    LlamaCppKernel,
    TorchAMXKernel,
    TorchAVX512Kernel,
    plan_blocks,
    reference_gemm,
)
from repro.tensor import BF16, INT4, INT8, pack_matrix

ALL_KERNELS = [
    AMXKernel, AVX512Kernel, TorchAMXKernel, TorchAVX512Kernel, LlamaCppKernel,
]


def _case(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, k)).astype(np.float32)
    w = rng.standard_normal((k, n)).astype(np.float32)
    return x, w


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("kernel_cls", ALL_KERNELS)
    def test_matches_reference_bf16(self, kernel_cls):
        x, w = _case(7, 48, 40)
        pw = pack_matrix(w, BF16)
        out = kernel_cls().run(x, pw)
        assert out.shape == (7, 40)
        assert np.allclose(out, x @ w, atol=1e-3)

    @pytest.mark.parametrize("kernel_cls", [AMXKernel, AVX512Kernel])
    def test_matches_reference_quantized(self, kernel_cls):
        x, w = _case(3, 64, 64, seed=1)
        for dt in (INT8, INT4):
            pw = pack_matrix(w, dt)
            out = kernel_cls().run(x, pw)
            ref = reference_gemm(x, pw)
            assert np.allclose(out, ref, atol=1e-3)

    def test_single_token_gemv(self):
        x, w = _case(1, 32, 32, seed=2)
        pw = pack_matrix(w, BF16)
        assert np.allclose(AVX512Kernel().run(x, pw), x @ w, atol=1e-3)

    def test_unaligned_shapes(self):
        x, w = _case(5, 33, 17, seed=3)
        pw = pack_matrix(w, BF16)
        assert np.allclose(AMXKernel().run(x, pw), x @ w, atol=1e-3)

    def test_shape_mismatch_rejected(self):
        x, w = _case(2, 32, 32)
        pw = pack_matrix(w, BF16)
        with pytest.raises(KernelError):
            AMXKernel().run(np.ones((2, 31), dtype=np.float32), pw)

    def test_1d_input_rejected(self):
        __, w = _case(1, 32, 32)
        pw = pack_matrix(w, BF16)
        with pytest.raises(KernelError):
            AMXKernel().run(np.ones(32, dtype=np.float32), pw)


class TestHybridDispatch:
    def test_selects_avx_at_or_below_threshold(self):
        hk = HybridKernel()
        assert isinstance(hk.select(1), AVX512Kernel)
        assert isinstance(hk.select(4), AVX512Kernel)

    def test_selects_amx_above_threshold(self):
        hk = HybridKernel()
        assert isinstance(hk.select(5), AMXKernel)
        assert isinstance(hk.select(1024), AMXKernel)

    def test_custom_threshold(self):
        hk = HybridKernel(ari_threshold=8)
        assert isinstance(hk.select(8), AVX512Kernel)
        assert isinstance(hk.select(9), AMXKernel)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            HybridKernel(ari_threshold=-1)

    def test_run_dispatches_functionally(self):
        x, w = _case(2, 32, 32, seed=4)
        pw = pack_matrix(w, BF16)
        assert np.allclose(HybridKernel().run(x, pw), x @ w, atol=1e-3)

    def test_cost_uses_selected_kernel(self):
        __, w = _case(1, 7168, 2048, seed=5)
        pw = pack_matrix(w, BF16)
        hk = HybridKernel()
        c_low = hk.cost_us(1, pw, XEON_8452Y)
        assert c_low == AVX512Kernel().cost_us(1, pw, XEON_8452Y)
        c_high = hk.cost_us(256, pw, XEON_8452Y)
        assert c_high == AMXKernel().cost_us(256, pw, XEON_8452Y)


class TestBlockPlanning:
    def test_blocks_fit_l2_budget(self):
        pw = pack_matrix(np.zeros((7168, 2048), dtype=np.float32), BF16)
        plan = plan_blocks(pw, XEON_8452Y)
        from repro.tensor import tile_bytes
        block_bytes = plan.row_tiles_per_block * tile_bytes()
        assert block_bytes <= XEON_8452Y.l2_cache_bytes * 0.5

    def test_all_tiles_covered(self):
        pw = pack_matrix(np.zeros((100, 64), dtype=np.float32), BF16)
        plan = plan_blocks(pw, XEON_8452Y)
        row_tiles, col_tiles = pw.tile_grid
        assert plan.n_row_blocks * plan.row_tiles_per_block >= row_tiles
        assert plan.n_col_tasks == col_tiles

    def test_small_matrix_single_block(self):
        pw = pack_matrix(np.zeros((16, 32), dtype=np.float32), BF16)
        plan = plan_blocks(pw, XEON_8452Y)
        assert plan.n_blocks == 1


class TestCostProperties:
    def test_kernel_cost_positive(self):
        pw = pack_matrix(np.zeros((64, 64), dtype=np.float32), BF16)
        for cls in ALL_KERNELS:
            assert cls().cost_us(4, pw, XEON_8452Y) > 0

    def test_kt_kernels_cheaper_than_torch(self):
        pw = pack_matrix(np.zeros((7168, 2048), dtype=np.float32), BF16)
        assert (
            AMXKernel().cost_us(512, pw, XEON_8452Y)
            < TorchAMXKernel().cost_us(512, pw, XEON_8452Y)
        )
        assert (
            AVX512Kernel().cost_us(1, pw, XEON_8452Y)
            < TorchAVX512Kernel().cost_us(1, pw, XEON_8452Y)
        )


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 9),
    st.integers(1, 50),
    st.integers(1, 50),
    st.integers(0, 2**31 - 1),
)
def test_property_amx_equals_reference(m, k, n, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, k)).astype(np.float32)
    w = rng.standard_normal((k, n)).astype(np.float32)
    pw = pack_matrix(w, BF16)
    assert np.allclose(AMXKernel().run(x, pw), x @ w, atol=1e-3)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 6), st.integers(1, 40), st.integers(1, 40))
def test_property_avx_equals_amx(m, k, n):
    rng = np.random.default_rng(m * 10000 + k * 100 + n)
    x = rng.standard_normal((m, k)).astype(np.float32)
    w = rng.standard_normal((k, n)).astype(np.float32)
    pw = pack_matrix(w, BF16)
    a = AMXKernel().run(x, pw)
    b = AVX512Kernel().run(x, pw)
    assert np.allclose(a, b, atol=1e-3)


class TestVectorizedMatchesLoopReference:
    """`run` is a blocked einsum over the same traversal as `run_reference`.

    The vectorization collapses only Python-level loop nests; every
    float32 multiply/add happens in the same order, so outputs must be
    *bit-identical*, not merely close.
    """

    CASES = [(1, 16, 16, 0), (7, 48, 40, 1), (5, 33, 17, 2), (16, 64, 96, 3)]

    @pytest.mark.parametrize("kernel_cls", [AMXKernel, AVX512Kernel])
    @pytest.mark.parametrize("m,k,n,seed", CASES)
    def test_bit_identical_bf16(self, kernel_cls, m, k, n, seed):
        x, w = _case(m, k, n, seed=seed)
        pw = pack_matrix(w, BF16)
        kernel = kernel_cls()
        fast = kernel.run(x, pw)
        ref = kernel.run_reference(x, pw)
        assert fast.dtype == ref.dtype == np.float32
        assert np.array_equal(fast, ref)

    @pytest.mark.parametrize("kernel_cls", [AMXKernel, AVX512Kernel])
    @pytest.mark.parametrize("dt", [INT8, INT4])
    def test_bit_identical_quantized(self, kernel_cls, dt):
        x, w = _case(6, 64, 64, seed=4)
        pw = pack_matrix(w, dt)
        kernel = kernel_cls()
        assert np.array_equal(kernel.run(x, pw), kernel.run_reference(x, pw))


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 9), st.integers(1, 50), st.integers(1, 50))
def test_property_vectorized_bit_identical(m, k, n):
    rng = np.random.default_rng(m * 31337 + k * 331 + n)
    x = rng.standard_normal((m, k)).astype(np.float32)
    w = rng.standard_normal((k, n)).astype(np.float32)
    pw = pack_matrix(w, BF16)
    for kernel in (AMXKernel(), AVX512Kernel()):
        assert np.array_equal(kernel.run(x, pw), kernel.run_reference(x, pw))


class TestExpertShapedGemm:
    """Correctness at real expert-projection shapes (hidden x intermediate).

    These shapes are what the MoE layer actually feeds the kernels; they
    also make this file's wall clock track kernel execution speed, which
    is the point of the blocked-einsum vectorization.
    """

    SHAPES = [
        (16, 2048, 1024),    # QW-2-scale gate/up panel
        (8, 1536, 3072),     # wide-N panel
        (24, 4096, 512),     # deep-K panel
    ]

    @pytest.mark.parametrize("m,k,n", SHAPES)
    def test_amx_matches_numpy(self, m, k, n):
        x, w = _case(m, k, n, seed=m)
        out = AMXKernel().run(x, pack_matrix(w, BF16))
        assert np.allclose(out, x @ w, atol=5e-2)

    @pytest.mark.parametrize("m,k,n", SHAPES)
    def test_avx512_matches_numpy(self, m, k, n):
        x, w = _case(m, k, n, seed=m + 100)
        out = AVX512Kernel().run(x, pack_matrix(w, BF16))
        assert np.allclose(out, x @ w, atol=5e-2)

    def test_hybrid_both_sides_of_threshold(self):
        x, w = _case(32, 1024, 1024, seed=9)
        pw = pack_matrix(w, BF16)
        hybrid = HybridKernel()
        assert np.allclose(hybrid.run(x[:2], pw), x[:2] @ w, atol=5e-2)
        assert np.allclose(hybrid.run(x, pw), x @ w, atol=5e-2)


class TestAriSweepLargeExpert:
    """Token-count sweep over one large packed expert (DS-3-scale K).

    One weight matrix, many GEMMs at different ARI values -- the exact
    call pattern batched decode produces once per-expert token counts are
    aggregated across the batch.
    """

    M_VALUES = (1, 2, 3, 4, 6, 8, 12, 16)

    @pytest.fixture(scope="class")
    def large_expert(self):
        rng = np.random.default_rng(42)
        x = rng.standard_normal((max(self.M_VALUES), 4096)).astype(np.float32)
        w = rng.standard_normal((4096, 2048)).astype(np.float32)
        return x, w, x @ w, pack_matrix(w, BF16)

    @pytest.mark.parametrize("kernel_cls", [AMXKernel, AVX512Kernel])
    @pytest.mark.parametrize("m", M_VALUES)
    def test_matches_numpy_at_each_ari(self, kernel_cls, m, large_expert):
        x, w, expected, pw = large_expert
        out = kernel_cls().run(x[:m], pw)
        assert np.allclose(out, expected[:m], atol=5e-2)

    def test_hybrid_dispatch_consistent_across_sweep(self, large_expert):
        x, w, expected, pw = large_expert
        hybrid = HybridKernel()
        for m in (2, 16):
            assert np.allclose(hybrid.run(x[:m], pw), expected[:m], atol=5e-2)
