"""Figure 7: KT AMX vs AVX-512 MoE-layer latency across models.

Paper anchor: the AVX-512 kernel consistently outperforms AMX when at most
four tokens are routed to an expert (up to ~1.2x), while AMX wins above
(up to ~10.8x at prefill intensities).
"""

from repro.bench import fig7_kernel_crossover, format_table


def test_fig7_kernel_crossover(run_once):
    data = run_once(fig7_kernel_crossover)
    for model, rows in data.items():
        print()
        print(format_table(
            ["tokens/expert", "AMX (us)", "AVX-512 (us)", "AVX/AMX"],
            [(m, a, v, v / a) for m, a, v in rows],
            title=f"Figure 7 [{model}]: expert GEMM latency",
        ))
    assert set(data) == {"ds3", "ds2", "qw2"}
    for model, rows in data.items():
        lat = {m: (a, v) for m, a, v in rows}
        # AVX-512 wins at <= 4 tokens/expert...
        for m in (1, 2, 4):
            amx, avx = lat[m]
            assert avx < amx, f"{model}: AVX should win at {m} tokens"
            assert amx / avx < 1.5, f"{model}: low-ARI gap should be modest"
        # ...and AMX wins decisively at high ARI.
        for m in (16, 64, 256):
            amx, avx = lat[m]
            assert amx < avx, f"{model}: AMX should win at {m} tokens"
        amx, avx = lat[256]
        assert avx / amx > 4.0, f"{model}: prefill-ARI AMX advantage too small"
