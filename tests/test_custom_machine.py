"""Tests for custom machine specs loaded from YAML."""

import pytest

from repro.core import KTRANSFORMERS, run_decode
from repro.errors import ConfigError
from repro.hw import machine_from_dict, load_machine, paper_testbed
from repro.model import QW2
from repro.tensor import INT8

EPYC_DOC = {
    "name": "epyc box",
    "cpu": {"name": "EPYC 9654", "cores": 96, "amx_tflops": 0,
            "avx512_tflops": 12.0, "dram_gbps": 460, "dram_gb": 768},
    "sockets": 2,
    "gpu": {"name": "RTX 4090", "tflops": 165, "hbm_gbps": 1008,
            "vram_gb": 24},
}


class TestMachineFromDict:
    def test_full_spec(self):
        m = machine_from_dict(EPYC_DOC)
        assert m.name == "epyc box"
        assert m.cpu.cores == 96
        assert not m.cpu.has_amx
        assert m.gpu.vram_capacity == 24 * 1024**3
        assert m.total_dram_bandwidth == pytest.approx(920e9)

    def test_defaults_fill_missing_fields(self):
        m = machine_from_dict({})
        ref = paper_testbed("a100")
        assert m.cpu.cores == ref.cpu.cores
        assert m.gpu.peak_flops == ref.gpu.peak_flops
        assert m.sockets == 2

    def test_partial_gpu_override(self):
        m = machine_from_dict({"gpu": {"vram_gb": 80}})
        assert m.gpu.vram_capacity == 80 * 1024**3
        assert m.gpu.hbm_bandwidth == paper_testbed().gpu.hbm_bandwidth

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            machine_from_dict({"cpus": {}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError):
            machine_from_dict([1, 2])

    def test_engine_runs_on_custom_machine(self):
        m = machine_from_dict(EPYC_DOC)
        r = run_decode(KTRANSFORMERS, QW2, m, INT8, n_tokens=2)
        assert r.tokens_per_s > 0


class TestLoadMachine:
    def test_roundtrip_through_file(self, tmp_path):
        import yaml
        path = tmp_path / "machine.yaml"
        path.write_text(yaml.safe_dump(EPYC_DOC))
        m = load_machine(str(path))
        assert m.cpu.name == "EPYC 9654"

    def test_invalid_yaml(self, tmp_path):
        path = tmp_path / "bad.yaml"
        path.write_text("cpu: [unclosed")
        with pytest.raises(ConfigError):
            load_machine(str(path))

    def test_empty_file_gives_defaults(self, tmp_path):
        path = tmp_path / "empty.yaml"
        path.write_text("")
        m = load_machine(str(path))
        assert m.sockets == 2


class TestNoAmxMachines:
    def test_amx_kernel_raises_loudly_on_non_amx_cpu(self):
        from repro.hw import KT_AMX, cpu_gemm_time_us
        m = machine_from_dict(EPYC_DOC)
        with pytest.raises(ValueError, match="without AMX"):
            cpu_gemm_time_us(KT_AMX, 64, 1024, 1024,
                             __import__("repro.tensor",
                                        fromlist=["BF16"]).BF16, m.cpu)

    def test_engine_falls_back_to_avx_prefill(self):
        from repro.core import run_prefill
        m = machine_from_dict(EPYC_DOC)
        r = run_prefill(KTRANSFORMERS, QW2, m, INT8, prompt_len=512)
        assert r.tokens_per_s > 0

    def test_deferral_neutral_when_gpu_bound(self):
        """A 4090 with a fast-DRAM CPU is GPU-bound; deferral cannot help
        (and must not hurt)."""
        m = machine_from_dict(EPYC_DOC)
        base = run_decode(KTRANSFORMERS, QW2, m, INT8, n_tokens=3)
        deferred = run_decode(KTRANSFORMERS, QW2, m, INT8, n_tokens=3,
                              n_deferred=2)
        assert deferred.elapsed_us <= base.elapsed_us * 1.02
