"""Expert feed-forward networks and their packed weights.

Each expert is a SwiGLU FFN: ``down( silu(x @ gate) * (x @ up) )``.
Weights are stored in the AMX tile layout so both CPU kernels can execute
them without repacking, and the Gate/Up matrices can optionally be fused
into a single GEMM (see :mod:`repro.moe.fused`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..kernels.base import CPUGemmKernel
from ..tensor.dtypes import BF16, DType
from ..tensor.layout import PackedWeights, pack_matrix


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation, computed stably for large negatives."""
    return x / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


@dataclass
class ExpertWeights:
    """One routed (or shared) expert's three projections, tile-packed."""

    gate: PackedWeights   # (hidden, intermediate)
    up: PackedWeights     # (hidden, intermediate)
    down: PackedWeights   # (intermediate, hidden)

    @property
    def hidden_size(self) -> int:
        return self.gate.rows

    @property
    def intermediate_size(self) -> int:
        return self.gate.cols

    def nbytes(self) -> int:
        return self.gate.nbytes() + self.up.nbytes() + self.down.nbytes()


def make_expert(
    hidden_size: int,
    intermediate_size: int,
    rng: np.random.Generator,
    dtype: DType = BF16,
    scale: float = 0.05,
) -> ExpertWeights:
    """Random-initialized expert with variance-scaled weights."""
    if hidden_size <= 0 or intermediate_size <= 0:
        raise ConfigError("expert dimensions must be positive")

    def init(rows, cols):
        w = rng.standard_normal((rows, cols)).astype(np.float32)
        return pack_matrix(w * scale, dtype)

    return ExpertWeights(
        gate=init(hidden_size, intermediate_size),
        up=init(hidden_size, intermediate_size),
        down=init(intermediate_size, hidden_size),
    )


def expert_forward(
    x: np.ndarray, expert: ExpertWeights, kernel: CPUGemmKernel
) -> np.ndarray:
    """Unfused expert FFN: three separate GEMMs plus the SwiGLU gate."""
    g = kernel.run(x, expert.gate)
    u = kernel.run(x, expert.up)
    h = silu(g) * u
    return kernel.run(h, expert.down)


def expert_flops(hidden_size: int, intermediate_size: int, tokens: int) -> float:
    """Dense FLOPs of one expert FFN over ``tokens`` tokens."""
    return 2.0 * tokens * hidden_size * intermediate_size * 3


def expert_weight_bytes(
    hidden_size: int, intermediate_size: int, dtype: DType
) -> float:
    """Storage footprint of one expert's three projections."""
    return 3.0 * hidden_size * intermediate_size * dtype.bytes_per_element
