"""Serving metrics: TTFT/TPOT accounting and percentile summaries."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class RequestTiming:
    """Simulated timing of one served request (microseconds)."""

    arrival_us: float
    start_us: float
    first_token_us: float      # absolute time the first new token is ready
    finish_us: float
    prompt_tokens: int
    generated_tokens: int

    def __post_init__(self) -> None:
        if not (self.arrival_us <= self.start_us <= self.first_token_us
                <= self.finish_us):
            raise ConfigError("request timing must be monotone")

    @property
    def queue_delay_us(self) -> float:
        return self.start_us - self.arrival_us

    @property
    def ttft_us(self) -> float:
        """Time to first token, measured from arrival."""
        return self.first_token_us - self.arrival_us

    @property
    def tpot_us(self) -> float:
        """Time per output token after the first."""
        if self.generated_tokens <= 1:
            return 0.0
        return (self.finish_us - self.first_token_us) / (self.generated_tokens - 1)

    @property
    def latency_us(self) -> float:
        return self.finish_us - self.arrival_us


def percentile(values: list[float], pct: float) -> float:
    """The ``pct``-th percentile of ``values`` (errors on empty input)."""
    if not values:
        raise ConfigError("no values to summarize")
    return float(np.percentile(np.asarray(values, dtype=np.float64), pct))


@dataclass
class ServingStats:
    """Aggregate statistics over a batch of served requests."""

    timings: list[RequestTiming] = field(default_factory=list)

    def add(self, timing: RequestTiming) -> None:
        self.timings.append(timing)

    @property
    def n_requests(self) -> int:
        return len(self.timings)

    def _values(self, attr: str) -> list[float]:
        return [getattr(t, attr) for t in self.timings]

    def summary(self) -> dict[str, float]:
        """p50/p95 TTFT and per-token latency plus aggregate throughput."""
        if not self.timings:
            raise ConfigError("no requests recorded")
        ttft = self._values("ttft_us")
        tpot = [t for t in self._values("tpot_us") if t > 0]
        total_tokens = sum(t.generated_tokens for t in self.timings)
        span = (max(t.finish_us for t in self.timings)
                - min(t.arrival_us for t in self.timings))
        return {
            "requests": float(self.n_requests),
            "ttft_p50_ms": percentile(ttft, 50) / 1e3,
            "ttft_p95_ms": percentile(ttft, 95) / 1e3,
            "tpot_p50_ms": percentile(tpot, 50) / 1e3 if tpot else 0.0,
            "tpot_p95_ms": percentile(tpot, 95) / 1e3 if tpot else 0.0,
            "queue_p95_ms": percentile(self._values("queue_delay_us"), 95) / 1e3,
            "tokens_per_s": total_tokens / (span / 1e6) if span > 0 else 0.0,
        }
