"""Micro-benchmark: same-expert co-scheduling (Section 3.2 detail).

"Dynamic task scheduling prioritizes co-scheduling tasks targeting the
same expert, further maximizing cache utilization."  Quantified here: a
work queue that keeps an expert's chunks on one thread collects L2 reuse
on every follow-up chunk, vs a naive interleaved order that re-streams
weights from DRAM for each chunk.
"""

import numpy as np

from repro.bench import format_table
from repro.hw import KT_AMX, XEON_8452Y, cpu_gemm_time_us
from repro.model import DS3
from repro.moe import (
    RouterConfig,
    WorkItem,
    affinity_schedule,
    balanced_synthetic_logits,
    route,
)
from repro.tensor import BF16


def _items(chunk_tokens=2048, seed=0):
    rng = np.random.default_rng(seed)
    cfg = RouterConfig(n_experts=DS3.n_experts, top_k=DS3.top_k)
    counts = route(balanced_synthetic_logits(chunk_tokens, cfg, rng),
                   cfg).expert_token_counts(cfg.n_experts)
    return [
        WorkItem(cpu_gemm_time_us(
            KT_AMX, int(t), DS3.hidden, 2 * DS3.moe_intermediate, BF16,
            XEON_8452Y, threads_fraction=1.0 / XEON_8452Y.cores), e)
        for e, t in enumerate(counts) if t > 0
    ]


def _compare():
    items = _items()
    rows = []
    for label, aware in (("expert-aware queue", True),
                         ("interleaved queue", False)):
        out = affinity_schedule(items, XEON_8452Y.cores, chunk_us=200.0,
                                expert_aware=aware)
        rows.append((label, out.makespan_us / 1e3, out.hit_rate * 100,
                     out.n_subtasks))
    return rows


def test_micro_coscheduling(run_once):
    rows = run_once(_compare)
    print()
    print(format_table(
        ["queue order", "makespan (ms)", "L2 hit rate %", "chunks"],
        rows,
        title="Same-expert co-scheduling, DS-3 prefill chunk (2048 tokens)",
    ))
    aware, naive = rows
    assert aware[1] < naive[1], "co-scheduling must win"
    assert aware[2] > 40.0, "most chunks should reuse the resident expert"
    assert naive[2] < aware[2]
    speedup = naive[1] / aware[1]
    assert 1.1 <= speedup <= 2.0
