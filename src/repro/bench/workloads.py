"""Synthetic workload generators (the Wikitext substitute).

Throughput experiments only need prompt *lengths* and statistically
realistic token streams; these generators provide both: Zipf-distributed
token ids (natural-text-like frequencies) and a chat-style mixture of
short interactive and long document-grounded requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


def zipf_token_stream(n_tokens: int, vocab_size: int, alpha: float = 1.1,
                      seed: int = 0) -> np.ndarray:
    """Token ids with Zipfian frequencies (rank-frequency like real text).

    Ranks are shuffled so frequent tokens are spread over the id space the
    way a learned tokenizer's are.
    """
    if n_tokens <= 0 or vocab_size <= 1:
        raise ConfigError("need positive tokens and vocab > 1")
    if alpha <= 0:
        raise ConfigError("alpha must be positive")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = ranks ** -alpha
    probs /= probs.sum()
    perm = rng.permutation(vocab_size)
    return perm[rng.choice(vocab_size, size=n_tokens, p=probs)]


@dataclass(frozen=True)
class ChatRequestSpec:
    """Length profile of one synthetic chat request."""

    prompt_tokens: int
    generate_tokens: int


def chat_workload_lengths(
    n_requests: int,
    seed: int = 0,
    short_fraction: float = 0.7,
) -> list[ChatRequestSpec]:
    """Bimodal chat traffic: short interactive turns + long document tasks.

    Short prompts: lognormal around ~60 tokens; long prompts: lognormal
    around ~2500 tokens (RAG / long-context).  Generation lengths follow a
    lognormal around ~180 tokens, clipped to [8, 1024].
    """
    if n_requests <= 0:
        raise ConfigError("n_requests must be positive")
    if not 0.0 <= short_fraction <= 1.0:
        raise ConfigError("short_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    out = []
    for __ in range(n_requests):
        if rng.random() < short_fraction:
            prompt = int(np.clip(rng.lognormal(4.1, 0.5), 8, 512))
        else:
            prompt = int(np.clip(rng.lognormal(7.8, 0.4), 512, 8192))
        gen = int(np.clip(rng.lognormal(5.2, 0.6), 8, 1024))
        out.append(ChatRequestSpec(prompt_tokens=prompt, generate_tokens=gen))
    return out


def expected_tokens(specs: list[ChatRequestSpec]) -> tuple[int, int]:
    """Total (prompt, generated) token counts of a workload."""
    return (sum(s.prompt_tokens for s in specs),
            sum(s.generate_tokens for s in specs))
