"""Seeded fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is a declarative, fully-deterministic description of
hardware misbehaviour over a serving run's simulated timeline:

- :class:`PcieDegradation` -- the host<->GPU link loses bandwidth inside a
  window (thermal throttling, a competing DMA stream, link retraining);
- :class:`CpuStraggler` -- one socket's routed-expert work slows down by a
  multiplier (frequency capping, a noisy co-tenant, a failing DIMM);
- :class:`NumaContention` -- the cross-socket fabric saturates, inflating
  the reduce/combine share of routed-expert layers;
- :class:`UploadFailureWindow` -- expert-weight uploads over PCIe fail with
  some probability (ECC retries, driver resets, dropped DMA descriptors);
- :class:`ClockJitter` -- multiplicative per-iteration noise on step time
  (OS scheduling, interrupt storms).

All windows are half-open ``[start_us, end_us)`` on the *serving* clock.
Every stochastic element (failure draws, jitter) is derived from
``FaultPlan.seed`` plus stable stream/step keys by
:class:`~repro.faults.injector.FaultInjector`, so one plan replayed twice
perturbs the run bit-identically -- which is what makes chaos testing on
the discrete-event simulator replayable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class FaultWindow:
    """Base class: a half-open ``[start_us, end_us)`` misbehaviour window."""

    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ConfigError("fault window cannot start before t=0")
        if self.end_us <= self.start_us:
            raise ConfigError(
                f"fault window [{self.start_us}, {self.end_us}) is empty"
            )

    def active_at(self, t_us: float) -> bool:
        """Whether the window covers simulated time ``t_us``."""
        return self.start_us <= t_us < self.end_us


@dataclass(frozen=True)
class PcieDegradation(FaultWindow):
    """PCIe bandwidth drops to ``bandwidth_fraction`` of nominal."""

    bandwidth_fraction: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.bandwidth_fraction <= 1.0:
            raise ConfigError("bandwidth_fraction must be in (0, 1]")


@dataclass(frozen=True)
class CpuStraggler(FaultWindow):
    """One CPU socket's expert work runs ``slowdown`` times slower.

    Routed-expert layers barrier on the slowest socket, so a single
    straggling socket stretches the whole layer by its slowdown.
    """

    slowdown: float
    socket: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slowdown < 1.0:
            raise ConfigError("straggler slowdown must be >= 1")
        if self.socket < 0:
            raise ConfigError("socket index must be >= 0")


@dataclass(frozen=True)
class NumaContention(FaultWindow):
    """Cross-socket (UPI) fabric contention inflates transfers by ``slowdown``."""

    slowdown: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slowdown < 1.0:
            raise ConfigError("NUMA contention slowdown must be >= 1")


@dataclass(frozen=True)
class UploadFailureWindow(FaultWindow):
    """Expert-weight uploads fail with ``probability`` inside the window."""

    probability: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("failure probability must be in [0, 1]")


@dataclass(frozen=True)
class ReplicaFault(FaultWindow):
    """One fleet replica goes away for the window.

    ``kind="kill"`` models a crash-restart: the replica's in-flight work
    at ``start_us`` is lost (the fleet router resubmits or sheds it per
    policy) and its caches restart cold at ``end_us``.  ``kind="drain"``
    models a graceful rollout: the replica stops *accepting* new work at
    ``start_us`` but completes what it already holds, and resumes
    accepting at ``end_us``.  Interpreted by
    :class:`~repro.serving.fleet.FleetRouter`; the single-node injector
    ignores these windows, so a replica-only plan perturbs a bare
    server not at all.
    """

    replica: int = 0
    kind: str = "kill"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.replica < 0:
            raise ConfigError("replica index must be >= 0")
        if self.kind not in ("kill", "drain"):
            raise ConfigError(
                f"unknown replica fault kind {self.kind!r}; "
                "expected 'kill' or 'drain'")


@dataclass(frozen=True)
class ClockJitter:
    """Per-iteration multiplicative step-time noise, uniform in ``1 +- sigma``."""

    sigma: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.sigma < 1.0:
            raise ConfigError("jitter sigma must be in [0, 1)")


@dataclass(frozen=True)
class FaultPlan:
    """A complete seeded description of one chaos scenario.

    ``seed`` drives every stochastic draw (upload-failure Bernoullis,
    retry-success draws, clock jitter); the windows themselves are
    deterministic.  An all-empty plan is the identity: injecting it must
    leave a serving run bit-identical to running with no injector at all
    (property-tested).
    """

    seed: int = 0
    pcie: tuple[PcieDegradation, ...] = ()
    stragglers: tuple[CpuStraggler, ...] = ()
    numa: tuple[NumaContention, ...] = ()
    upload_failures: tuple[UploadFailureWindow, ...] = ()
    jitter: ClockJitter | None = None
    replicas: tuple[ReplicaFault, ...] = ()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigError("fault plan seed must be >= 0")
        for name, kind in (("pcie", PcieDegradation),
                           ("stragglers", CpuStraggler),
                           ("numa", NumaContention),
                           ("upload_failures", UploadFailureWindow),
                           ("replicas", ReplicaFault)):
            for w in getattr(self, name):
                if not isinstance(w, kind):
                    raise ConfigError(
                        f"plan field {name!r} holds {type(w).__name__}, "
                        f"expected {kind.__name__}"
                    )

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultPlan":
        """The identity plan: no windows, no jitter."""
        return cls(seed=seed)

    @property
    def is_empty(self) -> bool:
        """True when the plan perturbs nothing."""
        return (not self.pcie and not self.stragglers and not self.numa
                and not self.upload_failures and not self.replicas
                and (self.jitter is None or self.jitter.sigma == 0.0))


def canonical_chaos_plan(seed: int = 1234) -> FaultPlan:
    """The chaos bench's canonical sustained fault storm.

    A compound failure landing 5 seconds into the serving clock and
    outlasting the run: the PCIe link collapses to 2% bandwidth while
    expert uploads fail 90% of the time, one socket straggles at 1.3x,
    the UPI fabric saturates at 1.2x, and every step carries 2% clock
    jitter.  Golden-pinned by ``tests/test_golden_regression.py`` so
    fault semantics cannot drift silently;
    ``benchmarks/test_chaos_serving.py`` scores hardened vs. naive
    serving against it.
    """
    return FaultPlan(
        seed=seed,
        pcie=(PcieDegradation(5e6, 300e6, bandwidth_fraction=0.02),),
        stragglers=(CpuStraggler(5e6, 300e6, slowdown=1.3),),
        numa=(NumaContention(5e6, 300e6, slowdown=1.2),),
        upload_failures=(UploadFailureWindow(5e6, 300e6, probability=0.9),),
        jitter=ClockJitter(sigma=0.02),
    )
