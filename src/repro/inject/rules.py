"""Injection rules: YAML match/replace clauses (Section 5, Listing 1).

A rule file is a YAML list; each entry has a ``match`` clause (regular
expression over dotted module names, class reference, or both) and a
``replace`` clause naming the substitute class, its execution device, and
keyword arguments forwarded to the replacement's constructor:

    - match:
        name: "^model\\.layers\\..*\\.self_attn$"
        class: modeling_deepseek_v3.DeepseekV3MoE
      replace:
        class: operators.experts.FusedMoE
        device: "cpu"
        kwargs: {backend: hybrid_AMX_AVX512, data_type: Int4}
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

import yaml

from ..errors import InjectionError
from ..model.modules import Module


@dataclass(frozen=True)
class MatchClause:
    """Selects modules by name regex, class reference, or both."""

    name_pattern: Optional[str] = None
    class_ref: Optional[str] = None

    def __post_init__(self) -> None:
        if self.name_pattern is None and self.class_ref is None:
            raise InjectionError("match clause needs a name pattern or a class")
        if self.name_pattern is not None:
            try:
                re.compile(self.name_pattern)
            except re.error as exc:
                raise InjectionError(
                    f"invalid match regex {self.name_pattern!r}: {exc}"
                ) from exc

    def matches(self, dotted_name: str, module: Module) -> bool:
        if self.name_pattern is not None:
            if not re.search(self.name_pattern, dotted_name):
                return False
        if self.class_ref is not None:
            if not _class_matches(module, self.class_ref):
                return False
        return True


def _class_matches(module: Module, ref: str) -> bool:
    """True if ``ref`` names the module's class.

    Accepts the bare class name (``DeepseekV3MoE``) or a dotted path whose
    last component is the class name (``modeling_deepseek_v3.DeepseekV3MoE``)
    -- matching HuggingFace convention where the module prefix identifies
    the modeling file.
    """
    cls = type(module)
    tail = ref.rsplit(".", 1)[-1]
    if cls.__name__ != tail:
        return False
    if "." in ref:
        full = f"{cls.__module__}.{cls.__name__}"
        return full.endswith(ref) or ref == cls.__name__
    return True


@dataclass(frozen=True)
class ReplaceClause:
    """Names the replacement class and its construction parameters."""

    class_ref: str
    device: Optional[str] = None
    kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.class_ref:
            raise InjectionError("replace clause needs a class")


@dataclass(frozen=True)
class InjectionRule:
    match: MatchClause
    replace: ReplaceClause


def parse_rules(text: str) -> list[InjectionRule]:
    """Parse a YAML rule document into :class:`InjectionRule` objects."""
    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise InjectionError(f"invalid YAML: {exc}") from exc
    if doc is None:
        return []
    if not isinstance(doc, list):
        raise InjectionError("rule document must be a YAML list")
    rules = []
    for i, entry in enumerate(doc):
        if not isinstance(entry, dict) or set(entry) - {"match", "replace"}:
            raise InjectionError(
                f"rule {i}: expected exactly 'match' and 'replace' keys"
            )
        match_spec = entry.get("match") or {}
        replace_spec = entry.get("replace") or {}
        rules.append(InjectionRule(
            match=MatchClause(
                name_pattern=match_spec.get("name"),
                class_ref=match_spec.get("class"),
            ),
            replace=ReplaceClause(
                class_ref=replace_spec.get("class", ""),
                device=replace_spec.get("device"),
                kwargs=dict(replace_spec.get("kwargs") or {}),
            ),
        ))
    return rules


def load_rules(path: str) -> list[InjectionRule]:
    """Read and parse a YAML rule file."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_rules(f.read())
