"""Ablation: multi-GPU pipeline parallelism (Section 5 capability).

What pipelining buys in a CPU-offloaded MoE system: VRAM headroom (each
stage holds 1/S of the GPU weights), *not* speed -- prefill stays bound by
the shared CPU expert pool and batch-1 decode traverses stages serially.
"""

from repro.bench import format_table
from repro.core import KTRANSFORMERS, decode_works
from repro.hw import paper_testbed
from repro.hw.units import GB
from repro.model import DS3
from repro.sched import (
    PipelineConfig,
    prefill_layer_work,
    simulate_pipelined_decode,
    simulate_pipelined_prefill,
    vram_per_stage_bytes,
)
from repro.tensor import BF16

MACHINE = paper_testbed("a100")
STAGES = (1, 2, 4)


def _sweep():
    moe_prefill = prefill_layer_work(
        DS3, MACHINE, BF16, 1024, KTRANSFORMERS.prefill_kernel,
        KTRANSFORMERS.numa_strategy, KTRANSFORMERS.prefill_kernels_per_layer,
    )
    chunks = [[moe_prefill] * 12 for __ in range(4)]
    dec_works = decode_works(KTRANSFORMERS, DS3, MACHINE, BF16, 128)[:12]

    rows = []
    for s in STAGES:
        cfg = PipelineConfig(s)
        prefill_us = simulate_pipelined_prefill(chunks, MACHINE, cfg).now
        decode_us = simulate_pipelined_decode(dec_works, MACHINE, cfg, 2).now
        vram = vram_per_stage_bytes(DS3.gpu_params * 2.0, cfg)
        rows.append((s, prefill_us / 1e3, decode_us / 1e3, vram / GB))
    return rows


def test_ablation_pipeline(run_once):
    rows = run_once(_sweep)
    print()
    print(format_table(
        ["stages", "prefill (ms)", "decode 2 tok (ms)", "VRAM/GPU (GiB)"],
        rows,
        title="Multi-GPU pipelining, DS-3 BF16 (12-layer slice, 4 chunks)",
    ))
    by = {r[0]: r for r in rows}
    # VRAM per GPU halves with each doubling of stages.
    assert by[2][3] == by[1][3] / 2
    assert by[4][3] == by[1][3] / 4
    # CPU-bound prefill barely changes (within 10%).
    assert abs(by[2][1] - by[1][1]) / by[1][1] < 0.10
    # Batch-1 decode gets no faster (extra hops cost a little).
    assert by[2][2] >= by[1][2] * 0.99
    assert by[4][2] >= by[1][2] * 0.99
