"""Expert Deferral: functional execution (Section 4).

Deferral reorders MoE execution during decode: at layer k only the
``n_immediate`` experts with the highest routing scores feed the next
layer; the remaining ``n_deferred`` experts' outputs are *delayed* one MoE
layer and added through the residual stream:

    O_k = I_k + S_k(I_k) + R_{k-1}^def(I_{k-1}) + R_k^imm(I_k)   (1 < k < L)

with no deferral at the last MoE layer (it computes all experts *and*
absorbs the carried deferred output).  Prefill is never deferred
(Section 4.1).  This module implements the mechanism exactly on the
functional numpy transformer so its accuracy impact is measurable; the
timing benefit is modeled separately by :mod:`repro.sched.decode`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..model.moe_layer import MoEBlock
from ..model.transformer import MoETransformer, _select_token
from ..moe.router import RoutingResult

MIN_IMMEDIATE_EXPERTS = 2  # Section 4.2 stability heuristic


def split_routing(routing: RoutingResult, n_immediate: int
                  ) -> tuple[RoutingResult, RoutingResult]:
    """Split a routing decision into immediate and deferred parts by score.

    Routing slots are already sorted by descending gate weight, so the
    first ``n_immediate`` slots per token are the immediate experts.  The
    two parts partition the full routed contribution exactly:
    ``R_imm(x) + R_def(x) == R_all(x)``.
    """
    if not 0 <= n_immediate <= routing.top_k:
        raise ConfigError(
            f"n_immediate={n_immediate} out of range for top_k={routing.top_k}"
        )
    imm_w = routing.weights.copy()
    imm_w[:, n_immediate:] = 0.0
    def_w = routing.weights.copy()
    def_w[:, :n_immediate] = 0.0
    imm = RoutingResult(routing.indices, imm_w, routing.scores)
    deferred = RoutingResult(routing.indices, def_w, routing.scores)
    return imm, deferred


@dataclass(frozen=True)
class DeferralConfig:
    """How many routed experts to defer per MoE layer during decode."""

    n_deferred: int

    def __post_init__(self) -> None:
        if self.n_deferred < 0:
            raise ConfigError("n_deferred must be >= 0")

    def n_immediate(self, top_k: int) -> int:
        imm = top_k - self.n_deferred
        if self.n_deferred > 0 and imm < MIN_IMMEDIATE_EXPERTS:
            raise ConfigError(
                f"deferring {self.n_deferred} of {top_k} experts leaves "
                f"{imm} immediate; at least {MIN_IMMEDIATE_EXPERTS} required"
            )
        return imm


class DeferralEngine:
    """Runs a :class:`MoETransformer` with Expert Deferral at decode time."""

    def __init__(self, model: MoETransformer, config: DeferralConfig) -> None:
        self.model = model
        self.config = config
        # Validate against the model's top_k eagerly.
        config.n_immediate(model.config.top_k)

    # -- internals ----------------------------------------------------------

    def _moe_layers(self) -> list[int]:
        return [i for i, layer in enumerate(self.model.layers) if layer.is_moe]

    def _decode_step(self, token_ids: np.ndarray, caches: list,
                     carried: dict[int, np.ndarray]) -> np.ndarray:
        """One deferred decode step; ``carried`` maps layer index -> the
        deferred contribution computed at that layer (consumed by the next
        MoE layer)."""
        model = self.model
        x = model.embed_tokens(np.atleast_1d(token_ids))
        moe_layers = self._moe_layers()
        last_moe = moe_layers[-1]
        prev_moe: Optional[int] = None

        for idx, (layer, cache) in enumerate(zip(model.layers, caches)):
            h = layer.attn_part(x, cache)
            fin = layer.ffn_input(h)
            if not layer.is_moe:
                x = h + layer.mlp(fin)
                continue
            moe: MoEBlock = layer.mlp
            routing = moe.route(fin)
            contribution = moe.shared_forward(fin)
            if prev_moe is not None and prev_moe in carried:
                contribution = contribution + carried.pop(prev_moe)

            if self.config.n_deferred > 0 and idx != last_moe:
                n_imm = self.config.n_immediate(model.config.top_k)
                imm_routing, def_routing = split_routing(routing, n_imm)
                contribution = contribution + moe.routed_forward(fin, imm_routing)
                carried[idx] = moe.routed_forward(fin, def_routing)
            else:
                contribution = contribution + moe.routed_forward(fin, routing)
            x = h + contribution
            prev_moe = idx
        return model.lm_head(model.norm(x))

    # -- public API ----------------------------------------------------------

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        greedy: bool = True,
        temperature: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        stop_token: Optional[int] = None,
    ) -> np.ndarray:
        """Prefill normally, then decode with Expert Deferral.

        Matches :meth:`MoETransformer.generate`'s interface so evaluation
        harnesses can swap engines transparently.
        """
        if max_new_tokens < 0:
            raise ConfigError("max_new_tokens must be >= 0")
        caches = self.model.new_caches()
        # Prefill: standard execution (deferral is decode-only).
        logits = self.model.step(np.asarray(prompt), caches)
        carried: dict[int, np.ndarray] = {}
        sampler = rng or np.random.default_rng(0)
        out = []
        last = logits[-1]
        for __ in range(max_new_tokens):
            token = _select_token(last, greedy, temperature, sampler)
            out.append(token)
            if stop_token is not None and token == stop_token:
                break
            logits = self._decode_step(np.array([token]), caches, carried)
            last = logits[-1]
        return np.array(out, dtype=np.int64)

    def decode_logits(self, prompt: np.ndarray, n_steps: int,
                      forced_tokens: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-step decode logits under this engine's execution.

        Without ``forced_tokens`` the model feeds on its own greedy picks
        (free-running, used by fidelity metrics).  With ``forced_tokens``
        the given sequence is fed instead (teacher forcing, used by
        NLL/perplexity metrics); ``n_steps`` is ignored in that case.
        """
        if forced_tokens is not None:
            forced_tokens = np.asarray(forced_tokens)
            n_steps = len(forced_tokens)
        caches = self.model.new_caches()
        logits = self.model.step(np.asarray(prompt), caches)
        carried: dict[int, np.ndarray] = {}
        rows = []
        last = logits[-1]
        for i in range(n_steps):
            rows.append(last)
            token = (int(forced_tokens[i]) if forced_tokens is not None
                     else int(np.argmax(last)))
            logits = self._decode_step(np.array([token]), caches, carried)
            last = logits[-1]
        return np.stack(rows)
