"""Expert popularity profiling and GPU placement planning.

The paper focuses on models with shared experts ("which naturally emerge as
the most frequently-used experts and are therefore placed on the GPU") but
notes that for models *without* shared experts, popular routed experts can
be identified via offline profiling, as done in Fiddler.  This module
implements that pipeline:

1. :func:`profile_expert_popularity` runs a corpus through a functional
   model and counts per-layer expert activations;
2. :func:`zipf_popularity` generates synthetic popularity profiles for
   simulator-scale models (real traces show heavy-tailed expert usage);
3. :func:`plan_gpu_residency` greedily pins the most popular experts into a
   VRAM budget and predicts the activation *hit rate* the plan achieves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from ..model.transformer import MoETransformer


def profile_expert_popularity(
    model: MoETransformer, corpus: list[np.ndarray]
) -> np.ndarray:
    """Count routed-expert activations per (moe layer, expert) over a corpus.

    Returns an ``(n_moe_layers, n_experts)`` activation-count matrix.
    Dense layers are excluded.
    """
    if not corpus:
        raise ConfigError("profiling needs a non-empty corpus")
    moe_layers = [layer for layer in model.layers if layer.is_moe]
    counts = np.zeros((len(moe_layers), model.config.n_experts), dtype=np.int64)

    for prompt in corpus:
        caches = model.new_caches()
        x = model.embed_tokens(np.asarray(prompt))
        mi = 0
        for layer, cache in zip(model.layers, caches):
            h = layer.attn_part(x, cache)
            fin = layer.ffn_input(h)
            if layer.is_moe:
                routing = layer.mlp.route(fin)
                counts[mi] += routing.expert_token_counts(model.config.n_experts)
                x = h + layer.mlp.shared_forward(fin) + layer.mlp.routed_forward(fin, routing)
                mi += 1
            else:
                x = h + layer.mlp(fin)
    return counts


def zipf_popularity(
    n_layers: int,
    n_experts: int,
    total_activations: int,
    exponent: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Synthetic heavy-tailed popularity counts (per layer, shuffled ranks).

    ``exponent=0`` gives uniform popularity (well-balanced training);
    larger exponents concentrate traffic on few experts.
    """
    if n_layers <= 0 or n_experts <= 0:
        raise ConfigError("dimensions must be positive")
    if exponent < 0:
        raise ConfigError("exponent must be >= 0")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_experts + 1, dtype=np.float64)
    probs = ranks ** -exponent
    probs /= probs.sum()
    counts = np.zeros((n_layers, n_experts), dtype=np.int64)
    for layer in range(n_layers):
        perm = rng.permutation(n_experts)
        counts[layer] = rng.multinomial(total_activations, probs)[perm]
    return counts


@dataclass
class PlacementPlan:
    """Which routed experts live on the GPU, per MoE layer."""

    gpu_resident: list[set[int]]
    expected_hit_rate: float
    vram_used_bytes: float

    @property
    def n_resident(self) -> int:
        return sum(len(s) for s in self.gpu_resident)

    def is_on_gpu(self, layer: int, expert: int) -> bool:
        return expert in self.gpu_resident[layer]


def plan_gpu_residency(
    popularity: np.ndarray,
    vram_budget_bytes: float,
    expert_bytes: float,
) -> PlacementPlan:
    """Greedily pin the globally most-activated experts into the budget.

    The expected hit rate is the fraction of all profiled activations that
    would be served by GPU-resident experts under this plan -- the quantity
    Fiddler's partitioning maximizes.
    """
    popularity = np.asarray(popularity)
    if popularity.ndim != 2:
        raise ConfigError("popularity must be (layers, experts)")
    if expert_bytes <= 0:
        raise ConfigError("expert_bytes must be positive")
    n_layers, n_experts = popularity.shape
    budget_experts = int(vram_budget_bytes // expert_bytes)

    flat = [
        (int(popularity[l, e]), l, e)
        for l in range(n_layers)
        for e in range(n_experts)
    ]
    flat.sort(key=lambda t: (-t[0], t[1], t[2]))

    resident: list[set[int]] = [set() for __ in range(n_layers)]
    covered = 0
    for count, l, e in flat[:budget_experts]:
        resident[l].add(e)
        covered += count

    total = int(popularity.sum())
    return PlacementPlan(
        gpu_resident=resident,
        expected_hit_rate=covered / total if total else 0.0,
        vram_used_bytes=min(budget_experts, len(flat)) * expert_bytes,
    )


def placement_speedup_estimate(
    plan: PlacementPlan,
    cpu_expert_time_us: float,
    gpu_expert_time_us: float,
) -> float:
    """Expected per-layer MoE speedup from serving hits on the GPU.

    With hit rate ``h``, the expected expert time becomes
    ``h * gpu + (1 - h) * cpu`` (GPU and CPU expert work overlap with each
    other in the hybrid engine, so this is an upper bound used for planning,
    not a simulator substitute).
    """
    if cpu_expert_time_us <= 0 or gpu_expert_time_us <= 0:
        raise ConfigError("expert times must be positive")
    h = plan.expected_hit_rate
    blended = h * gpu_expert_time_us + (1.0 - h) * cpu_expert_time_us
    return cpu_expert_time_us / blended
