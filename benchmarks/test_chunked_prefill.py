"""Chunked prefill with decode piggybacking vs the monolithic scheduler.

Sweeps prefill chunk size x arrival rate over one Poisson workload
(QW2-scale simulated costs, real tokens from the functional model),
comparing the monolithic boundary-pass scheduler against hybrid
iterations, and emits the trajectory -- per-arm percentile latencies,
goodput, chunked/hybrid iteration counts -- to
``benchmarks/BENCH_chunked_prefill.json``.

QW2 costs (64 routed experts, top-8) put the decode batch in the
expert-saturated regime the piggybacking argument needs: a near-capacity
batch already streams most of the expert pool from DRAM every iteration,
so a prompt chunk's marginal expert cost is small and hybrid iterations
stay close to pure-decode cost.  (A DS3-scale pool -- 256 experts -- is
far from saturation at batch 16, so chunking there pays the full expert
streaming bill per chunk; the monolithic pass remains the right call.)

The headline claim checked here: at the PR-1 saturation arrival rate
(5 req/s), chunked prefill cuts TPOT p95 to <= 0.5x the monolithic arm
at equal-or-better request throughput, while the chunk-size sweep
exposes the classic TTFT/TPOT frontier (small chunks: smoothest decode,
slowest prompt turnaround).
"""

import json
import math
from pathlib import Path

from repro.bench import format_table
from repro.model import QW2, MoETransformer, tiny_config
from repro.serving import (
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    ServingSLO,
    poisson_workload,
)

RATES = (
    ("moderate (1 req/2s)", 2.0),
    ("saturation (5 req/s)", 0.2),
)
CHUNK_SIZES = (128, 256, 512)
HEADLINE_CHUNK = 512
N_REQUESTS = 14
PROMPT_LEN = 640
MAX_NEW_TOKENS = 8
KV_BUDGET = 8192
MAX_BATCH = 16
SLO = ServingSLO(ttft_ms=60_000.0, tpot_ms=2_000.0)
OUT_PATH = Path(__file__).parent / "BENCH_chunked_prefill.json"


def _arm_config(chunk_tokens):
    return BatchSchedulerConfig(
        kv_budget_tokens=KV_BUDGET, max_batch_size=MAX_BATCH,
        prefill_chunk_tokens=chunk_tokens)


def _run_arm(session, workload, chunk_tokens):
    server = ContinuousBatchingServer(session, _arm_config(chunk_tokens))
    stats = server.replay(list(workload))
    return {
        "chunk_tokens": chunk_tokens,
        "summary": stats.summary(),
        "goodput": stats.goodput(SLO),
        "n_iterations": server.timeline.n_iterations,
        "n_chunked_iterations": server.timeline.n_chunked_iterations,
        "n_hybrid_iterations": server.timeline.n_hybrid_iterations,
        "timeline": server.timeline.as_dict(),
    }


def _sweep():
    model = MoETransformer(tiny_config("tiny-qw", top_k=6))
    session = InferenceSession(model, QW2)
    results = []
    for label, interarrival_s in RATES:
        workload = poisson_workload(
            n_requests=N_REQUESTS,
            mean_interarrival_us=interarrival_s * 1e6,
            prompt_len=PROMPT_LEN,
            max_new_tokens=MAX_NEW_TOKENS,
            vocab_size=model.config.vocab_size,
            seed=3,
        )
        mono = _run_arm(session, workload, None)
        chunked = [_run_arm(session, workload, c) for c in CHUNK_SIZES]
        results.append({
            "label": label,
            "interarrival_s": interarrival_s,
            "monolithic": mono,
            "chunked": chunked,
        })
    return results


def test_chunked_prefill(run_once):
    results = run_once(_sweep)
    OUT_PATH.write_text(json.dumps(
        {"model_costs": QW2.name,
         "workload": {"n_requests": N_REQUESTS, "prompt_len": PROMPT_LEN,
                      "max_new_tokens": MAX_NEW_TOKENS,
                      "kv_budget_tokens": KV_BUDGET,
                      "max_batch_size": MAX_BATCH},
         "slo": {"ttft_ms": SLO.ttft_ms, "tpot_ms": SLO.tpot_ms},
         "headline_chunk_tokens": HEADLINE_CHUNK,
         "rates": results}, indent=2))

    rows = []
    for r in results:
        mono = r["monolithic"]["summary"]
        rows.append((r["label"], "monolithic",
                     mono["requests_per_s"], 1.0,
                     mono["ttft_p95_ms"] / 1e3, mono["tpot_p95_ms"] / 1e3,
                     r["monolithic"]["goodput"]["attainment"]))
        for arm in r["chunked"]:
            s = arm["summary"]
            rows.append((r["label"], f"chunk={arm['chunk_tokens']}",
                         s["requests_per_s"],
                         s["tpot_p95_ms"] / mono["tpot_p95_ms"],
                         s["ttft_p95_ms"] / 1e3, s["tpot_p95_ms"] / 1e3,
                         arm["goodput"]["attainment"]))
    print()
    print(format_table(
        ["load", "arm", "req/s", "TPOT p95 vs mono",
         "TTFT p95 (s)", "TPOT p95 (s)", "SLO attainment"],
        rows,
        title="Chunked prefill vs monolithic (QW2-scale costs, 14 reqs)",
    ))

    for r in results:
        for arm in [r["monolithic"]] + r["chunked"]:
            s = arm["summary"]
            assert math.isfinite(s["ttft_p95_ms"]) and s["ttft_p95_ms"] > 0
            assert math.isfinite(s["tpot_p95_ms"]) and s["tpot_p95_ms"] > 0
            assert s["ttft_p50_ms"] <= s["ttft_p95_ms"] <= s["ttft_p99_ms"]
            assert s["tpot_p50_ms"] <= s["tpot_p95_ms"] <= s["tpot_p99_ms"]
            # KV occupancy stayed within budget the whole run.
            assert all(p["kv_used_tokens"] <= KV_BUDGET
                       for p in arm["timeline"]["iterations"])
        # The monolithic arm never chunks; every chunked arm actually ran
        # hybrid (decode + chunk) iterations.
        assert r["monolithic"]["n_chunked_iterations"] == 0
        for arm in r["chunked"]:
            assert arm["n_hybrid_iterations"] > 0

    saturated = results[-1]
    assert saturated["label"].startswith("saturation")
    mono = saturated["monolithic"]["summary"]

    # Headline: every chunk size at least halves the TPOT p95 tail at
    # saturation, and the headline chunk does it at better-or-equal
    # request throughput (within the 5% acceptance band).
    for arm in saturated["chunked"]:
        assert arm["summary"]["tpot_p95_ms"] <= 0.5 * mono["tpot_p95_ms"]
    headline = next(a for a in saturated["chunked"]
                    if a["chunk_tokens"] == HEADLINE_CHUNK)
    assert (headline["summary"]["requests_per_s"]
            >= 0.95 * mono["requests_per_s"])

    # The TTFT/TPOT frontier: growing the chunk budget strictly improves
    # prompt turnaround (TTFT tail) while giving back some decode
    # smoothness (TPOT tail never *below* the smallest chunk's by much).
    ttfts = [a["summary"]["ttft_p95_ms"] for a in saturated["chunked"]]
    assert ttfts == sorted(ttfts, reverse=True)
    tpots = [a["summary"]["tpot_p95_ms"] for a in saturated["chunked"]]
    assert tpots[-1] >= 0.95 * tpots[0]
