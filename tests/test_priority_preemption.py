"""Unit tests for priority-aware preemptive scheduling (ISSUE 5).

Covers the :class:`~repro.serving.priority.PriorityConfig` policy
surface, the swap/recompute preemption state machine in
``ContinuousBatchingServer``, the swap/recompute pricing helpers, and
the interplay with resilience shedding.  The FIFO bit-identity and fuzz
properties live in ``test_continuous_fuzz.py`` / the goldens in
``test_golden_regression.py``.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model import DS3, MoETransformer, tiny_config
from repro.sched.decode import kv_swap_transfer_us
from repro.sched.workload import ACTIVATION_BYTES, kv_token_bytes
from repro.serving import (
    BatchCostModel,
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    Priority,
    PriorityConfig,
    ResilienceConfig,
    poisson_workload,
)

_SESSION = None


def get_session():
    global _SESSION
    if _SESSION is None:
        _SESSION = InferenceSession(MoETransformer(tiny_config("tiny-qw")),
                                    DS3)
    return _SESSION


def mixed_workload(n_batch=4, n_inter=4, batch_prompt=48, inter_prompt=8):
    """BATCH hogs arriving early, INTERACTIVE arrivals spread behind them."""
    batch = poisson_workload(n_batch, 2e5, prompt_len=batch_prompt,
                             max_new_tokens=16, vocab_size=64, seed=1,
                             priority=Priority.BATCH)
    inter = poisson_workload(n_inter, 3e6, prompt_len=inter_prompt,
                             max_new_tokens=4, vocab_size=64, seed=2,
                             priority=Priority.INTERACTIVE)
    return batch + inter


def serve(workload, priorities, **cfg):
    cfg.setdefault("kv_budget_tokens", 128)
    cfg.setdefault("max_batch_size", 2)
    server = ContinuousBatchingServer(
        get_session(), BatchSchedulerConfig(**cfg), priorities=priorities)
    stats = server.replay(list(workload))
    return server, stats


def assert_drained(server):
    """Pages freed exactly once: nothing left allocated, stashed, reserved."""
    assert server.pool.n_slots == 0
    assert server.pool.used_tokens == 0
    assert server.pool.n_swapped == 0
    assert server.pool.swapped_tokens == 0
    assert server._reserved_pages == 0
    assert not server._preempted


class TestPriorityConfig:
    def test_defaults_valid(self):
        cfg = PriorityConfig()
        assert cfg.preemption and cfg.mechanism == "auto"

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigError):
            PriorityConfig(aging_us=0.0)
        with pytest.raises(ConfigError):
            PriorityConfig(mechanism="teleport")
        with pytest.raises(ConfigError):
            PriorityConfig(max_preemptions=-1)

    def test_aging_promotes_one_class_per_interval(self):
        cfg = PriorityConfig(aging_us=1e6)
        batch = int(Priority.BATCH)
        assert cfg.effective_priority(batch, 0.0, 0.5e6) == 2
        assert cfg.effective_priority(batch, 0.0, 1.0e6) == 1
        assert cfg.effective_priority(batch, 0.0, 2.0e6) == 0
        # Clamped at INTERACTIVE; never negative.
        assert cfg.effective_priority(batch, 0.0, 99e6) == 0

    def test_aging_none_is_static(self):
        cfg = PriorityConfig(aging_us=None)
        assert cfg.effective_priority(int(Priority.BATCH), 0.0, 1e12) == 2

    def test_clock_before_arrival_never_promotes(self):
        cfg = PriorityConfig(aging_us=1e6)
        assert cfg.effective_priority(int(Priority.BATCH), 5e6, 0.0) == 2


class TestPreemptionMechanisms:
    def test_auto_preempts_and_drains(self):
        server, stats = serve(mixed_workload(),
                              PriorityConfig(aging_us=None))
        p = stats.preemptions
        assert p.preemptions >= 1
        assert p.resumes + p.shed_while_preempted == p.preemptions
        assert_drained(server)

    def test_forced_swap_counts_bytes_both_ways(self):
        server, stats = serve(mixed_workload(),
                              PriorityConfig(aging_us=None,
                                             mechanism="swap"))
        p = stats.preemptions
        assert p.swaps == p.preemptions >= 1
        assert p.recomputes == 0
        # Every swap-out that resumed paid the return leg too.
        assert p.swap_in_bytes == p.swap_out_bytes > 0
        assert p.swap_stall_us > 0
        assert_drained(server)

    def test_forced_recompute_rebuilds_context(self):
        server, stats = serve(mixed_workload(),
                              PriorityConfig(aging_us=None,
                                             mechanism="recompute"))
        p = stats.preemptions
        assert p.recomputes == p.preemptions >= 1
        assert p.swaps == 0
        assert p.swap_out_bytes == 0.0
        assert p.recompute_tokens > 0
        assert_drained(server)

    def test_token_conservation_across_mechanisms(self):
        """Preemption changes *when* tokens emit, never *what* emits."""
        wl = mixed_workload()
        _, fifo = serve(wl, None)
        expected = [(t.arrival_us, t.prompt_tokens, t.generated_tokens)
                    for t in sorted(fifo.timings, key=lambda t: t.arrival_us)]
        for mech in ("auto", "swap", "recompute"):
            _, stats = serve(wl, PriorityConfig(aging_us=None,
                                                mechanism=mech))
            got = [(t.arrival_us, t.prompt_tokens, t.generated_tokens)
                   for t in sorted(stats.timings,
                                   key=lambda t: t.arrival_us)]
            assert got == expected, mech

    def test_interactive_latency_improves_over_fifo(self):
        wl = mixed_workload()
        _, fifo = serve(wl, None)
        _, prio = serve(wl, PriorityConfig(aging_us=None))

        def inter_ttft(stats):
            return np.mean([t.ttft_us for t in stats.timings
                            if t.priority == int(Priority.INTERACTIVE)])

        assert prio.preemptions.preemptions >= 1
        assert inter_ttft(prio) < inter_ttft(fifo)

    def test_max_preemptions_bounds_evictions(self):
        server, stats = serve(mixed_workload(n_batch=6, n_inter=6),
                              PriorityConfig(aging_us=None,
                                             max_preemptions=1))
        # No request is ever evicted more often than the cap.
        assert all(t.generated_tokens > 0 for t in stats.timings)
        assert_drained(server)

    def test_preemption_disabled_never_evicts(self):
        server, stats = serve(mixed_workload(),
                              PriorityConfig(aging_us=None,
                                             preemption=False))
        assert stats.preemptions.preemptions == 0
        assert_drained(server)

    def test_timeline_tracks_preempted_count(self):
        server, stats = serve(mixed_workload(),
                              PriorityConfig(aging_us=None,
                                             mechanism="swap"))
        assert stats.preemptions.preemptions >= 1
        assert any(p.n_preempted > 0 for p in server.timeline.points)
        assert server.timeline.points[-1].n_preempted == 0

    def test_summary_carries_preempt_and_class_keys(self):
        _, stats = serve(mixed_workload(), PriorityConfig(aging_us=None))
        s = stats.summary()
        assert s["preempt_total"] == stats.preemptions.preemptions
        assert "interactive_ttft_p95_ms" in s
        assert "batch_ttft_p95_ms" in s


class TestPreemptionWithChunkedPrefill:
    def test_recompute_resumes_through_chunked_prefill(self):
        server, stats = serve(
            mixed_workload(),
            PriorityConfig(aging_us=None, mechanism="recompute"),
            prefill_chunk_tokens=8)
        assert stats.preemptions.recomputes >= 1
        assert_drained(server)
        # Re-prefill work shows up as chunked iterations.
        assert any(p.chunk_tokens > 0 for p in server.timeline.points)

    def test_swap_under_chunking_drains(self):
        server, stats = serve(
            mixed_workload(),
            PriorityConfig(aging_us=None, mechanism="swap"),
            prefill_chunk_tokens=8)
        assert stats.preemptions.swaps >= 1
        assert_drained(server)


class TestPreemptionVsShedding:
    def test_parked_victim_sheds_on_decode_timeout(self):
        wl = mixed_workload(n_batch=6, n_inter=6)
        server = ContinuousBatchingServer(
            get_session(),
            BatchSchedulerConfig(kv_budget_tokens=128, max_batch_size=2),
            priorities=PriorityConfig(aging_us=None, mechanism="swap"),
            resilience=ResilienceConfig(decode_timeout_us=10e6))
        stats = server.replay(list(wl))
        p = stats.preemptions
        assert p.shed_while_preempted >= 1
        assert stats.faults.timed_out_requests >= p.shed_while_preempted
        # Shed-while-preempted requests appear in timings as timed out;
        # their pages were released at eviction and only once.
        assert_drained(server)
        shed = [t for t in stats.timings if t.timed_out]
        assert shed
        for t in shed:
            assert t.arrival_us <= t.start_us <= t.first_token_us <= t.finish_us


class TestPreemptionPricing:
    def test_kv_token_bytes_presets(self):
        assert kv_token_bytes(DS3) == DS3.kv_rank * ACTIVATION_BYTES
        mha = tiny_config("tiny-qw")
        if mha.kv_rank == 0:
            assert kv_token_bytes(mha) == 2 * mha.hidden * ACTIVATION_BYTES

    def test_swap_transfer_matches_roofline(self):
        costs = BatchCostModel(get_session())
        link = get_session().costs.machine.interconnect
        direct = kv_swap_transfer_us(32, kv_token_bytes(DS3), DS3.n_layers,
                                     link)
        assert costs.swap_transfer_us(32) == pytest.approx(direct)
        assert costs.swap_transfer_us(0) == 0.0
        assert costs.kv_swap_bytes(32) == 32 * kv_token_bytes(DS3) * DS3.n_layers

    def test_swap_zero_tokens_free_positive_monotone(self):
        link = get_session().costs.machine.interconnect
        assert kv_swap_transfer_us(0, 1024.0, 61, link) == 0.0
        a = kv_swap_transfer_us(16, 1024.0, 61, link)
        b = kv_swap_transfer_us(64, 1024.0, 61, link)
        assert 0.0 < a < b

    def test_recompute_resume_reuses_prefill_memo(self):
        costs = BatchCostModel(get_session())
        assert costs.recompute_resume_us(0) == 0.0
        assert (costs.recompute_resume_us(48)
                == costs.batched_prefill_us(48))

    def test_degraded_link_tilts_auto_toward_recompute(self):
        """A degraded PCIe link raises the swap price; recompute's CPU
        re-prefill estimate is unchanged -- the cost-model inputs the
        mechanism decision is made from."""
        from repro.hw.roofline import degraded_link
        costs = BatchCostModel(get_session())
        link = get_session().costs.machine.interconnect
        slow = degraded_link(link, pcie_scale=0.05)
        assert (costs.swap_transfer_us(64, slow)
                > 10 * costs.swap_transfer_us(64, link))
        assert costs.recompute_resume_us(64) == costs.recompute_resume_us(64)
