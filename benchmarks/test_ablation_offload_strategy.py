"""Ablation: weight offloading vs computation offloading (Section 2.1).

The paper's foundational design choice: instead of streaming activated
experts to the GPU over PCIe (32 GB/s), keep them in DRAM and compute on
the CPU (440 GB/s aggregate).  This bench measures both strategies on the
same simulator and confirms (a) weight offloading is PCIe-bound for the
large models, and (b) computation offloading wins decisively, with the gap
widening as models grow.
"""

from repro.baselines import simulate_weight_offload_decode
from repro.bench import format_table
from repro.core import KTRANSFORMERS, run_decode
from repro.hw import paper_testbed
from repro.model import DS2, DS3, QW2
from repro.tensor import BF16


def _comparison():
    machine = paper_testbed("a100")
    rows = []
    for preset in (QW2, DS2, DS3):
        wo = simulate_weight_offload_decode(preset, machine, BF16, n_tokens=4)
        kt = run_decode(KTRANSFORMERS, preset, machine, BF16, n_tokens=4)
        pcie_share = wo.pcie_time_us / (wo.pcie_time_us + wo.gpu_time_us)
        rows.append((
            preset.name,
            wo.tokens_per_s,
            wo.cache_hit_rate * 100,
            pcie_share * 100,
            kt.tokens_per_s,
            kt.tokens_per_s / wo.tokens_per_s,
        ))
    return rows


def test_ablation_offload_strategy(run_once):
    rows = run_once(_comparison)
    print()
    print(format_table(
        ["model", "weight-offload tok/s", "VRAM cache hit %",
         "PCIe share %", "compute-offload tok/s", "KT advantage"],
        rows,
        title="Weight offloading vs computation offloading (decode, BF16)",
    ))
    by = {r[0]: r for r in rows}
    # Computation offloading wins for every model.
    for model, row in by.items():
        assert row[5] > 1.5, f"{model}: compute offloading must win"
    # Weight offloading is PCIe-dominated for the big models.
    assert by["ds3"][3] > 50.0
    assert by["ds2"][3] > 50.0
    # The advantage grows with model size (DS-3's experts are the largest
    # relative to spare VRAM, so its cache hit rate is the worst).
    assert by["ds3"][2] <= by["qw2"][2]
    assert by["ds3"][5] >= by["qw2"][5]
