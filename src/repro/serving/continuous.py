"""Iteration-level continuous batching over the discrete-event simulator.

The paper's :class:`~repro.serving.server.LocalServer` is strictly FIFO at
batch size 1: a request queues until the previous generation finishes.
:class:`ContinuousBatchingServer` instead recomposes the running batch at
every decode iteration (Orca-style):

- an **admission queue** holds arrived requests; at each iteration
  boundary the scheduler admits as many as fit the KV **token budget**
  (tracked as page reservations against a shared
  :class:`~repro.model.paged.PagedKVPool`) and the batch-size cap;
- newly admitted requests are **prefilled together** in one batched pass
  -- simulated prefill cost is dominated by fixed per-pass overheads, so
  co-admission amortizes it the way real engines batch prompt tokens;
- each **decode iteration** generates one token for every in-flight
  request.  The step is priced by
  :func:`~repro.sched.workload.batched_decode_layer_work`: per-expert
  token counts are aggregated across the batch before ARI kernel
  dispatch, so batching visibly moves the AVX-512/AMX crossover (Fig. 7)
  and CPU expert GEMMs are coalesced per expert;
- finished requests free their KV pages immediately, unblocking the next
  admission.

Prefill runs as its own pass at the iteration boundary and stalls
in-flight decodes for its duration (chunked prefill is future work); this
is the classic continuous-batching trade reflected in the TPOT tail.
Token *values* stay real: each request's tokens come from the functional
model via the session, exactly as in the batch-1 server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..errors import ConfigError, KVCacheError
from ..core.engine import batched_decode_works, run_prefill
from ..model.paged import DEFAULT_PAGE_TOKENS, PagedKVPool
from ..moe.expert_cache import (
    CacheStepResult,
    ExpertCacheConfig,
    ExpertCacheManager,
)
from ..sched.decode import (
    DecodeScheduleConfig,
    batched_step_time_us,
    cache_aware_step_time_us,
)
from ..sched.workload import (
    BatchedDispatchSummary,
    DecodeLayerWork,
    apply_expert_cache,
)
from .metrics import (
    BatchTimeline,
    ExpertCacheTimeline,
    RequestTiming,
    ServingStats,
)
from .server import TimedRequest
from .session import InferenceSession

# Per-expert token counts of the representative MoE layer for one decode
# iteration; lets benchmarks inject non-stationary routing into the server.
RoutingStream = Callable[[int, int], np.ndarray]   # (iteration, batch) -> counts


@dataclass(frozen=True)
class BatchSchedulerConfig:
    """Policy knobs of the iteration-level scheduler.

    ``kv_budget_tokens`` is the shared KV/VRAM allowance backing every
    concurrent request; admission reserves ``prompt + max_new_tokens``
    worth of pages up front so an admitted request can never be evicted
    mid-flight.  ``max_batch_size`` caps the decode batch regardless of
    budget.
    """

    kv_budget_tokens: int = 8192
    max_batch_size: int = 32
    page_tokens: int = DEFAULT_PAGE_TOKENS
    ari_threshold: int | None = None   # None -> kernels' DEFAULT_ARI_THRESHOLD

    def __post_init__(self) -> None:
        if self.kv_budget_tokens <= 0:
            raise ConfigError("kv_budget_tokens must be positive")
        if self.max_batch_size <= 0:
            raise ConfigError("max_batch_size must be positive")
        if self.page_tokens <= 0:
            raise ConfigError("page_tokens must be positive")


class BatchCostModel:
    """Caches simulated batched prefill/decode step costs.

    Decode steps are keyed by ``(batch_size, context bucket)``; each entry
    runs the full task-graph simulator once via
    :func:`~repro.sched.decode.batched_step_time_us` and keeps the
    :class:`~repro.sched.workload.BatchedDispatchSummary` for
    observability.  Batched prefill cost is keyed by the total prompt
    tokens of the co-admitted requests, bucketed like the session's
    :class:`~repro.serving.session.PhaseCostModel` -- but returning the
    whole-pass cost (prefill is overhead-dominated, so cost is flat
    across a bucket, not proportional to tokens).
    """

    CTX_BUCKETS = (64, 256, 1024, 4096)
    PREFILL_BUCKETS = (32, 128, 512, 2048, 8192)

    HIT_RATE_BUCKETS = 20        # cached-step pricing quantizes hit rate

    def __init__(self, session: InferenceSession,
                 ari_threshold: int | None = None) -> None:
        self.session = session
        self.ari_threshold = ari_threshold
        self._step: dict[tuple[int, int], float] = {}
        self._summaries: dict[tuple[int, int], BatchedDispatchSummary] = {}
        self._works: dict[tuple[int, int], list[DecodeLayerWork]] = {}
        self._cached_step: dict[tuple[int, int, int, int], float] = {}
        self._prefill: dict[int, float] = {}

    @staticmethod
    def _bucket(value: int, buckets: tuple[int, ...]) -> int:
        for b in buckets:
            if value <= b:
                return b
        return buckets[-1]

    def _key(self, context_lens: list[int]) -> tuple[int, int]:
        if not context_lens:
            raise ConfigError("decode step needs at least one request")
        return (len(context_lens),
                self._bucket(max(context_lens), self.CTX_BUCKETS))

    def _schedule_config(self) -> DecodeScheduleConfig:
        costs = self.session.costs
        return DecodeScheduleConfig(
            launch_mode=costs.system.launch_mode,
            overlap_cpu_gpu=costs.system.overlap_cpu_gpu,
            top_k=costs.preset.top_k,
            n_deferred=self.session.n_deferred,
        )

    def decode_step_us(self, context_lens: list[int]) -> float:
        """Steady-state cost of one decode iteration over these requests."""
        costs = self.session.costs
        key = self._key(context_lens)
        if key not in self._step:
            bsz, ctx = key
            works, summary = batched_decode_works(
                costs.system, costs.preset, costs.machine, costs.dtype,
                context_lens=[ctx] * bsz, ari_threshold=self.ari_threshold,
            )
            self._step[key] = batched_step_time_us(
                works, self._schedule_config(), costs.machine
            )
            self._summaries[key] = summary
            self._works[key] = works
        return self._step[key]

    def attn_window_us(self, context_lens: list[int]) -> float:
        """GPU attention time of one iteration -- the prefetch window."""
        key = self._key(context_lens)
        self.decode_step_us(context_lens)
        return sum(w.gpu_attn_us for w in self._works[key])

    def cached_decode_step_us(self, context_lens: list[int],
                              cache_step: CacheStepResult) -> float:
        """One iteration's cost under the expert cache's latest outcome.

        MoE layers are repriced with cache hits as GPU expert work and
        misses on the CPU (:func:`repro.sched.workload.apply_expert_cache`,
        hit rate quantized to 1/``HIT_RATE_BUCKETS`` for memoization);
        the cache step's non-overlapped prefetch stall is added on top.
        """
        total = cache_step.total_tokens
        if total == 0:
            return self.decode_step_us(context_lens) + cache_step.stall_us
        costs = self.session.costs
        key = self._key(context_lens)
        self.decode_step_us(context_lens)          # populate works cache
        hit_bucket = round(self.HIT_RATE_BUCKETS * cache_step.hit_tokens
                           / total)
        ck = (*key, hit_bucket, cache_step.n_hit_experts)
        if ck not in self._cached_step:
            bsz = key[0]
            layer_tokens = bsz * costs.preset.top_k
            hit_tokens = round(layer_tokens * hit_bucket
                               / self.HIT_RATE_BUCKETS)
            works = [
                w if w.cpu_routed_us <= 0.0 else apply_expert_cache(
                    w, costs.preset, costs.machine, costs.dtype,
                    total_tokens=layer_tokens, hit_tokens=hit_tokens,
                    n_hit_experts=cache_step.n_hit_experts,
                )
                for w in self._works[key]
            ]
            self._cached_step[ck] = cache_aware_step_time_us(
                works, self._schedule_config(), costs.machine,
            )
        return self._cached_step[ck] + cache_step.stall_us

    def dispatch_summary(self, context_lens: list[int]) -> BatchedDispatchSummary:
        """The ARI dispatch decisions behind :meth:`decode_step_us`."""
        self.decode_step_us(context_lens)
        return self._summaries[self._key(context_lens)]

    def batched_prefill_us(self, total_prompt_tokens: int) -> float:
        """One prefill pass over all co-admitted prompts' tokens."""
        if total_prompt_tokens <= 0:
            raise ConfigError("prefill needs at least one token")
        costs = self.session.costs
        bucket = self._bucket(total_prompt_tokens, self.PREFILL_BUCKETS)
        if bucket not in self._prefill:
            r = run_prefill(costs.system, costs.preset, costs.machine,
                            costs.dtype, prompt_len=bucket)
            self._prefill[bucket] = r.elapsed_us
        cost = self._prefill[bucket]
        if total_prompt_tokens > self.PREFILL_BUCKETS[-1]:
            cost *= total_prompt_tokens / self.PREFILL_BUCKETS[-1]
        return cost


def serving_expert_cache(
    session: InferenceSession,
    vram_budget_bytes: float,
    **overrides,
) -> ExpertCacheManager:
    """An :class:`ExpertCacheManager` sized for a session's cost preset.

    The serving cost model prices one representative MoE layer replicated
    across the model, so the serving-side cache covers one layer of the
    preset's experts; ``overrides`` patch any :class:`ExpertCacheConfig`
    policy field (``ewma_alpha``, ``admit_margin``, ...).
    """
    costs = session.costs
    config = ExpertCacheConfig(
        n_layers=1,
        n_experts=costs.preset.n_experts,
        expert_bytes=costs.preset.expert_bytes(costs.dtype),
        vram_budget_bytes=vram_budget_bytes,
        **overrides,
    )
    return ExpertCacheManager(config, costs.machine.interconnect)


@dataclass
class _InFlight:
    """Bookkeeping of one admitted request."""

    timed: TimedRequest
    slot: int
    reserved_pages: int
    tokens: np.ndarray          # real token values, generated at admission
    start_us: float             # when its admission's prefill pass began
    context_len: int            # prompt + emitted so far
    emitted: int = 0
    first_token_us: float = field(default=0.0)


class ContinuousBatchingServer:
    """Drop-in alternative to ``LocalServer`` with iteration-level batching.

    ``replay(workload)`` serves the same :class:`TimedRequest` workloads and
    returns the same :class:`~repro.serving.metrics.ServingStats`; the
    per-iteration batch size and KV occupancy are additionally recorded on
    :attr:`timeline`.
    """

    def __init__(self, session: InferenceSession,
                 config: BatchSchedulerConfig | None = None,
                 expert_cache: ExpertCacheManager | None = None,
                 routing_stream: Optional[RoutingStream] = None) -> None:
        self.session = session
        self.config = config or BatchSchedulerConfig()
        self.costs = BatchCostModel(session,
                                    ari_threshold=self.config.ari_threshold)
        # The pool tracks token occupancy only; K/V payloads stay tiny.
        self.pool = PagedKVPool(
            n_heads=1, head_dim=1,
            budget_tokens=self.config.kv_budget_tokens,
            page_tokens=self.config.page_tokens,
        )
        self.expert_cache = expert_cache
        self._routing_stream = routing_stream
        if routing_stream is not None and expert_cache is None:
            raise ConfigError("routing_stream requires an expert_cache")
        self.stats = ServingStats()
        self.timeline = BatchTimeline(
            kv_budget_tokens=self.pool.budget_tokens)
        self.cache_timeline: ExpertCacheTimeline | None = None
        if expert_cache is not None:
            self.cache_timeline = ExpertCacheTimeline()
            self.stats.expert_cache = self.cache_timeline
        self._reserved_pages = 0
        self._iteration = 0

    # -- admission ----------------------------------------------------------

    def _request_pages(self, timed: TimedRequest) -> int:
        prompt_len = len(np.atleast_1d(timed.request.prompt))
        return self.pool.pages_needed(
            prompt_len + timed.request.max_new_tokens)

    def _admit(self, pending: list[TimedRequest], clock: float,
               n_active: int) -> list[_InFlight]:
        """Admit arrived requests that fit the budget and batch cap."""
        admitted: list[_InFlight] = []
        while pending and pending[-1].arrival_us <= clock:
            if n_active + len(admitted) >= self.config.max_batch_size:
                break
            timed = pending[-1]
            need = self._request_pages(timed)
            if need > self.pool.budget_pages:
                raise KVCacheError(
                    f"request needs {need} KV pages but the pool budget is "
                    f"{self.pool.budget_pages}; raise kv_budget_tokens"
                )
            if self._reserved_pages + need > self.pool.budget_pages:
                break
            pending.pop()
            prompt = np.atleast_1d(np.asarray(timed.request.prompt))
            result = self.session.generate(timed.request)  # real tokens
            slot = self.pool.allocate()
            self.pool.append_placeholder(slot, len(prompt))
            self._reserved_pages += need
            admitted.append(_InFlight(
                timed=timed, slot=slot, reserved_pages=need,
                tokens=result.tokens, start_us=clock,
                context_len=len(prompt),
            ))
        return admitted

    # -- serving loop -------------------------------------------------------

    def replay(self, workload: list[TimedRequest]) -> ServingStats:
        """Serve a workload with continuous batching; returns aggregate stats."""
        if not workload:
            raise ConfigError("empty workload")
        # Stack with the earliest arrival on top (pop from the end).
        pending = sorted(workload, key=lambda t: -t.arrival_us)
        active: list[_InFlight] = []
        clock = 0.0

        while pending or active:
            admitted = self._admit(pending, clock, len(active))
            if admitted:
                total_prompt = sum(
                    len(np.atleast_1d(a.timed.request.prompt))
                    for a in admitted
                )
                clock += self.costs.batched_prefill_us(total_prompt)
                active.extend(admitted)
            if not active:
                # Nothing in flight and nothing admissible: jump to the
                # next arrival (the budget check above guarantees any
                # single request fits an empty pool).
                clock = pending[-1].arrival_us
                continue

            # One decode iteration: every in-flight request emits a token.
            clock += self._decode_step_us([a.context_len for a in active],
                                          clock)
            self._iteration += 1
            still_running: list[_InFlight] = []
            for a in active:
                a.emitted += 1
                a.context_len += 1
                self.pool.append_placeholder(a.slot, 1)
                if a.emitted == 1:
                    a.first_token_us = clock
                if a.emitted >= len(a.tokens):
                    self._finish(a, clock)
                else:
                    still_running.append(a)
            self.timeline.record(clock, batch_size=len(active),
                                 kv_used_tokens=self.pool.used_tokens)
            active = still_running
        return self.stats

    def _decode_step_us(self, context_lens: list[int], clock: float) -> float:
        """Price one decode iteration, consulting the expert cache if any.

        With a cache attached, the iteration's per-expert token counts
        (from the injected routing stream, or the cost model's dispatch
        summary) update the EWMA residency state; hits are priced as GPU
        expert work, misses stay on the CPU, and planned uploads prefetch
        behind the attention window with only the non-overlapped
        remainder stalling the step.
        """
        if self.expert_cache is None:
            return self.costs.decode_step_us(context_lens)
        if self._routing_stream is not None:
            counts = np.asarray(
                self._routing_stream(self._iteration, len(context_lens)))
        else:
            counts = np.asarray(
                self.costs.dispatch_summary(context_lens).expert_token_counts)
        window = self.costs.attn_window_us(context_lens)
        result = self.expert_cache.step(counts, overlap_window_us=window)
        cost = self.costs.cached_decode_step_us(context_lens, result)
        self.cache_timeline.record(
            clock + cost,
            hit_tokens=result.hit_tokens, miss_tokens=result.miss_tokens,
            uploads=len(result.uploads), evictions=len(result.evictions),
            bytes_transferred=result.bytes_transferred,
            stall_us=result.stall_us,
        )
        return cost

    def _finish(self, a: _InFlight, clock: float) -> None:
        self.pool.free(a.slot)
        self._reserved_pages -= a.reserved_pages
        self.stats.add(RequestTiming(
            arrival_us=a.timed.arrival_us,
            start_us=a.start_us,
            first_token_us=a.first_token_us,
            finish_us=clock,
            prompt_tokens=len(np.atleast_1d(a.timed.request.prompt)),
            generated_tokens=a.emitted,
        ))
