"""Figure 4: GPU kernel-launch analysis of DS-3 decode.

Paper anchors: Fiddler issues >7,000 launches per decoded token at ~16 us
each (73% of GPU execution time); llama.cpp ~3,000 at ~5 us (21%);
KTransformers collapses the whole step into a single CUDA-graph launch.
"""

from repro.bench import fig4_launch_overhead, format_table


def test_fig4_launch_overhead(run_once):
    rows = run_once(fig4_launch_overhead)
    print()
    print(format_table(
        ["System", "Launches/token", "Avg launch (us)", "Launch overhead %"],
        [(r.system, r.launches_per_token, r.avg_launch_latency_us,
          r.launch_overhead_fraction * 100) for r in rows],
        title="Figure 4: kernel launch analysis, DS-3 decode",
    ))
    by = {r.system: r for r in rows}

    fid = by["fiddler"]
    assert 6000 <= fid.launches_per_token <= 8000        # paper: >7000
    assert abs(fid.avg_launch_latency_us - 16.0) < 0.5   # paper: 16 us
    assert 0.60 <= fid.launch_overhead_fraction <= 0.85  # paper: 73%

    ll = by["llamacpp"]
    assert 2500 <= ll.launches_per_token <= 3500         # paper: ~3000
    assert abs(ll.avg_launch_latency_us - 5.0) < 0.5     # paper: 5 us
    assert 0.12 <= ll.launch_overhead_fraction <= 0.35   # paper: 21%

    kt = by["ktransformers"]
    assert kt.launches_per_token == 1                    # one graph launch
    assert kt.launch_overhead_fraction < 0.01            # "almost zero"
