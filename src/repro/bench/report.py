"""One-shot evaluation report: every throughput figure from live runs.

``python -m repro report`` regenerates the Section 6 throughput results
(Figures 3, 4, 7, 10, 11, 12, 14 and Table 1) as text tables in one pass.
Accuracy experiments (Table 2, Figure 13) involve training and are left to
``pytest benchmarks/ --benchmark-only``; the report notes where to find
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .reporting import format_table
from .runner import (
    ABLATION_STEPS,
    fig3_kernel_throughput,
    fig4_launch_overhead,
    fig7_kernel_crossover,
    fig10_deferral_timeline,
    fig11_prefill,
    fig12_decode,
    fig14_breakdown,
    table1_models,
)


@dataclass
class ReportSection:
    title: str
    body: str


@dataclass
class EvaluationReport:
    sections: list[ReportSection] = field(default_factory=list)

    def add(self, title: str, body: str) -> None:
        self.sections.append(ReportSection(title, body))

    def render(self) -> str:
        parts = []
        for s in self.sections:
            parts.append("=" * 72)
            parts.append(s.title)
            parts.append("=" * 72)
            parts.append(s.body)
            parts.append("")
        return "\n".join(parts)


def _table1() -> str:
    return format_table(
        ["Model", "Total (B)", "GPU (B)", "CPU (B)", "MoE layers",
         "Experts", "Routing"],
        table1_models(),
    )


def _fig3() -> str:
    rows = fig3_kernel_throughput(tokens_sweep=(1, 16, 256, 4096))
    return format_table(
        ["tokens/expert", "PyTorch AMX", "PyTorch AVX-512", "KT AMX"], rows,
    )


def _fig4() -> str:
    rows = [(r.system, r.launches_per_token,
             round(r.avg_launch_latency_us, 1),
             round(r.launch_overhead_fraction * 100, 1))
            for r in fig4_launch_overhead()]
    return format_table(
        ["system", "launches/token", "avg launch (us)", "overhead %"], rows,
    )


def _fig7() -> str:
    data = fig7_kernel_crossover(tokens_sweep=(1, 4, 16, 256))
    rows = []
    for model, model_rows in data.items():
        for m, amx, avx in model_rows:
            rows.append((model, m, round(amx, 1), round(avx, 1),
                         f"{avx / amx:.2f}x"))
    return format_table(
        ["model", "tokens/expert", "AMX (us)", "AVX (us)", "AVX/AMX"], rows,
    )


def _fig10() -> str:
    rows = [(t.n_deferred, round(t.time_per_token_us / 1e3, 1),
             round(t.cpu_utilization * 100), round(t.gpu_utilization * 100),
             round(t.overlap_fraction * 100))
            for t in fig10_deferral_timeline(n_tokens=4)]
    return format_table(
        ["deferred", "ms/token", "CPU %", "GPU %", "overlap %"], rows,
    )


def _fig11() -> str:
    data = fig11_prefill(lengths=(32, 512, 2048, 8192))
    rows = []
    for model, model_rows in data.items():
        for plen, fid, ll, kt in model_rows:
            rows.append((model, plen, round(fid, 1), round(ll, 1),
                         round(kt, 1)))
    return format_table(
        ["model", "prompt", "Fiddler", "llama.cpp", "KTransformers"], rows,
    )


def _fig12() -> str:
    data = fig12_decode(n_tokens=6)
    rows = [(m, round(t["fiddler"], 2), round(t["llamacpp"], 2),
             round(t["ktransformers"], 2), round(t["kt_deferral"], 2))
            for m, t in data.items()]
    return format_table(
        ["model", "Fiddler", "llama.cpp", "KT", "KT+deferral"], rows,
    )


def _fig14() -> str:
    data = fig14_breakdown(prompt_len=2048, n_tokens=4)
    rows = []
    for model, steps in data.items():
        for step in ABLATION_STEPS:
            p, d = steps[step]
            rows.append((model, step, f"{p:.2f}x", f"{d:.2f}x"))
    return format_table(["model", "step", "prefill", "decode"], rows)


_SECTIONS: list[tuple[str, Callable[[], str]]] = [
    ("Table 1: evaluated models", _table1),
    ("Figure 3: kernel throughput (TFLOPS, one socket)", _fig3),
    ("Figure 4: kernel launch analysis (DS-3 decode)", _fig4),
    ("Figure 7: AMX vs AVX-512 crossover", _fig7),
    ("Figure 10: deferral timelines (DS-3 BF16)", _fig10),
    ("Figure 11: prefill throughput (tokens/s, BF16 A100)", _fig11),
    ("Figure 12: decode throughput (tokens/s, BF16 A100)", _fig12),
    ("Figure 14: optimization breakdown (speedup vs Fiddler)", _fig14),
]


def generate_report(progress: Callable[[str], None] | None = None
                    ) -> EvaluationReport:
    """Run every throughput experiment and bundle the tables."""
    report = EvaluationReport()
    for title, build in _SECTIONS:
        if progress is not None:
            progress(title)
        report.add(title, build())
    report.add(
        "Accuracy experiments",
        "Table 2 and Figure 13 train tiny MoE models; run\n"
        "  pytest benchmarks/test_table2_accuracy.py "
        "benchmarks/test_fig13_deferral_vs_skipping.py --benchmark-only -s",
    )
    return report
