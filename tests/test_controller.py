"""Unit tests for the online control plane (ISSUE 9).

Covers the windowed-signal substrate (``RollingWindow`` boundary and
empty-window semantics, ``ServingStats.windowed``), the controller's
decision mechanics driven directly through ``tick`` (warmup, probe
moves, guarded rollback, ladder clamping, window alignment), the
``ControllerStats`` trace/summary surface, the fleet-level routing
weight adapter, and the engine integration gates (``ctrl_*`` summary
keys appear only when a controller is configured).
"""

import pytest

from repro.errors import ConfigError
from repro.model import QW2, MoETransformer, tiny_config
from repro.serving import (
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    ControllerConfig,
    ControllerStats,
    FleetConfig,
    InferenceSession,
    OnlineController,
    RequestTiming,
    RollingWindow,
    RoutingWeightAdapter,
    RoutingWeightConfig,
    ServingSLO,
    ServingStats,
    poisson_workload,
)
from repro.serving.controller import KNOB_BATCH, KNOB_CHUNK, _KnobState

# A no-op SLO: every completion attains, so objective = completion rate.
WIDE_SLO = ServingSLO(ttft_ms=1e9, tpot_ms=1e9)


# --- RollingWindow (satellite: windowed metrics helper) ---------------------

def test_rolling_window_validation():
    with pytest.raises(ConfigError):
        RollingWindow(0.0)
    with pytest.raises(ConfigError):
        RollingWindow(-1.0)
    win = RollingWindow(100.0)
    win.add(10.0)
    with pytest.raises(ConfigError):
        win.add(9.0)     # timestamps must be non-decreasing
    win.add(10.0)        # equal timestamps are fine


def test_rolling_window_empty_is_zero_not_error():
    win = RollingWindow(100.0)
    assert win.count(50.0) == 0
    assert win.values(50.0) == []
    assert win.rate_per_s(50.0) == 0.0
    assert win.mean(50.0) == 0.0
    assert win.p50(50.0) == 0.0
    assert win.p95(50.0) == 0.0


def test_rolling_window_boundary_half_open():
    """Window covers ``(now - w, now]``: a sample exactly one window old
    has aged out; a sample exactly at ``now`` is still in."""
    win = RollingWindow(100.0)
    win.add(10.0, 5.0)
    assert win.values(10.0) == [5.0]          # sample at now: included
    assert win.values(109.0) == [5.0]         # just inside
    assert win.values(110.0) == []            # exactly one window old: out
    # Trimming is permanent (the clock only moves forward).
    win.add(200.0, 7.0)
    assert win.values(200.0) == [7.0]


def test_rolling_window_stats_and_rates():
    win = RollingWindow(1_000_000.0)          # 1 s window
    for i in range(10):
        win.add(i * 1000.0, float(i))
    now = 9000.0
    assert win.count(now) == 10
    assert win.rate_per_s(now) == pytest.approx(10.0)
    assert win.mean(now) == pytest.approx(4.5)
    assert win.p50(now) == pytest.approx(4.5)
    assert win.p95(now) == pytest.approx(8.55)
    # Advance past the first half of the samples.
    later = 1_004_000.0
    assert win.values(later) == [5.0, 6.0, 7.0, 8.0, 9.0]
    assert win.rate_per_s(later) == pytest.approx(5.0)


def _timing(arrival, finish, n_tokens=4, ttft_us=1000.0):
    return RequestTiming(
        arrival_us=arrival, start_us=arrival,
        first_token_us=min(arrival + ttft_us, finish), finish_us=finish,
        prompt_tokens=8, generated_tokens=n_tokens)


def test_stats_windowed_empty_window():
    stats = ServingStats()
    out = stats.windowed(window_us=1e6, now_us=5e6, slo=WIDE_SLO)
    assert out["completed"] == 0.0 and out["shed"] == 0.0
    assert out["completions_per_s"] == 0.0 and out["shed_per_s"] == 0.0
    assert out["ttft_p95_ms"] == 0.0 and out["tpot_p50_ms"] == 0.0
    assert out["attainment"] == 0.0
    with pytest.raises(ConfigError):
        stats.windowed(window_us=0.0, now_us=5e6)


def test_stats_windowed_filters_by_finish_time():
    stats = ServingStats()
    stats.add(_timing(0.0, 1e6))          # finish exactly one window old
    stats.add(_timing(0.5e6, 1.5e6))      # inside
    stats.add(_timing(1e6, 2.0e6))        # finish exactly at now: inside
    stats.add(_timing(1e6, 2.5e6))        # finishes after now: out
    stats.record_shed(1.2e6)              # arrival inside the window
    stats.record_shed(0.9e6)              # arrival aged out
    out = stats.windowed(window_us=1e6, now_us=2.0e6, slo=WIDE_SLO)
    assert out["completed"] == 2.0
    assert out["shed"] == 1.0
    assert out["completions_per_s"] == pytest.approx(2.0)
    assert out["shed_per_s"] == pytest.approx(1.0)
    assert out["ttft_p50_ms"] == pytest.approx(1.0)
    assert out["attainment"] == pytest.approx(2 / 3)
    # Without an SLO there is no attainment key.
    assert "attainment" not in stats.windowed(window_us=1e6, now_us=2.0e6)


# --- ControllerConfig validation --------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"window_us": 0.0},
    {"warmup_windows": -1},
    {"ewma_alpha": 0.0},
    {"ewma_alpha": 1.5},
    {"rollback_tolerance": -0.1},
    {"shed_penalty": -1.0},
    {"chunk_ladder": ()},
    {"chunk_ladder": (256, 128)},          # not ascending
    {"chunk_ladder": (128, 128, 256)},     # not strict
    {"chunk_ladder": (0, 128)},            # non-positive rung
    {"batch_ladder": (8, 4)},
])
def test_controller_config_validation(kwargs):
    with pytest.raises(ConfigError):
        ControllerConfig(slo=WIDE_SLO, **kwargs)


def test_controller_config_defaults():
    cfg = ControllerConfig(slo=WIDE_SLO)
    assert cfg.batch_ladder == ()          # batch knob disabled by default
    assert cfg.warmup_windows == 1


# --- _KnobState cursor placement --------------------------------------------

def test_knob_state_base_on_ladder():
    k = _KnobState(KNOB_CHUNK, (128, 256, 512), 256)
    assert (k.idx, k.value, k.direction) == (1, 256, 1)


def test_knob_state_base_between_rungs_ties_low():
    assert _KnobState(KNOB_CHUNK, (100, 200), 150).idx == 0   # tie -> lower
    assert _KnobState(KNOB_CHUNK, (100, 200), 151).idx == 1
    assert _KnobState(KNOB_CHUNK, (100, 200), 1000).idx == 1


def test_knob_state_none_base_is_top_rung_cursor():
    """Monolithic prefill (None) sits at the top rung but keeps its None
    value until the first move, so warmup prices the static config."""
    k = _KnobState(KNOB_CHUNK, (128, 256, 512), None)
    assert k.idx == 2
    assert k.value is None


# --- OnlineController mechanics (driven directly) ---------------------------

def _controller(**overrides):
    kwargs = dict(slo=WIDE_SLO, window_us=100.0, warmup_windows=1,
                  ewma_alpha=1.0, rollback_tolerance=0.05,
                  chunk_ladder=(10, 20, 30), batch_ladder=())
    kwargs.update(overrides)
    stats = ControllerStats()
    ctrl = OnlineController(ControllerConfig(**kwargs),
                            base_chunk=10, base_batch=4, stats=stats)
    return ctrl, stats


def _feed(stats, t_us, n):
    """Append ``n`` SLO-attaining completions finishing at ``t_us``."""
    for _ in range(n):
        stats.add(_timing(max(t_us - 10.0, 0.0), t_us))


def test_controller_no_decision_before_boundary():
    ctrl, cstats = _controller()
    stats = ServingStats()
    assert ctrl.tick(50.0, stats, queue_depth=0) is None
    assert ctrl.tick(99.0, stats, queue_depth=0) is None
    assert cstats.windows == 0 and cstats.decisions == []


def test_controller_warmup_then_probe_then_keep():
    ctrl, cstats = _controller()
    stats = ServingStats()
    # Window 1 (warmup): observe only, no move.
    _feed(stats, 50.0, 5)
    assert ctrl.tick(100.0, stats, queue_depth=0) is None
    assert cstats.decisions[-1].action == "observe"
    # Window 2: first probe move along the default +1 direction.
    _feed(stats, 150.0, 5)
    moves = ctrl.tick(200.0, stats, queue_depth=0)
    assert moves == {KNOB_CHUNK: 20}
    assert cstats.decisions[-1].action == f"move:{KNOB_CHUNK}:+1"
    assert cstats.moves == 1
    # Window 3: objective held up, so the probe survives ("keep") and no
    # override is returned.
    _feed(stats, 250.0, 5)
    assert ctrl.tick(300.0, stats, queue_depth=0) is None
    assert cstats.decisions[-1].action == f"keep:{KNOB_CHUNK}"
    assert cstats.rollbacks == 0


def test_controller_guarded_rollback_reverts_and_flips():
    ctrl, cstats = _controller()
    stats = ServingStats()
    _feed(stats, 50.0, 5)
    ctrl.tick(100.0, stats, queue_depth=0)             # warmup
    _feed(stats, 150.0, 5)
    assert ctrl.tick(200.0, stats, queue_depth=0) == {KNOB_CHUNK: 20}
    # The probe window collapses (1 completion vs 5): guarded rollback.
    _feed(stats, 250.0, 1)
    moves = ctrl.tick(300.0, stats, queue_depth=0)
    assert moves == {KNOB_CHUNK: 10}                   # value restored
    assert cstats.decisions[-1].action == f"rollback:{KNOB_CHUNK}"
    assert cstats.rollbacks == 1
    # Direction flipped; the knob now sits at the bottom rung with its
    # base value, so the next probe turns back upward (inward).
    knob = ctrl._knobs[0]
    assert knob.direction == -1 and knob.value == 10
    # The baseline objective was restored (5 completions / 100 us).
    assert cstats.decisions[-1].objective == pytest.approx(5 / (100 / 1e6))


def test_controller_pinned_at_ladder_end_probes_inward():
    ctrl, cstats = _controller(chunk_ladder=(10, 20))
    stats = ServingStats()
    _feed(stats, 50.0, 5)
    ctrl.tick(100.0, stats, queue_depth=0)             # warmup
    _feed(stats, 150.0, 5)
    assert ctrl.tick(200.0, stats, queue_depth=0) == {KNOB_CHUNK: 20}
    _feed(stats, 250.0, 5)
    ctrl.tick(300.0, stats, queue_depth=0)             # keep (top rung)
    # Pinned at the top: the next probe flips inward instead of stalling.
    _feed(stats, 350.0, 5)
    assert ctrl.tick(400.0, stats, queue_depth=0) == {KNOB_CHUNK: 10}
    assert cstats.decisions[-1].action == f"move:{KNOB_CHUNK}:-1"


def test_controller_long_iteration_fires_one_decision():
    """An iteration crossing several window boundaries closes one window
    and realigns past the clock (no decision backlog)."""
    ctrl, cstats = _controller()
    stats = ServingStats()
    _feed(stats, 50.0, 3)
    ctrl.tick(350.0, stats, queue_depth=0)     # clock jumped 3.5 windows
    assert cstats.windows == 1
    assert ctrl._next_window_us == 400.0
    ctrl.tick(399.0, stats, queue_depth=0)
    assert cstats.windows == 1                 # still inside the new window


def test_controller_batch_knob_round_robin():
    ctrl, cstats = _controller(batch_ladder=(4, 8, 16))
    stats = ServingStats()
    _feed(stats, 50.0, 5)
    ctrl.tick(100.0, stats, queue_depth=0)             # warmup
    _feed(stats, 150.0, 5)
    first = ctrl.tick(200.0, stats, queue_depth=0)     # chunk probes first
    assert first == {KNOB_CHUNK: 20}
    _feed(stats, 250.0, 5)
    ctrl.tick(300.0, stats, queue_depth=0)             # keep
    _feed(stats, 350.0, 5)
    second = ctrl.tick(400.0, stats, queue_depth=0)    # batch knob's turn
    assert second == {KNOB_BATCH: 8}
    assert cstats.decisions[-1].action == f"move:{KNOB_BATCH}:+1"


def test_controller_slo_signal_steers_direction():
    """A TPOT violation (with TTFT healthy) pushes the chunk knob down
    even though its default probe direction is up."""
    slo = ServingSLO(ttft_ms=1e9, tpot_ms=0.001)       # 1 us TPOT target
    ctrl, cstats = _controller(slo=slo, chunk_ladder=(10, 20, 30))
    ctrl._knobs[0].idx = 1
    ctrl._knobs[0].value = 20                          # start mid-ladder
    stats = ServingStats()
    # Completions whose TPOT (~30 us/token) blows the 1 us target.
    for t in (30.0, 60.0, 150.0, 180.0):
        stats.add(_timing(0.0, t, n_tokens=4, ttft_us=1.0))
        ctrl.tick(t, stats, queue_depth=0)
    moves = ctrl.tick(200.0, stats, queue_depth=0)
    assert moves == {KNOB_CHUNK: 10}
    assert cstats.decisions[-1].action == f"move:{KNOB_CHUNK}:-1"


def test_controller_stats_trace_and_summary():
    ctrl, cstats = _controller(batch_ladder=(4, 8))
    stats = ServingStats()
    _feed(stats, 50.0, 2)
    ctrl.tick(100.0, stats, queue_depth=1)
    _feed(stats, 150.0, 2)
    ctrl.tick(200.0, stats, queue_depth=1)
    trace = cstats.trace()
    # (window, action, batch value, chunk value) -- knobs sorted by name.
    assert trace[0] == (1, "observe", 4, 10)
    assert trace[1] == (2, f"move:{KNOB_CHUNK}:+1", 4, 20)
    s = cstats.summary()
    assert s == {"ctrl_windows": 2.0, "ctrl_moves": 1.0,
                 "ctrl_rollbacks": 0.0}


# --- Fleet routing-weight adapter -------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"update_every": 0},
    {"ewma_alpha": 0.0},
    {"ewma_alpha": 1.5},
    {"floor": -0.1},
    {"floor": 1.0},
])
def test_routing_weight_config_validation(kwargs):
    with pytest.raises(ConfigError):
        RoutingWeightConfig(**kwargs)


def test_routing_weights_shift_toward_idle_replica():
    adapter = RoutingWeightAdapter(
        RoutingWeightConfig(update_every=1, ewma_alpha=1.0), 2)
    assert adapter.weights == [0.5, 0.5]
    # Replica 0 has 3 s of backlog, replica 1 is idle.
    adapter.observe([3e6, 0.0])
    assert adapter.updates == 1
    assert adapter.weights[1] > adapter.weights[0]
    assert sum(adapter.weights) == pytest.approx(1.0)
    assert min(adapter.weights) >= 0.05 / 2           # floor respected


def test_routing_weights_update_cadence():
    adapter = RoutingWeightAdapter(RoutingWeightConfig(update_every=4), 2)
    for _ in range(3):
        adapter.observe([5e6, 0.0])
    assert adapter.updates == 0 and adapter.weights == [0.5, 0.5]
    adapter.observe([5e6, 0.0])
    assert adapter.updates == 1


def test_routing_weight_pick_is_weighted_round_robin():
    adapter = RoutingWeightAdapter(RoutingWeightConfig(), 2)
    adapter.weights = [0.75, 0.25]
    picks = [adapter.pick([0, 1]) for _ in range(8)]
    assert picks.count(0) == 6 and picks.count(1) == 2
    # Equal weights degrade to plain round-robin, ties to lower index.
    even = RoutingWeightAdapter(RoutingWeightConfig(), 2)
    assert [even.pick([0, 1]) for _ in range(4)] == [0, 1, 0, 1]


def test_routing_weight_pick_respects_accepting_set():
    adapter = RoutingWeightAdapter(RoutingWeightConfig(), 3)
    adapter.weights = [0.8, 0.1, 0.1]
    # Replica 0 is not accepting: the pick must come from the others.
    assert adapter.pick([1, 2]) in (1, 2)
    with pytest.raises(ConfigError):
        adapter.pick([])


def test_fleet_config_rejects_weights_without_adaptive():
    with pytest.raises(ConfigError):
        FleetConfig(n_replicas=2, policy="round-robin",
                    routing_weights=RoutingWeightConfig())
    FleetConfig(n_replicas=2, policy="adaptive",
                routing_weights=RoutingWeightConfig())   # fine


# --- Engine integration gates -----------------------------------------------

def _engine_run(controller):
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), QW2)
    server = ContinuousBatchingServer(
        session,
        BatchSchedulerConfig(kv_budget_tokens=512, max_batch_size=4,
                             prefill_chunk_tokens=16),
        controller=controller)
    workload = poisson_workload(
        n_requests=8, mean_interarrival_us=2e5, prompt_len=16,
        max_new_tokens=6, vocab_size=64, seed=3)
    return server, server.replay(list(workload))


def test_engine_controller_summary_gating():
    slo = ServingSLO(ttft_ms=2000, tpot_ms=500)
    cfg = ControllerConfig(slo=slo, window_us=5e5, warmup_windows=1,
                           chunk_ladder=(8, 16, 32, 64))
    server, stats = _engine_run(cfg)
    assert stats.controller is not None
    assert stats.controller.windows >= 1
    s = stats.summary()
    assert s["ctrl_windows"] == float(stats.controller.windows)
    # The engine's live config reflects the controller's moves.
    if stats.controller.moves > stats.controller.rollbacks:
        assert server.config.prefill_chunk_tokens in cfg.chunk_ladder

    _, off = _engine_run(None)
    assert off.controller is None
    assert not any(k.startswith("ctrl_") for k in off.summary())
