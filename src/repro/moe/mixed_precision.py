"""Per-expert mixed-precision storage (an extension the paper points to).

Section 7 notes that fine-grained precision selection (EdgeMoE's static
per-expert choice, HOBBIT/MPTQS's dynamic variants) is orthogonal to
KTransformers and "can be incorporated into its framework".  This module
implements the static variant:

1. :func:`expert_sensitivity` scores each expert by how much group-wise
   quantization actually perturbs its weights (Frobenius error energy),
   optionally weighted by profiled popularity;
2. :func:`assign_expert_precision` spends a DRAM/bandwidth budget by giving
   the most sensitive experts higher precision, greedily upgrading from the
   cheapest dtype;
3. :func:`apply_mixed_precision` rebuilds a functional MoE block's experts
   with their assigned storage dtypes (weights shared, packing redone).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..model.modules import Module
from ..model.moe_layer import ExpertModule, ModuleList, MoEBlock
from ..tensor.dtypes import BF16, INT4, INT8, DType
from ..tensor.layout import pack_matrix, unpack_matrix

# Upgrade ladder: everything starts at Int4; budget buys upgrades.
PRECISION_LADDER: tuple[DType, ...] = (INT4, INT8, BF16)


def expert_sensitivity(
    block: MoEBlock,
    probe_dtype: DType = INT4,
    popularity: np.ndarray | None = None,
) -> np.ndarray:
    """Quantization-error energy of each routed expert.

    For every expert, quantize its three projections to ``probe_dtype`` and
    measure the relative Frobenius reconstruction error; multiply by the
    expert's activation popularity if provided (a rarely-used expert can
    afford to be sloppy).
    """
    n = block.n_experts
    if popularity is not None:
        popularity = np.asarray(popularity, dtype=np.float64)
        if popularity.shape != (n,):
            raise ConfigError(
                f"popularity shape {popularity.shape} != ({n},)"
            )
    scores = np.zeros(n, dtype=np.float64)
    for i, expert in enumerate(block.experts):
        err = 0.0
        ref = 0.0
        for w in (expert.w_gate, expert.w_up, expert.w_down):
            packed = pack_matrix(w, probe_dtype)
            back = unpack_matrix(packed)
            err += float(((back - w) ** 2).sum())
            ref += float((w ** 2).sum())
        rel = err / ref if ref > 0 else 0.0
        scores[i] = rel * (popularity[i] if popularity is not None else 1.0)
    return scores


@dataclass
class PrecisionAssignment:
    """Per-expert dtype choice plus its memory footprint."""

    dtypes: list[DType]
    total_bytes: float
    budget_bytes: float

    def histogram(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for dt in self.dtypes:
            out[dt.name] = out.get(dt.name, 0) + 1
        return out


def assign_expert_precision(
    sensitivity: np.ndarray,
    weights_per_expert: float,
    budget_bytes: float,
) -> PrecisionAssignment:
    """Greedy precision assignment under a byte budget.

    ``weights_per_expert`` is the expert's parameter count (elements).  All
    experts start at Int4; remaining budget upgrades the most sensitive
    experts to Int8, then BF16.
    """
    sensitivity = np.asarray(sensitivity, dtype=np.float64)
    n = sensitivity.size
    if n == 0:
        raise ConfigError("need at least one expert")
    if weights_per_expert <= 0:
        raise ConfigError("weights_per_expert must be positive")

    cost = {dt: weights_per_expert * dt.bytes_per_element
            for dt in PRECISION_LADDER}
    base_cost = cost[PRECISION_LADDER[0]]
    if budget_bytes < base_cost * n:
        raise ConfigError(
            f"budget {budget_bytes:.0f} B cannot hold {n} experts even at "
            f"{PRECISION_LADDER[0].name}"
        )

    dtypes = [PRECISION_LADDER[0]] * n
    spent = base_cost * n
    order = np.argsort(-sensitivity)  # most sensitive first
    for target in PRECISION_LADDER[1:]:
        for idx in order:
            i = int(idx)
            current = dtypes[i]
            if PRECISION_LADDER.index(current) + 1 != PRECISION_LADDER.index(target):
                continue
            upgrade = cost[target] - cost[current]
            if spent + upgrade <= budget_bytes:
                dtypes[i] = target
                spent += upgrade
    return PrecisionAssignment(dtypes=dtypes, total_bytes=spent,
                               budget_bytes=budget_bytes)


def apply_mixed_precision(block: MoEBlock,
                          assignment: PrecisionAssignment) -> MoEBlock:
    """New MoE block whose experts use their assigned storage dtypes.

    Raw weights are shared with the original block; only the packed
    representations differ, so the swap is cheap and reversible.
    """
    if len(assignment.dtypes) != block.n_experts:
        raise ConfigError(
            f"{len(assignment.dtypes)} dtypes for {block.n_experts} experts"
        )
    new = MoEBlock.__new__(MoEBlock)
    Module.__init__(new)
    new.hidden = block.hidden
    new.intermediate = block.intermediate
    new.router_config = block.router_config
    new.kernel = block.kernel
    new.gate = block.gate
    new.shared_experts = block.shared_experts
    experts = []
    for expert, dt in zip(block.experts, assignment.dtypes):
        e = ExpertModule.__new__(ExpertModule)
        Module.__init__(e)
        e.hidden = expert.hidden
        e.intermediate = expert.intermediate
        e.weight_dtype = dt
        e.w_gate = expert.w_gate
        e.w_up = expert.w_up
        e.w_down = expert.w_down
        e._packed = None
        experts.append(e)
    new.experts = ModuleList(experts)
    new._fused = None
    return new


def bandwidth_savings(assignment: PrecisionAssignment,
                      baseline: DType = BF16) -> float:
    """Fraction of decode weight traffic saved vs a uniform baseline dtype."""
    n = len(assignment.dtypes)
    base = n * baseline.bytes_per_element
    mixed = sum(dt.bytes_per_element for dt in assignment.dtypes)
    return 1.0 - mixed / base
