"""The paper's primary contribution: engine, Expert Deferral, autotuning."""

from .adaptive import (
    AdaptiveDeferralConfig,
    AdaptiveDeferralEngine,
    adaptive_split,
)
from .autotune import AutotuneResult, autotune_deferral, heuristic_deferred_count
from .deferral import (
    MIN_IMMEDIATE_EXPERTS,
    DeferralConfig,
    DeferralEngine,
    split_routing,
)
from .engine import (
    KTRANSFORMERS,
    ThroughputResult,
    batched_decode_works,
    decode_works,
    hybrid_chunk_works,
    run_batched_decode,
    run_decode,
    run_prefill,
)
from .skipping import SkippingConfig, SkippingEngine

__all__ = [
    "AdaptiveDeferralConfig", "AdaptiveDeferralEngine", "adaptive_split",
    "AutotuneResult", "autotune_deferral", "heuristic_deferred_count",
    "MIN_IMMEDIATE_EXPERTS", "DeferralConfig", "DeferralEngine",
    "split_routing",
    "KTRANSFORMERS", "ThroughputResult", "batched_decode_works",
    "decode_works", "hybrid_chunk_works", "run_batched_decode",
    "run_decode", "run_prefill",
    "SkippingConfig", "SkippingEngine",
]
