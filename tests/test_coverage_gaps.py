"""Focused tests for paths not covered by the larger suites."""

import numpy as np
import pytest

from repro.bench import quant_machine_and_dtype, table1_models
from repro.bench.runner import fig7_kernel_crossover
from repro.core import KTRANSFORMERS
from repro.errors import ConfigError, InjectionError, SchedulingError
from repro.hw import Simulator, Trace, paper_testbed
from repro.inject import make_kernel
from repro.kernels import AMXKernel, AVX512Kernel, HybridKernel
from repro.model import DS2, DS3, QW2, ModelPreset
from repro.moe import FusedMoE, fuse_expert, make_expert
from repro.sched import (
    GpuExecutor,
    LaunchMode,
    build_prefill_chunk,
    prefill_layer_work,
    simulate_prefill,
)
from repro.tensor import BF16, INT4, INT8

MACHINE = paper_testbed("a100")


class TestPresetsByteHelpers:
    def test_expert_bytes_scaling(self):
        assert DS3.expert_bytes(INT4) < DS3.expert_bytes(INT8) < \
            DS3.expert_bytes(BF16)
        assert DS3.expert_bytes(BF16) == 3 * 7168 * 2048 * 2

    def test_cpu_dram_bytes(self):
        assert DS3.cpu_dram_bytes(BF16) == pytest.approx(
            58 * 256 * DS3.expert_bytes(BF16))

    def test_gpu_layer_bytes(self):
        assert DS3.gpu_layer_bytes(BF16) == pytest.approx(17e9 * 2 / 61)

    def test_shared_expert_bytes_qw2_large(self):
        """QW-2's shared expert has a 20480-wide intermediate."""
        assert QW2.shared_expert_bytes(BF16) > 5 * QW2.expert_bytes(BF16)

    def test_dense_layers(self):
        assert DS3.n_dense_layers == 3
        assert DS2.n_dense_layers == 1
        assert QW2.n_dense_layers == 0

    def test_quant_machine_and_dtype(self):
        machine, dt = quant_machine_and_dtype(DS3)
        assert "4080" in machine.gpu.name
        assert dt is INT4


class TestRunnerHelpers:
    def test_table1_rows(self):
        rows = table1_models()
        assert len(rows) == 3
        assert rows[0][0] == "DS3"

    def test_fig7_custom_presets(self):
        data = fig7_kernel_crossover(tokens_sweep=(1, 16), presets=(QW2,))
        assert set(data) == {"qw2"}
        assert len(data["qw2"]) == 2


class TestPrefillBuilder:
    def _work(self):
        return prefill_layer_work(
            QW2, MACHINE, BF16, 256, KTRANSFORMERS.prefill_kernel,
            KTRANSFORMERS.numa_strategy, 45,
        )

    def test_single_chunk(self):
        sim = simulate_prefill([[self._work()] * 4], LaunchMode.CUDA_GRAPH,
                               MACHINE, overlap_cpu_gpu=True)
        trace = Trace.from_simulator(sim)
        assert trace.count("cpu") == 4
        assert sim.now > 0

    def test_chunks_serialize(self):
        one = simulate_prefill([[self._work()] * 3], LaunchMode.CUDA_GRAPH,
                               MACHINE, True).now
        two = simulate_prefill([[self._work()] * 3] * 2,
                               LaunchMode.CUDA_GRAPH, MACHINE, True).now
        assert two > 1.9 * one

    def test_empty_chunk_rejected(self):
        sim = Simulator()
        ex = GpuExecutor(sim, MACHINE, LaunchMode.CUDA_GRAPH)
        with pytest.raises(SchedulingError):
            build_prefill_chunk(sim, ex, [], MACHINE, True, [])

    def test_no_chunks_rejected(self):
        with pytest.raises(SchedulingError):
            simulate_prefill([], LaunchMode.CUDA_GRAPH, MACHINE, True)

    def test_overlap_no_slower(self):
        works = [[self._work()] * 4]
        seq = simulate_prefill(works, LaunchMode.CUDA_GRAPH, MACHINE, False).now
        ovl = simulate_prefill(works, LaunchMode.CUDA_GRAPH, MACHINE, True).now
        assert ovl <= seq


class TestInjectKernelFactory:
    def test_backends(self):
        assert isinstance(make_kernel("AMX"), AMXKernel)
        assert isinstance(make_kernel("avx512"), AVX512Kernel)
        assert isinstance(make_kernel("Hybrid_AMX_AVX512"), HybridKernel)

    def test_unknown(self):
        with pytest.raises(InjectionError):
            make_kernel("neon")


class TestFusedWeights:
    def test_fused_nbytes_close_to_sum(self):
        expert = make_expert(32, 48, np.random.default_rng(0))
        fe = fuse_expert(expert)
        # gate+up fused padding may add a little, never double.
        assert fe.nbytes() <= expert.nbytes() * 1.3
        assert fe.intermediate_size == 48

    def test_fused_moe_nbytes_positive(self):
        experts = [make_expert(32, 48, np.random.default_rng(i))
                   for i in range(2)]
        moe = FusedMoE(experts, AMXKernel())
        assert moe.n_experts == 2
        assert moe.hidden_size == 32


class TestGpuExecutorDetails:
    def test_sync_point_names(self):
        sim = Simulator()
        ex = GpuExecutor(sim, MACHINE, LaunchMode.PER_KERNEL_CPP)
        ex.sync_point("probe")
        sim.drain()
        assert any(t.name == "sync:probe" for t in sim.all_tasks)

    def test_negative_kernel_duration_rejected(self):
        from repro.errors import GraphCaptureError
        sim = Simulator()
        ex = GpuExecutor(sim, MACHINE, LaunchMode.PER_KERNEL_CPP)
        with pytest.raises(GraphCaptureError):
            ex.kernel("bad", -1.0, 1)

    def test_graph_replay_cost_scales_with_kernels(self):
        sim = Simulator()
        ex = GpuExecutor(sim, MACHINE, LaunchMode.CUDA_GRAPH)
        ex.begin_step()
        few = ex.kernel("few", 100.0, 1)
        many = ex.kernel("many", 100.0, 100)
        sim.drain()
        assert many.duration > few.duration

    def test_begin_step_resets_per_step(self):
        sim = Simulator()
        ex = GpuExecutor(sim, MACHINE, LaunchMode.CUDA_GRAPH)
        first = ex.begin_step()
        second = ex.begin_step(deps=[first])
        sim.drain()
        assert first is not second
        assert second.start_time >= first.end_time


class TestModelPresetValidation:
    def test_custom_preset_construction(self):
        p = ModelPreset(
            name="custom", display_name="Custom", hidden=1024,
            moe_intermediate=512, n_layers=4, n_moe_layers=4, n_experts=16,
            top_k=2, n_shared_experts=1, shared_intermediate=512,
            n_heads=8, kv_rank=0, vocab_size=1000, gpu_params=1e9,
            quant_dtype=INT8, deferred_experts_bf16=0,
            deferred_experts_quant=0,
        )
        assert p.cpu_params == 4 * 16 * 3 * 1024 * 512
        assert p.total_params > p.cpu_params
