"""Symmetric group-wise linear quantization (Section 3.2).

KTransformers stores expert weights in Int8 or Int4 using symmetric
group-wise quantization: elements are split into groups of 32 along the
input dimension, each group shares one scale factor, and scales are stored
separately so the payload stays 64-byte aligned.  Int4 values are packed two
per byte and unpacked with SIMD intrinsics; here the packing is reproduced
bit-exactly with numpy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QuantizationError
from .dtypes import INT4, INT8, QUANT_GROUP_SIZE, DType


def _qmax(bits: int) -> int:
    """Largest magnitude representable by a signed ``bits``-bit integer."""
    return (1 << (bits - 1)) - 1


@dataclass
class QuantizedTensor:
    """A group-wise quantized matrix.

    ``payload`` is int8 and stores either Int8 values directly or two packed
    Int4 nibbles per byte.  ``scales`` has one float16 entry per group, with
    groups running along the last axis of the original tensor.
    """

    payload: np.ndarray
    scales: np.ndarray
    shape: tuple[int, ...]
    dtype: DType
    group_size: int

    @property
    def bits(self) -> int:
        return self.dtype.bits

    def nbytes(self) -> int:
        return int(self.payload.nbytes + self.scales.nbytes)


def quantize(
    weights: np.ndarray,
    dtype: DType = INT8,
    group_size: int = QUANT_GROUP_SIZE,
) -> QuantizedTensor:
    """Quantize ``weights`` group-wise along the last axis.

    The last axis length must be a multiple of ``group_size`` (the tile
    layout guarantees this by padding to 64-byte rows first).
    """
    if dtype not in (INT8, INT4):
        raise QuantizationError(f"cannot quantize to {dtype.name}")
    if group_size <= 0:
        raise QuantizationError(f"group_size must be positive, got {group_size}")
    w = np.asarray(weights, dtype=np.float32)
    if w.ndim == 0:
        raise QuantizationError("cannot quantize a scalar")
    last = w.shape[-1]
    if last % group_size != 0:
        raise QuantizationError(
            f"last axis ({last}) is not a multiple of group size {group_size}"
        )

    grouped = w.reshape(*w.shape[:-1], last // group_size, group_size)
    qmax = _qmax(dtype.bits)
    absmax = np.abs(grouped).max(axis=-1)
    scales = (absmax / qmax).astype(np.float32)
    # Avoid dividing by zero for all-zero groups; their values quantize to 0.
    safe_scales = np.where(scales == 0.0, 1.0, scales)
    q = np.rint(grouped / safe_scales[..., None]).astype(np.int32)
    q = np.clip(q, -qmax, qmax).astype(np.int8)
    q = q.reshape(w.shape)

    if dtype is INT4:
        payload = pack_int4(q)
    else:
        payload = q
    return QuantizedTensor(
        payload=payload,
        scales=scales.astype(np.float16),
        shape=w.shape,
        dtype=dtype,
        group_size=group_size,
    )


def dequantize(qt: QuantizedTensor) -> np.ndarray:
    """Reconstruct a float32 tensor from a :class:`QuantizedTensor`."""
    if qt.dtype is INT4:
        q = unpack_int4(qt.payload, qt.shape)
    else:
        q = qt.payload
    last = qt.shape[-1]
    grouped = q.astype(np.float32).reshape(
        *qt.shape[:-1], last // qt.group_size, qt.group_size
    )
    scales = qt.scales.astype(np.float32)[..., None]
    return (grouped * scales).reshape(qt.shape)


def pack_int4(values: np.ndarray) -> np.ndarray:
    """Pack signed int4 values (range [-7, 7]) two per byte, low nibble first.

    The last axis must be even.  Values are stored as offset-binary nibbles
    (value + 8) so that unpacking needs no sign-extension branches, matching
    the SIMD-friendly format described in the paper.
    """
    v = np.asarray(values, dtype=np.int8)
    if v.shape[-1] % 2 != 0:
        raise QuantizationError("int4 packing requires an even last axis")
    if v.min(initial=0) < -8 or v.max(initial=0) > 7:
        raise QuantizationError("int4 values out of range [-8, 7]")
    offset = (v.astype(np.int16) + 8).astype(np.uint8)
    lo = offset[..., 0::2]
    hi = offset[..., 1::2]
    return (lo | (hi << 4)).astype(np.uint8).view(np.int8)


def unpack_int4(packed: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`pack_int4`."""
    p = np.asarray(packed).view(np.uint8)
    lo = (p & 0x0F).astype(np.int16) - 8
    hi = (p >> 4).astype(np.int16) - 8
    out = np.empty(p.shape[:-1] + (p.shape[-1] * 2,), dtype=np.int8)
    out[..., 0::2] = lo.astype(np.int8)
    out[..., 1::2] = hi.astype(np.int8)
    if out.shape != shape:
        out = out.reshape(shape)
    return out


def quantization_error_bound(qt: QuantizedTensor) -> float:
    """Worst-case absolute reconstruction error.

    Two sources: half a quantization step (scale / 2), plus the FP16
    rounding of the stored scale, which perturbs a full-magnitude value by
    at most ``qmax * scale * 2^-11`` (FP16 has a 10-bit mantissa).
    """
    if qt.scales.size == 0:
        return 0.0
    scale = float(qt.scales.astype(np.float32).max())
    fp16_rel = 2.0 ** -11
    return scale * (0.5 + _qmax(qt.dtype.bits) * fp16_rel)
