"""Output-fidelity metrics between execution engines.

Used alongside task accuracy to quantify how far deferral/skipping moves a
model's next-token distributions from the unmodified execution.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


def _softmax(x: np.ndarray) -> np.ndarray:
    e = np.exp(x - x.max(axis=-1, keepdims=True))
    return e / e.sum(axis=-1, keepdims=True)


def _check(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 2:
        raise ConfigError(f"logit arrays must match (steps, vocab): {a.shape} vs {b.shape}")
    return a, b


def top1_agreement(logits_a: np.ndarray, logits_b: np.ndarray) -> float:
    """Fraction of decode steps where both engines pick the same token."""
    a, b = _check(logits_a, logits_b)
    return float((a.argmax(axis=-1) == b.argmax(axis=-1)).mean())


def mean_kl(logits_a: np.ndarray, logits_b: np.ndarray) -> float:
    """Mean KL(P_a || P_b) over decode steps (nats)."""
    a, b = _check(logits_a, logits_b)
    pa = _softmax(a)
    pb = np.maximum(_softmax(b), 1e-12)
    return float((pa * (np.log(np.maximum(pa, 1e-12)) - np.log(pb))).sum(-1).mean())


def relative_accuracy_change(baseline: float, modified: float) -> float:
    """Percentage change in accuracy relative to the baseline (Figure 13)."""
    if baseline <= 0:
        raise ConfigError("baseline accuracy must be positive")
    return (modified - baseline) / baseline * 100.0
