"""Data-type descriptions shared by quantization, layouts, and cost models.

KTransformers stores expert weights either in BF16 or in symmetric
group-wise Int8/Int4 with one FP16 scale per group of 32 elements
(Section 3.2).  The effective bytes-per-element therefore includes the
amortized scale storage, which matters for bandwidth-bound cost estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

QUANT_GROUP_SIZE = 32  # elements sharing one scale factor
SCALE_BYTES = 2        # FP16 scale per group


@dataclass(frozen=True)
class DType:
    """A storage format for model weights."""

    name: str
    bits: int
    quantized: bool

    @property
    def payload_bytes_per_element(self) -> float:
        return self.bits / 8

    @property
    def bytes_per_element(self) -> float:
        """Payload plus amortized per-group scale storage (if quantized)."""
        extra = SCALE_BYTES / QUANT_GROUP_SIZE if self.quantized else 0.0
        return self.payload_bytes_per_element + extra


BF16 = DType("bf16", 16, quantized=False)
FP16 = DType("fp16", 16, quantized=False)
FP32 = DType("fp32", 32, quantized=False)
INT8 = DType("int8", 8, quantized=True)
INT4 = DType("int4", 4, quantized=True)

_DTYPES = {d.name: d for d in (BF16, FP16, FP32, INT8, INT4)}


def dtype(name: str) -> DType:
    """Look up a dtype by name (``"bf16"``, ``"int8"``, ``"int4"``...)."""
    try:
        return _DTYPES[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown dtype {name!r}; expected one of {sorted(_DTYPES)}"
        ) from None
