"""Figure 2: comparison of model architectures (dense FFN vs MoE vs
shared+routed MoE).

The figure is architectural, so this bench verifies its quantitative
content on the functional models: a MoE layer holds many times the
parameters of a dense layer while *activating* only a top-k slice per
token, and shared experts guarantee a common processing floor for every
token.
"""

import numpy as np

from repro.bench import format_table
from repro.model import DS3, MoETransformer, tiny_config
from repro.moe import routing_summary


def _architectures():
    # Functional structure checks on tiny models.
    moe_model = MoETransformer(tiny_config("tiny-qw"))
    block = next(l.mlp for l in moe_model.layers if l.is_moe)
    x = moe_model.embed_tokens(np.arange(1, 33))
    routing = block.route(x)
    summary = routing_summary(routing, block.n_experts)

    cfg = moe_model.config
    per_expert = 3 * cfg.hidden * cfg.moe_intermediate
    rows = [
        ("dense FFN (equal-size)", per_expert, per_expert, 1.0),
        ("MoE (routed only)",
         cfg.n_experts * per_expert,
         cfg.top_k * per_expert,
         cfg.top_k / cfg.n_experts),
        ("MoE + shared expert",
         (cfg.n_experts + cfg.n_shared_experts) * per_expert,
         (cfg.top_k + cfg.n_shared_experts) * per_expert,
         (cfg.top_k + cfg.n_shared_experts) / (cfg.n_experts + 1)),
    ]
    # Table-1-scale sparsity for DS-3.
    ds3_sparsity = (DS3.top_k + DS3.n_shared_experts) / (
        DS3.n_experts + DS3.n_shared_experts)
    return rows, summary, ds3_sparsity


def test_fig2_architectures(run_once):
    rows, summary, ds3_sparsity = run_once(_architectures)
    print()
    print(format_table(
        ["architecture", "params/layer", "activated/token", "activation frac"],
        rows, title="Figure 2: FFN architectures (tiny-qw scale)",
    ))
    print(f"\nDS-3 activation fraction: {ds3_sparsity:.1%} "
          f"(9 of 257 experts per token)")
    print(f"Routing over 32 tokens: {summary['active_experts']:.0f} of 8 "
          f"experts active, load balance factor "
          f"{summary['load_balance_factor']:.2f}")

    dense, moe, moe_shared = rows
    # MoE holds n_experts x the dense parameters...
    assert moe[1] == 8 * dense[1]
    # ...but activates only the top-k slice.
    assert moe[3] == 0.5
    # Shared experts add a constant activated floor.
    assert moe_shared[2] > moe[2]
    # DS-3's activation fraction is ~3.5% -- the sparsity that makes
    # CPU offloading viable at all.
    assert ds3_sparsity < 0.05
    # Balanced routing: every expert participates across a batch.
    assert summary["active_experts"] == 8
