"""KTransformers' cache-friendly AMX kernel (Section 3.2, Figure 6).

Execution structure reproduced here:

1. the weight matrix is **vertically partitioned** into column tasks that
   can be scheduled across threads;
2. each task walks the weight rows in **L2-fitting blocks**;
3. each block is a grid of 16-row x 64-byte **tiles**; inputs are read from
   L3 and weights from DRAM exactly once per block;
4. tile-level multiply-accumulates keep partial sums in tile registers.

The numpy implementation follows the same traversal (task -> block -> tile)
so that layout mistakes break numerics, while the simulated duration comes
from the calibrated ``KT_AMX`` roofline profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..hw.roofline import KT_AMX
from ..hw.spec import CPUSpec
from ..tensor.layout import PackedWeights
from ..tensor.tiles import TILE_ROWS, tile_bytes
from .base import CPUGemmKernel


@dataclass(frozen=True)
class BlockPlan:
    """How a packed weight matrix is carved into L2-resident blocks."""

    row_tiles_per_block: int
    n_row_blocks: int
    n_col_tasks: int

    @property
    def n_blocks(self) -> int:
        return self.n_row_blocks * self.n_col_tasks


def plan_blocks(weights: PackedWeights, cpu: CPUSpec,
                l2_budget_fraction: float = 0.5) -> BlockPlan:
    """Choose a row-block size whose weight tiles fit the L2 budget.

    One column task covers one column tile (16 output columns for bf16);
    its row blocks must fit ``l2_budget_fraction`` of L2 alongside the
    streamed activations.
    """
    row_tiles, col_tiles = weights.tile_grid
    budget = cpu.l2_cache_bytes * l2_budget_fraction
    per_tile = tile_bytes()
    max_tiles = max(1, int(budget // per_tile))
    rows_per_block = min(row_tiles, max_tiles)
    return BlockPlan(
        row_tiles_per_block=rows_per_block,
        n_row_blocks=math.ceil(row_tiles / rows_per_block),
        n_col_tasks=col_tiles,
    )


class AMXKernel(CPUGemmKernel):
    """Tile-blocked GEMM over the AMX layout."""

    profile = KT_AMX

    def run(self, x: np.ndarray, weights: PackedWeights) -> np.ndarray:
        """Blocked-einsum execution of the task -> block -> tile traversal.

        All column tasks advance together: for each row block, one batched
        tile multiply ``(m, 16) @ (ct, 16, tc)`` updates every task's
        accumulator.  The per-tile GEMMs and the row-block accumulation
        order are identical to :meth:`run_reference`, so the float32 output
        is bit-identical (asserted in tests) -- only the Python-level loop
        nest is collapsed.
        """
        xp = self._check_shapes(x, weights)
        tiles = weights.dense_tiles()            # (rt, ct, 16, tc)
        row_tiles, col_tiles, tr, tc = tiles.shape
        m = xp.shape[0]

        # acc[ct] is column task ct's tile-register accumulator.
        acc = np.zeros((col_tiles, m, tc), dtype=np.float32)
        for rt_idx in range(row_tiles):
            k_lo = rt_idx * TILE_ROWS
            a_panel = xp[:, k_lo:k_lo + TILE_ROWS]
            acc += np.matmul(a_panel, tiles[rt_idx])

        out = acc.transpose(1, 0, 2).reshape(m, col_tiles * tc)
        return out[:, :weights.cols]

    def run_reference(self, x: np.ndarray, weights: PackedWeights) -> np.ndarray:
        """The explicit loop-nest traversal (kept as the layout oracle)."""
        xp = self._check_shapes(x, weights)
        tiles = weights.dense_tiles()            # (rt, ct, 16, tc)
        row_tiles, col_tiles, tr, tc = tiles.shape
        m = xp.shape[0]
        out = np.zeros((m, col_tiles * tc), dtype=np.float32)

        # Step 1: vertical partition into column tasks.
        for ct in range(col_tiles):
            col_lo = ct * tc
            # Step 2: walk rows in blocks (block size chosen by plan_blocks
            # at schedule time; here every tile is visited in block order).
            acc = np.zeros((m, tc), dtype=np.float32)
            for rt_idx in range(row_tiles):
                k_lo = rt_idx * TILE_ROWS
                # Steps 3-5: one tile multiply-accumulate.  The activation
                # sub-panel comes from L3, the weight tile from DRAM/L2.
                a_panel = xp[:, k_lo:k_lo + TILE_ROWS]
                acc += a_panel @ tiles[rt_idx, ct]
            out[:, col_lo:col_lo + tc] = acc

        return out[:, :weights.cols]
