"""Tests for the dynamic hot-expert GPU cache and its serving integration."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hw.roofline import overlapped_transfer_stall_us, pcie_transfer_time_us
from repro.hw.spec import paper_testbed
from repro.model import DS3, MoETransformer, tiny_config
from repro.moe import (
    ExpertCacheConfig,
    ExpertCacheManager,
    RouterConfig,
    balanced_synthetic_logits,
    oracle_hit_rate,
    plan_gpu_residency,
    route,
)
from repro.sched.decode import cache_aware_step_time_us
from repro.sched.workload import MIN_CPU_DISPATCH_US, apply_expert_cache
from repro.serving import (
    BatchCostModel,
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    poisson_workload,
    serving_expert_cache,
)
from repro.tensor import BF16

MACHINE = paper_testbed("a100")
LINK = MACHINE.interconnect
MB = 1e6


def make_cache(n_layers=2, n_experts=8, capacity=4, **overrides):
    cfg = ExpertCacheConfig(
        n_layers=n_layers, n_experts=n_experts,
        expert_bytes=MB, vram_budget_bytes=capacity * MB, **overrides)
    return ExpertCacheManager(cfg, LINK)


def hot_counts(n_layers, n_experts, hot, tokens=64, hot_mass=0.9, seed=0):
    """Per-layer counts concentrating ``hot_mass`` of tokens on ``hot``."""
    rng = np.random.default_rng(seed)
    probs = np.full(n_experts, (1.0 - hot_mass) / (n_experts - len(hot)))
    probs[list(hot)] = hot_mass / len(hot)
    return np.stack([rng.multinomial(tokens, probs)
                     for _ in range(n_layers)])


class TestConfig:
    def test_capacity_from_budget(self):
        cfg = ExpertCacheConfig(n_layers=1, n_experts=8, expert_bytes=MB,
                                vram_budget_bytes=3.7 * MB)
        assert cfg.capacity_experts == 3

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            ExpertCacheConfig(n_layers=0, n_experts=8, expert_bytes=MB,
                              vram_budget_bytes=MB)
        with pytest.raises(ConfigError):
            ExpertCacheConfig(n_layers=1, n_experts=8, expert_bytes=MB,
                              vram_budget_bytes=0.5 * MB)   # < one expert
        with pytest.raises(ConfigError):
            ExpertCacheConfig(n_layers=1, n_experts=8, expert_bytes=MB,
                              vram_budget_bytes=MB, ewma_alpha=0.0)
        with pytest.raises(ConfigError):
            ExpertCacheConfig(n_layers=1, n_experts=8, expert_bytes=MB,
                              vram_budget_bytes=MB, admit_margin=0.9)


class TestWarmStart:
    def test_seeds_residency(self):
        cache = make_cache()
        cache.warm_start([{0, 1}, {2}])
        assert cache.n_resident == 3
        assert cache.is_resident(0, 0) and cache.is_resident(1, 2)
        assert not cache.is_resident(0, 2)
        assert cache.vram_used_bytes == 3 * MB

    def test_from_placement_plan(self):
        pop = np.array([[5, 0, 0, 1], [0, 7, 0, 0]])
        plan = plan_gpu_residency(pop, vram_budget_bytes=2 * MB,
                                  expert_bytes=MB)
        cache = make_cache(n_layers=2, n_experts=4, capacity=2)
        cache.warm_start(plan)
        assert cache.residency() == plan.gpu_resident

    def test_rejects_bad_plans(self):
        cache = make_cache()
        with pytest.raises(ConfigError):
            cache.warm_start([{0}])            # wrong layer count
        with pytest.raises(ConfigError):
            cache.warm_start([{0, 99}, set()])  # expert out of range
        with pytest.raises(ConfigError):
            cache.warm_start([{0, 1, 2}, {3, 4}])  # exceeds capacity


class TestStep:
    def test_hit_miss_accounting_pre_upload(self):
        cache = make_cache(n_layers=1, n_experts=8, capacity=2)
        counts = np.array([[10, 5, 0, 0, 0, 0, 0, 1]])
        first = cache.step(counts)
        # Nothing resident yet: everything misses, uploads are prefetch.
        assert first.hit_tokens == 0 and first.miss_tokens == 16
        assert first.hit_rate == 0.0
        assert len(first.uploads) == 2          # fills free capacity
        second = cache.step(counts)
        assert second.hit_tokens == 15          # experts 0 and 1 now resident
        assert second.n_hit_experts == 2
        assert second.hit_rate == pytest.approx(15 / 16)

    def test_respects_capacity_and_upload_cap(self):
        cache = make_cache(n_layers=1, n_experts=16, capacity=6,
                           max_uploads_per_step=2)
        counts = hot_counts(1, 16, hot=range(8), seed=1)
        for _ in range(10):
            r = cache.step(counts)
            assert len(r.uploads) <= 2
            assert cache.n_resident <= 6

    def test_eviction_replaces_coldest(self):
        cache = make_cache(n_layers=1, n_experts=8, capacity=2,
                           admit_margin=1.0)
        a = np.array([[20, 20, 0, 0, 0, 0, 0, 0]])
        b = np.array([[0, 0, 30, 30, 0, 0, 0, 0]])
        cache.step(a)
        assert cache.residency() == [{0, 1}]
        for _ in range(8):
            cache.step(b)
        assert cache.residency() == [{2, 3}]
        assert cache.total_evictions == 2
        assert [(l, e) for _, l, e in cache.eviction_log] == [(0, 0), (0, 1)]

    def test_hysteresis_blocks_marginal_swaps(self):
        cache = make_cache(n_layers=1, n_experts=4, capacity=2,
                           admit_margin=2.0)
        cache.step(np.array([[10, 10, 0, 0]]))
        # Equally-hot newcomers never clear a 2x margin over residents.
        for _ in range(20):
            cache.step(np.array([[0, 0, 10, 10]]))
            cache.step(np.array([[10, 10, 0, 0]]))
        assert cache.total_evictions == 0
        assert cache.residency() == [{0, 1}]

    def test_transfer_and_stall_model(self):
        cache = make_cache(n_layers=1, n_experts=8, capacity=4,
                           max_uploads_per_step=4)
        r = cache.step(np.array([[9, 9, 9, 9, 0, 0, 0, 0]]),
                       overlap_window_us=0.0)
        assert len(r.uploads) == 4
        assert r.bytes_transferred == 4 * MB
        assert r.transfer_us == pytest.approx(
            pcie_transfer_time_us(4 * MB, LINK))
        assert r.stall_us == pytest.approx(r.transfer_us)   # nothing hidden
        # A wide-enough attention window hides the whole transfer.
        cache2 = make_cache(n_layers=1, n_experts=8, capacity=4,
                            max_uploads_per_step=4)
        r2 = cache2.step(np.array([[9, 9, 9, 9, 0, 0, 0, 0]]),
                         overlap_window_us=1e9)
        assert r2.stall_us == 0.0

    def test_never_admits_unseen_experts(self):
        cache = make_cache(n_layers=1, n_experts=8, capacity=4)
        r = cache.step(np.array([[5, 0, 0, 0, 0, 0, 0, 0]]))
        assert r.uploads == ((0, 0),)          # only the observed expert

    def test_shape_and_window_validation(self):
        cache = make_cache()
        with pytest.raises(ConfigError):
            cache.step(np.zeros((3, 8)))
        with pytest.raises(ConfigError):
            cache.step(np.zeros((2, 8)), overlap_window_us=-1.0)
        with pytest.raises(ConfigError):
            cache.hit_rate(np.zeros((1, 4)))

    def test_observe_routing(self):
        cfg = RouterConfig(n_experts=8, top_k=2)
        routing = route(balanced_synthetic_logits(
            16, cfg, np.random.default_rng(0)), cfg)
        cache = make_cache(n_layers=2, n_experts=8, capacity=3)
        r = cache.observe_routing(routing, layer=1)
        assert r.total_tokens == 32
        assert all(layer == 1 for layer, _ in r.uploads)


class TestAdaptation:
    def test_recovers_after_hot_set_shift(self):
        n_experts, capacity = 32, 8
        cache = make_cache(n_layers=1, n_experts=n_experts, capacity=capacity)
        hot_a, hot_b = range(0, 8), range(16, 24)
        for i in range(30):
            cache.step(hot_counts(1, n_experts, hot_a, seed=i))
        pre = cache.hit_rate(hot_counts(1, n_experts, hot_a, seed=99))
        rates = []
        for i in range(30):
            r = cache.step(hot_counts(1, n_experts, hot_b, seed=100 + i))
            rates.append(r.hit_rate)
        post = np.mean(rates[-10:])
        oracle = oracle_hit_rate(
            sum(hot_counts(1, n_experts, hot_b, seed=100 + i)
                for i in range(30)), capacity)
        assert rates[0] < 0.3                  # shift tanks the old residency
        assert post >= 0.8 * oracle            # ...and the cache recovers
        assert pre >= 0.8                      # it was adapted before, too

    def test_oracle_hit_rate(self):
        counts = np.array([[10, 5, 1, 0]])
        assert oracle_hit_rate(counts, 1) == pytest.approx(10 / 16)
        assert oracle_hit_rate(counts, 4) == 1.0
        assert oracle_hit_rate(np.zeros((1, 4)), 2) == 0.0
        with pytest.raises(ConfigError):
            oracle_hit_rate(counts, 0)


class TestCacheAwarePricing:
    @pytest.fixture(scope="class")
    def session(self):
        model = MoETransformer(tiny_config("tiny-qw"))
        return InferenceSession(model, DS3)

    def test_apply_expert_cache_scales_with_hits(self, session):
        costs = BatchCostModel(session)
        costs.decode_step_us([64] * 8)
        work = next(w for w in costs._works[(8, 64)] if w.cpu_routed_us > 0)
        tokens = 8 * DS3.top_k
        half = apply_expert_cache(work, DS3, MACHINE, BF16, tokens,
                                  hit_tokens=tokens // 2, n_hit_experts=8)
        full = apply_expert_cache(work, DS3, MACHINE, BF16, tokens,
                                  hit_tokens=tokens, n_hit_experts=16)
        assert half.cpu_routed_us == pytest.approx(work.cpu_routed_us / 2)
        assert full.cpu_routed_us == MIN_CPU_DISPATCH_US
        assert full.gpu_shared_us > half.gpu_shared_us > work.gpu_shared_us
        with pytest.raises(ValueError):
            apply_expert_cache(work, DS3, MACHINE, BF16, tokens,
                               hit_tokens=tokens + 1, n_hit_experts=1)
        with pytest.raises(ValueError):
            apply_expert_cache(work, DS3, MACHINE, BF16, tokens,
                               hit_tokens=4, n_hit_experts=0)

    def test_higher_hit_rate_is_faster(self, session):
        """CPU expert time dominates decode, so hits buy step time."""
        from repro.moe.expert_cache import CacheStepResult

        costs = BatchCostModel(session)

        def step(hits, n_exp):
            res = CacheStepResult(
                step=0, hit_tokens=hits, miss_tokens=64 - hits,
                n_hit_experts=n_exp, uploads=(), evictions=(),
                bytes_transferred=0.0, transfer_us=0.0, stall_us=0.0)
            return costs.cached_decode_step_us([64] * 8, res)

        cold, warm, hot = step(0, 0), step(32, 8), step(61, 16)
        assert cold == pytest.approx(costs.decode_step_us([64] * 8), rel=0.01)
        assert hot < warm < cold

    def test_stall_added_on_top(self, session):
        from repro.moe.expert_cache import CacheStepResult

        costs = BatchCostModel(session)
        res = CacheStepResult(step=0, hit_tokens=32, miss_tokens=32,
                              n_hit_experts=8, uploads=(), evictions=(),
                              bytes_transferred=0.0, transfer_us=0.0,
                              stall_us=123.0)
        base = costs.cached_decode_step_us(
            [64] * 8, CacheStepResult(step=0, hit_tokens=32, miss_tokens=32,
                                      n_hit_experts=8, uploads=(),
                                      evictions=(), bytes_transferred=0.0,
                                      transfer_us=0.0, stall_us=0.0))
        assert costs.cached_decode_step_us([64] * 8, res) == pytest.approx(
            base + 123.0)

    def test_cache_aware_step_time_validates_stall(self, session):
        from repro.errors import SchedulingError

        costs = BatchCostModel(session)
        costs.decode_step_us([64])
        works = costs._works[(1, 64)]
        with pytest.raises(SchedulingError):
            cache_aware_step_time_us(works, costs._schedule_config(),
                                     MACHINE, transfer_stall_us=-1.0)


class TestServingIntegration:
    @pytest.fixture(scope="class")
    def session(self):
        model = MoETransformer(tiny_config("tiny-qw"))
        return InferenceSession(model, DS3)

    def _workload(self, seed=3):
        return poisson_workload(n_requests=8, mean_interarrival_us=1e4,
                                prompt_len=16, max_new_tokens=6,
                                vocab_size=64, seed=seed)

    def test_cache_metrics_in_serving_stats(self, session):
        cache = serving_expert_cache(
            session, vram_budget_bytes=32 * DS3.expert_bytes(BF16))
        server = ContinuousBatchingServer(session, expert_cache=cache)
        stats = server.replay(self._workload())
        s = stats.summary()
        for key in ("cache_hit_rate", "cache_evictions", "cache_uploads",
                    "cache_bytes_transferred_mb", "cache_stall_ms"):
            assert key in s and np.isfinite(s[key])
        assert server.cache_timeline.n_iterations > 0
        assert s["cache_uploads"] > 0           # the cache actually filled
        traj = server.cache_timeline.as_dict()["iterations"]
        assert all(0.0 <= p["hit_rate"] <= 1.0 for p in traj)

    def test_no_cache_keeps_summary_clean(self, session):
        server = ContinuousBatchingServer(session)
        s = server.replay(self._workload()).summary()
        assert "cache_hit_rate" not in s
        assert server.cache_timeline is None

    def test_routing_stream_requires_cache(self, session):
        with pytest.raises(ConfigError):
            ContinuousBatchingServer(
                session, routing_stream=lambda i, b: np.zeros(256))


class TestDeterminism:
    """Same seeds in, identical histories out (ISSUE 2 satellite)."""

    def test_cache_eviction_sequence_deterministic(self):
        def run():
            cache = make_cache(n_layers=2, n_experts=16, capacity=6,
                               admit_margin=1.0)
            results = []
            for i in range(40):
                hot = range(0, 4) if i < 20 else range(8, 12)
                results.append(cache.step(
                    hot_counts(2, 16, hot, seed=i), overlap_window_us=50.0))
            return cache, results

        c1, r1 = run()
        c2, r2 = run()
        assert c1.eviction_log == c2.eviction_log
        assert c1.upload_log == c2.upload_log
        assert c1.total_evictions > 0          # the shift forced evictions
        assert [r.hit_rate for r in r1] == [r.hit_rate for r in r2]
        assert c1.residency() == c2.residency()

    def test_server_replay_deterministic(self):
        model = MoETransformer(tiny_config("tiny-qw"))
        session = InferenceSession(model, DS3)
        wl = poisson_workload(n_requests=6, mean_interarrival_us=5e4,
                              prompt_len=16, max_new_tokens=6,
                              vocab_size=64, seed=13)

        def run():
            cache = serving_expert_cache(
                session, vram_budget_bytes=24 * DS3.expert_bytes(BF16))
            server = ContinuousBatchingServer(
                session, BatchSchedulerConfig(), expert_cache=cache)
            return server.replay(list(wl))

        s1, s2 = run(), run()
        assert s1.timings == s2.timings
        assert s1.summary() == s2.summary()
        assert (s1.expert_cache.as_dict() == s2.expert_cache.as_dict())
