"""Multi-GPU pipeline parallelism (a Section 5 injection capability).

The injection framework "includes support for multi-GPU pipelining": the
layer stack is partitioned into contiguous stages, one GPU per stage, with
activations crossing PCIe between stages.  Routed experts still execute on
the shared CPU pool.

Pipeline behavior this module reproduces:

- **prefill** processes multiple chunks, so stage s can work on chunk c
  while stage s+1 works on chunk c-1 -- GPU-bound prefill scales with the
  stage count, but the *shared* CPU expert pool serializes across stages
  and caps the gain once prefill is CPU-bound (which it is for the big
  MoE models: pipelining mainly buys VRAM headroom, not speed);
- **decode** of a single token traverses stages serially, so pipelining
  does not reduce batch-1 latency at all; its value is fitting higher
  precisions into aggregate VRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError
from ..hw.event_sim import Simulator, Task
from ..hw.roofline import pcie_transfer_time_us
from ..hw.spec import InterconnectSpec, MachineSpec
from .decode import DecodeScheduleConfig, batched_step_time_us
from .workload import DecodeLayerWork, PrefillLayerWork


@dataclass(frozen=True)
class PipelineConfig:
    """How layers map onto GPUs."""

    n_stages: int

    def __post_init__(self) -> None:
        if self.n_stages <= 0:
            raise SchedulingError("n_stages must be positive")

    def stage_of(self, layer_idx: int, n_layers: int) -> int:
        """Contiguous, balanced layer-to-stage assignment."""
        per_stage = -(-n_layers // self.n_stages)  # ceil
        return min(layer_idx // per_stage, self.n_stages - 1)


def simulate_pipelined_prefill(
    works_per_chunk: list[list[PrefillLayerWork]],
    machine: MachineSpec,
    config: PipelineConfig,
) -> Simulator:
    """Chunked prefill through a GPU pipeline with a shared CPU pool."""
    if not works_per_chunk:
        raise SchedulingError("prefill needs at least one chunk")
    sim = Simulator()
    gpus = [sim.resource(f"gpu{s}") for s in range(config.n_stages)]
    cpu = sim.resource("cpu")
    pcie = sim.resource("pcie")
    host = sim.resource("host")

    n_layers = len(works_per_chunk[0])
    # last_on_stage[s]: the previous chunk's final task on stage s --
    # a stage processes chunks in order.
    last_on_stage: dict[int, Task] = {}
    prev_chunk_layer: list[Task | None] = [None] * n_layers

    for c, works in enumerate(works_per_chunk):
        launch = sim.submit(f"launch:{c}", host, machine.gpu.graph_launch_us)
        prev: list[Task] = [launch]
        prev_stage = 0
        for k, w in enumerate(works):
            stage = config.stage_of(k, n_layers)
            deps = list(prev)
            if stage != prev_stage:
                # Activation handoff between GPUs over PCIe.
                deps = [sim.submit(
                    f"xfer:stage:{c}.{k}", pcie,
                    pcie_transfer_time_us(w.transfer_bytes,
                                          machine.interconnect),
                    deps=deps,
                )]
            if stage in last_on_stage:
                deps.append(last_on_stage[stage])

            attn = sim.submit(f"attn:{c}.{k}", gpus[stage], w.gpu_attn_us,
                              deps=deps)
            if w.cpu_routed_us > 0:
                to_cpu = sim.submit(
                    f"xfer:to_cpu:{c}.{k}", pcie,
                    pcie_transfer_time_us(w.transfer_bytes,
                                          machine.interconnect),
                    deps=[attn],
                )
                routed = sim.submit(f"cpu:{c}.{k}", cpu, w.cpu_routed_us,
                                    deps=[to_cpu])
                back = sim.submit(
                    f"xfer:to_gpu:{c}.{k}", pcie,
                    pcie_transfer_time_us(w.transfer_bytes,
                                          machine.interconnect),
                    deps=[routed],
                )
                shared = sim.submit(f"shared:{c}.{k}", gpus[stage],
                                    w.gpu_shared_us, deps=[attn])
                out = sim.submit(f"merge:{c}.{k}", gpus[stage], 2.0,
                                 deps=[shared, back])
            else:
                out = attn
            last_on_stage[stage] = out
            prev = [out]
            prev_stage = stage
            prev_chunk_layer[k] = out
    sim.drain()
    return sim


def simulate_pipelined_decode(
    works: list[DecodeLayerWork],
    machine: MachineSpec,
    config: PipelineConfig,
    n_tokens: int,
) -> Simulator:
    """Batch-1 decode through the pipeline: strictly serial per token."""
    if not works:
        raise SchedulingError("decode needs at least one layer")
    if n_tokens <= 0:
        raise SchedulingError("n_tokens must be positive")
    sim = Simulator()
    gpus = [sim.resource(f"gpu{s}") for s in range(config.n_stages)]
    cpu = sim.resource("cpu")
    pcie = sim.resource("pcie")
    host = sim.resource("host")

    n_layers = len(works)
    prev: list[Task] = []
    for t in range(n_tokens):
        launch = sim.submit(f"launch:{t}", host, machine.gpu.graph_launch_us,
                            deps=prev)
        prev = [launch]
        prev_stage = 0
        for k, w in enumerate(works):
            stage = config.stage_of(k, n_layers)
            deps = list(prev)
            if stage != prev_stage:
                deps = [sim.submit(
                    f"xfer:stage:{t}.{k}", pcie,
                    pcie_transfer_time_us(w.transfer_bytes,
                                          machine.interconnect),
                    deps=deps,
                )]
            attn = sim.submit(f"attn:{t}.{k}", gpus[stage], w.gpu_attn_us,
                              deps=deps)
            if w.cpu_routed_us > 0:
                to_cpu = sim.submit(
                    f"xfer:to_cpu:{t}.{k}", pcie,
                    pcie_transfer_time_us(w.transfer_bytes,
                                          machine.interconnect),
                    deps=[attn],
                )
                routed = sim.submit(f"cpu:{t}.{k}", cpu, w.cpu_routed_us,
                                    deps=[to_cpu])
                back = sim.submit(
                    f"xfer:to_gpu:{t}.{k}", pcie,
                    pcie_transfer_time_us(w.transfer_bytes,
                                          machine.interconnect),
                    deps=[routed],
                )
                shared = sim.submit(f"shared:{t}.{k}", gpus[stage],
                                    w.gpu_shared_us, deps=[attn])
                out = sim.submit(f"merge:{t}.{k}", gpus[stage], 2.0,
                                 deps=[shared, back])
            else:
                out = attn
            prev = [out]
            prev_stage = stage
    sim.drain()
    return sim


def vram_per_stage_bytes(total_gpu_bytes: float, config: PipelineConfig
                         ) -> float:
    """Per-GPU weight footprint under balanced layer partitioning."""
    if total_gpu_bytes < 0:
        raise SchedulingError("bytes must be non-negative")
    return total_gpu_bytes / config.n_stages


# -- continuous-batching stage split (steady-state interval model) -----------
#
# The task-graph simulators above answer "how long does one chunked prefill
# or one batch-1 decode take end to end".  The continuous scheduler needs a
# different number: the steady-state *iteration interval* of a decode batch
# flowing through the stages, where stage s works on iteration t while
# stage s+1 finishes iteration t-1.  The closed-form model below prices
# that interval from the same per-layer works the single-GPU pricing uses,
# so a one-stage config collapses to ``batched_step_time_us`` exactly.


def stage_works(
    works: list[DecodeLayerWork], config: PipelineConfig,
) -> list[list[DecodeLayerWork]]:
    """Partition per-layer works into the contiguous per-stage lists.

    Mirrors :meth:`PipelineConfig.stage_of`; trailing stages may be empty
    when there are more stages than layers.
    """
    if not works:
        raise SchedulingError("stage split needs at least one layer")
    n_layers = len(works)
    out: list[list[DecodeLayerWork]] = [[] for _ in range(config.n_stages)]
    for k, w in enumerate(works):
        out[config.stage_of(k, n_layers)].append(w)
    return out


def stage_boundary_bytes(
    works: list[DecodeLayerWork], config: PipelineConfig,
) -> tuple[float, ...]:
    """Activation bytes crossing each stage boundary, in layer order.

    One entry per boundary layer (a layer whose stage differs from its
    predecessor's), carrying that layer's per-iteration activation
    footprint.  Returned raw so callers can price the handoffs on the
    link of the moment (possibly fault-degraded).
    """
    n_layers = len(works)
    return tuple(
        works[k].transfer_bytes
        for k in range(1, n_layers)
        if config.stage_of(k, n_layers) != config.stage_of(k - 1, n_layers)
    )


def interstage_transfer_us(
    works: list[DecodeLayerWork], config: PipelineConfig,
    link: InterconnectSpec,
) -> float:
    """Total PCIe time of the activation handoffs at stage boundaries."""
    return sum(pcie_transfer_time_us(b, link)
               for b in stage_boundary_bytes(works, config))


def staged_interval_us(
    works: list[DecodeLayerWork],
    schedule_config: DecodeScheduleConfig,
    machine: MachineSpec,
    config: PipelineConfig,
) -> float:
    """Steady-state pipelined iteration interval, transfers excluded.

    ``min(serial, max(slowest stage, shared-CPU floor))``: consecutive
    iterations overlap across stages, so the interval is the slowest
    stage's own batched step time -- but the routed experts of *every*
    stage run on the one shared CPU pool, which serializes across stages
    and floors the interval at the summed CPU expert time (the paper's
    "pipelining buys VRAM headroom, not speed" once decode is CPU-bound).
    The serial clamp keeps a degenerate split (one non-empty stage, or
    overlap the stages cannot actually exploit) from pricing *better*
    than the unsplit step it decomposes.
    """
    serial = batched_step_time_us(works, schedule_config, machine)
    stages = [s for s in stage_works(works, config) if s]
    if len(stages) <= 1:
        return serial
    slowest = max(batched_step_time_us(s, schedule_config, machine)
                  for s in stages)
    cpu_floor = sum(w.cpu_routed_us for w in works)
    return min(serial, max(slowest, cpu_floor))


def staged_step_time_us(
    works: list[DecodeLayerWork],
    schedule_config: DecodeScheduleConfig,
    machine: MachineSpec,
    config: PipelineConfig,
) -> float:
    """Steady-state cost of one decode iteration across pipeline stages.

    The pipelined interval plus the stage-boundary activation handoffs
    over PCIe -- the handoff legs are latency the interval cannot hide,
    so a CPU-bound batch prices slightly *worse* than single-GPU while a
    GPU-bound one divides across stages.  With one stage this is exactly
    :func:`repro.sched.decode.batched_step_time_us` over the same works.
    """
    return (staged_interval_us(works, schedule_config, machine, config)
            + interstage_transfer_us(works, config, machine.interconnect))
