"""Ablation: NUMA-aware TP scaling with socket count.

The paper's tensor parallelism "scales with the number of sockets" (§3.3).
This sweep projects a 1/2/4-socket machine: TP decode time scales nearly
linearly with aggregate local bandwidth, while a NUMA-oblivious runtime
plateaus (its effective bandwidth grows at the oblivious efficiency, not
the socket count), so the TP advantage *widens* with the fabric.
"""

from dataclasses import replace

import pytest

from repro.bench import format_table
from repro.hw import KT_AVX512, paper_testbed
from repro.model import DS3
from repro.moe import MoELayerDims, NumaStrategy, moe_layer_time_us
from repro.tensor import BF16

DIMS = MoELayerDims(DS3.hidden, DS3.moe_intermediate, BF16)
COUNTS = [1, 0] * 4 + [0] * (DS3.n_experts - 8)


def _sweep():
    base = paper_testbed("a100")
    rows = []
    for sockets in (1, 2, 4):
        machine = replace(base, sockets=sockets)
        t_obl = moe_layer_time_us(COUNTS, DIMS, KT_AVX512, machine,
                                  NumaStrategy.OBLIVIOUS)
        t_tp = moe_layer_time_us(COUNTS, DIMS, KT_AVX512, machine,
                                 NumaStrategy.TENSOR_PARALLEL)
        rows.append((sockets, t_obl / 1e3, t_tp / 1e3, t_obl / t_tp))
    return rows


def test_ablation_socket_scaling(run_once):
    rows = run_once(_sweep)
    print()
    print(format_table(
        ["sockets", "oblivious (ms)", "tensor-par (ms)", "TP advantage"],
        rows,
        title="NUMA-TP scaling with socket count (DS-3 MoE layer, decode)",
    ))
    by = {r[0]: r for r in rows}
    # Single socket: the strategies coincide.
    assert by[1][3] == pytest.approx(1.0, rel=0.02)
    # TP time shrinks with sockets (near-linear until overheads bite).
    assert by[2][2] < by[1][2] * 0.65
    assert by[4][2] < by[2][2] * 0.75
    # The TP advantage widens with the fabric.
    assert by[4][3] > by[2][3] > by[1][3]

