"""Unit tests for trace/utilization accounting."""

import pytest

from repro.hw.event_sim import Simulator
from repro.hw.trace import Interval, Trace, _intersection_length, _merge


def _trace(*intervals):
    return Trace([Interval(*iv) for iv in intervals])


def test_merge_overlapping_segments():
    assert _merge([(0, 5), (3, 8), (10, 12)]) == [(0, 8), (10, 12)]


def test_merge_adjacent_segments():
    assert _merge([(0, 5), (5, 8)]) == [(0, 8)]


def test_intersection_length():
    a = [(0.0, 10.0)]
    b = [(5.0, 15.0)]
    assert _intersection_length(a, b) == 5.0


def test_intersection_disjoint():
    assert _intersection_length([(0.0, 1.0)], [(2.0, 3.0)]) == 0.0


def test_utilization_full_window():
    tr = _trace(("cpu", "a", 0.0, 5.0), ("cpu", "b", 5.0, 10.0))
    assert tr.utilization("cpu") == pytest.approx(1.0)


def test_utilization_with_gap():
    tr = _trace(("cpu", "a", 0.0, 2.0), ("cpu", "b", 8.0, 10.0))
    assert tr.utilization("cpu") == pytest.approx(0.4)


def test_utilization_concurrent_tasks_not_double_counted():
    tr = _trace(("cpu", "a", 0.0, 10.0), ("cpu", "b", 0.0, 10.0))
    assert tr.busy_time("cpu") == pytest.approx(10.0)
    assert tr.utilization("cpu") == pytest.approx(1.0)


def test_overlap_fraction_between_devices():
    tr = _trace(("cpu", "a", 0.0, 6.0), ("gpu", "k", 4.0, 10.0))
    assert tr.overlap_time("cpu", "gpu") == pytest.approx(2.0)
    assert tr.overlap_fraction("cpu", "gpu") == pytest.approx(0.2)


def test_span_and_empty_trace():
    assert Trace([]).span() == (0.0, 0.0)
    assert Trace([]).utilization("cpu") == 0.0


def test_count_and_total_duration_filters():
    tr = _trace(
        ("gpu", "launch:a", 0.0, 1.0),
        ("gpu", "launch:b", 1.0, 2.0),
        ("gpu", "kernel:a", 2.0, 6.0),
    )
    assert tr.count("gpu") == 3
    assert tr.count("gpu", name_prefix="launch:") == 2
    assert tr.total_duration("gpu", name_prefix="kernel:") == pytest.approx(4.0)


def test_from_simulator_keeps_zero_duration_markers():
    """ISSUE 5 satellite: zero-cost DONE tasks must not vanish.

    ``from_simulator`` used to filter ``duration > 0``, undercounting
    zero-cost marker tasks (graph-mode sync points) in ``count()`` and
    ``total_duration()``; they now survive as zero-width intervals.
    """
    sim = Simulator()
    res = sim.resource("cpu")
    sim.submit("real", res, 3.0)
    sim.submit("barrier", res, 0.0)
    sim.drain()
    tr = Trace.from_simulator(sim)
    assert tr.count() == 2                   # pre-fix: 1 (barrier dropped)
    assert tr.count("cpu", name_prefix="barrier") == 1
    assert tr.total_duration("cpu") == pytest.approx(3.0)
    # Width-sensitive queries still ignore the zero-width interval.
    assert tr.busy_time("cpu") == pytest.approx(3.0)
    assert tr.utilization("cpu") == pytest.approx(1.0)


def test_gantt_renders_all_resources():
    tr = _trace(("cpu", "a", 0.0, 5.0), ("gpu", "b", 5.0, 10.0))
    art = tr.render_gantt(width=20)
    assert "cpu" in art and "gpu" in art
    assert "#" in art
