"""Non-stationary traffic generators for stressing the control plane.

The Poisson and multi-turn workloads in :mod:`repro.serving.server` are
*stationary*: one arrival rate, one prompt shape, forever.  Real traffic
is not -- load ramps with the day, spikes when something goes viral, and
the *kind* of request shifts as a product's hot path moves.  Each
generator here produces a seeded, bit-reproducible
:class:`~repro.serving.server.TimedRequest` list exhibiting one of those
non-stationarities, and :func:`three_phase_scenario` chains all three
into the canonical traffic-shift suite the ``adaptive`` bench sweeps:

- :func:`diurnal_workload` -- a sinusoidal arrival-rate ramp (trough to
  peak and back over one period), the slow drift a static config is
  tuned against;
- :func:`flash_crowd_workload` -- a piecewise-constant base rate with a
  sudden burst window at a rate multiplier, the overload transient that
  punishes a small batch cap;
- :func:`hot_set_shift_workload` -- a mid-run swap of the dominant
  request archetype (short interactive prompts over one hot vocabulary
  slice vs long analytic prompts over another), the workload-mix drift
  that stales chunking and cache decisions.

All arrivals are generated sequentially from one
``np.random.default_rng(seed)`` stream (clock advances by an
exponential draw at the instantaneous rate), so a generator's output is
a pure function of its arguments.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .priority import Priority
from .server import TimedRequest
from .session import GenerationRequest


@dataclass(frozen=True)
class TrafficPhase:
    """One named phase of a composed traffic scenario (``[start, end)``)."""

    name: str
    start_us: float
    end_us: float

    def __post_init__(self) -> None:
        if self.end_us <= self.start_us:
            raise ConfigError("phase end must come after its start")

    def covers(self, t_us: float) -> bool:
        """Whether an arrival at ``t_us`` belongs to this phase."""
        return self.start_us <= t_us < self.end_us


def _request(rng: np.random.Generator, prompt_len: int, vocab_lo: int,
             vocab_hi: int, max_new_tokens: int) -> GenerationRequest:
    """One generation request with its prompt drawn from a vocab slice."""
    prompt = rng.integers(vocab_lo, vocab_hi, size=prompt_len)
    return GenerationRequest(prompt=prompt, max_new_tokens=max_new_tokens)


def diurnal_workload(
    n_requests: int,
    period_us: float,
    trough_interarrival_us: float,
    peak_factor: float,
    prompt_len: int,
    max_new_tokens: int,
    vocab_size: int,
    seed: int = 0,
    start_us: float = 0.0,
    priority: Priority = Priority.STANDARD,
) -> list[TimedRequest]:
    """Sinusoidal arrival-rate ramp: trough -> peak -> trough per period.

    The instantaneous arrival rate at time ``t`` is the trough rate
    (``1 / trough_interarrival_us``) scaled by
    ``1 + (peak_factor - 1) * sin^2(pi * (t - start_us) / period_us)``,
    so the rate ramps smoothly from the trough to ``peak_factor`` times
    it at mid-period and back.  Arrivals are drawn sequentially: each
    interarrival is an exponential sample at the rate in force when the
    previous request landed.
    """
    if n_requests <= 0:
        raise ConfigError("n_requests must be positive")
    if period_us <= 0 or trough_interarrival_us <= 0:
        raise ConfigError("period and interarrival must be positive")
    if peak_factor < 1:
        raise ConfigError("peak_factor must be >= 1")
    rng = np.random.default_rng(seed)
    out: list[TimedRequest] = []
    clock = start_us
    for _ in range(n_requests):
        phase = math.sin(math.pi * (clock - start_us) / period_us) ** 2
        factor = 1.0 + (peak_factor - 1.0) * phase
        clock += float(rng.exponential(trough_interarrival_us / factor))
        out.append(TimedRequest(
            arrival_us=clock,
            request=_request(rng, prompt_len, 1, vocab_size,
                             max_new_tokens),
            priority=priority,
        ))
    return out


def flash_crowd_workload(
    n_requests: int,
    base_interarrival_us: float,
    burst_start_us: float,
    burst_duration_us: float,
    burst_factor: float,
    prompt_len: int,
    max_new_tokens: int,
    vocab_size: int,
    seed: int = 0,
    start_us: float = 0.0,
    priority: Priority = Priority.STANDARD,
) -> list[TimedRequest]:
    """Steady arrivals with a sudden burst window at a rate multiplier.

    Outside ``[burst_start_us, burst_start_us + burst_duration_us)`` the
    arrival process is Poisson at ``1 / base_interarrival_us``; inside
    it the rate jumps by ``burst_factor`` -- the viral-moment transient.
    ``burst_start_us`` is measured from ``start_us``.
    """
    if n_requests <= 0:
        raise ConfigError("n_requests must be positive")
    if base_interarrival_us <= 0 or burst_duration_us <= 0:
        raise ConfigError("interarrival and burst duration must be positive")
    if burst_start_us < 0:
        raise ConfigError("burst_start_us must be >= 0")
    if burst_factor < 1:
        raise ConfigError("burst_factor must be >= 1")
    rng = np.random.default_rng(seed)
    out: list[TimedRequest] = []
    clock = start_us
    lo = start_us + burst_start_us
    hi = lo + burst_duration_us
    for _ in range(n_requests):
        factor = burst_factor if lo <= clock < hi else 1.0
        clock += float(rng.exponential(base_interarrival_us / factor))
        out.append(TimedRequest(
            arrival_us=clock,
            request=_request(rng, prompt_len, 1, vocab_size,
                             max_new_tokens),
            priority=priority,
        ))
    return out


def hot_set_shift_workload(
    n_requests: int,
    mean_interarrival_us: float,
    shift_us: float,
    short_prompt_len: int,
    long_prompt_len: int,
    max_new_tokens: int,
    vocab_size: int,
    hot_fraction: float = 0.9,
    seed: int = 0,
    start_us: float = 0.0,
    priority: Priority = Priority.STANDARD,
) -> list[TimedRequest]:
    """Mid-run swap of the dominant request archetype.

    Two archetypes share the stream: *interactive* (short prompts drawn
    from the lower half of the vocabulary) and *analytic* (long prompts
    from the upper half -- a different expert-routing hot set).  Before
    ``shift_us`` (measured from ``start_us``) an arrival is interactive
    with probability ``hot_fraction``; after it the mix inverts, so the
    prompt-length distribution and the token hot set both shift --
    exactly the drift that stales a tuned chunk budget and cache
    residency.
    """
    if n_requests <= 0:
        raise ConfigError("n_requests must be positive")
    if mean_interarrival_us <= 0:
        raise ConfigError("mean_interarrival_us must be positive")
    if shift_us < 0:
        raise ConfigError("shift_us must be >= 0")
    if not 0.5 <= hot_fraction <= 1:
        raise ConfigError("hot_fraction must be in [0.5, 1]")
    if vocab_size < 4:
        raise ConfigError("vocab_size too small to split into hot sets")
    if short_prompt_len <= 0 or long_prompt_len <= short_prompt_len:
        raise ConfigError(
            "need 0 < short_prompt_len < long_prompt_len")
    rng = np.random.default_rng(seed)
    out: list[TimedRequest] = []
    clock = start_us
    mid = vocab_size // 2
    for _ in range(n_requests):
        clock += float(rng.exponential(mean_interarrival_us))
        p_interactive = (hot_fraction if clock - start_us < shift_us
                         else 1.0 - hot_fraction)
        if rng.random() < p_interactive:
            req = _request(rng, short_prompt_len, 1, mid, max_new_tokens)
        else:
            req = _request(rng, long_prompt_len, mid, vocab_size,
                           max_new_tokens)
        out.append(TimedRequest(arrival_us=clock, request=req,
                                priority=priority))
    return out


def three_phase_scenario(
    prompt_len: int,
    max_new_tokens: int,
    vocab_size: int,
    phase_us: float = 30_000_000.0,
    trough_interarrival_us: float = 2_000_000.0,
    peak_factor: float = 3.0,
    burst_factor: float = 6.0,
    long_prompt_len: int | None = None,
    requests_per_phase: int | tuple[int, int, int] = 24,
    seed: int = 0,
) -> tuple[list[TimedRequest], tuple[TrafficPhase, ...]]:
    """The canonical 3-phase traffic-shift suite for the adaptive bench.

    Chains a diurnal ramp, a flash crowd (burst through the middle
    third of its phase), and a hot-set shift (archetype mix inverts at
    its phase midpoint) back to back, each ``phase_us`` long.
    ``requests_per_phase`` is one count for all phases or a per-phase
    triple (the phases' average rates differ, so matched counts keep
    each phase's arrivals inside its window); each phase draws from a
    phase-distinct sub-seed.  Arrivals a phase's exponential tail
    pushes past its window are clamped into it, so the phase boundaries
    partition the workload exactly.  Returns the merged, arrival-sorted
    workload plus the phase table benchmarks slice their per-phase
    goodput with.
    """
    if phase_us <= 0:
        raise ConfigError("phase_us must be positive")
    if isinstance(requests_per_phase, int):
        counts = (requests_per_phase,) * 3
    else:
        counts = tuple(requests_per_phase)
    if len(counts) != 3:
        raise ConfigError("requests_per_phase must be an int or a triple")
    long_len = (long_prompt_len if long_prompt_len is not None
                else 4 * prompt_len)
    diurnal = diurnal_workload(
        n_requests=counts[0], period_us=phase_us,
        trough_interarrival_us=trough_interarrival_us,
        peak_factor=peak_factor, prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, vocab_size=vocab_size,
        seed=seed, start_us=0.0)
    flash = flash_crowd_workload(
        n_requests=counts[1],
        base_interarrival_us=trough_interarrival_us,
        burst_start_us=phase_us / 3, burst_duration_us=phase_us / 3,
        burst_factor=burst_factor, prompt_len=prompt_len,
        max_new_tokens=max_new_tokens, vocab_size=vocab_size,
        seed=seed + 1, start_us=phase_us)
    shift = hot_set_shift_workload(
        n_requests=counts[2],
        mean_interarrival_us=trough_interarrival_us,
        shift_us=phase_us / 2, short_prompt_len=prompt_len,
        long_prompt_len=long_len, max_new_tokens=max_new_tokens,
        vocab_size=vocab_size, seed=seed + 2, start_us=2 * phase_us)
    phases = (
        TrafficPhase("diurnal-ramp", 0.0, phase_us),
        TrafficPhase("flash-crowd", phase_us, 2 * phase_us),
        TrafficPhase("hot-set-shift", 2 * phase_us, 3 * phase_us),
    )
    workload: list[TimedRequest] = []
    for phase, batch in zip(phases, (diurnal, flash, shift)):
        for timed in batch:
            if timed.arrival_us >= phase.end_us:
                # Clamp exponential-tail stragglers into their phase so
                # the phase table partitions the workload exactly.
                timed = dataclasses.replace(timed,
                                            arrival_us=phase.end_us - 1.0)
            workload.append(timed)
    return sorted(workload, key=lambda t: t.arrival_us), phases
