"""Teacher-forced NLL / perplexity metrics (WikiText-style quality).

Exact match is coarse; the negative log-likelihood a model assigns to the
*correct* answer tokens under each execution engine is a continuous
quality signal -- the language-model analogue of the WikiText perplexity
the paper's throughput experiments prompt with.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..train.tasks import Example


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=-1, keepdims=True)
    return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))


def answer_nll(engine, example: Example) -> float:
    """Mean NLL (nats/token) of the example's answer under the engine.

    The first answer token is scored from the prefill logits; subsequent
    tokens are teacher-forced through the engine's decode path -- i.e. the
    only path deferral/skipping modify, so the metric isolates their
    effect.  ``engine`` must expose
    ``decode_logits(prompt, n_steps, forced_tokens=...)``.
    """
    target = np.asarray(example.target)
    if target.size == 0:
        raise ConfigError("example has an empty answer")
    logits = engine.decode_logits(example.prompt, n_steps=0,
                                  forced_tokens=target)
    logp = _log_softmax(logits.astype(np.float64))
    picked = logp[np.arange(len(target)), target]
    return float(-picked.mean())


def corpus_nll(engine, examples: list[Example]) -> float:
    """Token-weighted mean answer NLL over a test split."""
    if not examples:
        raise ConfigError("no evaluation examples")
    total = 0.0
    tokens = 0
    for ex in examples:
        n = len(ex.target)
        total += answer_nll(engine, ex) * n
        tokens += n
    return total / tokens


def perplexity(nll_nats: float) -> float:
    """exp(NLL): the effective branching factor of the answer tokens."""
    if nll_nats < 0:
        raise ConfigError("NLL must be non-negative")
    return float(np.exp(nll_nats))
