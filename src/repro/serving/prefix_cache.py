"""Radix prefix-KV cache with a host-DRAM tier over the paged pool.

Production traffic against a KTransformers-style hybrid engine is
conversational *sessions*: every follow-up turn re-sends the system
prompt and the whole conversation so far, and a scheduler that
re-prefills from token zero pays for the same KV pages again and again.
This module provides the vLLM/SGLang-style answer at simulation
fidelity: a **page-quantized radix tree** whose nodes own page-granular
slots in the serving engine's shared :class:`~repro.model.paged.
PagedKVPool`.  Matching a new prompt against the tree yields the longest
*page-aligned* cached prefix; the scheduler prices only the fresh suffix
through (chunked) prefill and pins the shared pages by reference count
while the request is in flight.

Two placement tiers:

- **GPU**: the node's pages live in the pool (placeholder tokens, so
  tier occupancy is visible in ``pool.used_tokens`` and the serving
  timeline).
- **Host**: with a :class:`KVTierConfig`, idle unreferenced nodes are
  *parked* in host DRAM -- their pool pages free up for admissions, and
  the next turn of the session swaps them back in over PCIe (priced by
  :func:`repro.sched.kv_offload.kv_page_transfer_us` on the possibly
  fault-degraded link, with ahead-of-turn prefetch when the serving
  engine predicted the turn).

Structural invariants (fuzz-tested in ``tests/test_prefix_cache.py``):

- every node's token span is a whole number of pages, and children are
  keyed by their first page of tokens -- so two prompts diverging
  mid-page branch into distinct edges;
- nodes only ever *split* (never merge), so a page-aligned boundary,
  once created by an acquire, persists until the node is evicted --
  releases re-walk the tree and decrement exactly the nodes a prior
  acquire incremented (splits copy the refcount to both halves);
- a host (parked) node never has a GPU descendant, so evicting a GPU
  node can only orphan host nodes (which are dropped and counted);
- pool occupancy is conserved: the pool's used tokens always equal the
  sum of live request slots plus :attr:`RadixPrefixCache.gpu_tokens`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError, KVCacheError
from ..model.paged import PagedKVPool


@dataclass(frozen=True)
class PrefixCacheConfig:
    """Policy knobs of the radix prefix cache.

    ``capacity_tokens`` caps the cache's *total* footprint (GPU-resident
    plus host-parked tokens); ``None`` leaves the GPU side bounded only
    by the pool budget and the host side by the tier config.  Inserts
    that would exceed the cap first evict least-recently-used
    unreferenced entries, then trim to whatever fits.
    """

    capacity_tokens: int | None = None

    def __post_init__(self) -> None:
        if self.capacity_tokens is not None and self.capacity_tokens <= 0:
            raise ConfigError("capacity_tokens must be positive (or None)")


@dataclass(frozen=True)
class KVTierConfig:
    """Host-DRAM KV tier policy for parked sessions.

    ``host_budget_tokens`` bounds the host stash; parking past it drops
    the least-recently-used host entries.  A GPU-resident cache entry is
    *parked* (pages freed, contents host-side) once it has been
    unreferenced for ``idle_park_us`` of serving-clock time.  With
    ``prefetch`` on, the serving engine starts the swap-in transfer
    ahead of a session's *predicted* next turn (EWMA over observed
    think times with smoothing ``think_ewma_alpha``), so a well-predicted
    turn pays no swap-in stall at all.
    """

    host_budget_tokens: int = 65536
    idle_park_us: float = 1_000_000.0
    prefetch: bool = True
    think_ewma_alpha: float = 0.5

    def __post_init__(self) -> None:
        if self.host_budget_tokens <= 0:
            raise ConfigError("host_budget_tokens must be positive")
        if self.idle_park_us < 0:
            raise ConfigError("idle_park_us must be >= 0")
        if not (0.0 < self.think_ewma_alpha <= 1.0):
            raise ConfigError("think_ewma_alpha must be in (0, 1]")


@dataclass(frozen=True)
class MatchProbe:
    """Result of a read-only longest-prefix probe.

    ``matched_tokens`` is the page-aligned cached prefix length (always
    strictly shorter than the probed prompt, so at least one token
    remains to prefill); ``unpark_tokens`` of those currently live in
    the host tier and must swap in before reuse.  ``nodes`` is the
    walked path -- an opaque protect set the admission path hands to
    :meth:`RadixPrefixCache.evict_pages` so making room for the request
    can never evict the very prefix it is about to acquire.
    """

    matched_tokens: int
    unpark_tokens: int
    nodes: tuple = ()


class _Node:
    """One radix-tree node owning a page-aligned span of prompt tokens."""

    __slots__ = ("tokens", "parent", "children", "slot", "on_gpu", "refs",
                 "last_use_us", "order")

    def __init__(self, tokens: tuple, parent: "_Node | None",
                 on_gpu: bool = True, refs: int = 0,
                 last_use_us: float = 0.0, order: int = 0) -> None:
        self.tokens = tokens
        self.parent = parent
        self.children: dict[tuple, _Node] = {}
        self.slot: int | None = None
        self.on_gpu = on_gpu
        self.refs = refs
        self.last_use_us = last_use_us
        self.order = order


class RadixPrefixCache:
    """Page-granular radix tree of cached prompt prefixes over a pool.

    The serving engine is the only writer; all mutation happens through
    :meth:`acquire` / :meth:`release` / :meth:`insert` /
    :meth:`evict_pages` / :meth:`park_idle`, each deterministic given
    the call sequence (LRU ties break on a monotone insertion order),
    so a replayed workload reproduces the tree bit-for-bit.
    """

    def __init__(self, pool: PagedKVPool,
                 config: PrefixCacheConfig | None = None,
                 tier: KVTierConfig | None = None) -> None:
        self.pool = pool
        self.config = config or PrefixCacheConfig()
        self.tier = tier
        self.page_tokens = pool.page_tokens
        self._root = _Node(tokens=(), parent=None)
        self._order = 0
        self._gpu_tokens = 0
        self._host_tokens = 0
        self._total_refs = 0
        # Cumulative traffic counters (monotone; the serving engine
        # copies them into SessionStats / prices them into swap bytes).
        self.inserted_tokens = 0
        self.evicted_tokens = 0
        self.parked_tokens = 0
        self.unparked_tokens = 0
        self.dropped_host_tokens = 0

    # -- observability -------------------------------------------------------

    @property
    def gpu_tokens(self) -> int:
        """Cached tokens whose pages are currently pool-resident."""
        return self._gpu_tokens

    @property
    def host_tokens(self) -> int:
        """Cached tokens currently parked in the host tier."""
        return self._host_tokens

    @property
    def gpu_pages(self) -> int:
        """Pool pages the cache currently occupies."""
        return self._gpu_tokens // self.page_tokens

    @property
    def total_refs(self) -> int:
        """Outstanding acquire references across every node."""
        return self._total_refs

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the tree (root excluded)."""
        return sum(1 for _ in self._iter_nodes())

    def _iter_nodes(self):
        """Depth-first iteration over every non-root node."""
        stack = list(self._root.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    # -- matching ------------------------------------------------------------

    def _floor_page(self, n: int) -> int:
        return (n // self.page_tokens) * self.page_tokens

    def _match_cap(self, tokens: tuple) -> int:
        """Longest prefix the cache may ever serve for this prompt.

        Page-aligned and strictly shorter than the prompt: a request
        must always prefill at least its final token, so a fully-cached
        prompt cannot skip prefill entirely (mirroring real engines,
        where the last token's logits must be recomputed).
        """
        if len(tokens) <= 1:
            return 0
        return self._floor_page(len(tokens) - 1)

    @staticmethod
    def _common_len(a: tuple, b: tuple) -> int:
        n = min(len(a), len(b))
        for i in range(n):
            if a[i] != b[i]:
                return i
        return n

    def probe(self, tokens) -> MatchProbe:
        """Read-only longest-prefix match of ``tokens`` against the tree.

        Returns the page-aligned match length, how many of those tokens
        would need unparking from the host tier, and the walked path as
        a protect set for eviction.  Mutates nothing.
        """
        tokens = tuple(tokens)
        cap = self._match_cap(tokens)
        node, pos, unpark = self._root, 0, 0
        path: list[_Node] = []
        while pos < cap:
            child = node.children.get(tokens[pos:pos + self.page_tokens])
            if child is None:
                break
            take = self._common_len(child.tokens, tokens[pos:])
            usable = min(self._floor_page(take), cap - pos)
            if usable == 0:
                break
            path.append(child)
            if not child.on_gpu:
                unpark += usable
            pos += usable
            if usable < len(child.tokens):
                break
            node = child
        return MatchProbe(pos, unpark, tuple(path))

    def acquire(self, tokens, now: float) -> tuple[int, int]:
        """Pin the longest cached prefix of ``tokens``; returns usage.

        Splits nodes at the page-aligned match boundary so the walked
        path covers the match exactly, unparks any host-resident path
        node back into pool pages (the caller must have reserved
        headroom -- see :meth:`probe`'s ``unpark_tokens``), increments
        every covering node's refcount, and returns
        ``(matched_tokens, unparked_tokens)``.
        """
        tokens = tuple(tokens)
        cap = self._match_cap(tokens)
        node, pos, unparked = self._root, 0, 0
        while pos < cap:
            child = node.children.get(tokens[pos:pos + self.page_tokens])
            if child is None:
                break
            take = self._common_len(child.tokens, tokens[pos:])
            usable = min(self._floor_page(take), cap - pos)
            if usable == 0:
                break
            if usable < len(child.tokens):
                child = self._split(child, usable)
            if not child.on_gpu:
                self._unpark(child)
                unparked += usable
            child.refs += 1
            self._total_refs += 1
            child.last_use_us = now
            pos += usable
            node = child
        return pos, unparked

    def release(self, tokens, matched: int, now: float) -> None:
        """Drop the references a prior ``acquire(tokens)`` took.

        Re-walks the tree along ``tokens``: boundaries only ever get
        finer (nodes split, never merge) and referenced nodes cannot be
        evicted, so the walk covers exactly the acquired span -- each
        covering node loses one reference.  Raises
        :class:`~repro.errors.KVCacheError` on a walk mismatch or a
        refcount underflow (both would indicate double-release).
        """
        if matched == 0:
            return
        tokens = tuple(tokens)
        node, pos = self._root, 0
        while pos < matched:
            child = node.children.get(tokens[pos:pos + self.page_tokens])
            if child is None or len(child.tokens) > matched - pos:
                raise KVCacheError(
                    f"release walk mismatch at token {pos} of {matched}")
            if child.refs <= 0:
                raise KVCacheError("prefix refcount underflow")
            child.refs -= 1
            self._total_refs -= 1
            child.last_use_us = max(child.last_use_us, now)
            pos += len(child.tokens)
            node = child

    # -- structural mutation -------------------------------------------------

    def _next_order(self) -> int:
        self._order += 1
        return self._order

    def _split(self, node: _Node, offset: int) -> _Node:
        """Split ``node`` at page-aligned ``offset``; returns the front half.

        Both halves inherit the refcount (every holder's later release
        re-walks through both), the placement tier, and the last-use
        stamp; GPU halves get fresh pool slots sized to their spans
        (free-then-allocate, so the page count is conserved and the
        transient allocation always fits).
        """
        if offset <= 0 or offset >= len(node.tokens):
            raise KVCacheError(f"bad split offset {offset}")
        front = _Node(node.tokens[:offset], node.parent, on_gpu=node.on_gpu,
                      refs=node.refs, last_use_us=node.last_use_us,
                      order=self._next_order())
        node.parent.children[node.tokens[:self.page_tokens]] = front
        node.tokens = node.tokens[offset:]
        node.parent = front
        node.order = self._next_order()
        front.children = {node.tokens[:self.page_tokens]: node}
        if node.on_gpu:
            self.pool.free(node.slot)
            front.slot = self.pool.allocate()
            self.pool.append_placeholder(front.slot, len(front.tokens))
            node.slot = self.pool.allocate()
            self.pool.append_placeholder(node.slot, len(node.tokens))
        self._total_refs += node.refs   # the copy on the back half
        return front

    def _unpark(self, node: _Node) -> None:
        """Swap one host node's pages back into the pool (GPU tier)."""
        n = len(node.tokens)
        node.slot = self.pool.allocate()
        self.pool.append_placeholder(node.slot, n)
        node.on_gpu = True
        self._host_tokens -= n
        self._gpu_tokens += n
        self.unparked_tokens += n

    def insert(self, tokens, now: float, max_new_pages: int) -> int:
        """Cache the page-aligned prefix of ``tokens``; returns new tokens.

        Walks the existing tree (refreshing recency and splitting at a
        divergence), then attaches the uncached remainder as one new
        GPU node -- unless the walk ends under a host-parked node (the
        prefix is already cached, and a GPU node must never sit below a
        host one).  ``max_new_pages`` caps the pool pages the insert
        may claim (the serving engine passes its admission headroom);
        shortfalls first evict LRU unreferenced entries, then trim the
        insert to whatever fits (possibly nothing).
        """
        tokens = tuple(tokens)
        n = self._floor_page(len(tokens))
        node, pos = self._root, 0
        path: list[_Node] = []
        while pos < n:
            child = node.children.get(tokens[pos:pos + self.page_tokens])
            if child is None:
                break
            take = min(self._floor_page(
                self._common_len(child.tokens, tokens[pos:])), n - pos)
            if take == 0:
                break
            if take < len(child.tokens):
                child = self._split(child, take)
            if not child.on_gpu:
                return 0        # already cached (host tier); never extend below
            child.last_use_us = max(child.last_use_us, now)
            path.append(child)
            pos += take
            node = child
        remaining = n - pos
        if remaining <= 0:
            return 0
        if self.config.capacity_tokens is not None:
            total = self._gpu_tokens + self._host_tokens
            over = total + remaining - self.config.capacity_tokens
            if over > 0:
                self.evict_pages(-(-over // self.page_tokens), now,
                                 protect=path)
                room = max(0, self.config.capacity_tokens
                           - self._gpu_tokens - self._host_tokens)
                remaining = min(remaining, self._floor_page(room))
        pages = remaining // self.page_tokens
        grant = min(max_new_pages, self.pool.free_pages)
        if pages > grant:
            grant += self.evict_pages(pages - grant, now, protect=path)
            grant = min(grant, self.pool.free_pages)
        pages = min(pages, max(0, grant))
        remaining = pages * self.page_tokens
        if remaining <= 0:
            return 0
        child = _Node(tokens[pos:pos + remaining], node, on_gpu=True,
                      last_use_us=now, order=self._next_order())
        child.slot = self.pool.allocate()
        self.pool.append_placeholder(child.slot, remaining)
        node.children[child.tokens[:self.page_tokens]] = child
        self._gpu_tokens += remaining
        self.inserted_tokens += remaining
        return remaining

    # -- eviction and tiering ------------------------------------------------

    def _evictable(self, node: _Node, protect_ids: set[int]) -> bool:
        return (node.on_gpu and node.refs == 0
                and id(node) not in protect_ids
                and not any(c.on_gpu for c in node.children.values()))

    def _drop_host_subtree(self, node: _Node) -> None:
        """Detach and count every host descendant of ``node``."""
        for child in list(node.children.values()):
            self._drop_host_subtree(child)
            self._host_tokens -= len(child.tokens)
            self.dropped_host_tokens += len(child.tokens)
        node.children.clear()

    def _evict(self, node: _Node) -> int:
        """Remove one node (and its host subtree); returns pages freed."""
        self._drop_host_subtree(node)
        n = len(node.tokens)
        pages = 0
        if node.on_gpu:
            self.pool.free(node.slot)
            self._gpu_tokens -= n
            self.evicted_tokens += n
            pages = n // self.page_tokens
        else:
            self._host_tokens -= n
            self.dropped_host_tokens += n
        del node.parent.children[node.tokens[:self.page_tokens]]
        node.parent = None
        return pages

    def evict_pages(self, n_pages: int, now: float,
                    protect=()) -> int:
        """Free up to ``n_pages`` pool pages by evicting LRU entries.

        Candidates are unreferenced GPU nodes with no GPU children
        (deepest-first by construction) outside the ``protect`` set;
        least-recently-used wins, ties broken by creation order so the
        choice is deterministic.  Evicting a node drops any host-parked
        descendants (they become unreachable).  Returns the pages
        actually freed -- possibly fewer than asked when everything
        left is referenced or protected.
        """
        protect_ids = {id(p) for p in protect}
        freed = 0
        while freed < n_pages:
            victim = None
            for node in self._iter_nodes():
                if not self._evictable(node, protect_ids):
                    continue
                if victim is None or ((node.last_use_us, node.order)
                                      < (victim.last_use_us, victim.order)):
                    victim = node
            if victim is None:
                break
            freed += self._evict(victim)
        return freed

    def _drop_lru_host_leaf(self) -> bool:
        """Drop the least-recently-used childless host node; False if none."""
        victim = None
        for node in self._iter_nodes():
            if node.on_gpu or node.children:
                continue
            if victim is None or ((node.last_use_us, node.order)
                                  < (victim.last_use_us, victim.order)):
                victim = node
        if victim is None:
            return False
        self._host_tokens -= len(victim.tokens)
        self.dropped_host_tokens += len(victim.tokens)
        del victim.parent.children[victim.tokens[:self.page_tokens]]
        victim.parent = None
        return True

    def _host_room(self, n: int) -> bool:
        """Make host-budget room for ``n`` tokens; False if impossible."""
        if self.tier is None or n > self.tier.host_budget_tokens:
            return False
        while self._host_tokens + n > self.tier.host_budget_tokens:
            if not self._drop_lru_host_leaf():
                return False
        return True

    def park_idle(self, now: float) -> int:
        """Park idle unreferenced GPU entries into the host tier.

        Leaf-first (a node parks only once no GPU child remains, so the
        host-below-GPU invariant holds), eligibility is
        ``idle >= tier.idle_park_us`` with zero references.  Host-budget
        overflow drops LRU host leaves; an entry that cannot fit the
        host budget at all is evicted outright instead of parked.
        Returns the tokens parked by this call (the engine prices the
        swap-out bytes off the critical path -- parking never stalls
        the serving clock).  No-op without a tier config.
        """
        if self.tier is None:
            return 0
        parked = 0
        progress = True
        while progress:
            progress = False
            for node in self._iter_nodes():
                if (not node.on_gpu or node.refs > 0
                        or any(c.on_gpu for c in node.children.values())
                        or now - node.last_use_us < self.tier.idle_park_us):
                    continue
                n = len(node.tokens)
                if not self._host_room(n):
                    self._evict(node)
                else:
                    self.pool.free(node.slot)
                    node.slot = None
                    node.on_gpu = False
                    self._gpu_tokens -= n
                    self._host_tokens += n
                    self.parked_tokens += n
                    parked += n
                progress = True
                break       # tree mutated: restart the scan
        return parked
