"""Table 1: configuration of evaluated MoE models."""

from repro.bench import format_table, table1_models


def test_table1_models(run_once):
    rows = run_once(table1_models)
    print()
    print(format_table(
        ["Model", "Total (B)", "GPU (B)", "CPU (B)", "MoE layers",
         "Routed experts", "Routing"],
        rows,
        title="Table 1: Configuration of evaluated MoE models",
    ))
    by_name = {r[0]: r for r in rows}
    assert round(by_name["DS3"][1]) == 671
    assert round(by_name["DS2"][1]) == 236
    assert round(by_name["QW2"][1]) == 57
    assert by_name["DS3"][5] == 256 and by_name["DS3"][6] == "Top-8"
    assert by_name["DS2"][5] == 160 and by_name["DS2"][6] == "Top-6"
    assert by_name["QW2"][5] == 64 and by_name["QW2"][6] == "Top-8"
