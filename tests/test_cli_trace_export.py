"""Tests for the CLI and Chrome-trace export."""

import json

import pytest

from repro.cli import build_parser, main
from repro.hw import Simulator, Trace


class TestChromeTraceExport:
    def _trace(self):
        sim = Simulator()
        cpu = sim.resource("cpu")
        gpu = sim.resource("gpu")
        sim.submit("expert", cpu, 10.0)
        sim.submit("attn", gpu, 5.0)
        sim.drain()
        return Trace.from_simulator(sim)

    def test_event_structure(self):
        doc = self._trace().to_chrome_trace()
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {m["args"]["name"] for m in metas} == {"cpu", "gpu"}
        assert len(spans) == 2
        for s in spans:
            assert s["dur"] > 0 and "ts" in s

    def test_save_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        self._trace().save_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 4

    def test_pids_distinct_per_resource(self):
        doc = self._trace().to_chrome_trace()
        pids = {e["args"]["name"]: e["pid"]
                for e in doc["traceEvents"] if e["ph"] == "M"}
        assert pids["cpu"] != pids["gpu"]


class TestCLI:
    def test_demo(self, capsys):
        assert main(["demo", "--tokens", "3"]) == 0
        out = capsys.readouterr().out
        assert "tiny-ds" in out

    def test_simulate_decode(self, capsys):
        assert main(["simulate", "--model", "qw2", "--tokens", "2"]) == 0
        assert "tokens/s" in capsys.readouterr().out

    def test_simulate_prefill(self, capsys):
        assert main(["simulate", "--phase", "prefill", "--model", "qw2",
                     "--prompt-len", "128"]) == 0
        assert "prefill" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--model", "qw2", "--tokens", "2",
                     "--prompt-len", "128"]) == 0
        out = capsys.readouterr().out
        assert "Fiddler" in out and "KTransformers" in out

    def test_plan(self, capsys):
        assert main(["plan", "--model", "qw2"]) == 0
        out = capsys.readouterr().out
        assert "Deferral" in out

    def test_trace_export(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(["trace", "--model", "qw2", "--tokens", "1",
                     "--out", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--model", "gpt4"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
