"""Tests for dynamic work scheduling and NUMA placement strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SchedulingError
from repro.hw import KT_AMX, KT_AVX512, paper_testbed, single_socket_testbed
from repro.kernels import AMXKernel
from repro.moe import (
    MoELayerDims,
    NumaStrategy,
    TPShardedExpert,
    WorkItem,
    dynamic_schedule,
    expert_time_us,
    make_expert,
    moe_layer_time_us,
    oblivious_cpu,
    speedup,
    static_schedule,
)
from repro.tensor import BF16

DS3_DIMS = MoELayerDims(hidden=7168, intermediate=2048, dtype=BF16)


class TestScheduling:
    def test_balanced_items_similar_makespan(self):
        items = [WorkItem(100.0, i) for i in range(16)]
        st_out = static_schedule(items, 4)
        dy_out = dynamic_schedule(items, 4)
        assert dy_out.makespan_us <= st_out.makespan_us * 1.1

    def test_imbalanced_items_dynamic_wins(self):
        """One hot expert 10x the rest: paper reports up to 1.83x."""
        items = [WorkItem(1000.0, 0)] + [WorkItem(100.0, i) for i in range(1, 8)]
        st_out = static_schedule(items, 8)
        dy_out = dynamic_schedule(items, 8, chunk_us=50.0)
        gain = speedup(st_out, dy_out)
        assert gain > 1.5

    def test_dynamic_chunking_counts(self):
        items = [WorkItem(100.0, 0)]
        out = dynamic_schedule(items, 2, chunk_us=30.0)
        assert out.n_subtasks == 4  # 30+30+30+10

    def test_dynamic_never_loses_badly(self):
        rng = np.random.default_rng(0)
        items = [WorkItem(float(d), i)
                 for i, d in enumerate(rng.uniform(10, 500, size=20))]
        st_out = static_schedule(items, 6)
        dy_out = dynamic_schedule(items, 6)
        assert dy_out.makespan_us <= st_out.makespan_us * 1.05

    def test_imbalance_metric(self):
        items = [WorkItem(300.0, 0), WorkItem(100.0, 1)]
        out = static_schedule(items, 2)
        assert out.imbalance == pytest.approx(300.0 / 200.0)

    def test_empty_items(self):
        assert static_schedule([], 4).makespan_us == pytest.approx(2.0)
        assert dynamic_schedule([], 4).makespan_us == pytest.approx(2.0)

    def test_invalid_threads(self):
        with pytest.raises(SchedulingError):
            static_schedule([], 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SchedulingError):
            WorkItem(-1.0, 0)

    def test_bad_chunk_rejected(self):
        with pytest.raises(SchedulingError):
            dynamic_schedule([], 2, chunk_us=0.0)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=30),
    st.integers(1, 16),
)
def test_property_dynamic_at_least_total_over_threads(durations, n_threads):
    items = [WorkItem(d, i) for i, d in enumerate(durations)]
    out = dynamic_schedule(items, n_threads)
    lower_bound = sum(durations) / n_threads
    assert out.makespan_us >= lower_bound * 0.99


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(1.0, 500.0), min_size=1, max_size=20),
    st.integers(1, 8),
)
def test_property_static_makespan_at_least_max_item(durations, n_threads):
    items = [WorkItem(d, i) for i, d in enumerate(durations)]
    out = static_schedule(items, n_threads)
    assert out.makespan_us >= max(durations)


class TestNumaTiming:
    def test_tensor_parallel_beats_oblivious_decode(self):
        """Paper: up to 1.63x decode speedup from NUMA-aware TP."""
        machine = paper_testbed()
        counts = [1] * 8  # decode: 8 active experts, 1 token each
        t_obl = moe_layer_time_us(counts, DS3_DIMS, KT_AVX512, machine,
                                  NumaStrategy.OBLIVIOUS)
        t_tp = moe_layer_time_us(counts, DS3_DIMS, KT_AVX512, machine,
                                 NumaStrategy.TENSOR_PARALLEL)
        assert 1.3 <= t_obl / t_tp <= 2.0

    def test_tensor_parallel_beats_expert_parallel_on_placement_skew(self):
        """When a token's experts all live on one socket, EP idles the other."""
        machine = paper_testbed()
        counts = [1, 0] * 4  # active experts 0,2,4,6 all pinned to socket 0
        t_ep = moe_layer_time_us(counts, DS3_DIMS, KT_AVX512, machine,
                                 NumaStrategy.EXPERT_PARALLEL)
        t_tp = moe_layer_time_us(counts, DS3_DIMS, KT_AVX512, machine,
                                 NumaStrategy.TENSOR_PARALLEL)
        assert t_tp < t_ep * 0.7

    def test_expert_parallel_good_when_placement_balanced(self):
        machine = paper_testbed()
        counts = [1] * 8  # ids 0..7 alternate sockets evenly
        t_ep = moe_layer_time_us(counts, DS3_DIMS, KT_AVX512, machine,
                                 NumaStrategy.EXPERT_PARALLEL)
        t_tp = moe_layer_time_us(counts, DS3_DIMS, KT_AVX512, machine,
                                 NumaStrategy.TENSOR_PARALLEL)
        assert t_ep < t_tp * 1.2

    def test_dual_socket_oblivious_modest_gain(self):
        """Paper (2.3): Fiddler 6.9 ms -> 5.8 ms, only ~16% from 2nd socket."""
        single = single_socket_testbed()
        dual = paper_testbed()
        counts = [1] * 8
        t1 = moe_layer_time_us(counts, DS3_DIMS, KT_AVX512, single,
                               NumaStrategy.OBLIVIOUS)
        t2 = moe_layer_time_us(counts, DS3_DIMS, KT_AVX512, dual,
                               NumaStrategy.OBLIVIOUS)
        assert 1.05 <= t1 / t2 <= 1.35

    def test_single_socket_strategies_equivalent(self):
        machine = single_socket_testbed()
        counts = [2, 1, 1]
        times = [
            moe_layer_time_us(counts, DS3_DIMS, KT_AMX, machine, s)
            for s in NumaStrategy
        ]
        assert max(times) / min(times) < 1.01

    def test_zero_tokens_zero_time(self):
        machine = paper_testbed()
        assert moe_layer_time_us([], DS3_DIMS, KT_AMX, machine,
                                 NumaStrategy.TENSOR_PARALLEL) == 0.0
        assert moe_layer_time_us([0, 0], DS3_DIMS, KT_AMX, machine,
                                 NumaStrategy.OBLIVIOUS) == 0.0

    def test_oblivious_cpu_merges_sockets(self):
        from repro.moe import oblivious_efficiency
        machine = paper_testbed()
        cpu = oblivious_cpu(machine)
        assert cpu.cores == 72
        eff = oblivious_efficiency(machine)
        assert 0.5 <= eff <= 0.65   # dual-socket random-access regime
        assert cpu.dram_bandwidth == pytest.approx(440e9 * eff)

    def test_oblivious_efficiency_degrades_with_sockets(self):
        from dataclasses import replace
        from repro.moe import oblivious_efficiency
        base = paper_testbed()
        e1 = oblivious_efficiency(replace(base, sockets=1))
        e2 = oblivious_efficiency(replace(base, sockets=2))
        e4 = oblivious_efficiency(replace(base, sockets=4))
        assert e1 == 1.0
        assert e1 > e2 > e4
        # Streaming access always beats random access.
        s2 = oblivious_efficiency(replace(base, sockets=2),
                                  streaming_access=True)
        assert s2 > e2

    def test_expert_time_tp_shards_reduce_work(self):
        full = expert_time_us(KT_AMX, 16, DS3_DIMS, paper_testbed().cpu)
        half = expert_time_us(KT_AMX, 16, DS3_DIMS, paper_testbed().cpu,
                              tp_shards=2)
        assert half < full


class TestTPFunctional:
    def test_shard_sum_equals_full_expert(self):
        rng = np.random.default_rng(1)
        expert = make_expert(32, 64, rng)
        sharded = TPShardedExpert.split(expert, 2)
        x = rng.standard_normal((3, 32)).astype(np.float32)
        kernel = AMXKernel()
        from repro.moe import expert_forward
        full = expert_forward(x, expert, kernel)
        assert np.allclose(sharded.forward(x, kernel), full, atol=1e-3)

    def test_partials_differ_but_sum(self):
        rng = np.random.default_rng(2)
        expert = make_expert(32, 64, rng)
        sharded = TPShardedExpert.split(expert, 4)
        x = rng.standard_normal((2, 32)).astype(np.float32)
        kernel = AMXKernel()
        partials = [sharded.forward_partial(s, x, kernel) for s in range(4)]
        assert not np.allclose(partials[0], partials[1])
        total = sum(partials)
        from repro.moe import expert_forward
        assert np.allclose(total, expert_forward(x, expert, kernel), atol=1e-3)

    def test_indivisible_shards_rejected(self):
        rng = np.random.default_rng(3)
        expert = make_expert(32, 50, rng)
        with pytest.raises(ConfigError):
            TPShardedExpert.split(expert, 4)
