"""Unit + property tests for group-wise quantization and Int4 packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import QuantizationError
from repro.tensor import (
    INT4,
    INT8,
    dequantize,
    pack_int4,
    quantization_error_bound,
    quantize,
    unpack_int4,
)


class TestInt8:
    def test_roundtrip_error_within_half_scale(self):
        rng = np.random.default_rng(0)
        w = rng.standard_normal((8, 64)).astype(np.float32)
        qt = quantize(w, INT8, group_size=32)
        err = np.abs(dequantize(qt) - w).max()
        assert err <= quantization_error_bound(qt) + 1e-6

    def test_zero_matrix_roundtrips_exactly(self):
        w = np.zeros((4, 32), dtype=np.float32)
        qt = quantize(w, INT8)
        assert np.array_equal(dequantize(qt), w)

    def test_scales_shape(self):
        w = np.ones((3, 96), dtype=np.float32)
        qt = quantize(w, INT8, group_size=32)
        assert qt.scales.shape == (3, 3)

    def test_payload_is_int8(self):
        w = np.ones((2, 32), dtype=np.float32)
        qt = quantize(w, INT8)
        assert qt.payload.dtype == np.int8

    def test_storage_smaller_than_fp32(self):
        w = np.random.default_rng(1).standard_normal((64, 256)).astype(np.float32)
        qt = quantize(w, INT8)
        assert qt.nbytes() < w.nbytes / 3

    def test_bad_group_size_rejected(self):
        with pytest.raises(QuantizationError):
            quantize(np.ones((2, 33)), INT8, group_size=32)

    def test_scalar_rejected(self):
        with pytest.raises(QuantizationError):
            quantize(np.float32(1.0), INT8)


class TestInt4:
    def test_roundtrip_error_within_half_scale(self):
        rng = np.random.default_rng(2)
        w = rng.standard_normal((8, 64)).astype(np.float32)
        qt = quantize(w, INT4, group_size=32)
        err = np.abs(dequantize(qt) - w).max()
        assert err <= quantization_error_bound(qt) + 1e-6

    def test_int4_payload_half_the_bytes_of_int8(self):
        w = np.random.default_rng(3).standard_normal((16, 128)).astype(np.float32)
        q8 = quantize(w, INT8)
        q4 = quantize(w, INT4)
        assert q4.payload.nbytes * 2 == q8.payload.nbytes

    def test_pack_unpack_exact(self):
        rng = np.random.default_rng(4)
        v = rng.integers(-8, 8, size=(5, 64), dtype=np.int8)
        assert np.array_equal(unpack_int4(pack_int4(v), v.shape), v)

    def test_pack_odd_axis_rejected(self):
        with pytest.raises(QuantizationError):
            pack_int4(np.zeros((2, 3), dtype=np.int8))

    def test_pack_out_of_range_rejected(self):
        with pytest.raises(QuantizationError):
            pack_int4(np.full((2, 2), 9, dtype=np.int8))

    def test_int4_coarser_than_int8(self):
        rng = np.random.default_rng(5)
        w = rng.standard_normal((8, 64)).astype(np.float32)
        e8 = np.abs(dequantize(quantize(w, INT8)) - w).max()
        e4 = np.abs(dequantize(quantize(w, INT4)) - w).max()
        assert e4 >= e8


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float32,
        st.tuples(st.integers(1, 6), st.sampled_from([32, 64, 96])),
        elements=st.floats(-1e3, 1e3, width=32),
    )
)
def test_property_int8_error_bound(w):
    qt = quantize(w, INT8, group_size=32)
    err = np.abs(dequantize(qt) - w).max()
    assert err <= quantization_error_bound(qt) + 1e-3


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.float32,
        st.tuples(st.integers(1, 6), st.sampled_from([32, 64])),
        elements=st.floats(-100, 100, width=32),
    )
)
def test_property_int4_error_bound(w):
    qt = quantize(w, INT4, group_size=32)
    err = np.abs(dequantize(qt) - w).max()
    assert err <= quantization_error_bound(qt) + 1e-3


@settings(max_examples=40, deadline=None)
@given(
    arrays(
        np.int8,
        st.tuples(st.integers(1, 4), st.sampled_from([2, 8, 32])),
        elements=st.integers(-8, 7),
    )
)
def test_property_int4_pack_roundtrip(v):
    assert np.array_equal(unpack_int4(pack_int4(v), v.shape), v)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 8), st.sampled_from([32, 64, 128]))
def test_property_quantization_idempotent(rows, cols):
    """Quantizing an already-quantized tensor is lossless."""
    rng = np.random.default_rng(rows * 1000 + cols)
    w = rng.standard_normal((rows, cols)).astype(np.float32)
    once = dequantize(quantize(w, INT8))
    twice = dequantize(quantize(once, INT8))
    assert np.allclose(once, twice, atol=1e-5)
