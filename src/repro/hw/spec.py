"""Hardware specifications mirroring the paper's testbed (Section 6.1).

The evaluation machine is a dual-socket Intel Xeon Platinum 8452Y server
(36 physical cores and 1 TB DDR5 per socket; 220 GB/s intra-socket and
125 GB/s cross-socket bandwidth measured with Intel MLC) paired with either
an NVIDIA A100-40G or an RTX 4080-16G over PCIe 4.0 (32 GB/s).

These dataclasses are *descriptions*; the discrete-event simulator and the
roofline cost models consume them to produce kernel timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .units import GB, GBps, TFLOPS


@dataclass(frozen=True)
class CPUSpec:
    """One CPU socket.

    ``amx_peak_flops`` is the theoretical dense-BF16 peak of the AMX units;
    the paper quotes 73.7 TFLOPS for the 36-core 8452Y.  ``avx512_peak_flops``
    is the corresponding AVX-512 BF16 FMA peak.
    """

    name: str
    cores: int
    amx_peak_flops: float
    avx512_peak_flops: float
    dram_bandwidth: float          # bytes/s, local socket
    dram_capacity: float           # bytes
    l2_cache_bytes: float = 2 * 1024 * 1024
    l3_cache_bytes: float = 67.5 * 1024 * 1024
    has_amx: bool = True

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError(f"CPU {self.name!r} must have positive cores")
        if self.dram_bandwidth <= 0:
            raise ConfigError(f"CPU {self.name!r} must have positive bandwidth")


@dataclass(frozen=True)
class GPUSpec:
    """One GPU accelerator."""

    name: str
    peak_flops: float              # dense BF16/FP16 tensor-core peak
    hbm_bandwidth: float           # bytes/s
    vram_capacity: float           # bytes
    kernel_launch_latency_us: float = 5.0   # host-side launch cost per kernel
    graph_replay_latency_us: float = 0.5    # per-kernel cost inside a CUDA graph
    graph_launch_us: float = 10.0           # host-side launch of a captured graph
    min_kernel_duration_us: float = 1.5     # floor for any launched kernel

    def __post_init__(self) -> None:
        if self.vram_capacity <= 0:
            raise ConfigError(f"GPU {self.name!r} must have positive VRAM")


@dataclass(frozen=True)
class InterconnectSpec:
    """CPU<->GPU link (PCIe) and CPU<->CPU (UPI cross-socket) fabrics."""

    pcie_bandwidth: float          # bytes/s each direction
    pcie_latency_us: float = 8.0   # DMA setup + completion latency per transfer
    cross_socket_bandwidth: float = GBps(125)
    cross_socket_latency_us: float = 1.2


@dataclass(frozen=True)
class MachineSpec:
    """A full hybrid machine: ``sockets`` identical CPU sockets + one GPU."""

    name: str
    cpu: CPUSpec
    sockets: int
    gpu: GPUSpec
    interconnect: InterconnectSpec

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ConfigError("machine must have at least one socket")

    @property
    def total_cores(self) -> int:
        return self.cpu.cores * self.sockets

    @property
    def total_dram_bandwidth(self) -> float:
        """Aggregate local bandwidth if every socket only touches local DRAM."""
        return self.cpu.dram_bandwidth * self.sockets

    @property
    def total_dram_capacity(self) -> float:
        return self.cpu.dram_capacity * self.sockets


# --------------------------------------------------------------------------
# Presets matching Section 6.1 of the paper.
# --------------------------------------------------------------------------

XEON_8452Y = CPUSpec(
    name="Intel Xeon Platinum 8452Y",
    cores=36,
    amx_peak_flops=TFLOPS(73.7),
    avx512_peak_flops=TFLOPS(5.5),
    dram_bandwidth=GBps(220),
    dram_capacity=1024 * GB,
)

A100_40G = GPUSpec(
    name="NVIDIA A100 40GB",
    peak_flops=TFLOPS(312),
    hbm_bandwidth=GBps(1555),
    vram_capacity=40 * GB,
)

RTX_4080_16G = GPUSpec(
    name="NVIDIA RTX 4080 16GB",
    peak_flops=TFLOPS(98),
    hbm_bandwidth=GBps(717),
    vram_capacity=16 * GB,
)

PCIE4_X16 = InterconnectSpec(pcie_bandwidth=GBps(32))


def paper_testbed(gpu: str = "a100") -> MachineSpec:
    """The dual-8452Y testbed from Section 6.1 with the requested GPU.

    ``gpu`` is ``"a100"`` (full-precision experiments) or ``"4080"``
    (quantized experiments on the consumer GPU).
    """
    gpus = {"a100": A100_40G, "4080": RTX_4080_16G}
    if gpu not in gpus:
        raise ConfigError(f"unknown gpu {gpu!r}; expected one of {sorted(gpus)}")
    return MachineSpec(
        name=f"2x Xeon 8452Y + {gpus[gpu].name}",
        cpu=XEON_8452Y,
        sockets=2,
        gpu=gpus[gpu],
        interconnect=PCIE4_X16,
    )


def single_socket_testbed(gpu: str = "a100") -> MachineSpec:
    """Single-socket variant used by NUMA micro-benchmarks."""
    full = paper_testbed(gpu)
    return MachineSpec(
        name=f"1x Xeon 8452Y + {full.gpu.name}",
        cpu=full.cpu,
        sockets=1,
        gpu=full.gpu,
        interconnect=full.interconnect,
    )
