"""Figure 13: Expert Deferral vs Expert Skipping accuracy impact.

Paper anchor (DS-3 on LiveBench): at the same number of affected experts,
deferral's average accuracy drop stays tiny (-0.5% at 6 affected) while
skipping degrades sharply (-13.3%), because the residual stream still
receives the deferred contribution one layer later whereas skipped experts
are simply lost.

Reproduction: tiny trained MoE models with load-balanced routing (so the
expert tail carries real signal), multi-token answers (decode phase is the
only phase either mechanism modifies), top-6 routing, sweeping 2..4
affected experts.  Two views are reported:

- relative exact-match change (the paper's metric; our small models are
  more robust than a 671B LLM, so EM deltas are small for both mechanisms);
- distributional fidelity of the decode logits (mean KL to the unmodified
  execution and top-1 agreement), where the deferral-vs-skipping asymmetry
  is sharp and monotone in the number of affected experts.
"""

import numpy as np

from repro.bench import format_table
from repro.core import (
    DeferralConfig,
    DeferralEngine,
    SkippingConfig,
    SkippingEngine,
)
from repro.eval import (
    deferral_vs_skipping_grid,
    exact_match,
    mean_kl,
    top1_agreement,
    trained_task,
)

TASKS = (("copy", 500), ("reverse", 900))
AFFECTED = [2, 3, 4]
FIDELITY_PROMPTS = 12
DECODE_STEPS = 12

# The fidelity-sensitive training recipe (see module docstring).
RECIPE = dict(config_name="tiny-qw", top_k=6, n_shared_experts=0,
              n_layers=3, router_entropy_coef=0.02, lr=2e-3, n_train=384)


def _engines(model, mode, n):
    if mode == "deferral":
        return DeferralEngine(model, DeferralConfig(n))
    return SkippingEngine(model, SkippingConfig(n))


def _fig13():
    results = {}
    for name, steps in TASKS:
        tt = trained_task(name, steps=steps, **RECIPE)
        base_em = exact_match(tt.model, tt.test)
        if base_em == 0:
            continue
        em_grid = deferral_vs_skipping_grid(tt, AFFECTED)

        base_engine = DeferralEngine(tt.model, DeferralConfig(0))
        prompts = [ex.prompt for ex in tt.test[:FIDELITY_PROMPTS]]
        base_logits = [base_engine.decode_logits(p, DECODE_STEPS)
                       for p in prompts]
        fidelity = {"deferral": {}, "skipping": {}}
        for mode in fidelity:
            for n in AFFECTED:
                engine = _engines(tt.model, mode, n)
                kls, agrees = [], []
                for p, bl in zip(prompts, base_logits):
                    ml = engine.decode_logits(p, DECODE_STEPS)
                    kls.append(mean_kl(bl, ml))
                    agrees.append(top1_agreement(bl, ml))
                fidelity[mode][n] = (float(np.mean(kls)),
                                     float(np.mean(agrees)))
        results[name] = (base_em, em_grid, fidelity)
    return results


def test_fig13_deferral_vs_skipping(run_once):
    results = run_once(_fig13)
    assert results, "at least one task must be learnable"

    rows = []
    for name, (base_em, em_grid, fid) in results.items():
        for n in AFFECTED:
            rows.append((
                name, f"{base_em * 100:.0f}%", n,
                em_grid["deferral"][n], em_grid["skipping"][n],
                fid["deferral"][n][0], fid["skipping"][n][0],
                fid["deferral"][n][1] * 100, fid["skipping"][n][1] * 100,
            ))
    print()
    print(format_table(
        ["task", "base EM", "affected", "defer dEM%", "skip dEM%",
         "defer KL", "skip KL", "defer agree%", "skip agree%"],
        rows,
        title="Figure 13: Expert Deferral vs Expert Skipping",
    ))

    for name, (base_em, em_grid, fid) in results.items():
        # Deferral's EM change stays small (paper: -0.5% at 6 affected).
        for n in AFFECTED:
            assert em_grid["deferral"][n] > -12.0, f"{name}: deferral EM drop"

        # Skipping diverges from the true model far more than deferral...
        for n in AFFECTED[1:]:
            kl_d = fid["deferral"][n][0]
            kl_s = fid["skipping"][n][0]
            assert kl_s > kl_d, f"{name}@{n}: skipping must diverge more"
        assert fid["skipping"][4][0] > 3 * fid["deferral"][4][0], (
            f"{name}: paper's asymmetry (13.3% vs 0.5%) should be sharp"
        )
        # ...and its divergence grows with the number of skipped experts.
        skip_kls = [fid["skipping"][n][0] for n in AFFECTED]
        assert skip_kls == sorted(skip_kls), f"{name}: skip KL not monotone"
        # Token-level agreement: deferral tracks the base model at least as
        # closely as skipping at the maximum affected count.
        assert fid["deferral"][4][1] >= fid["skipping"][4][1]
