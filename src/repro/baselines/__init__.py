"""Baseline inference systems reimplemented over the shared simulator."""

from .base import SystemProfile
from .fiddler import FIDDLER
from .llamacpp import LLAMACPP
from .weight_offload import (
    ExpertCache,
    WeightOffloadResult,
    simulate_weight_offload_decode,
    spare_vram_experts,
)

__all__ = [
    "SystemProfile", "FIDDLER", "LLAMACPP",
    "ExpertCache", "WeightOffloadResult", "simulate_weight_offload_decode",
    "spare_vram_experts",
]
