"""Tests for the continuous-batching engine and batched decode pricing."""

import numpy as np
import pytest

from repro.core import KTRANSFORMERS, batched_decode_works, run_batched_decode
from repro.errors import ConfigError, KVCacheError
from repro.hw.spec import paper_testbed
from repro.kernels import DEFAULT_ARI_THRESHOLD
from repro.model import DS3, QW2, MoETransformer, tiny_config
from repro.sched.workload import batched_expert_counts
from repro.serving import (
    BatchCostModel,
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    LocalServer,
    ServingSLO,
    TimedRequest,
    poisson_workload,
)
from repro.serving.session import GenerationRequest
from repro.tensor import BF16


@pytest.fixture(scope="module")
def machine():
    return paper_testbed("a100")


@pytest.fixture(scope="module")
def session():
    model = MoETransformer(tiny_config("tiny-qw"))
    return InferenceSession(model, DS3)


def _workload(n, interarrival_us, prompt_len=16, new_tokens=6, seed=7):
    return poisson_workload(
        n_requests=n, mean_interarrival_us=interarrival_us,
        prompt_len=prompt_len, max_new_tokens=new_tokens,
        vocab_size=64, seed=seed,
    )


class TestBatchedAriDispatch:
    """Aggregating the batch's tokens per expert moves the Fig. 7 crossover."""

    def test_batch_crosses_ari_threshold_to_amx(self, machine):
        # Served one-by-one, every active expert sees 1 token <= threshold:
        # the hybrid backend stays on AVX-512 for every expert GEMM.
        _, single = batched_decode_works(
            KTRANSFORMERS, QW2, machine, BF16, context_lens=[64])
        assert single.max_tokens_per_expert <= DEFAULT_ARI_THRESHOLD
        assert single.n_amx == 0
        assert single.n_avx512 == single.n_active

        # The same requests batched: aggregated counts cross the threshold
        # and those experts switch to AMX.
        _, batched = batched_decode_works(
            KTRANSFORMERS, QW2, machine, BF16, context_lens=[64] * 48)
        assert batched.max_tokens_per_expert > DEFAULT_ARI_THRESHOLD
        assert batched.n_amx > 0
        assert batched.dominant_kernel == "amx"
        # Dispatch is per expert: light experts keep the low-latency kernel.
        assert batched.n_avx512 > 0

    def test_custom_threshold_respected(self, machine):
        _, s = batched_decode_works(
            KTRANSFORMERS, QW2, machine, BF16, context_lens=[64] * 48,
            ari_threshold=10_000)
        assert s.n_amx == 0

    def test_summary_counts_consistent(self, machine):
        _, s = batched_decode_works(
            KTRANSFORMERS, QW2, machine, BF16, context_lens=[32] * 8)
        assert s.n_amx + s.n_avx512 == s.n_active
        assert len(s.kernel_names) == len(s.expert_token_counts)
        assert sum(s.expert_token_counts) == 8 * QW2.top_k

    def test_batch1_counts_deterministic(self):
        counts = batched_expert_counts(DS3, 1)
        assert counts.sum() == DS3.top_k
        assert counts.max() == 1

    def test_batched_throughput_scales_sublinearly(self, machine):
        """Coalesced expert GEMMs make a batch cheaper than b separate steps."""
        r1, _ = run_batched_decode(KTRANSFORMERS, DS3, machine,
                                   n_tokens=4, context_lens=[64])
        r8, _ = run_batched_decode(KTRANSFORMERS, DS3, machine,
                                   n_tokens=4, context_lens=[64] * 8)
        assert r8.elapsed_us < 8 * r1.elapsed_us
        assert r8.tokens_per_s > r1.tokens_per_s


class TestBatchCostModel:
    def test_step_cost_grows_with_batch(self, session):
        costs = BatchCostModel(session)
        c1 = costs.decode_step_us([64])
        c8 = costs.decode_step_us([64] * 8)
        assert 0 < c1 < c8 < 8 * c1

    def test_step_cost_cached(self, session):
        costs = BatchCostModel(session)
        first = costs.decode_step_us([64] * 4)
        assert costs.decode_step_us([60, 61, 62, 63]) == first  # same bucket
        assert len(costs._step) == 1

    def test_dispatch_summary_exposed(self, session):
        costs = BatchCostModel(session)
        s = costs.dispatch_summary([64] * 4)
        assert s.batch_size == 4

    def test_batched_prefill_flat_within_bucket(self, session):
        costs = BatchCostModel(session)
        assert (costs.batched_prefill_us(100)
                == costs.batched_prefill_us(128))
        # Beyond the largest bucket, cost scales with tokens.
        big = costs.batched_prefill_us(16384)
        assert big > costs.batched_prefill_us(8192)

    def test_empty_inputs_rejected(self, session):
        costs = BatchCostModel(session)
        with pytest.raises(ConfigError):
            costs.decode_step_us([])
        with pytest.raises(ConfigError):
            costs.batched_prefill_us(0)


class TestSchedulerConfig:
    def test_defaults_valid(self):
        cfg = BatchSchedulerConfig()
        assert cfg.kv_budget_tokens > 0

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            BatchSchedulerConfig(kv_budget_tokens=0)
        with pytest.raises(ConfigError):
            BatchSchedulerConfig(max_batch_size=0)


class TestContinuousBatchingServer:
    def test_serves_all_requests_with_real_tokens(self, session):
        wl = _workload(6, 5e5)
        server = ContinuousBatchingServer(session)
        stats = server.replay(list(wl))
        assert stats.n_requests == 6
        assert all(t.generated_tokens == 6 for t in stats.timings)
        s = stats.summary()
        assert np.isfinite(s["ttft_p95_ms"]) and s["ttft_p95_ms"] > 0
        assert np.isfinite(s["tpot_p95_ms"]) and s["tpot_p95_ms"] > 0

    def test_batches_under_load(self, session):
        """Simultaneous arrivals decode together, not serially."""
        rng = np.random.default_rng(0)
        wl = [TimedRequest(0.0, GenerationRequest(
            prompt=rng.integers(1, 64, size=16), max_new_tokens=6))
            for _ in range(8)]
        server = ContinuousBatchingServer(session)
        server.replay(wl)
        assert server.timeline.peak_batch_size == 8
        assert server.timeline.n_iterations == 6   # one per generated token

    def test_max_batch_size_respected(self, session):
        wl = _workload(8, 1.0)
        server = ContinuousBatchingServer(
            session, BatchSchedulerConfig(max_batch_size=3))
        server.replay(list(wl))
        assert server.timeline.peak_batch_size == 3

    def test_kv_budget_limits_concurrency(self, session):
        # Each request reserves 16 + 6 = 22 tokens -> 2 pages of 16.
        # A 4-page budget admits at most 2 concurrent requests.
        wl = _workload(6, 1.0)
        server = ContinuousBatchingServer(
            session, BatchSchedulerConfig(kv_budget_tokens=64))
        stats = server.replay(list(wl))
        assert stats.n_requests == 6          # queued, not dropped
        assert server.timeline.peak_batch_size <= 2
        assert server.pool.n_slots == 0       # all slots freed at the end
        assert server._reserved_pages == 0

    def test_oversized_request_raises_typed_error(self, session):
        wl = [TimedRequest(0.0, GenerationRequest(
            prompt=np.arange(1, 200), max_new_tokens=4))]
        server = ContinuousBatchingServer(
            session, BatchSchedulerConfig(kv_budget_tokens=64))
        with pytest.raises(KVCacheError):
            server.replay(wl)

    def test_empty_workload_rejected(self, session):
        with pytest.raises(ConfigError):
            ContinuousBatchingServer(session).replay([])

    def test_timings_monotone_and_spaced(self, session):
        wl = _workload(5, 2e5)
        server = ContinuousBatchingServer(session)
        stats = server.replay(list(wl))
        for t in stats.timings:
            assert (t.arrival_us <= t.start_us <= t.first_token_us
                    <= t.finish_us)
        points = server.timeline.points
        assert all(b.t_us > a.t_us for a, b in zip(points, points[1:]))
        occupancy = [p.kv_used_tokens for p in points]
        assert max(occupancy) <= server.pool.budget_tokens

    def test_tokens_match_batch1_server(self, session):
        """Batching changes timing, never token values."""
        wl = _workload(4, 1e5, seed=11)
        cb = ContinuousBatchingServer(session).replay(list(wl))
        b1 = LocalServer(session).replay(list(wl))
        assert ([t.generated_tokens for t in sorted(
            cb.timings, key=lambda t: t.arrival_us)]
            == [t.generated_tokens for t in b1.timings])

    def test_faster_than_batch1_under_load(self, session):
        wl = _workload(10, 1e4, new_tokens=8)
        cb = ContinuousBatchingServer(session).replay(list(wl)).summary()
        b1 = LocalServer(session).replay(list(wl)).summary()
        assert cb["requests_per_s"] > b1["requests_per_s"]
        assert cb["ttft_p95_ms"] < b1["ttft_p95_ms"]

    def test_goodput_under_slo(self, session):
        wl = _workload(6, 1e5)
        stats = ContinuousBatchingServer(session).replay(list(wl))
        loose = stats.goodput(ServingSLO(ttft_ms=1e9, tpot_ms=1e9))
        tight = stats.goodput(ServingSLO(ttft_ms=1e-3, tpot_ms=1e-3))
        assert loose["attainment"] == 1.0
        assert tight["attainment"] == 0.0
        s = stats.summary()
        assert loose["goodput_requests_per_s"] == pytest.approx(
            s["requests_per_s"])
