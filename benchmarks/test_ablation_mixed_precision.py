"""Ablation: per-expert mixed-precision storage (Section 7 extension).

Static precision selection (EdgeMoE-style) under a DRAM budget: the most
quantization-sensitive experts keep higher precision.  Measured on a
trained tiny model: a mixed Int4/Int8 assignment recovers most of the
accuracy of uniform Int8 while paying close to Int4's bandwidth.
"""

import numpy as np

from repro.bench import format_table
from repro.eval import exact_match, trained_task
from repro.moe import (
    apply_mixed_precision,
    assign_expert_precision,
    bandwidth_savings,
    expert_sensitivity,
)
from repro.tensor import INT4, INT8


def _ablation():
    tt = trained_task("copy", steps=500, top_k=6, n_shared_experts=0,
                      n_layers=3, router_entropy_coef=0.02, lr=2e-3,
                      n_train=384)
    model = tt.model
    base_acc = exact_match(model, tt.test)

    moe_blocks = [(i, layer) for i, layer in enumerate(model.layers)
                  if layer.is_moe]
    elems = 3.0 * model.config.hidden * model.config.moe_intermediate
    n_exp = model.config.n_experts

    def with_budget(budget_per_expert_bytes):
        """Swap every MoE block to the given per-expert byte budget."""
        originals = []
        for i, layer in moe_blocks:
            block = layer.mlp
            sens = expert_sensitivity(block)
            assignment = assign_expert_precision(
                sens, elems, budget_bytes=budget_per_expert_bytes * n_exp)
            originals.append((i, block))
            layer.add_module("mlp", apply_mixed_precision(block, assignment))
        acc = exact_match(model, tt.test)
        hist = assignment.histogram()
        saving = bandwidth_savings(assignment)
        for i, block in originals:               # restore
            model.layers[i].add_module("mlp", block)
        return acc, hist, saving

    rows = [("bf16 (baseline)", base_acc * 100, "-", 0.0)]
    int4_b = elems * INT4.bytes_per_element
    int8_b = elems * INT8.bytes_per_element
    for label, budget in (
        ("uniform int4", int4_b),
        ("mixed (int4 + 1/2 int8)", (int4_b + int8_b) / 2),
        ("uniform int8", int8_b),
    ):
        acc, hist, saving = with_budget(budget)
        rows.append((label, acc * 100, str(hist), saving * 100))
    return base_acc, rows


def test_ablation_mixed_precision(run_once):
    base_acc, rows = run_once(_ablation)
    print()
    print(format_table(
        ["config", "exact match %", "dtype histogram", "bandwidth saved %"],
        rows,
        title="Per-expert mixed precision on a trained model (copy task)",
    ))
    assert base_acc >= 0.8, "model must learn the task"
    accs = {label: acc for label, acc, __, __ in rows}
    # Quantized variants stay usable (within 25 points of BF16)...
    for label, acc in accs.items():
        assert acc >= accs["bf16 (baseline)"] - 25.0, label
    # ...and int8 never does worse than int4.
    assert accs["uniform int8"] >= accs["uniform int4"] - 1e-9
    # The mixed assignment lands between the two uniform points on the
    # bandwidth axis.
    savings = {label: s for label, __, __, s in rows}
    assert savings["uniform int4"] > savings["mixed (int4 + 1/2 int8)"] > \
        savings["uniform int8"]
