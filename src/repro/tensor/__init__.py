"""Tensor substrate: dtypes, tile geometry, quantization, AMX layouts."""

from .dtypes import BF16, FP16, FP32, INT4, INT8, QUANT_GROUP_SIZE, DType, dtype
from .layout import PackedWeights, pack_matrix, pad_activations, unpack_matrix
from .quant import (
    QuantizedTensor,
    dequantize,
    pack_int4,
    quantization_error_bound,
    quantize,
    unpack_int4,
)
from .tiles import (
    CACHE_LINE_BYTES,
    TILE_ROW_BYTES,
    TILE_ROWS,
    is_cache_line_aligned,
    padded_cols,
    padded_rows,
    tile_bytes,
    tile_cols,
    tile_grid,
    tiles_in_matrix,
)

__all__ = [
    "BF16", "FP16", "FP32", "INT4", "INT8", "QUANT_GROUP_SIZE", "DType", "dtype",
    "PackedWeights", "pack_matrix", "pad_activations", "unpack_matrix",
    "QuantizedTensor", "dequantize", "pack_int4", "quantization_error_bound",
    "quantize", "unpack_int4",
    "CACHE_LINE_BYTES", "TILE_ROW_BYTES", "TILE_ROWS",
    "is_cache_line_aligned", "padded_cols", "padded_rows", "tile_bytes",
    "tile_cols", "tile_grid", "tiles_in_matrix",
]
