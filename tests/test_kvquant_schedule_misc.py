"""Tests for quantized KV caching, LR schedules, and simulator edge cases."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.hw import Simulator
from repro.model import LatentKVCache, MLAAttention, QuantizedLatentKVCache
from repro.train import ConstantLR, TrainConfig, WarmupCosineLR, task, train
from repro.train.model import TrainableMoETransformer
from repro.model import tiny_config


class TestQuantizedLatentCache:
    def test_roundtrip_close(self):
        rng = np.random.default_rng(0)
        cache = QuantizedLatentKVCache(32)
        latents = rng.standard_normal((10, 32)).astype(np.float32)
        cache.append(latents)
        back = cache.latents()
        assert back.shape == (10, 32)
        assert np.abs(back - latents).max() < 0.05

    def test_attention_fidelity(self):
        """MLA attention over the quantized cache tracks the exact cache."""
        rng = np.random.default_rng(1)
        attn = MLAAttention(32, 4, kv_rank=32, rng=rng)
        x = rng.standard_normal((8, 32)).astype(np.float32)
        exact = attn(x, LatentKVCache(32))
        quantized = attn(x, QuantizedLatentKVCache(32))
        rel = np.abs(exact - quantized).mean() / np.abs(exact).mean()
        assert rel < 0.05

    def test_storage_half_of_fp32(self):
        cache = QuantizedLatentKVCache(64)
        cache.append(np.ones((100, 64), dtype=np.float32))
        fp32_bytes = 100 * 64 * 4
        assert cache.nbytes() < fp32_bytes / 3

    def test_growth(self):
        cache = QuantizedLatentKVCache(32, initial_capacity=2)
        for i in range(5):
            cache.append(np.full((3, 32), float(i), dtype=np.float32))
        assert len(cache) == 15
        assert cache.latents()[4, 0] == pytest.approx(1.0, abs=0.05)

    def test_reset_and_empty(self):
        cache = QuantizedLatentKVCache(32)
        assert cache.latents().shape == (0, 32)
        cache.append(np.ones((2, 32), dtype=np.float32))
        cache.reset()
        assert len(cache) == 0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            QuantizedLatentKVCache(0)
        with pytest.raises(ConfigError):
            QuantizedLatentKVCache(33)  # not a multiple of the group size
        cache = QuantizedLatentKVCache(32)
        with pytest.raises(ConfigError):
            cache.append(np.ones((2, 16)))


class TestLRSchedules:
    def test_constant(self):
        s = ConstantLR(0.01)
        assert s.lr_at(0, 100) == s.lr_at(99, 100) == 0.01

    def test_warmup_ramps_linearly(self):
        s = WarmupCosineLR(base_lr=1.0, warmup_steps=10)
        assert s.lr_at(0, 100) == pytest.approx(0.1)
        assert s.lr_at(4, 100) == pytest.approx(0.5)
        assert s.lr_at(9, 100) == pytest.approx(1.0)

    def test_cosine_decays_to_min(self):
        s = WarmupCosineLR(base_lr=1.0, warmup_steps=0, min_lr=0.1)
        assert s.lr_at(0, 100) == pytest.approx(1.0)
        assert s.lr_at(100, 100) == pytest.approx(0.1)
        mid = s.lr_at(50, 100)
        assert 0.1 < mid < 1.0

    def test_monotone_after_warmup(self):
        s = WarmupCosineLR(base_lr=1.0, warmup_steps=5)
        lrs = [s.lr_at(i, 50) for i in range(5, 50)]
        assert lrs == sorted(lrs, reverse=True)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            WarmupCosineLR(base_lr=0.0, warmup_steps=1)
        with pytest.raises(ConfigError):
            WarmupCosineLR(base_lr=1.0, warmup_steps=-1)
        with pytest.raises(ConfigError):
            WarmupCosineLR(base_lr=1.0, warmup_steps=0, min_lr=2.0)

    def test_trainer_uses_schedule(self):
        model = TrainableMoETransformer(tiny_config("tiny"))
        examples = task("modsum").generate(32, seed=0)
        cfg = TrainConfig(steps=20, lr=3e-3,
                          lr_schedule=WarmupCosineLR(3e-3, warmup_steps=5))
        report = train(model, examples, cfg)
        assert report.final_loss < report.initial_loss


class TestSimulatorFailureModes:
    def test_cycles_impossible_through_public_api(self):
        """submit() takes only already-created tasks as deps, so dependency
        cycles cannot be expressed -- the DAG property holds by
        construction."""
        sim = Simulator()
        res = sim.resource("cpu")
        a = sim.submit("a", res, 1.0)
        b = sim.submit("b", res, 1.0, deps=[a])
        end = sim.drain()
        assert end == 2.0
        assert b.start_time == 1.0

    def test_drain_detects_stuck_tasks(self):
        """drain() is a safety net: a task that never becomes ready (here
        injected past the public API) is reported, not silently dropped."""
        from repro.hw.event_sim import Task

        sim = Simulator()
        res = sim.resource("cpu")
        sim.submit("ok", res, 1.0)
        stuck = Task("stuck", res, 1.0)
        stuck._remaining_deps = 1      # dependency that will never complete
        sim.all_tasks.append(stuck)
        with pytest.raises(SimulationError, match="never completed"):
            sim.drain()
