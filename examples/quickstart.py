"""Quickstart: hybrid CPU/GPU MoE inference in three steps.

1. Simulate DeepSeek-V3 (671B) decode/prefill throughput on the paper's
   dual-Xeon + A100 testbed under KTransformers and both baselines.
2. Turn on Expert Deferral and watch CPU utilization saturate.
3. Run a *functional* tiny MoE transformer end to end, with and without
   deferral, and confirm the outputs stay consistent.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BF16,
    DS3,
    FIDDLER,
    KTRANSFORMERS,
    LLAMACPP,
    DeferralConfig,
    DeferralEngine,
    MoETransformer,
    paper_testbed,
    run_decode,
    run_prefill,
    tiny_config,
)


def main() -> None:
    machine = paper_testbed("a100")
    print(f"Machine: {machine.name}")
    print(f"Model:   {DS3.display_name} "
          f"({DS3.total_params / 1e9:.0f}B params, "
          f"{DS3.cpu_params / 1e9:.0f}B offloaded to CPU DRAM)\n")

    # -- 1. Throughput comparison ------------------------------------------
    print("Decode throughput (batch 1, BF16):")
    results = {}
    for system in (FIDDLER, LLAMACPP, KTRANSFORMERS):
        r = run_decode(system, DS3, machine, BF16, n_tokens=8)
        results[system.name] = r
        print(f"  {system.display_name:15s} {r.tokens_per_s:6.2f} tokens/s")

    print("\nPrefill throughput (2048-token prompt):")
    for system in (FIDDLER, LLAMACPP, KTRANSFORMERS):
        r = run_prefill(system, DS3, machine, BF16, prompt_len=2048)
        print(f"  {system.display_name:15s} {r.tokens_per_s:6.1f} tokens/s")

    # -- 2. Expert Deferral -------------------------------------------------
    base = results["ktransformers"]
    deferred = run_decode(KTRANSFORMERS, DS3, machine, BF16, n_tokens=8,
                          n_deferred=DS3.deferred_experts_bf16)
    print(f"\nExpert Deferral ({DS3.deferred_experts_bf16} deferred experts):")
    print(f"  throughput: {base.tokens_per_s:.2f} -> "
          f"{deferred.tokens_per_s:.2f} tokens/s "
          f"(+{(deferred.tokens_per_s / base.tokens_per_s - 1) * 100:.0f}%)")
    print(f"  CPU utilization: {base.utilization('cpu') * 100:.0f}% -> "
          f"{deferred.utilization('cpu') * 100:.0f}%")
    print(f"  GPU utilization: {base.utilization('gpu') * 100:.0f}% -> "
          f"{deferred.utilization('gpu') * 100:.0f}%")

    # -- 3. Functional execution ----------------------------------------------
    print("\nFunctional tiny MoE model (real numpy compute):")
    model = MoETransformer(tiny_config("tiny-qw"))
    prompt = np.array([1, 2, 3, 4])
    standard = model.generate(prompt, max_new_tokens=8)
    engine = DeferralEngine(model, DeferralConfig(n_deferred=2))
    with_deferral = engine.generate(prompt, max_new_tokens=8)
    print(f"  standard generation:    {standard.tolist()}")
    print(f"  with Expert Deferral:   {with_deferral.tolist()}")
    agree = (standard == with_deferral).mean() * 100
    print(f"  token agreement: {agree:.0f}%  "
          "(deferral trades a tiny behavioral change for throughput)")


if __name__ == "__main__":
    main()
