"""Tests for expert-affinity scheduling + engine fuzzing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FIDDLER, LLAMACPP
from repro.core import KTRANSFORMERS, run_decode, run_prefill
from repro.errors import SchedulingError
from repro.hw import paper_testbed
from repro.model import DS2, DS3, QW2
from repro.moe import WorkItem, affinity_schedule, dynamic_schedule
from repro.tensor import BF16, INT4, INT8


class TestAffinityScheduling:
    def _items(self, n_experts=8, dur=500.0):
        return [WorkItem(dur, e) for e in range(n_experts)]

    def test_expert_aware_beats_interleaved(self):
        """Co-scheduling same-expert chunks collects the L2 discount."""
        aware = affinity_schedule(self._items(), 4, expert_aware=True)
        naive = affinity_schedule(self._items(), 4, expert_aware=False)
        assert aware.makespan_us < naive.makespan_us * 0.85
        assert aware.hit_rate > 0.5
        assert naive.hit_rate == 0.0

    def test_affinity_beats_plain_dynamic(self):
        """The cache model makes affinity strictly better than the plain
        queue, which prices every chunk at full DRAM cost."""
        items = self._items()
        aware = affinity_schedule(items, 4)
        plain = dynamic_schedule(items, 4, chunk_us=50.0)
        assert aware.makespan_us < plain.makespan_us

    def test_single_chunk_items_no_hits(self):
        items = [WorkItem(30.0, e) for e in range(6)]
        out = affinity_schedule(items, 2, chunk_us=50.0)
        assert out.cache_hits == 0

    def test_one_thread_serializes_with_hits(self):
        items = [WorkItem(200.0, 0)]
        out = affinity_schedule(items, 1, chunk_us=50.0,
                                cache_hit_discount=0.5)
        # 4 chunks; chunks 2..4 are hits at half cost.
        assert out.n_subtasks == 4
        assert out.cache_hits == 3

    def test_discount_bounds_validated(self):
        with pytest.raises(SchedulingError):
            affinity_schedule([], 2, cache_hit_discount=0.0)
        with pytest.raises(SchedulingError):
            affinity_schedule([], 0)

    def test_empty_items(self):
        out = affinity_schedule([], 4)
        assert out.makespan_us == pytest.approx(2.0)
        assert out.hit_rate == 0.0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.tuples(st.floats(10.0, 800.0), st.integers(0, 5)),
             min_size=1, max_size=15),
    st.integers(1, 8),
)
def test_property_affinity_never_slower_than_no_discount(raw, n_threads):
    items = [WorkItem(d, e) for d, e in raw]
    with_discount = affinity_schedule(items, n_threads,
                                      cache_hit_discount=0.5)
    no_discount = affinity_schedule(items, n_threads,
                                    cache_hit_discount=1.0)
    assert with_discount.makespan_us <= no_discount.makespan_us + 1e-6


class TestEngineFuzz:
    """Randomized end-to-end configurations must stay sane."""

    SYSTEMS = (FIDDLER, LLAMACPP, KTRANSFORMERS)
    PRESETS = (DS3, DS2, QW2)
    DTYPES = (BF16, INT8, INT4)

    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(0, 2), st.integers(0, 2), st.integers(0, 2),
        st.sampled_from(["a100", "4080"]),
        st.integers(1, 3), st.integers(16, 512),
    )
    def test_property_decode_sane(self, si, pi, di, gpu, n_tokens, ctx):
        machine = paper_testbed(gpu)
        r = run_decode(self.SYSTEMS[si], self.PRESETS[pi], machine,
                       self.DTYPES[di], n_tokens=n_tokens, context_len=ctx)
        assert r.tokens_per_s > 0
        assert 0.0 <= r.utilization("cpu") <= 1.0
        assert 0.0 <= r.utilization("gpu") <= 1.0
        lo, hi = r.trace.span()
        assert hi <= r.elapsed_us + 1e-6

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2), st.integers(1, 4000))
    def test_property_prefill_sane(self, pi, prompt_len):
        machine = paper_testbed("a100")
        r = run_prefill(KTRANSFORMERS, self.PRESETS[pi], machine, BF16,
                        prompt_len=prompt_len)
        assert r.tokens == prompt_len
        assert r.tokens_per_s > 0

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2), st.integers(1, 6))
    def test_property_deferral_never_hurts_much(self, pi, n_deferred):
        preset = self.PRESETS[pi]
        n_deferred = min(n_deferred, preset.top_k - 2)
        machine = paper_testbed("a100")
        base = run_decode(KTRANSFORMERS, preset, machine, BF16, n_tokens=2)
        deferred = run_decode(KTRANSFORMERS, preset, machine, BF16,
                              n_tokens=2, n_deferred=n_deferred)
        # Deferral reorders work; it must never cost more than a few
        # percent even at suboptimal counts.
        assert deferred.elapsed_us <= base.elapsed_us * 1.05
