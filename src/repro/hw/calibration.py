"""Calibration self-check: recompute every paper anchor and report drift.

The cost models in :mod:`repro.hw.roofline` are calibrated against numbers
the paper publishes.  This module re-derives each anchor from the current
constants and reports relative drift, so any future retuning immediately
shows which published numbers it moves.  Used by tests and by
``python -m repro calibrate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..tensor.dtypes import BF16
from .roofline import (
    KT_AMX,
    KT_AVX512,
    TORCH_AMX,
    TORCH_AVX512,
    cpu_gemm_achieved_tflops,
    cpu_gemm_time_us,
)
from .spec import XEON_8452Y

# DeepSeek-V3 expert GEMM shape used throughout the paper's microbenchmarks.
_K, _N = 7168, 4096


@dataclass(frozen=True)
class Anchor:
    """One published number and how to recompute it."""

    name: str
    paper_value: float
    tolerance: float                   # allowed relative drift
    compute: Callable[[], float]

    def check(self) -> "AnchorResult":
        measured = self.compute()
        drift = abs(measured - self.paper_value) / abs(self.paper_value)
        return AnchorResult(self, measured, drift, drift <= self.tolerance)


@dataclass(frozen=True)
class AnchorResult:
    anchor: Anchor
    measured: float
    drift: float
    ok: bool


def _tflops(profile, m):
    return cpu_gemm_achieved_tflops(profile, m, _K, _N, BF16, XEON_8452Y)


def _ratio_avx_over_amx(m):
    amx = cpu_gemm_time_us(KT_AMX, m, _K, _N, BF16, XEON_8452Y)
    avx = cpu_gemm_time_us(KT_AVX512, m, _K, _N, BF16, XEON_8452Y)
    return avx / amx


def paper_anchors() -> list[Anchor]:
    """Every microbenchmark anchor the cost models are calibrated against."""
    return [
        Anchor("KT AMX saturated TFLOPS (Fig. 3)", 21.3, 0.10,
               lambda: _tflops(KT_AMX, 4096)),
        Anchor("PyTorch AMX saturated TFLOPS (Fig. 3)", 5.4, 0.10,
               lambda: _tflops(TORCH_AMX, 4096)),
        Anchor("PyTorch AVX-512 saturated TFLOPS (Fig. 3)", 1.8, 0.10,
               lambda: _tflops(TORCH_AVX512, 4096)),
        Anchor("KT AMX / PyTorch AMX speedup (Fig. 3)", 3.98, 0.15,
               lambda: _tflops(KT_AMX, 2048) / _tflops(TORCH_AMX, 2048)),
        Anchor("AMX/AVX prefill advantage (Sec. 3.2, 10.81x)", 10.81, 0.25,
               lambda: _ratio_avx_over_amx(2048)),
        Anchor("AVX decode advantage at 1 token (Sec. 3.2, ~1.2x)", 1.20, 0.15,
               lambda: 1.0 / _ratio_avx_over_amx(1)),
        Anchor("AMX theoretical peak utilization (Sec. 2.2, 7%)", 0.07, 0.12,
               lambda: _tflops(TORCH_AMX, 4096) / 73.7),
    ]


def run_calibration_check() -> list[AnchorResult]:
    """Evaluate all anchors; results carry measured values and drift."""
    return [a.check() for a in paper_anchors()]


def format_calibration_report(results: list[AnchorResult]) -> str:
    """Human-readable pass/drift summary of the anchor checks."""
    lines = ["Calibration check vs paper anchors:"]
    width = max(len(r.anchor.name) for r in results)
    for r in results:
        status = "ok " if r.ok else "DRIFTED"
        lines.append(
            f"  [{status}] {r.anchor.name:<{width}}  paper "
            f"{r.anchor.paper_value:>7.3f}  measured {r.measured:>7.3f}  "
            f"drift {r.drift * 100:5.1f}% (tol {r.anchor.tolerance * 100:.0f}%)"
        )
    n_bad = sum(1 for r in results if not r.ok)
    lines.append(
        f"  {len(results) - n_bad}/{len(results)} anchors within tolerance"
    )
    return "\n".join(lines)
