"""End-to-end throughput engine: lower a model onto a machine and measure.

`KTRANSFORMERS` is the system profile of this paper (hybrid AMX/AVX-512
kernels, one CUDA graph per step, NUMA-aware tensor parallelism, async
CPU-GPU overlap).  ``run_prefill`` / ``run_decode`` execute any
:class:`~repro.baselines.base.SystemProfile` on any Table 1 preset and
machine, returning throughput plus the full execution trace -- every
figure in Section 6 is produced through these two entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..baselines.base import SystemProfile
from ..errors import ConfigError
from ..hw.event_sim import Simulator
from ..hw.roofline import KT_AMX, KT_AVX512
from ..hw.spec import MachineSpec
from ..hw.trace import Trace
from ..hw.units import tokens_per_second
from ..model.presets import ModelPreset
from ..moe.numa import NumaStrategy
from ..sched.cuda_graph import LaunchMode
from ..sched.decode import DecodeScheduleConfig, simulate_decode
from ..sched.prefill import simulate_prefill
from ..sched.workload import (
    BatchedDispatchSummary,
    DecodeLayerWork,
    HybridChunkWork,
    PrefillLayerWork,
    batched_decode_layer_work,
    decode_layer_work,
    hybrid_chunk_layer_work,
    prefill_layer_work,
)
from ..tensor.dtypes import BF16, DType

KTRANSFORMERS = SystemProfile(
    name="ktransformers",
    display_name="KTransformers",
    prefill_kernel=KT_AMX,
    decode_kernel=KT_AVX512,
    launch_mode=LaunchMode.CUDA_GRAPH,
    numa_strategy=NumaStrategy.TENSOR_PARALLEL,
    overlap_cpu_gpu=True,
    dynamic_scheduling=True,
    decode_kernels_per_layer=45,
    prefill_kernels_per_layer=45,
)


@dataclass
class ThroughputResult:
    """Outcome of one simulated prefill or decode run."""

    system: str
    model: str
    phase: str
    tokens: int
    elapsed_us: float
    trace: Trace

    @property
    def tokens_per_s(self) -> float:
        return tokens_per_second(self.tokens, self.elapsed_us)

    def utilization(self, resource: str) -> float:
        return self.trace.utilization(resource)


def _supported_kernel(kernel, system: SystemProfile, machine: MachineSpec):
    """Fall back to the (AVX-512) decode kernel on CPUs without AMX."""
    if kernel.uses_amx and not machine.cpu.has_amx:
        return system.decode_kernel
    return kernel


def _dense_decode_work(moe_work: DecodeLayerWork) -> DecodeLayerWork:
    """A dense (non-MoE) layer: GPU-only, no routed experts."""
    return DecodeLayerWork(
        gpu_attn_us=moe_work.gpu_attn_us,
        gpu_shared_us=0.0,
        cpu_routed_us=0.0,
        transfer_bytes=0.0,
        n_gpu_kernels=moe_work.n_gpu_kernels,
    )


def decode_works(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType,
    context_len: int,
    batch_size: int = 1,
) -> list[DecodeLayerWork]:
    """Per-layer decode work: dense layers first, then MoE layers."""
    # ARI-aware dispatch also applies to batched decode: large batches push
    # per-expert token counts past the AVX-512/AMX crossover.
    tokens_per_expert = batch_size * preset.top_k / preset.n_experts
    kernel = (system.decode_kernel if tokens_per_expert <= 4
              else system.prefill_kernel)
    kernel = _supported_kernel(kernel, system, machine)
    moe = decode_layer_work(
        preset, machine, dtype, context_len,
        cpu_profile=kernel,
        numa_strategy=system.numa_strategy,
        kernels_per_layer=system.decode_kernels_per_layer,
        batch_size=batch_size,
    )
    dense = _dense_decode_work(moe)
    return [dense] * preset.n_dense_layers + [moe] * preset.n_moe_layers


def run_decode(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType = BF16,
    n_tokens: int = 32,
    context_len: int = 32,
    n_deferred: int | None = None,
    batch_size: int = 1,
) -> ThroughputResult:
    """Simulate decoding ``n_tokens`` steps of ``batch_size`` sequences.

    ``n_deferred`` enables Expert Deferral (None or 0 disables it; the
    paper's per-model defaults live on the preset).  Reported throughput
    counts ``n_tokens * batch_size`` generated tokens.
    """
    works = decode_works(system, preset, machine, dtype, context_len,
                         batch_size=batch_size)
    config = DecodeScheduleConfig(
        launch_mode=system.launch_mode,
        overlap_cpu_gpu=system.overlap_cpu_gpu,
        top_k=preset.top_k,
        n_deferred=n_deferred or 0,
    )
    sim = simulate_decode(works, config, machine, n_tokens)
    return _result(system, preset, "decode", n_tokens * batch_size, sim)


def batched_decode_works(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType,
    context_lens: Sequence[int],
    ari_threshold: int | None = None,
    seed: int = 0,
) -> tuple[list[DecodeLayerWork], BatchedDispatchSummary]:
    """Per-layer work of one multi-request decode step (continuous batching).

    Unlike :func:`decode_works`, kernel dispatch happens per expert over
    the batch's *aggregated* token counts, so a big enough batch shifts
    individual experts from the AVX-512 to the AMX kernel even while
    others stay below the crossover.
    """
    kwargs = {} if ari_threshold is None else {"ari_threshold": ari_threshold}
    moe, summary = batched_decode_layer_work(
        preset, machine, dtype, context_lens,
        avx512_profile=system.decode_kernel,
        amx_profile=_supported_kernel(system.prefill_kernel, system, machine),
        numa_strategy=system.numa_strategy,
        kernels_per_layer=system.decode_kernels_per_layer,
        seed=seed,
        **kwargs,
    )
    dense = _dense_decode_work(moe)
    works = [dense] * preset.n_dense_layers + [moe] * preset.n_moe_layers
    return works, summary


def hybrid_chunk_works(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType,
    chunk_tokens: int,
    batch_size: int,
    ari_threshold: int | None = None,
    seed: int = 0,
) -> tuple[list[HybridChunkWork], BatchedDispatchSummary]:
    """Per-layer marginal work of piggybacking a prefill chunk on decode.

    Lowers :func:`repro.sched.workload.hybrid_chunk_layer_work` across the
    preset's layer stack: dense layers carry only the chunk's attention
    (no routed experts), MoE layers carry the chunk's marginal
    routed-expert time over a ``batch_size``-request decode batch.  Merge
    the result with :func:`batched_decode_works` output via
    :func:`repro.sched.workload.merge_hybrid_work` to price a mixed
    iteration; ``batch_size == 0`` prices a chunk-only iteration.
    """
    kwargs = {} if ari_threshold is None else {"ari_threshold": ari_threshold}
    moe, summary = hybrid_chunk_layer_work(
        preset, machine, dtype, chunk_tokens, batch_size,
        avx512_profile=system.decode_kernel,
        amx_profile=_supported_kernel(system.prefill_kernel, system, machine),
        numa_strategy=system.numa_strategy,
        kernels_per_layer=system.decode_kernels_per_layer,
        seed=seed,
        **kwargs,
    )
    dense = HybridChunkWork(
        gpu_attn_us=moe.gpu_attn_us,
        gpu_shared_us=0.0,
        cpu_routed_us=0.0,
        transfer_bytes=0.0,
        n_gpu_kernels=moe.n_gpu_kernels,
    )
    works = [dense] * preset.n_dense_layers + [moe] * preset.n_moe_layers
    return works, summary


def run_batched_decode(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType = BF16,
    n_tokens: int = 8,
    context_lens: Sequence[int] = (32,),
    n_deferred: int | None = None,
    ari_threshold: int | None = None,
) -> tuple[ThroughputResult, BatchedDispatchSummary]:
    """Simulate ``n_tokens`` continuous-batching decode iterations.

    Each iteration decodes one token for every request in
    ``context_lens`` (one entry per request, giving its context length).
    Reported throughput counts ``n_tokens * len(context_lens)`` generated
    tokens; the returned summary records the per-expert ARI dispatch.
    """
    works, summary = batched_decode_works(
        system, preset, machine, dtype, context_lens,
        ari_threshold=ari_threshold,
    )
    config = DecodeScheduleConfig(
        launch_mode=system.launch_mode,
        overlap_cpu_gpu=system.overlap_cpu_gpu,
        top_k=preset.top_k,
        n_deferred=n_deferred or 0,
    )
    sim = simulate_decode(works, config, machine, n_tokens)
    result = _result(system, preset, "decode",
                     n_tokens * len(context_lens), sim)
    return result, summary


def run_prefill(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType = BF16,
    prompt_len: int = 1024,
    chunk_tokens: int = 2048,
    seed: int = 0,
) -> ThroughputResult:
    """Simulate prefilling a ``prompt_len``-token prompt in chunks."""
    if prompt_len <= 0:
        raise ConfigError("prompt_len must be positive")
    chunks: list[int] = []
    remaining = prompt_len
    while remaining > 0:
        take = min(chunk_tokens, remaining)
        chunks.append(take)
        remaining -= take

    works_per_chunk: list[list[PrefillLayerWork]] = []
    for i, size in enumerate(chunks):
        # ARI-aware dispatch (Section 3.2): short chunks route so few
        # tokens to each expert that the low-latency decode kernel wins.
        tokens_per_expert = size * preset.top_k / preset.n_experts
        kernel = (system.decode_kernel if tokens_per_expert <= 4
                  else system.prefill_kernel)
        kernel = _supported_kernel(kernel, system, machine)
        moe = prefill_layer_work(
            preset, machine, dtype, size,
            cpu_profile=kernel,
            numa_strategy=system.numa_strategy,
            kernels_per_layer=system.prefill_kernels_per_layer,
            dynamic_scheduling=system.dynamic_scheduling,
            seed=seed + i,
        )
        dense = PrefillLayerWork(
            gpu_attn_us=moe.gpu_attn_us,
            gpu_shared_us=0.0,
            cpu_routed_us=0.0,
            transfer_bytes=0.0,
            n_gpu_kernels=moe.n_gpu_kernels,
        )
        works_per_chunk.append(
            [dense] * preset.n_dense_layers + [moe] * preset.n_moe_layers
        )

    sim = simulate_prefill(works_per_chunk, system.launch_mode, machine,
                           system.overlap_cpu_gpu)
    return _result(system, preset, "prefill", prompt_len, sim)


def _result(system: SystemProfile, preset: ModelPreset, phase: str,
            tokens: int, sim: Simulator) -> ThroughputResult:
    return ThroughputResult(
        system=system.name,
        model=preset.name,
        phase=phase,
        tokens=tokens,
        elapsed_us=sim.now,
        trace=Trace.from_simulator(sim),
    )
