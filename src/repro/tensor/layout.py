"""AMX tiling-aware weight layout (Section 3.2).

Expert weight matrices are preprocessed **once at model load** into
AMX-compatible submatrices so that inference needs no transposition or
reshaping: the matrix is padded to whole 16-row x 64-byte tiles and stored
tile-by-tile in the exact order the kernel consumes them.  Quantized formats
(Int8/Int4) quantize the padded tiles group-wise so scale boundaries never
straddle a tile row and the payload stays 64-byte aligned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..errors import LayoutError
from .dtypes import BF16, INT4, INT8, QUANT_GROUP_SIZE, DType
from .quant import QuantizedTensor, dequantize, quantize
from .tiles import TILE_ROWS, padded_cols, padded_rows, tile_cols


@dataclass(frozen=True)
class PackedWeights:
    """A weight matrix in tile order, optionally quantized.

    ``tiles`` has logical shape ``(row_tiles, col_tiles, TILE_ROWS, tile_cols)``
    -- either a float32 ndarray (for bf16/fp16/fp32 storage) or a
    :class:`QuantizedTensor` over that same shape.  Instances are frozen:
    the packed payload never changes after :func:`pack_matrix`, which lets
    :meth:`dense_tiles` memoize its dequantized view.
    """

    original_shape: tuple[int, int]
    dtype: DType
    tiles: Union[np.ndarray, QuantizedTensor]
    _dense_cache: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def rows(self) -> int:
        return self.original_shape[0]

    @property
    def cols(self) -> int:
        return self.original_shape[1]

    @property
    def padded_shape(self) -> tuple[int, int]:
        return padded_rows(self.rows), padded_cols(self.cols, self.dtype)

    @property
    def tile_grid(self) -> tuple[int, int]:
        pr, pc = self.padded_shape
        return pr // TILE_ROWS, pc // tile_cols(self.dtype)

    def nbytes(self) -> int:
        """Storage footprint of the packed representation."""
        if isinstance(self.tiles, QuantizedTensor):
            return self.tiles.nbytes()
        pr, pc = self.padded_shape
        return int(pr * pc * self.dtype.bytes_per_element)

    def dense_tiles(self) -> np.ndarray:
        """The tile array as float32 (dequantizing if needed).

        The result is computed once per instance and cached: every kernel
        call reads the same tile stream, so re-materializing the dense
        tensor (a full dequantization pass for Int8/Int4) on each GEMM was
        pure waste.  The cached array is read-only; callers must copy
        before mutating.
        """
        if self._dense_cache is None:
            if isinstance(self.tiles, QuantizedTensor):
                dense = dequantize(self.tiles)
            else:
                dense = self.tiles.view()
            dense.flags.writeable = False
            object.__setattr__(self, "_dense_cache", dense)
        return self._dense_cache


def pack_matrix(weights: np.ndarray, dtype: DType = BF16) -> PackedWeights:
    """Pack a (k, n) weight matrix into AMX tile order.

    Padding cells are zero, so GEMM over the padded matrix equals GEMM over
    the original followed by trimming -- the kernels rely on this.
    """
    w = np.asarray(weights, dtype=np.float32)
    if w.ndim != 2:
        raise LayoutError(f"expected a 2-D matrix, got shape {w.shape}")
    rows, cols = w.shape
    pr, pc = padded_rows(rows), padded_cols(cols, dtype)
    tc = tile_cols(dtype)

    padded = np.zeros((pr, pc), dtype=np.float32)
    padded[:rows, :cols] = w
    # (pr, pc) -> (row_tiles, TILE_ROWS, col_tiles, tc) -> tile-major order.
    tiles = (
        padded.reshape(pr // TILE_ROWS, TILE_ROWS, pc // tc, tc)
        .transpose(0, 2, 1, 3)
        .copy()
    )

    if dtype in (INT8, INT4):
        # Group scales run along tile columns; tile_cols is always a
        # multiple of the group size for both Int8 (64) and Int4 (128).
        if tc % QUANT_GROUP_SIZE != 0:
            raise LayoutError(
                f"tile width {tc} incompatible with group size {QUANT_GROUP_SIZE}"
            )
        payload = quantize(tiles, dtype)
        return PackedWeights((rows, cols), dtype, payload)
    return PackedWeights((rows, cols), dtype, tiles)


def unpack_matrix(packed: PackedWeights) -> np.ndarray:
    """Recover the (k, n) matrix (padding trimmed; quantization lossy)."""
    tiles = packed.dense_tiles()
    rt, ct, tr, tc = tiles.shape
    padded = tiles.transpose(0, 2, 1, 3).reshape(rt * tr, ct * tc)
    rows, cols = packed.original_shape
    return padded[:rows, :cols].copy()


def pad_activations(x: np.ndarray, k_padded: int) -> np.ndarray:
    """Zero-pad activation columns to the padded weight row count."""
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 2:
        raise LayoutError(f"expected (m, k) activations, got shape {x.shape}")
    m, k = x.shape
    if k > k_padded:
        raise LayoutError(f"activations wider ({k}) than padded weights ({k_padded})")
    if k == k_padded:
        return x
    out = np.zeros((m, k_padded), dtype=np.float32)
    out[:, :k] = x
    return out
