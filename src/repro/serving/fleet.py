"""Fleet-scale serving: N replica servers behind a routing layer.

The paper's hybrid CPU/GPU engine deploys in practice as *replicated*
servers (the Kimi-K2.5 topology: k8s replicas x pipeline stages over a
shared CPU expert pool).  :class:`FleetRouter` models that control
plane: it owns ``n_replicas`` independent
:class:`~repro.serving.continuous.ContinuousBatchingServer` replicas --
each with its own admission queue, KV pool, expert cache, prefix cache,
and graph cache -- and routes a timed workload across them under a
pluggable policy:

- ``"round-robin"`` -- rotate over the replicas currently accepting;
- ``"least-loaded"`` -- estimated-backlog argmin (prefill + decode cost
  from the session's :class:`~repro.serving.session.PhaseCostModel`);
- ``"session-affinity"`` -- sticky ``session_id -> replica`` mapping so
  multi-turn prefix reuse survives routing (falls back to least-loaded
  for untagged or orphaned traffic, counting every rebalance);
- ``"priority-spill"`` -- INTERACTIVE traffic takes the least-loaded
  replica; STANDARD/BATCH spills away from it so the fast lane stays
  clear;
- ``"adaptive"`` -- weighted round-robin whose weights a
  :class:`RoutingWeightAdapter` adapts online from EWMA-smoothed
  inverse backlog (the fleet-level arm of the self-tuning control
  plane in :mod:`repro.serving.controller`): replicas that fall behind
  -- a slow pipeline, a cold restart -- shed routing share until their
  backlog recovers, deterministically via stride scheduling.

Replica-level chaos comes from :class:`~repro.faults.plan.ReplicaFault`
windows in a :class:`~repro.faults.plan.FaultPlan`: a ``"kill"`` window
loses the replica's queued and in-flight requests at its start (the
router resubmits or sheds them per :class:`FleetConfig.on_kill`) and
restarts the replica cold at its end; a ``"drain"`` window stops new
assignments while everything already routed completes.

Determinism: routing is a single chronological sweep over arrival and
kill events with total-ordered tie-breaks, every replica replays its
work on the deterministic single-node engine, and restart resubmission
re-enters the same sweep -- one workload plus one plan replays
bit-identically, which is what the fleet bench and fuzz matrix pin.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ConfigError
from ..faults.plan import FaultPlan, ReplicaFault
from ..kernels.backend import resolve_backend
from .continuous import ContinuousBatchingServer
from .metrics import PipelineStats, RequestTiming, ServingSLO, ServingStats
from .priority import Priority
from .server import TimedRequest

ROUTING_POLICIES = ("round-robin", "least-loaded", "session-affinity",
                    "priority-spill", "adaptive")

# Event-kind ordinals of the routing sweep: kills close a replica's epoch
# before any same-instant arrival can route to the survivors' new state.
_EV_KILL = 0
_EV_ARRIVAL = 1


@dataclass(frozen=True)
class RoutingWeightConfig:
    """Schedule of the ``"adaptive"`` policy's weight adaptation.

    Weights refresh every ``update_every`` routed arrivals from the
    router's backlog estimates: each replica's target weight is
    proportional to ``1 / (1 + backlog_s)``, EWMA-smoothed with
    ``ewma_alpha`` and floored at ``floor`` of the total so a lagging
    replica keeps a trickle of probe traffic (otherwise its backlog
    estimate could never recover).
    """

    update_every: int = 8
    ewma_alpha: float = 0.5
    floor: float = 0.05

    def __post_init__(self) -> None:
        if self.update_every <= 0:
            raise ConfigError("update_every must be positive")
        if not 0 < self.ewma_alpha <= 1:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        if not 0 <= self.floor < 1:
            raise ConfigError("floor must be in [0, 1)")


class RoutingWeightAdapter:
    """Online routing weights: EWMA inverse backlog + stride assignment.

    The fleet-level counterpart of the per-replica
    :class:`~repro.serving.controller.OnlineController`: instead of
    tuning a replica's knobs it tunes *where traffic goes*.  Every
    arrival the router reports each replica's estimated backlog; every
    ``update_every`` arrivals the weights move (EWMA) toward normalized
    inverse backlog.  Assignment is stride (weighted-round-robin)
    scheduling over the current weights -- each accepting replica
    accrues credit proportional to its weight and the largest credit
    wins (ties break on the lower index) -- so the routing sequence is
    a pure function of the arrival order and the backlog estimates,
    keeping fleet replays bit-reproducible.
    """

    def __init__(self, config: RoutingWeightConfig, n_replicas: int) -> None:
        if n_replicas <= 0:
            raise ConfigError("n_replicas must be positive")
        self.config = config
        self.n = n_replicas
        self.weights = [1.0 / n_replicas] * n_replicas
        self._credits = [0.0] * n_replicas
        self._seen = 0
        self.updates = 0

    def observe(self, backlogs_us: list[float]) -> None:
        """Fold one arrival's backlog estimates into the weights."""
        if len(backlogs_us) != self.n:
            raise ConfigError("one backlog estimate per replica required")
        self._seen += 1
        if self._seen % self.config.update_every:
            return
        self.updates += 1
        raw = [1.0 / (1.0 + b / 1e6) for b in backlogs_us]
        total = sum(raw)
        alpha = self.config.ewma_alpha
        target = [r / total for r in raw]
        mixed = [alpha * t + (1 - alpha) * w
                 for t, w in zip(target, self.weights)]
        floored = [max(m, self.config.floor / self.n) for m in mixed]
        norm = sum(floored)
        self.weights = [f / norm for f in floored]

    def pick(self, accepting: list[int]) -> int:
        """Stride-schedule the next arrival over the accepting replicas."""
        if not accepting:
            raise ConfigError("no accepting replicas to pick from")
        for r in accepting:
            self._credits[r] += self.weights[r]
        choice = max(accepting, key=lambda r: (self._credits[r], -r))
        self._credits[choice] -= sum(self.weights[r] for r in accepting)
        return choice


@dataclass(frozen=True)
class FleetConfig:
    """Fleet topology and routing policy.

    ``on_kill`` decides the fate of requests a ``"kill"`` window
    catches queued or in-flight on the dead replica: ``"resubmit"``
    re-enters them at the kill instant (plus ``resubmit_delay_us``,
    modelling failure detection) to be re-routed across the survivors;
    ``"shed"`` drops them, counted against fleet goodput like any other
    shed submission.  ``routing_weights`` configures the ``"adaptive"``
    policy's :class:`RoutingWeightAdapter` (defaults apply when left
    ``None``); setting it with any other policy is an error.

    ``backends`` models a mixed-hardware fleet: one registered
    :class:`~repro.kernels.backend.KernelBackend` name (or instance, or
    ``None`` for the replica factory's own default) per replica.  The
    router rebinds each freshly created replica server to its entry via
    :meth:`~repro.serving.continuous.ContinuousBatchingServer.
    rebind_backend`, so heterogeneous kernel stacks are pure config.
    Unknown backend names raise :class:`ValueError` at construction
    time; the tuple length must equal ``n_replicas``.
    """

    n_replicas: int = 2
    policy: str = "least-loaded"
    on_kill: str = "resubmit"
    resubmit_delay_us: float = 0.0
    routing_weights: RoutingWeightConfig | None = None
    backends: tuple | None = None

    def __post_init__(self) -> None:
        if self.n_replicas <= 0:
            raise ConfigError("n_replicas must be positive")
        if self.policy not in ROUTING_POLICIES:
            raise ConfigError(
                f"unknown routing policy {self.policy!r}; expected one of "
                f"{ROUTING_POLICIES}")
        if self.on_kill not in ("resubmit", "shed"):
            raise ConfigError(
                f"unknown on_kill {self.on_kill!r}; expected "
                "'resubmit' or 'shed'")
        if self.resubmit_delay_us < 0:
            raise ConfigError("resubmit_delay_us must be >= 0")
        if self.routing_weights is not None and self.policy != "adaptive":
            raise ConfigError(
                "routing_weights only applies to the 'adaptive' policy")
        if self.backends is not None:
            object.__setattr__(self, "backends", tuple(self.backends))
            if len(self.backends) != self.n_replicas:
                raise ConfigError(
                    f"backends must name one backend per replica: got "
                    f"{len(self.backends)} for {self.n_replicas} replicas")
            for b in self.backends:
                resolve_backend(b)   # ValueError on unknown names


@dataclass
class FleetStats:
    """Fleet-level aggregate over every replica's served work.

    ``merged`` holds every surviving :class:`RequestTiming` across
    replicas (sorted by finish time) plus every shed record, so fleet
    TTFT/TPOT percentiles and goodput come straight from the standard
    :class:`~repro.serving.metrics.ServingStats` machinery.  When the
    whole run was one replica epoch, ``merged`` *is* that epoch's stats
    object -- sub-feature summaries (cache/graph/session counters)
    included -- which is what makes a 1-replica fleet bit-identical to
    the bare server.  Multi-epoch runs merge timings and sheds only;
    per-replica feature counters stay visible in ``replica_stats``.
    """

    merged: ServingStats
    n_replicas: int
    policy: str
    routed: list[int]
    assignments: list[tuple]
    replica_stats: list[ServingStats]
    epoch_stats: list[ServingStats]
    kills: int = 0
    drains: int = 0
    killed_in_flight: int = 0
    resubmitted: int = 0
    shed_on_kill: int = 0
    affinity_hits: int = 0
    affinity_rebalances: int = 0
    spill_routed: int = 0
    deferred_arrivals: int = 0
    weight_updates: int = 0
    routing_weights: tuple[float, ...] = ()

    @property
    def timings(self) -> list[RequestTiming]:
        """Every surviving request timing, fleet-wide."""
        return self.merged.timings

    @property
    def n_requests(self) -> int:
        """Requests that finished (each final execution counted once)."""
        return self.merged.n_requests

    @property
    def n_shed(self) -> int:
        """Requests shed fleet-wide (replica sheds + kill casualties)."""
        return self.merged.n_shed

    def summary(self) -> dict[str, float]:
        """The merged serving summary plus flat ``fleet_*`` counters."""
        out = self.merged.summary()
        routed = [float(r) for r in self.routed]
        mean_routed = sum(routed) / len(routed) if routed else 0.0
        out.update({
            "fleet_replicas": float(self.n_replicas),
            "fleet_kills": float(self.kills),
            "fleet_drains": float(self.drains),
            "fleet_killed_in_flight": float(self.killed_in_flight),
            "fleet_resubmitted": float(self.resubmitted),
            "fleet_shed_on_kill": float(self.shed_on_kill),
            "fleet_affinity_hits": float(self.affinity_hits),
            "fleet_affinity_rebalances": float(self.affinity_rebalances),
            "fleet_spill_routed": float(self.spill_routed),
            "fleet_deferred_arrivals": float(self.deferred_arrivals),
            "fleet_routed_imbalance": (max(routed) / mean_routed
                                       if mean_routed > 0 else 0.0),
        })
        if self.policy == "adaptive":
            # Weight-adapter counters appear only under the adaptive
            # policy, so static-policy summaries stay key-identical.
            out["fleet_weight_updates"] = float(self.weight_updates)
            for i, w in enumerate(self.routing_weights):
                out[f"fleet_weight_{i}"] = w
        return out

    def goodput(self, slo: ServingSLO,
                priority: int | None = None) -> dict[str, float]:
        """Fleet goodput: delegates to the merged stats, so attainment
        is over every submitted request (kill-shed casualties included)
        and each resubmitted request's final execution counts once."""
        return self.merged.goodput(slo, priority=priority)

    def replica_summary(self, replica: int) -> dict[str, float]:
        """One replica's serving summary (zeroed when it served nothing)."""
        stats = self.replica_stats[replica]
        if not stats.timings and not stats.shed:
            return {"requests": 0.0}
        return stats.summary()

    def prefix_reuse_fraction(self) -> float:
        """Fleet-wide prefix-cache reuse over every replica epoch.

        Prompt tokens served from replicas' radix caches over all
        submitted prompt tokens -- the cross-replica analogue of
        :attr:`~repro.serving.metrics.SessionStats.reuse_fraction`
        (0 when no replica ran with a prefix cache).
        """
        avoided = total = 0
        for stats in self.epoch_stats:
            if stats.sessions is not None:
                avoided += stats.sessions.prefill_tokens_avoided
                total += stats.sessions.prompt_tokens_total
        return avoided / total if total else 0.0


class FleetRouter:
    """Route a timed workload across N independent server replicas.

    ``make_server`` is the replica factory: called once per replica
    epoch (the stretch between cold starts), so every replica owns
    private admission/KV/cache state and a killed replica genuinely
    restarts cold.  Factories should close over a shared
    :class:`~repro.serving.session.InferenceSession` -- its memoized
    cost model is deterministic, so sharing it never couples replicas'
    pricing.

    The replay is a chronological event sweep (arrivals + kill starts).
    Each replica accumulates an *epoch* of assignments; a kill at ``T``
    closes the epoch, replays it on a fresh server, keeps the timings
    that finished by ``T``, and resubmits or sheds the rest.  Drain
    windows only gate new assignments -- in-flight work completes.
    Remaining epochs replay when the sweep ends.
    """

    def __init__(self, make_server: Callable[[], ContinuousBatchingServer],
                 config: FleetConfig | None = None,
                 fault_plan: FaultPlan | None = None) -> None:
        self.make_server = make_server
        self.config = config or FleetConfig()
        self.fault_plan = fault_plan
        n = self.config.n_replicas
        self._kill_windows: list[list[ReplicaFault]] = [[] for _ in range(n)]
        self._drain_windows: list[list[ReplicaFault]] = [[] for _ in range(n)]
        if fault_plan is not None:
            for w in fault_plan.replicas:
                if w.replica >= n:
                    raise ConfigError(
                        f"replica fault targets replica {w.replica} but the "
                        f"fleet has {n} replicas")
                target = (self._kill_windows if w.kind == "kill"
                          else self._drain_windows)
                target[w.replica].append(w)
        # One probe server for config validation and backlog estimation;
        # it never replays anything.
        self._probe = make_server()

    def _make_replica(self, replica: int) -> ContinuousBatchingServer:
        """A fresh server for one replica epoch, backend-bound if mixed.

        With :attr:`FleetConfig.backends` set, the just-created server is
        rebound to the replica's backend (a ``None`` entry keeps the
        factory's default) before it replays anything.
        """
        server = self.make_server()
        if (self.config.backends is not None
                and self.config.backends[replica] is not None):
            server.rebind_backend(self.config.backends[replica])
        return server

    # -- liveness ------------------------------------------------------------

    def _alive(self, replica: int, t_us: float) -> bool:
        """Whether the replica's process exists at ``t_us``."""
        return not any(w.active_at(t_us)
                       for w in self._kill_windows[replica])

    def _accepting(self, replica: int, t_us: float) -> bool:
        """Whether the replica takes *new* assignments at ``t_us``."""
        return (self._alive(replica, t_us)
                and not any(w.active_at(t_us)
                            for w in self._drain_windows[replica]))

    def _next_accepting_time(self, t_us: float) -> float:
        """Earliest instant >= ``t_us`` at which any replica accepts.

        Window ends are the only instants acceptance can switch on, so
        the candidates are every blocking window's ``end_us``.
        """
        n = self.config.n_replicas
        if any(self._accepting(r, t_us) for r in range(n)):
            return t_us
        ends = sorted({w.end_us
                       for r in range(n)
                       for w in self._kill_windows[r] + self._drain_windows[r]
                       if w.end_us > t_us})
        for cand in ends:
            if any(self._accepting(r, cand) for r in range(n)):
                return cand
        raise ConfigError(
            "fault plan leaves no replica ever accepting again")

    # -- load estimation -----------------------------------------------------

    def _estimate_us(self, timed: TimedRequest) -> float:
        """Estimated service time of one request on an idle replica.

        The session's coarse :class:`~repro.serving.session.
        PhaseCostModel` (prefill + per-token decode) -- a routing
        heuristic, deliberately cheaper and rougher than the batch-aware
        pricing the replica itself will charge.
        """
        costs = self._probe.session.costs
        prompt_len = len(np.atleast_1d(timed.request.prompt))
        return (costs.prefill_us(prompt_len)
                + costs.per_token_us() * timed.request.max_new_tokens)

    # -- policies ------------------------------------------------------------

    def _backlog(self, replica: int, t_us: float) -> float:
        return max(0.0, self._est_finish[replica] - t_us)

    def _least_loaded(self, accepting: list[int], t_us: float) -> int:
        """Estimated-backlog argmin; idle ties spread by assignment count.

        Without the tie-break every idle instant would route to replica
        0 (stable index order), piling session stickiness onto one
        replica under light load.
        """
        return min(accepting, key=lambda r: (self._backlog(r, t_us),
                                             self._n_assigned[r], r))

    def _route(self, timed: TimedRequest, t_us: float,
               accepting: list[int]) -> int:
        """Pick the replica for one arrival, per the configured policy."""
        policy = self.config.policy
        if policy == "round-robin":
            choice = accepting[self._rr % len(accepting)]
            self._rr += 1
            return choice
        if policy == "least-loaded":
            return self._least_loaded(accepting, t_us)
        if policy == "adaptive":
            self._weights.observe(
                [self._backlog(r, t_us)
                 for r in range(self.config.n_replicas)])
            return self._weights.pick(accepting)
        if policy == "session-affinity":
            sid = timed.session_id
            if sid is None:
                return self._least_loaded(accepting, t_us)
            sticky = self._sticky.get(sid)
            if sticky is not None and sticky in accepting:
                self._affinity_hits += 1
                return sticky
            choice = self._least_loaded(accepting, t_us)
            if sticky is not None:
                self._affinity_rebalances += 1
            self._sticky[sid] = choice
            return choice
        # priority-spill: keep the fast lane clear for INTERACTIVE.
        if timed.priority == Priority.INTERACTIVE or len(accepting) == 1:
            return self._least_loaded(accepting, t_us)
        protected = self._least_loaded(accepting, t_us)
        rest = [r for r in accepting if r != protected]
        self._spill_routed += 1
        return self._least_loaded(rest, t_us)

    # -- epoch replay --------------------------------------------------------

    @staticmethod
    def _timing_key(timing: RequestTiming) -> tuple:
        return (timing.arrival_us, timing.prompt_tokens,
                int(timing.priority))

    @staticmethod
    def _request_key(timed: TimedRequest) -> tuple:
        return (timed.arrival_us,
                int(len(np.atleast_1d(timed.request.prompt))),
                int(timed.priority))

    def _close_epoch(self, replica: int,
                     cutoff_us: float | None) -> list[TimedRequest]:
        """Replay the replica's open epoch; return the kill casualties.

        Timings finishing by ``cutoff_us`` survive into the fleet
        aggregate; later ones were queued or in-flight on the dead
        replica, so their requests come back as casualties.  Timings are
        matched to requests by ``(arrival, prompt tokens, priority)`` --
        identical requests are interchangeable, so the match is
        deterministic even under tied arrivals.  ``cutoff_us=None``
        (end-of-sweep close) keeps everything.
        """
        epoch = self._epoch[replica]
        self._epoch[replica] = []
        if not epoch:
            return []
        server = self._make_replica(replica)
        stats = server.replay(list(epoch))
        self._epoch_stats.append(stats)
        self._replica_epochs[replica].append(stats)
        by_key: dict[tuple, list[RequestTiming]] = {}
        for timing in stats.timings:
            by_key.setdefault(self._timing_key(timing), []).append(timing)
        casualties: list[TimedRequest] = []
        for timed in epoch:
            bucket = by_key.get(self._request_key(timed))
            if not bucket:
                continue        # shed inside the epoch: its record merges
            timing = bucket.pop(0)
            if cutoff_us is None or timing.finish_us <= cutoff_us:
                self._kept.append(timing)
                self._replica_kept[replica].append(timing)
            else:
                casualties.append(timed)
        self._shed_records.extend(stats.shed)
        return casualties

    # -- replay --------------------------------------------------------------

    def replay(self, workload: list[TimedRequest]) -> FleetStats:
        """Serve a timed workload across the fleet; returns fleet stats."""
        if not workload:
            raise ConfigError("empty workload")
        n = self.config.n_replicas
        self._epoch: list[list[TimedRequest]] = [[] for _ in range(n)]
        self._est_finish = [0.0] * n
        self._epoch_stats: list[ServingStats] = []
        self._replica_epochs: list[list[ServingStats]] = [
            [] for _ in range(n)]
        self._kept: list[RequestTiming] = []
        self._replica_kept: list[list[RequestTiming]] = [
            [] for _ in range(n)]
        self._shed_records: list = []
        self._sticky: dict[str, int] = {}
        self._n_assigned = [0] * n
        self._rr = 0
        self._weights = RoutingWeightAdapter(
            self.config.routing_weights or RoutingWeightConfig(), n)
        self._affinity_hits = 0
        self._affinity_rebalances = 0
        self._spill_routed = 0
        routed = [0] * n
        assignments: list[tuple] = []
        kills = killed_in_flight = resubmitted = shed_on_kill = 0
        deferred = 0

        heap: list[tuple] = []
        seq = 0
        for timed in sorted(workload, key=lambda t: t.arrival_us):
            heapq.heappush(heap, (timed.arrival_us, _EV_ARRIVAL, seq, timed))
            seq += 1
        for r in range(n):
            for w in self._kill_windows[r]:
                heapq.heappush(heap, (w.start_us, _EV_KILL, seq, (r, w)))
                seq += 1

        while heap:
            t_us, kind, _, payload = heapq.heappop(heap)
            if kind == _EV_KILL:
                r, window = payload
                kills += 1
                casualties = self._close_epoch(r, t_us)
                killed_in_flight += len(casualties)
                # The restarted replica comes back cold and idle.
                self._est_finish[r] = window.end_us
                for timed in casualties:
                    if self.config.on_kill == "shed":
                        shed_on_kill += 1
                        self._shed_records.append(
                            (t_us, int(timed.priority)))
                        continue
                    resubmitted += 1
                    again = dataclasses.replace(
                        timed,
                        arrival_us=t_us + self.config.resubmit_delay_us)
                    heapq.heappush(
                        heap, (again.arrival_us, _EV_ARRIVAL, seq, again))
                    seq += 1
                continue
            timed = payload
            accepting = [r for r in range(n) if self._accepting(r, t_us)]
            if not accepting:
                # Nobody takes work right now: the arrival waits at the
                # router until a window closes.
                t_next = self._next_accepting_time(t_us)
                deferred += 1
                again = dataclasses.replace(timed, arrival_us=t_next)
                heapq.heappush(heap, (t_next, _EV_ARRIVAL, seq, again))
                seq += 1
                continue
            choice = self._route(timed, t_us, accepting)
            self._n_assigned[choice] += 1
            self._epoch[choice].append(timed)
            self._est_finish[choice] = (
                max(self._est_finish[choice], t_us)
                + self._estimate_us(timed))
            routed[choice] += 1
            assignments.append(
                (t_us, timed.session_id, int(timed.priority), choice))

        for r in range(n):
            self._close_epoch(r, None)

        if len(self._epoch_stats) == 1 and not self._shed_records:
            # One epoch, nothing shed at the router: the fleet aggregate
            # *is* that epoch's stats -- sub-feature summaries included.
            # This is the 1-replica == bare-server bit-identity path.
            merged = self._epoch_stats[0]
        else:
            merged = ServingStats()
            # Stable sort by finish time: each epoch's list is already
            # finish-ordered, so ties keep replica-major order.
            for timing in sorted(self._kept,
                                 key=lambda tm: tm.finish_us):
                merged.add(timing)
            for rec in self._shed_records:
                if isinstance(rec, tuple):
                    merged.record_shed(rec[0], rec[1])
                else:
                    merged.shed.append(rec)
            staged = [st.pipeline for st in self._epoch_stats
                      if st.pipeline is not None]
            if staged:
                # Pipeline accounting survives the merge: sum the
                # per-epoch counters so fleet summaries keep the same
                # pipeline_* keys a single staged replica reports.
                merged.pipeline = PipelineStats(
                    n_stages=staged[0].n_stages,
                    staged_iterations=sum(
                        p.staged_iterations for p in staged),
                    serial_us=sum(p.serial_us for p in staged),
                    staged_us=sum(p.staged_us for p in staged),
                    interstage_transfer_us=sum(
                        p.interstage_transfer_us for p in staged))

        per_replica: list[ServingStats] = []
        for r in range(n):
            if len(self._replica_epochs[r]) == 1:
                per_replica.append(self._replica_epochs[r][0])
            else:
                stats = ServingStats()
                for timing in self._replica_kept[r]:
                    stats.add(timing)
                per_replica.append(stats)

        drains = sum(len(ws) for ws in self._drain_windows)
        return FleetStats(
            merged=merged,
            n_replicas=n,
            policy=self.config.policy,
            routed=routed,
            assignments=assignments,
            replica_stats=per_replica,
            epoch_stats=list(self._epoch_stats),
            kills=kills,
            drains=drains,
            killed_in_flight=killed_in_flight,
            resubmitted=resubmitted,
            shed_on_kill=shed_on_kill,
            affinity_hits=self._affinity_hits,
            affinity_rebalances=self._affinity_rebalances,
            spill_routed=self._spill_routed,
            deferred_arrivals=deferred,
            weight_updates=self._weights.updates,
            routing_weights=tuple(self._weights.weights),
        )
