"""Discrete-event simulator for heterogeneous hardware.

This is the execution substrate for every performance experiment in the
reproduction.  The simulator models *time only*: each :class:`Task` occupies
one slot of a :class:`Resource` (a GPU stream, a CPU socket's thread pool, a
PCIe link, the host launch thread...) for a precomputed duration.  Durations
come from the roofline cost models in :mod:`repro.hw.roofline`.

Key properties:

- tasks form a DAG: a task becomes *ready* only when all dependencies finish;
- resources have integer capacity and FIFO-with-priority queues;
- completion callbacks may create new tasks, enabling reactive schedulers
  (the asynchronous CPU-GPU scheduler and the dynamic MoE work queue both
  rely on this);
- every task's `(resource, start, end)` triple is recorded, giving exact
  utilization and overlap accounting for the timeline figures.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Optional

from ..errors import SimulationError


class TaskState(Enum):
    PENDING = "pending"      # waiting on dependencies
    QUEUED = "queued"        # ready, waiting for a resource slot
    RUNNING = "running"
    DONE = "done"


class Task:
    """A unit of simulated work bound to one resource.

    ``duration`` is in microseconds.  ``deps`` are tasks that must complete
    before this one may start queuing.  ``on_complete`` callbacks fire at the
    task's end time and may submit further tasks.
    """

    __slots__ = (
        "name", "resource", "duration", "priority", "meta",
        "state", "start_time", "end_time",
        "_remaining_deps", "_dependents", "_on_complete",
    )

    def __init__(
        self,
        name: str,
        resource: "Resource",
        duration: float,
        priority: int = 0,
        meta: Optional[dict] = None,
    ) -> None:
        if duration < 0:
            raise SimulationError(f"task {name!r} has negative duration {duration}")
        self.name = name
        self.resource = resource
        self.duration = float(duration)
        self.priority = priority
        self.meta = meta or {}
        self.state = TaskState.PENDING
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self._remaining_deps = 0
        self._dependents: list[Task] = []
        self._on_complete: list[Callable[[Task], None]] = []

    def on_complete(self, fn: Callable[["Task"], None]) -> "Task":
        """Register a callback invoked (at simulated end time) on completion."""
        if self.state is TaskState.DONE:
            raise SimulationError(f"task {self.name!r} already completed")
        self._on_complete.append(fn)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task({self.name!r}, res={self.resource.name!r}, "
            f"dur={self.duration:.2f}us, state={self.state.value})"
        )


class Resource:
    """A capacity-limited execution resource (device queue, link, thread pool)."""

    def __init__(self, sim: "Simulator", name: str, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource {name!r} needs positive capacity")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_flight = 0
        self._queue: list[tuple[int, int, Task]] = []  # (priority, seq, task)
        self._seq = itertools.count()
        self.busy_time = 0.0  # accumulated task-occupancy (us * slots)

    def _enqueue(self, task: Task) -> None:
        task.state = TaskState.QUEUED
        heapq.heappush(self._queue, (task.priority, next(self._seq), task))
        # Defer dispatch to the event loop so that all tasks becoming ready
        # at the same instant enter the queue before any slot is assigned --
        # otherwise priorities would be ignored among same-time arrivals.
        self.sim.after(0.0, self._dispatch)

    def _dispatch(self) -> None:
        while self._in_flight < self.capacity and self._queue:
            __, __, task = heapq.heappop(self._queue)
            self._start(task)

    def _start(self, task: Task) -> None:
        self._in_flight += 1
        task.state = TaskState.RUNNING
        task.start_time = self.sim.now
        self.sim.after(self.sim._effective_duration(task),
                       lambda: self._finish(task))

    def _finish(self, task: Task) -> None:
        task.state = TaskState.DONE
        task.end_time = self.sim.now
        self.busy_time += task.end_time - task.start_time
        self._in_flight -= 1
        for dep in task._dependents:
            dep._remaining_deps -= 1
            if dep._remaining_deps == 0 and dep.state is TaskState.PENDING:
                dep.resource._enqueue(dep)
        for fn in task._on_complete:
            fn(task)
        self._dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.name!r}, cap={self.capacity})"


class Simulator:
    """Event loop: a priority queue of timed callbacks plus task bookkeeping.

    ``perturb``, when given, is a duration hook ``(task, now) -> duration``
    consulted at each task's *start* time; fault injection
    (:mod:`repro.faults`) uses it to stretch CPU/PCIe tasks inside
    degradation windows without the task-graph builders knowing.  The hook
    must return a finite, non-negative duration.
    """

    def __init__(
        self,
        perturb: Optional[Callable[[Task, float], float]] = None,
    ) -> None:
        self.now = 0.0
        self.perturb = perturb
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.all_tasks: list[Task] = []
        self._resources: dict[str, Resource] = {}

    def _effective_duration(self, task: Task) -> float:
        """The duration a task occupies its resource, after perturbation."""
        if self.perturb is None:
            return task.duration
        duration = float(self.perturb(task, self.now))
        if not math.isfinite(duration) or duration < 0:
            raise SimulationError(
                f"perturb hook returned invalid duration {duration!r} "
                f"for task {task.name!r}"
            )
        return duration

    # -- resources ----------------------------------------------------------

    def resource(self, name: str, capacity: int = 1) -> Resource:
        """Create (or fetch) a named resource."""
        if name in self._resources:
            existing = self._resources[name]
            if existing.capacity != capacity:
                raise SimulationError(
                    f"resource {name!r} already exists with capacity "
                    f"{existing.capacity}, requested {capacity}"
                )
            return existing
        res = Resource(self, name, capacity)
        self._resources[name] = res
        return res

    @property
    def resources(self) -> dict[str, Resource]:
        return dict(self._resources)

    # -- events -------------------------------------------------------------

    def at(self, time: float, fn: Callable[[], None]) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({time} < now={self.now})"
            )
        heapq.heappush(self._events, (time, next(self._seq), fn))

    def after(self, delay: float, fn: Callable[[], None]) -> None:
        self.at(self.now + delay, fn)

    # -- tasks --------------------------------------------------------------

    def submit(
        self,
        name: str,
        resource: Resource,
        duration: float,
        deps: Iterable[Task] = (),
        priority: int = 0,
        meta: Optional[dict] = None,
    ) -> Task:
        """Create a task and wire its dependencies.

        The task queues on its resource as soon as all ``deps`` are done
        (immediately if they already are, or if there are none).
        """
        task = Task(name, resource, duration, priority=priority, meta=meta)
        self.all_tasks.append(task)
        pending = [d for d in deps if d.state is not TaskState.DONE]
        task._remaining_deps = len(pending)
        for dep in pending:
            dep._dependents.append(task)
        if task._remaining_deps == 0:
            # Defer enqueue to the event loop so that submission order inside
            # a callback does not depend on Python evaluation order.
            self.after(0.0, lambda: self._enqueue_if_pending(task))
        return task

    def _enqueue_if_pending(self, task: Task) -> None:
        if task.state is TaskState.PENDING:
            task.resource._enqueue(task)

    @property
    def completed_tasks(self) -> list[Task]:
        """All tasks that have finished executing, in submission order."""
        return [t for t in self.all_tasks if t.state is TaskState.DONE]

    # -- main loop ----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or simulated ``until``).

        ``until`` is a **closed** boundary: every event scheduled at
        exactly ``until`` fires -- including callbacks those events
        themselves schedule at the same instant -- before the loop
        pauses, and the clock lands on exactly ``until`` even if the
        queue drains earlier.  Strictly-later events are left in place
        without re-insertion, so their relative order is stable across
        pause/resume (fault windows land on exact boundaries, so this
        edge is defined and tested rather than heap-order dependent).

        Returns the final simulated time.
        """
        while self._events:
            if until is not None and self._events[0][0] > until:
                self.now = until
                return self.now
            time, __, fn = heapq.heappop(self._events)
            if time < self.now:
                raise SimulationError("event queue went backwards in time")
            self.now = time
            fn()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def drain(self) -> float:
        """Run to completion and verify no task is left unfinished.

        A stuck task indicates a dependency cycle or an unsatisfiable wait.
        """
        end = self.run()
        stuck = [t for t in self.all_tasks if t.state is not TaskState.DONE]
        if stuck:
            raise SimulationError(f"{len(stuck)} tasks never completed: {stuck[:5]}")
        return end


@dataclass
class Barrier:
    """Convenience: a zero-duration task used to join many predecessors."""

    task: Task

    @classmethod
    def join(cls, sim: Simulator, name: str, resource: Resource,
             deps: Iterable[Task]) -> "Barrier":
        return cls(sim.submit(name, resource, 0.0, deps=deps))
