"""Figure 1: timeline of different execution modes.

The paper's opening figure contrasts (a) GPU-only execution, impossible for
models beyond VRAM, (b) the existing CPU/GPU hybrid with idle gaps, and
(c) KTransformers with Expert Deferral keeping both devices busy.  This
bench regenerates those timelines from real simulations and checks the
story they tell: (a) does not fit, (b) leaves the GPU mostly idle, and (c)
closes the gap.
"""

from repro.bench import format_table
from repro.core import KTRANSFORMERS, run_decode
from repro.baselines import FIDDLER
from repro.hw import paper_testbed
from repro.model import DS3
from repro.tensor import BF16


def _modes():
    machine = paper_testbed("a100")

    # (a) GPU-only: does the full model fit in VRAM?
    full_bytes = DS3.total_params * BF16.bytes_per_element
    fits = full_bytes <= machine.gpu.vram_capacity

    # (b) existing hybrid (Fiddler-style) vs (c) KT with deferral.
    hybrid = run_decode(FIDDLER, DS3, machine, BF16, n_tokens=4)
    kt = run_decode(KTRANSFORMERS, DS3, machine, BF16, n_tokens=4,
                    n_deferred=DS3.deferred_experts_bf16)
    return fits, full_bytes, hybrid, kt


def test_fig1_execution_modes(run_once):
    fits, full_bytes, hybrid, kt = run_once(_modes)
    print()
    print(f"(a) GPU-only: DS-3 BF16 needs {full_bytes / 1e9:.0f} GB VRAM "
          f"-> {'fits' if fits else 'does NOT fit'} a 40 GB A100")
    rows = [
        ("(b) existing hybrid", hybrid.tokens_per_s,
         hybrid.utilization("cpu") * 100, hybrid.utilization("gpu") * 100,
         hybrid.trace.overlap_fraction("cpu", "gpu") * 100),
        ("(c) KT + deferral", kt.tokens_per_s,
         kt.utilization("cpu") * 100, kt.utilization("gpu") * 100,
         kt.trace.overlap_fraction("cpu", "gpu") * 100),
    ]
    print(format_table(
        ["mode", "tokens/s", "CPU util %", "GPU util %", "overlap %"],
        rows, title="Figure 1: execution modes (DS-3 BF16 decode)",
    ))
    print()
    print("(b) timeline:")
    print(hybrid.trace.render_gantt(width=72, resources=["gpu", "cpu"]))
    print("(c) timeline:")
    print(kt.trace.render_gantt(width=72, resources=["gpu", "cpu"]))

    # (a): the 671B model cannot be GPU-only on one A100.
    assert not fits
    # (b) -> (c): deferral-augmented KT overlaps far more and runs faster.
    assert kt.tokens_per_s > 2 * hybrid.tokens_per_s
    assert (kt.trace.overlap_fraction("cpu", "gpu")
            > 2 * hybrid.trace.overlap_fraction("cpu", "gpu"))
    assert kt.utilization("cpu") > hybrid.utilization("cpu")
