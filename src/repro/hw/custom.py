"""Custom machine specs from YAML (model *your* box, not just the paper's).

A downstream user's first question is "what would this do on my hardware?"
This loader turns a small YAML document into a :class:`MachineSpec`:

    cpu:
      name: EPYC 9654
      cores: 96
      amx_tflops: 0            # no AMX -> AVX-512 kernels only
      avx512_tflops: 12.0
      dram_gbps: 460
      dram_gb: 768
    sockets: 2
    gpu:
      name: RTX 4090
      tflops: 165
      hbm_gbps: 1008
      vram_gb: 24
    pcie_gbps: 32
    cross_socket_gbps: 150

Unspecified fields fall back to the paper-testbed defaults.
"""

from __future__ import annotations

import yaml

from ..errors import ConfigError
from .spec import (
    PCIE4_X16,
    XEON_8452Y,
    A100_40G,
    CPUSpec,
    GPUSpec,
    InterconnectSpec,
    MachineSpec,
)
from .units import GB, GBps, TFLOPS


def machine_from_dict(doc: dict) -> MachineSpec:
    """Build a MachineSpec from a parsed YAML document."""
    if not isinstance(doc, dict):
        raise ConfigError("machine spec must be a mapping")
    unknown = set(doc) - {"name", "cpu", "sockets", "gpu", "pcie_gbps",
                          "cross_socket_gbps"}
    if unknown:
        raise ConfigError(f"unknown machine keys: {sorted(unknown)}")

    cpu_doc = doc.get("cpu") or {}
    cpu = CPUSpec(
        name=cpu_doc.get("name", XEON_8452Y.name),
        cores=int(cpu_doc.get("cores", XEON_8452Y.cores)),
        amx_peak_flops=TFLOPS(float(cpu_doc.get(
            "amx_tflops", XEON_8452Y.amx_peak_flops / 1e12))),
        avx512_peak_flops=TFLOPS(float(cpu_doc.get(
            "avx512_tflops", XEON_8452Y.avx512_peak_flops / 1e12))),
        dram_bandwidth=GBps(float(cpu_doc.get(
            "dram_gbps", XEON_8452Y.dram_bandwidth / 1e9))),
        dram_capacity=float(cpu_doc.get(
            "dram_gb", XEON_8452Y.dram_capacity / GB)) * GB,
        has_amx=float(cpu_doc.get(
            "amx_tflops", XEON_8452Y.amx_peak_flops / 1e12)) > 0,
    )

    gpu_doc = doc.get("gpu") or {}
    gpu = GPUSpec(
        name=gpu_doc.get("name", A100_40G.name),
        peak_flops=TFLOPS(float(gpu_doc.get(
            "tflops", A100_40G.peak_flops / 1e12))),
        hbm_bandwidth=GBps(float(gpu_doc.get(
            "hbm_gbps", A100_40G.hbm_bandwidth / 1e9))),
        vram_capacity=float(gpu_doc.get(
            "vram_gb", A100_40G.vram_capacity / GB)) * GB,
    )

    interconnect = InterconnectSpec(
        pcie_bandwidth=GBps(float(doc.get(
            "pcie_gbps", PCIE4_X16.pcie_bandwidth / 1e9))),
        cross_socket_bandwidth=GBps(float(doc.get(
            "cross_socket_gbps", PCIE4_X16.cross_socket_bandwidth / 1e9))),
    )

    return MachineSpec(
        name=doc.get("name", f"custom: {cpu.name} + {gpu.name}"),
        cpu=cpu,
        sockets=int(doc.get("sockets", 2)),
        gpu=gpu,
        interconnect=interconnect,
    )


def load_machine(path: str) -> MachineSpec:
    """Read a machine-spec YAML file."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = yaml.safe_load(f)
        except yaml.YAMLError as exc:
            raise ConfigError(f"invalid machine YAML: {exc}") from exc
    return machine_from_dict(doc or {})
