"""A minimal reverse-mode automatic differentiation engine over numpy.

Just enough machinery to train the tiny MoE transformers used by the
accuracy experiments (Table 2, Figure 13): broadcast-aware arithmetic,
batched matmul, softmax/cross-entropy, gather/scatter for expert routing,
and rotary embeddings as a fixed linear op.

The engine is eager: every op records its parents and a backward closure;
``Tensor.backward()`` topologically sorts the graph and accumulates
gradients.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Union

import numpy as np

from ..errors import AutogradError

ArrayLike = Union[np.ndarray, float, int, "Tensor"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the autograd graph wrapping a float32 ndarray."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False,
                 name: str = "") -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def param(data, name: str = "") -> "Tensor":
        return Tensor(data, requires_grad=True, name=name)

    @staticmethod
    def _lift(x: ArrayLike) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    def _make(self, data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        parents = tuple(parents)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, grad={self.requires_grad})"

    # -- arithmetic ---------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._lift(other)
        data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            _accumulate(self, _unbroadcast(g, self.shape))
            _accumulate(other, _unbroadcast(g, other.shape))

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            _accumulate(self, -g)
        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-Tensor._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._lift(other)
        data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            _accumulate(self, _unbroadcast(g * other.data, self.shape))
            _accumulate(other, _unbroadcast(g * self.data, other.shape))

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = Tensor._lift(other)
        data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            _accumulate(self, _unbroadcast(g / other.data, self.shape))
            _accumulate(
                other,
                _unbroadcast(-g * self.data / (other.data ** 2), other.shape),
            )

        return self._make(data, (self, other), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = Tensor._lift(other)
        data = np.matmul(self.data, other.data)

        def backward(g: np.ndarray) -> None:
            ga = np.matmul(g, np.swapaxes(other.data, -1, -2))
            gb = np.matmul(np.swapaxes(self.data, -1, -2), g)
            _accumulate(self, _unbroadcast(ga, self.shape))
            _accumulate(other, _unbroadcast(gb, other.shape))

        return self._make(data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(g: np.ndarray) -> None:
            _accumulate(self, g * exponent * self.data ** (exponent - 1))

        return self._make(data, (self,), backward)

    # -- shape ops ----------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        data = self.data.reshape(*shape)
        orig = self.shape

        def backward(g: np.ndarray) -> None:
            _accumulate(self, g.reshape(orig))

        return self._make(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        data = np.swapaxes(self.data, a, b)

        def backward(g: np.ndarray) -> None:
            _accumulate(self, np.swapaxes(g, a, b))

        return self._make(data, (self,), backward)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g: np.ndarray) -> None:
            if axis is None:
                grad = np.broadcast_to(g, shape)
            else:
                gg = g if keepdims else np.expand_dims(g, axis)
                grad = np.broadcast_to(gg, shape)
            _accumulate(self, grad.astype(np.float32).copy())

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        n = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    # -- elementwise nonlinearities ----------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(g: np.ndarray) -> None:
            _accumulate(self, g * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(np.maximum(self.data, 1e-12))

        def backward(g: np.ndarray) -> None:
            _accumulate(self, g / np.maximum(self.data, 1e-12))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(g: np.ndarray) -> None:
            _accumulate(self, g * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def silu(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        data = self.data * sig

        def backward(g: np.ndarray) -> None:
            _accumulate(self, g * (sig * (1.0 + self.data * (1.0 - sig))))

        return self._make(data, (self,), backward)

    # -- indexing -------------------------------------------------------------

    def take_rows(self, idx: np.ndarray) -> "Tensor":
        """Select rows (first axis); backward scatter-adds."""
        idx = np.asarray(idx)
        data = self.data[idx]
        shape = self.shape

        def backward(g: np.ndarray) -> None:
            grad = np.zeros(shape, dtype=np.float32)
            np.add.at(grad, idx, g)
            _accumulate(self, grad)

        return self._make(data, (self,), backward)

    def scatter_rows(self, idx: np.ndarray, n_rows: int) -> "Tensor":
        """Place rows at ``idx`` of a zero (n_rows, ...) tensor, adding dups."""
        idx = np.asarray(idx)
        data = np.zeros((n_rows,) + self.shape[1:], dtype=np.float32)
        np.add.at(data, idx, self.data)

        def backward(g: np.ndarray) -> None:
            _accumulate(self, g[idx])

        return self._make(data, (self,), backward)

    def gather(self, idx: np.ndarray, axis: int = -1) -> "Tensor":
        """``np.take_along_axis``; backward scatter-adds along ``axis``."""
        idx = np.asarray(idx)
        data = np.take_along_axis(self.data, idx, axis=axis)
        shape = self.shape

        def backward(g: np.ndarray) -> None:
            grad = np.zeros(shape, dtype=np.float32)
            np.put_along_axis(grad, idx, 0.0, axis=axis)  # ensure shape ok
            # put_along_axis overwrites; emulate scatter-add manually:
            flat = np.zeros(shape, dtype=np.float32)
            it = np.nditer(idx, flags=["multi_index"])
            for target in it:
                mi = list(it.multi_index)
                mi[axis] = int(target)
                flat[tuple(mi)] += g[it.multi_index]
            _accumulate(self, flat)

        return self._make(data, (self,), backward)

    # -- graph execution ------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        if not self.requires_grad:
            raise AutogradError("called backward() on a non-differentiable tensor")
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient requires a scalar"
                )
            grad = np.ones_like(self.data)
        order = _toposort(self)
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=np.float32)}
        global _GRAD_SINK
        for node in order:
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf parameter: accumulate into .grad.
                node.grad = g if node.grad is None else node.grad + g
            if node._backward is not None:
                _GRAD_SINK = grads
                try:
                    node._backward(g)
                finally:
                    _GRAD_SINK = None


_GRAD_SINK: Optional[dict[int, np.ndarray]] = None


def _accumulate(node: Tensor, grad: np.ndarray) -> None:
    """Route a gradient either to the running backward pass or to a leaf."""
    if not node.requires_grad:
        return
    if _GRAD_SINK is not None and node._backward is not None:
        sink = _GRAD_SINK
        if id(node) in sink:
            sink[id(node)] = sink[id(node)] + grad
        else:
            sink[id(node)] = grad
    elif node._backward is None:
        node.grad = grad if node.grad is None else node.grad + grad
    else:
        # Interior node gradient arriving outside a backward pass.
        raise AutogradError("gradient routed outside an active backward pass")


def _toposort(root: Tensor) -> list[Tensor]:
    seen: set[int] = set()
    order: list[Tensor] = []

    def visit(node: Tensor) -> None:
        stack = [(node, iter(node._parents))]
        seen.add(id(node))
        while stack:
            current, parents = stack[-1]
            advanced = False
            for p in parents:
                if id(p) not in seen:
                    seen.add(id(p))
                    stack.append((p, iter(p._parents)))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(root)
    return list(reversed(order))
