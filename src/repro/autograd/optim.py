"""Optimizers for the training substrate."""

from __future__ import annotations

import numpy as np

from ..errors import AutogradError
from .tensor import Tensor


class Adam:
    """Standard Adam with bias correction."""

    def __init__(self, params: list[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        if not params:
            raise AutogradError("optimizer needs at least one parameter")
        if lr <= 0:
            raise AutogradError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        self.t += 1
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            self._m[i] = self.b1 * self._m[i] + (1 - self.b1) * g
            self._v[i] = self.b2 * self._v[i] + (1 - self.b2) * (g * g)
            m_hat = self._m[i] / (1 - self.b1 ** self.t)
            v_hat = self._v[i] / (1 - self.b2 ** self.t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Global-norm gradient clipping; returns the pre-clip norm."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
