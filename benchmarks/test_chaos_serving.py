"""Chaos harness: hardened vs. naive serving under the canonical storm.

Replays one Poisson workload through three serving arms -- fault-free,
naive (faults injected, no resilience), and hardened (capped/jittered
backoff retries, queue/decode timeouts, graceful cache-bypass
degradation) -- under the *identical* seeded ``canonical_chaos_plan``:
a sustained PCIe collapse to 2% bandwidth with 90% expert-upload
failures, a straggling socket, NUMA contention, and clock jitter.  A
drifting hot expert set keeps the residency cache uploading, so the
storm's upload-failure channel stays loaded the whole run.

Emits per-arm percentile latencies, goodput under a TTFT/TPOT SLO, and
the full fault-counter block to ``benchmarks/BENCH_chaos.json``.

Headline claims checked here:

- the hardened server retains >= 70% of fault-free goodput under the
  canonical fault plan, while the naive arm retains < 40% (its blocking
  synchronous re-uploads on the degraded link stall every batch);
- the naive arm's TTFT p95 blows out by multiples of the fault-free
  tail;
- both chaos arms are bit-reproducible: two runs of the same seeded
  plan produce identical summaries, timings, and fault counters.
"""

import dataclasses
import json
import math
from pathlib import Path

import numpy as np

from repro.bench import format_table
from repro.faults import FaultInjector, canonical_chaos_plan
from repro.model import DS3, MoETransformer, tiny_config
from repro.serving import (
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    ResilienceConfig,
    ServingSLO,
    poisson_workload,
    serving_expert_cache,
)
from repro.tensor import BF16

# Generous TTFT (admission waves pay multi-second batched prefills even
# fault-free), tight TPOT: per-token pace is where the storm bites.
SLO = ServingSLO(ttft_ms=50_000.0, tpot_ms=2_000.0)
OUT_PATH = Path(__file__).parent / "BENCH_chaos.json"

# Drifting hot set: 16 hot experts carrying 90% of routed tokens, the
# window sliding every 6 decode iterations so the residency cache keeps
# planning uploads (a converged cache would starve the upload-failure
# channel and the storm would have nothing to break).
HOT_SET_SIZE = 16
HOT_MASS = 0.9
ROTATE_EVERY = 6
STREAM_SEED = 91
CACHE_EXPERTS = 24

RESILIENCE = ResilienceConfig(queue_timeout_us=60e6, decode_timeout_us=150e6)

MIN_HARDENED_RETENTION = 0.70
MAX_NAIVE_RETENTION = 0.40


def _hot_probs(hot):
    probs = np.full(DS3.n_experts,
                    (1.0 - HOT_MASS) / (DS3.n_experts - len(hot)))
    probs[list(hot)] = HOT_MASS / len(hot)
    return probs


def _routing_stream(iteration, batch):
    rng = np.random.default_rng(STREAM_SEED * 1_000_003 + iteration)
    base = (iteration // ROTATE_EVERY) * HOT_SET_SIZE % DS3.n_experts
    hot = tuple(range(base, base + HOT_SET_SIZE))
    return rng.multinomial(batch * DS3.top_k, _hot_probs(hot))


def _run_arm(inject, resilience):
    """One full replay; fresh session/cache/injector per run so repeat
    runs share no state at all (the bit-repro claim is end to end)."""
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)
    cache = serving_expert_cache(
        session, vram_budget_bytes=CACHE_EXPERTS * DS3.expert_bytes(BF16))
    server = ContinuousBatchingServer(
        session, BatchSchedulerConfig(kv_budget_tokens=4096, max_batch_size=8),
        expert_cache=cache, routing_stream=_routing_stream,
        fault_injector=FaultInjector(canonical_chaos_plan()) if inject
        else None,
        resilience=resilience)
    workload = poisson_workload(
        n_requests=16, mean_interarrival_us=0.5e6, prompt_len=32,
        max_new_tokens=24, vocab_size=64, seed=5)
    stats = server.replay(list(workload))
    return {
        "summary": stats.summary(),
        "goodput": stats.goodput(SLO),
        "timings": [dataclasses.asdict(t) for t in stats.timings],
    }


def _sweep():
    return {
        "fault_free": _run_arm(inject=False, resilience=None),
        # Each chaos arm runs twice: the pair must be bit-identical.
        "naive": [_run_arm(inject=True, resilience=None) for _ in range(2)],
        "hardened": [_run_arm(inject=True, resilience=RESILIENCE)
                     for _ in range(2)],
    }


def test_chaos_serving(run_once):
    arms = run_once(_sweep)
    free = arms["fault_free"]
    naive, naive_again = arms["naive"]
    hard, hard_again = arms["hardened"]

    OUT_PATH.write_text(json.dumps({
        "model_costs": DS3.name,
        "slo": {"ttft_ms": SLO.ttft_ms, "tpot_ms": SLO.tpot_ms},
        "fault_plan": dataclasses.asdict(canonical_chaos_plan()),
        "arms": {"fault_free": free, "naive": naive, "hardened": hard},
    }, indent=2))

    def row(label, arm):
        s, g = arm["summary"], arm["goodput"]
        return (label, g["attainment"], g["goodput_requests_per_s"],
                s["ttft_p95_ms"] / 1e3, s["tpot_p95_ms"] / 1e3,
                s.get("fault_stall_ms", 0.0) / 1e3,
                s.get("fault_shed_requests", 0.0),
                s.get("fault_degraded_iterations", 0.0))

    print()
    print(format_table(
        ["arm", "attainment", "goodput req/s", "TTFT p95 (s)",
         "TPOT p95 (s)", "fault stall (s)", "shed", "degraded iters"],
        [row("fault-free", free), row("naive", naive),
         row("hardened", hard)],
        title="Canonical fault storm: hardened vs naive serving (16 reqs)",
    ))

    # --- Bit-reproducibility: same seeded plan, identical everything. ---
    assert naive == naive_again
    assert hard == hard_again

    # --- Sanity: every arm produced finite, ordered percentiles. ---
    for arm in (free, naive, hard):
        s = arm["summary"]
        assert math.isfinite(s["ttft_p95_ms"]) and s["ttft_p95_ms"] > 0
        assert s["ttft_p50_ms"] <= s["ttft_p95_ms"] <= s["ttft_p99_ms"]
        assert s["tpot_p50_ms"] <= s["tpot_p95_ms"] <= s["tpot_p99_ms"]

    # --- The storm actually coupled into the run. ---
    assert naive["summary"]["fault_upload_failures"] > 0
    assert hard["summary"]["fault_degraded_entries"] >= 1
    # Naive pays seconds of blocking re-upload stall; hardened retries
    # ride the prefetch window and pay orders of magnitude less.
    assert naive["summary"]["fault_stall_ms"] > \
        10 * (hard["summary"]["fault_stall_ms"] + 1.0)
    # The naive arm never sheds or degrades -- it just stalls.
    assert naive["summary"]["fault_shed_requests"] == 0
    assert naive["summary"]["fault_degraded_iterations"] == 0

    # --- Headline: goodput retention under the canonical plan. ---
    free_att = free["goodput"]["attainment"]
    assert free_att >= 0.9, "fault-free arm must nearly saturate the SLO"
    assert hard["goodput"]["attainment"] >= MIN_HARDENED_RETENTION * free_att
    assert naive["goodput"]["attainment"] < MAX_NAIVE_RETENTION * free_att

    # --- Naive TTFT p95 blows out; hardened stays in the same decade. ---
    assert naive["summary"]["ttft_p95_ms"] > \
        3.0 * free["summary"]["ttft_p95_ms"]
    assert hard["summary"]["ttft_p95_ms"] < \
        0.5 * naive["summary"]["ttft_p95_ms"]
