"""Ablation: decode batch size (the low-concurrency spectrum, Section 1).

MoE batching has two regimes the simulator exposes: small batches activate
nearly batch-proportionally more experts (little amortization), while large
batches saturate the expert pool so weights stream once per step no matter
how many sequences ride along -- the reason MoE inference is efficient at
the *extremes* of the concurrency spectrum.
"""

from repro.bench import format_table
from repro.core import KTRANSFORMERS, run_decode
from repro.hw import paper_testbed
from repro.model import DS3, QW2
from repro.tensor import BF16

BATCHES = (1, 2, 4, 8, 16, 32, 64)


def _sweep():
    machine = paper_testbed("a100")
    out = {}
    for preset in (QW2, DS3):
        rows = []
        for b in BATCHES:
            r = run_decode(KTRANSFORMERS, preset, machine, BF16,
                           n_tokens=2, batch_size=b)
            rows.append((b, r.tokens_per_s, r.elapsed_us / 2 / 1e3))
        out[preset.name] = rows
    return out


def test_ablation_batch_size(run_once):
    data = run_once(_sweep)
    for model, rows in data.items():
        print()
        print(format_table(
            ["batch", "tokens/s", "ms/step"],
            rows, title=f"Decode batch-size sweep [{model}] (BF16, A100)",
        ))
    for model, rows in data.items():
        tps = {b: t for b, t, __ in rows}
        # Throughput is monotone in batch size...
        series = [tps[b] for b in BATCHES]
        assert series == sorted(series), f"{model}: non-monotone throughput"
        # ...but the batch-2 gain is far below 2x (expert fan-out)...
        assert tps[2] / tps[1] < 1.8, f"{model}: batch-2 gain too ideal"
        # ...while the 32->64 step approaches 2x once experts saturate.
        assert tps[64] / tps[32] > 1.45, f"{model}: saturation regime missing"

    # QW-2 (64 experts) saturates earlier than DS-3 (256 experts): its
    # batch-8 relative gain is higher.
    qw_gain = dict((b, t) for b, t, __ in data["qw2"])
    ds_gain = dict((b, t) for b, t, __ in data["ds3"])
    assert (qw_gain[8] / qw_gain[1]) > (ds_gain[8] / ds_gain[1])
