"""Backend comparison smoke bench: decode-step pricing per registry backend.

One table, every registered kernel backend, the golden decode-step shapes:
the default KT backend must price each step exactly like a backend-unset
cost model (the registry is a pure refactor of the default path), the
vendor backend must be strictly slower than KT on every shape (Figure 3's
kernel gap plus the 16 us Python launch tax), and every backend must
price every shape strictly positive and deterministically.
"""

from repro.bench import format_table
from repro.kernels import available_backends
from repro.model import DS3, MoETransformer, tiny_config
from repro.serving import BatchCostModel, InferenceSession

STEPS = [(1, 64), (8, 64), (16, 256)]


def _sweep():
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)
    default = BatchCostModel(session)
    rows = []
    for name in available_backends():
        costs = BatchCostModel(session, backend=name)
        rows.append((name, *(costs.decode_step_us([ctx] * batch) / 1e3
                             for batch, ctx in STEPS)))
    baseline = [default.decode_step_us([ctx] * batch) / 1e3
                for batch, ctx in STEPS]
    return rows, baseline


def test_backend_compare(run_once):
    rows, baseline = run_once(_sweep)
    print()
    print(format_table(
        ["backend"] + [f"step b={b} ctx={c} (ms)" for b, c in STEPS],
        rows,
        title="Decode-step pricing per kernel backend (DS-3 costs, A100)",
    ))
    by_name = {r[0]: r[1:] for r in rows}
    # Registry default is a pure refactor: exact same floats as unset.
    assert list(by_name["kt-amx-avx512"]) == baseline
    # The vendor (oneDNN + Python launch) backend pays for its kernels.
    assert all(v > k for v, k in
               zip(by_name["torch-vendor"], by_name["kt-amx-avx512"]))
    # Every registered backend prices every shape strictly positive.
    for name, steps in by_name.items():
        assert all(s > 0 for s in steps), name
