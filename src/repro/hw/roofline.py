"""Roofline cost models calibrated to the paper's microbenchmarks.

Every simulated kernel duration in this repository comes from one of the
functions below.  The CPU model is

    time = max(compute_time, memory_time) + call_overhead

where ``compute_time`` honors the kernel's achievable fraction of the AMX or
AVX-512 peak (and AMX's 16-row tile padding), and ``memory_time`` streams the
expert weights from DRAM at a kernel- and ARI-dependent effective bandwidth.

Calibration anchors (all from the paper):

- Figure 3: at high arithmetic intensity on one Xeon 8452Y socket the KT AMX
  kernel reaches 21.3 TFLOPS, PyTorch/oneDNN-AMX 5.4 TFLOPS (7% of the
  73.7 TFLOPS peak), PyTorch AVX-512 1.8 TFLOPS.
- Figure 7: the KT AVX-512 kernel beats the KT AMX kernel iff the per-expert
  token count is <= 4 (up to ~1.2x), and loses by up to ~10.8x at prefill.
- Section 2.3: PyTorch-style per-kernel launches cost ~16 us, llama.cpp's
  C++ launches ~5 us, CUDA-graph replay is near free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..tensor.dtypes import DType
from .spec import CPUSpec, GPUSpec, InterconnectSpec


@dataclass(frozen=True)
class CPUKernelProfile:
    """Achievable-performance profile of one CPU GEMM kernel family.

    ``compute_fraction`` scales the socket's instruction-set peak to the
    kernel's saturated throughput.  ``bw_eff_low``/``bw_eff_high`` give the
    effective DRAM bandwidth fraction at 1 token/expert and at saturation;
    the ramp is linear in tokens-per-expert up to ``bw_ramp_tokens``.
    ``tile_m`` models AMX's 16-row tile granularity: GEMM rows are padded up
    to a multiple of it when computing FLOP cost.
    """

    name: str
    uses_amx: bool
    compute_fraction: float
    bw_eff_low: float
    bw_eff_high: float
    bw_ramp_tokens: int
    tile_m: int
    call_overhead_us: float

    def peak_flops(self, cpu: CPUSpec) -> float:
        base = cpu.amx_peak_flops if self.uses_amx else cpu.avx512_peak_flops
        return base * self.compute_fraction

    def bandwidth_fraction(self, tokens: int) -> float:
        if tokens <= 0:
            return self.bw_eff_low
        ramp = min(1.0, tokens / self.bw_ramp_tokens)
        return self.bw_eff_low + (self.bw_eff_high - self.bw_eff_low) * ramp


# ---------------------------------------------------------------------------
# Calibrated kernel profiles (anchored to the 8452Y numbers above).
# ---------------------------------------------------------------------------

# KTransformers' cache-friendly AMX kernel (Section 3.2): 21.3/73.7 = 28.9%
# of peak; tile-aligned streaming reaches ~85% of DRAM bandwidth once at
# least one full 16-row tile of tokens is available.
KT_AMX = CPUKernelProfile(
    name="kt_amx",
    uses_amx=True,
    compute_fraction=21.3 / 73.7,
    bw_eff_low=0.70,
    bw_eff_high=0.85,
    bw_ramp_tokens=16,
    tile_m=16,
    call_overhead_us=12.0,
)

# KTransformers' lightweight AVX-512 kernel sharing the AMX memory layout:
# low-latency row streaming, ~2.0 TFLOPS saturated (5.5 * 0.36), no tile
# padding, slightly better effective bandwidth than AMX at 1-4 tokens.
KT_AVX512 = CPUKernelProfile(
    name="kt_avx512",
    uses_amx=False,
    compute_fraction=2.0 / 5.5,
    bw_eff_low=0.82,
    bw_eff_high=0.82,
    bw_ramp_tokens=1,
    tile_m=1,
    call_overhead_us=6.0,
)

# PyTorch dispatching to oneDNN's AMX path: 5.4 TFLOPS saturated (7% of
# peak), generic row-major layout wastes bandwidth (Section 2.2 attributes
# the gap to suboptimal memory layouts).
TORCH_AMX = CPUKernelProfile(
    name="torch_amx",
    uses_amx=True,
    compute_fraction=5.4 / 73.7,
    bw_eff_low=0.22,
    bw_eff_high=0.30,
    bw_ramp_tokens=16,
    tile_m=16,
    call_overhead_us=25.0,
)

# PyTorch's AVX-512 path: 1.8 TFLOPS saturated.
TORCH_AVX512 = CPUKernelProfile(
    name="torch_avx512",
    uses_amx=False,
    compute_fraction=1.8 / 5.5,
    bw_eff_low=0.40,
    bw_eff_high=0.40,
    bw_ramp_tokens=1,
    tile_m=1,
    call_overhead_us=25.0,
)

# llama.cpp's hand-written AVX-512 kernels: good fusion, decent bandwidth,
# no AMX (the paper notes Fiddler overtakes it at long prompts because
# oneDNN does use AMX).
LLAMACPP_AVX512 = CPUKernelProfile(
    name="llamacpp_avx512",
    uses_amx=False,
    compute_fraction=2.0 / 5.5,
    bw_eff_low=0.80,
    bw_eff_high=0.80,
    bw_ramp_tokens=1,
    tile_m=1,
    call_overhead_us=8.0,
)

# Portable Triton-style lanes (PAPERS.md, arXiv:2605.23911): cross-platform
# fused MoE dispatch that forgoes AMX intrinsics entirely.  The "tall" lane
# handles skinny low-ARI GEMMs with llama.cpp-class latency; the "bulk" lane
# blocks work into 32-row software tiles, recovering most of the streaming
# bandwidth without tile registers but topping out well below KT's AMX peak.
TRITON_CPU_TALL = CPUKernelProfile(
    name="triton_cpu_tall",
    uses_amx=False,
    compute_fraction=1.9 / 5.5,
    bw_eff_low=0.78,
    bw_eff_high=0.78,
    bw_ramp_tokens=1,
    tile_m=1,
    call_overhead_us=9.0,
)

TRITON_CPU_BULK = CPUKernelProfile(
    name="triton_cpu_bulk",
    uses_amx=False,
    compute_fraction=2.6 / 5.5,
    bw_eff_low=0.62,
    bw_eff_high=0.80,
    bw_ramp_tokens=32,
    tile_m=32,
    call_overhead_us=11.0,
)

CPU_KERNEL_PROFILES = {
    p.name: p
    for p in (KT_AMX, KT_AVX512, TORCH_AMX, TORCH_AVX512, LLAMACPP_AVX512,
              TRITON_CPU_TALL, TRITON_CPU_BULK)
}


# ---------------------------------------------------------------------------
# Cost functions.
# ---------------------------------------------------------------------------

def cpu_gemm_time_us(
    profile: CPUKernelProfile,
    m: int,
    k: int,
    n: int,
    weight_dtype: DType,
    cpu: CPUSpec,
    threads_fraction: float = 1.0,
    weights_cached: bool = False,
) -> float:
    """Simulated time of one (m x k) @ (k x n) GEMM on one socket.

    ``threads_fraction`` models running on a subset of the socket's cores
    (both compute and bandwidth scale down, bandwidth sub-linearly since a
    few cores can nearly saturate DRAM).  ``weights_cached`` drops the DRAM
    weight traffic (used when a block provably stays resident in L2/L3).
    """
    if m <= 0 or k <= 0 or n <= 0:
        return profile.call_overhead_us
    peak = profile.peak_flops(cpu)
    if peak <= 0:
        raise ValueError(
            f"kernel {profile.name!r} has zero compute peak on {cpu.name!r} "
            f"(AMX kernel on a CPU without AMX?); select an AVX-512 profile"
        )
    m_eff = math.ceil(m / profile.tile_m) * profile.tile_m
    flops = 2.0 * m_eff * k * n
    compute_s = flops / (peak * threads_fraction)

    weight_bytes = k * n * weight_dtype.bytes_per_element
    if weights_cached:
        weight_bytes = 0.0
    bw_frac = profile.bandwidth_fraction(m)
    # Bandwidth saturates with relatively few cores: use sqrt scaling.
    bw = cpu.dram_bandwidth * bw_frac * math.sqrt(max(threads_fraction, 1e-9))
    memory_s = weight_bytes / bw if weight_bytes else 0.0

    return max(compute_s, memory_s) * 1e6 + profile.call_overhead_us


def cpu_gemm_achieved_tflops(
    profile: CPUKernelProfile,
    m: int,
    k: int,
    n: int,
    weight_dtype: DType,
    cpu: CPUSpec,
) -> float:
    """Achieved TFLOPS of the *logical* GEMM (unpadded FLOPs / time)."""
    t_us = cpu_gemm_time_us(profile, m, k, n, weight_dtype, cpu)
    return (2.0 * m * k * n) / (t_us * 1e-6) / 1e12


def gpu_kernel_time_us(
    flops: float,
    bytes_moved: float,
    gpu: GPUSpec,
    compute_efficiency: float = 0.60,
    bandwidth_efficiency: float = 0.45,
) -> float:
    """Roofline time of one GPU kernel (excluding launch cost)."""
    compute_s = flops / (gpu.peak_flops * compute_efficiency) if flops else 0.0
    memory_s = (
        bytes_moved / (gpu.hbm_bandwidth * bandwidth_efficiency)
        if bytes_moved else 0.0
    )
    return max(max(compute_s, memory_s) * 1e6, gpu.min_kernel_duration_us)


def pcie_transfer_time_us(bytes_moved: float, link: InterconnectSpec) -> float:
    """Host<->device DMA transfer time over PCIe."""
    if bytes_moved <= 0:
        return link.pcie_latency_us
    return bytes_moved / link.pcie_bandwidth * 1e6 + link.pcie_latency_us


def overlapped_transfer_stall_us(
    bytes_moved: float,
    link: InterconnectSpec,
    overlap_window_us: float,
) -> float:
    """Non-overlapped remainder of a PCIe transfer hidden behind compute.

    Prefetched expert uploads ride the link while the next iteration's
    attention runs; only the part of the DMA that outlives that window
    stalls expert dispatch.
    """
    if overlap_window_us < 0:
        raise ValueError("overlap_window_us must be >= 0")
    if bytes_moved <= 0:
        return 0.0
    return max(0.0, pcie_transfer_time_us(bytes_moved, link) - overlap_window_us)


def degraded_link(
    link: InterconnectSpec,
    pcie_scale: float = 1.0,
    cross_socket_scale: float = 1.0,
) -> InterconnectSpec:
    """A copy of ``link`` with bandwidths scaled down by fault injection.

    ``pcie_scale`` / ``cross_socket_scale`` are the remaining bandwidth
    fractions inside a degradation window (latencies are unchanged --
    contention throttles throughput, not DMA setup).  Returns ``link``
    itself when both scales are 1.0, so the unfaulted path reuses the
    exact same spec object and float arithmetic.
    """
    if not 0.0 < pcie_scale <= 1.0:
        raise ValueError("pcie_scale must be in (0, 1]")
    if not 0.0 < cross_socket_scale <= 1.0:
        raise ValueError("cross_socket_scale must be in (0, 1]")
    if pcie_scale == 1.0 and cross_socket_scale == 1.0:
        return link
    return replace(
        link,
        pcie_bandwidth=link.pcie_bandwidth * pcie_scale,
        cross_socket_bandwidth=link.cross_socket_bandwidth * cross_socket_scale,
    )


def cross_socket_transfer_time_us(bytes_moved: float,
                                  link: InterconnectSpec) -> float:
    """Socket-to-socket transfer (UPI) time, e.g. for reduce-scatter."""
    if bytes_moved <= 0:
        return link.cross_socket_latency_us
    return bytes_moved / link.cross_socket_bandwidth * 1e6 + link.cross_socket_latency_us
