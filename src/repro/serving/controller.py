"""Online self-tuning control plane for the continuous-batching engine.

The serving stack has accumulated a surface of hand-set performance
knobs (``prefill_chunk_tokens``, ``max_batch_size``, cache margins,
timeouts) -- each tuned for one traffic shape and stale the moment the
load shifts.  Following the cloud-grade-SLO framing (serving as an
SLO-attainment *control* problem), :class:`OnlineController` closes the
loop at runtime:

- **signals** -- every decode iteration the engine feeds the controller
  its clock, the finished-request timings, shed records, and queue
  depth; the controller folds them into fixed-duration observation
  windows (windowed TTFT/TPOT percentiles, completion/shed rates, mean
  queue depth), the same quantities
  :meth:`~repro.serving.metrics.ServingStats.windowed` exposes for
  debugging;
- **objective** -- per window, SLO-attaining completions per second
  minus a shed penalty, EWMA-smoothed across windows (the
  ``core/adaptive.py`` thresholding idiom: smooth the signal, then act
  on it);
- **actuation** -- bounded hill-climbing over discrete knob ladders
  (the ``core/autotune.py`` idiom of searching a small candidate set
  against observed cost, here online instead of offline): one knob
  move per decision window, direction steered by which SLO term is
  violated, with **guarded rollback** -- a move that degrades the
  smoothed objective over the next window is reverted and the probe
  direction flipped.

Every decision is a pure function of the observed (deterministic)
simulation, so an adaptive run is bit-reproducible given the workload
seed; with no :class:`ControllerConfig` the engine never constructs a
controller and stays bit-identical to the static-config engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from .metrics import RollingWindow, ServingSLO, ServingStats, percentile

KNOB_CHUNK = "prefill_chunk_tokens"
KNOB_BATCH = "max_batch_size"


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs of the control plane itself (not the knobs it tunes).

    ``slo`` defines the objective: a completion counts only if it met
    the TTFT and TPOT targets.  Decisions fire once per ``window_us``
    of simulated time; the first ``warmup_windows`` windows observe
    without acting (so the pre-adaptation engine prices identically to
    the static config -- pinned by golden).  ``ewma_alpha`` smooths the
    per-window objective; ``rollback_tolerance`` is the relative
    degradation of the smoothed objective a knob move may cause before
    it is reverted.  ``shed_penalty`` charges each shed request that
    many attained completions.

    ``chunk_ladder`` / ``batch_ladder`` are the discrete rungs the
    hill-climber moves ``prefill_chunk_tokens`` / ``max_batch_size``
    over (ascending; an empty ``batch_ladder`` disables that knob).
    The ladders *bound* the search: the controller can never drive a
    knob outside them, which is what makes the hill-climb safe to run
    unattended.
    """

    slo: ServingSLO
    window_us: float = 1_000_000.0
    warmup_windows: int = 1
    ewma_alpha: float = 0.5
    rollback_tolerance: float = 0.05
    shed_penalty: float = 2.0
    chunk_ladder: tuple[int, ...] = (128, 256, 512, 1024, 2048)
    batch_ladder: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.window_us <= 0:
            raise ConfigError("window_us must be positive")
        if self.warmup_windows < 0:
            raise ConfigError("warmup_windows must be >= 0")
        if not 0 < self.ewma_alpha <= 1:
            raise ConfigError("ewma_alpha must be in (0, 1]")
        if self.rollback_tolerance < 0:
            raise ConfigError("rollback_tolerance must be >= 0")
        if self.shed_penalty < 0:
            raise ConfigError("shed_penalty must be >= 0")
        for name, ladder in ((KNOB_CHUNK, self.chunk_ladder),
                             (KNOB_BATCH, self.batch_ladder)):
            if any(v <= 0 for v in ladder):
                raise ConfigError(f"{name} ladder rungs must be positive")
            if list(ladder) != sorted(set(ladder)):
                raise ConfigError(
                    f"{name} ladder must be strictly ascending")
        if not self.chunk_ladder:
            raise ConfigError("chunk_ladder must not be empty")


@dataclass(frozen=True)
class KnobDecision:
    """One window's control decision (the unit of the golden trace).

    ``action`` is ``"observe"`` (warmup / no candidate move),
    ``"move:<knob>:<+1|-1>"`` (a probe step along the ladder),
    ``"keep:<knob>"`` (the previous probe survived its guard window) or
    ``"rollback:<knob>"`` (the probe degraded the objective and was
    reverted).  ``knobs`` snapshots every tuned knob's value *after*
    the decision applied; ``objective`` is the EWMA-smoothed objective
    the decision was based on.
    """

    window: int
    t_us: float
    action: str
    knobs: tuple[tuple[str, int | None], ...]
    objective: float


@dataclass
class ControllerStats:
    """Control-plane counters plus the full per-window decision trace.

    Attached to :class:`~repro.serving.metrics.ServingStats` only when
    a controller is configured, so static-config summaries carry no
    ``ctrl_*`` keys (the bit-identity discipline every other optional
    feature follows).
    """

    windows: int = 0
    moves: int = 0
    rollbacks: int = 0
    decisions: list[KnobDecision] = field(default_factory=list)

    def trace(self) -> list[tuple]:
        """Compact decision trace: ``(window, action, *knob values)``.

        Knob values appear in sorted-name order, which is what the
        golden regression pins for a fixed seed/scenario.
        """
        return [(d.window, d.action) + tuple(v for _, v in d.knobs)
                for d in self.decisions]

    def summary(self) -> dict[str, float]:
        """Flat ``ctrl_*`` counters for the serving summary."""
        return {
            "ctrl_windows": float(self.windows),
            "ctrl_moves": float(self.moves),
            "ctrl_rollbacks": float(self.rollbacks),
        }


class _KnobState:
    """Hill-climb cursor of one knob: ladder index + probe direction."""

    def __init__(self, name: str, ladder: tuple[int, ...],
                 base: int | None) -> None:
        self.name = name
        self.ladder = ladder
        self.value: int | None = base
        # Cursor starts at the rung nearest the base config's value
        # (None -> the top rung: monolithic prefill behaves like a very
        # large chunk budget); the *value* stays the base value until
        # the first move so warmup windows price exactly the static
        # config.
        if base is None:
            self.idx = len(ladder) - 1
        else:
            self.idx = min(range(len(ladder)),
                           key=lambda i: (abs(ladder[i] - base), i))
        self.direction = 1


class OnlineController:
    """Deterministic windowed hill-climber over scheduler knobs.

    The engine calls :meth:`tick` once per decode iteration; the
    controller consumes newly finished timings and shed records from
    the engine's :class:`~repro.serving.metrics.ServingStats`
    incrementally, and at each window boundary closes the window,
    judges any pending probe move (guarded rollback), and proposes at
    most one new move.  ``tick`` returns the knob overrides to apply
    (or ``None``), keeping actuation in the engine's hands -- the
    controller never touches engine state directly.
    """

    def __init__(self, config: ControllerConfig,
                 base_chunk: int | None, base_batch: int,
                 stats: ControllerStats) -> None:
        self.config = config
        self.stats = stats
        self._knobs = [_KnobState(KNOB_CHUNK, config.chunk_ladder,
                                  base_chunk)]
        if config.batch_ladder:
            self._knobs.append(_KnobState(KNOB_BATCH, config.batch_ladder,
                                          base_batch))
        self._rr = 0                      # round-robin knob cursor
        self._window = 0
        self._next_window_us = config.window_us
        self._ewma: float | None = None
        # (knob, value before the move, smoothed objective at move time)
        self._pending: tuple[_KnobState, int | None, float] | None = None
        self._consumed_timings = 0
        self._consumed_shed = 0
        # Per-window accumulators; TTFT/TPOT ride RollingWindows so the
        # percentile signal matches ServingStats.windowed exactly.
        self._ttft = RollingWindow(config.window_us)
        self._tpot = RollingWindow(config.window_us)
        self._attained = 0
        self._completed = 0
        self._shed = 0
        self._queue_sum = 0
        self._iterations = 0

    # -- signal ingestion ----------------------------------------------------

    def _ingest(self, stats: ServingStats) -> None:
        slo = self.config.slo
        for timing in stats.timings[self._consumed_timings:]:
            self._completed += 1
            if slo.met_by(timing) and not timing.timed_out:
                self._attained += 1
            self._ttft.add(timing.finish_us, timing.ttft_us)
            if timing.tpot_us > 0:
                self._tpot.add(timing.finish_us, timing.tpot_us)
        self._consumed_timings = len(stats.timings)
        self._shed += len(stats.shed) - self._consumed_shed
        self._consumed_shed = len(stats.shed)

    # -- decision logic ------------------------------------------------------

    def _objective(self) -> float:
        """This window's raw objective: penalized goodput (per second)."""
        window_s = self.config.window_us / 1e6
        return (self._attained
                - self.config.shed_penalty * self._shed) / window_s

    def _signal_direction(self, knob: _KnobState, clock: float) -> int:
        """Which way the windowed SLO signals push ``knob``.

        A TTFT violation wants more prefill progress per iteration
        (bigger chunk budget) and more admission headroom (bigger
        batch); a TPOT violation wants shorter iterations (smaller
        chunk budget, smaller batch).  With both or neither violated
        the knob keeps probing in its last direction -- the rollback
        guard turns that into an alternating local search.
        """
        slo = self.config.slo
        ttfts = self._ttft.values(clock)
        tpots = self._tpot.values(clock)
        ttft_bad = bool(ttfts) and percentile(ttfts, 95) > slo.ttft_ms * 1e3
        tpot_bad = bool(tpots) and percentile(tpots, 95) > slo.tpot_ms * 1e3
        if knob.name == KNOB_BATCH:
            queue_deep = (self._iterations > 0
                          and self._queue_sum / self._iterations
                          > (knob.value or 0))
            if (ttft_bad or queue_deep) and not tpot_bad:
                return 1
            if tpot_bad and not (ttft_bad or queue_deep):
                return -1
            return knob.direction
        if ttft_bad and not tpot_bad:
            return 1
        if tpot_bad and not ttft_bad:
            return -1
        return knob.direction

    def _close_window(self, clock: float) -> dict[str, int | None] | None:
        cfg = self.config
        self._window += 1
        self.stats.windows += 1
        raw = self._objective()
        if self._ewma is None:
            self._ewma = raw
        else:
            self._ewma = (cfg.ewma_alpha * raw
                          + (1 - cfg.ewma_alpha) * self._ewma)
        action = "observe"
        moves: dict[str, int | None] | None = None
        if self._pending is not None:
            knob, prev_value, baseline = self._pending
            self._pending = None
            degraded = self._ewma < (baseline
                                     - cfg.rollback_tolerance * abs(baseline)
                                     - 1e-12)
            if degraded:
                # Guarded rollback: the probe hurt; restore the old
                # value, flip the probe direction, and judge the next
                # probe against the pre-move baseline.
                knob.value = prev_value
                knob.idx = _KnobState(knob.name, knob.ladder, prev_value).idx
                knob.direction *= -1
                self.stats.rollbacks += 1
                self._ewma = baseline
                action = f"rollback:{knob.name}"
                moves = {knob.name: prev_value}
            else:
                action = f"keep:{knob.name}"
        elif self._window > cfg.warmup_windows:
            knob = self._knobs[self._rr % len(self._knobs)]
            self._rr += 1
            direction = self._signal_direction(knob, clock)
            new_idx = min(max(knob.idx + direction, 0),
                          len(knob.ladder) - 1)
            if new_idx == knob.idx and knob.ladder[knob.idx] == knob.value:
                # Pinned against a ladder end: probe back inward.
                direction = -direction
                new_idx = min(max(knob.idx + direction, 0),
                              len(knob.ladder) - 1)
            if new_idx != knob.idx or knob.ladder[new_idx] != knob.value:
                self._pending = (knob, knob.value, self._ewma)
                knob.direction = direction
                knob.idx = new_idx
                knob.value = knob.ladder[new_idx]
                self.stats.moves += 1
                action = f"move:{knob.name}:{direction:+d}"
                moves = {knob.name: knob.value}
        self.stats.decisions.append(KnobDecision(
            window=self._window,
            t_us=self._next_window_us,
            action=action,
            knobs=tuple(sorted((k.name, k.value) for k in self._knobs)),
            objective=self._ewma,
        ))
        # Reset the per-window accumulators (the RollingWindows age out
        # on their own -- their span equals the decision window).
        self._attained = 0
        self._completed = 0
        self._shed = 0
        self._queue_sum = 0
        self._iterations = 0
        return moves

    # -- engine-facing entry point -------------------------------------------

    def tick(self, clock: float, stats: ServingStats,
             queue_depth: int) -> dict[str, int | None] | None:
        """One iteration-boundary observation; returns knob overrides.

        Consumes any timings/sheds recorded since the last tick, then
        (when ``clock`` has crossed the current window boundary) closes
        the window and decides.  A long iteration can cross several
        boundaries at once; only one decision fires, and the boundary
        advances past ``clock`` so windows stay wall-clock aligned.
        """
        self._ingest(stats)
        self._iterations += 1
        self._queue_sum += queue_depth
        if clock < self._next_window_us:
            return None
        moves = self._close_window(clock)
        while self._next_window_us <= clock:
            self._next_window_us += self.config.window_us
        return moves
