"""A minimal PyTorch-like module tree.

The injection framework (Section 5) and the model definitions both need a
named, recursively walkable module hierarchy with replaceable children --
exactly the surface HuggingFace models expose.  This implements that
surface over numpy parameters: named submodules, named parameters,
``get/set_submodule`` for injection, and ``state_dict`` round-trips for
loading trained weights.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

import numpy as np

from ..errors import ConfigError


class Module:
    """Base class: auto-registers child modules and numpy parameters."""

    def __init__(self) -> None:
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_params", {})
        object.__setattr__(self, "device", "cpu")

    # -- registration ---------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Module):
            self._modules[name] = value
        elif isinstance(value, np.ndarray):
            self._params[name] = value
        object.__setattr__(self, name, value)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # -- traversal --------------------------------------------------------

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield (dotted_name, module) for this module and all descendants."""
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        yield from self._modules.items()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, p in self._params.items():
            yield (f"{prefix}.{name}" if prefix else name), p
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def get_submodule(self, target: str) -> "Module":
        """Fetch a descendant by dotted path (empty path returns self)."""
        mod: Module = self
        if not target:
            return mod
        for part in target.split("."):
            if part not in mod._modules:
                raise ConfigError(f"no submodule {part!r} in path {target!r}")
            mod = mod._modules[part]
        return mod

    def set_submodule(self, target: str, module: "Module") -> None:
        """Replace a descendant by dotted path (injection entry point)."""
        if not target:
            raise ConfigError("cannot replace the root module")
        parts = target.split(".")
        parent = self.get_submodule(".".join(parts[:-1]))
        if parts[-1] not in parent._modules:
            raise ConfigError(f"no submodule {parts[-1]!r} to replace in {target!r}")
        parent.add_module(parts[-1], module)

    # -- state ---------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ConfigError(
                f"state dict mismatch: missing={sorted(missing)[:5]}, "
                f"unexpected={sorted(unexpected)[:5]}"
            )
        for name in own:
            if own[name].shape != state[name].shape:
                raise ConfigError(
                    f"shape mismatch for {name}: "
                    f"{own[name].shape} vs {state[name].shape}"
                )
            own[name][...] = state[name]
        for __, mod in self.named_modules():
            mod.on_weights_loaded()

    def on_weights_loaded(self) -> None:
        """Hook: refresh derived state (e.g. packed weights) after loading."""

    def n_parameters(self) -> int:
        return sum(int(p.size) for __, p in self.named_parameters())

    # -- execution -------------------------------------------------------

    def forward(self, *args: Any, **kwargs: Any) -> Any:
        raise NotImplementedError(
            f"{type(self).__name__} does not implement forward()"
        )

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Dense projection ``y = x @ weight`` (optionally + bias)."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = False,
                 rng: Optional[np.random.Generator] = None,
                 scale: float = 0.05) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        r = rng or np.random.default_rng(0)
        self.weight = (r.standard_normal((in_features, out_features))
                       .astype(np.float32) * scale)
        if bias:
            self.bias = np.zeros(out_features, dtype=np.float32)
        else:
            object.__setattr__(self, "bias", None)

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = np.asarray(x, dtype=np.float32) @ self.weight
        if self.bias is not None:
            y = y + self.bias
        return y


class RMSNorm(Module):
    """Root-mean-square layer norm with a learned gain."""

    def __init__(self, dim: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.eps = eps
        self.gain = np.ones(dim, dtype=np.float32)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        rms = np.sqrt((x * x).mean(axis=-1, keepdims=True) + self.eps)
        return x / rms * self.gain


class Embedding(Module):
    """Token-id -> vector lookup table."""

    def __init__(self, vocab_size: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.vocab_size = vocab_size
        r = rng or np.random.default_rng(0)
        self.weight = r.standard_normal((vocab_size, dim)).astype(np.float32) * 0.05

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(token_ids)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.vocab_size:
            raise ConfigError("token id out of vocabulary range")
        return self.weight[ids]
