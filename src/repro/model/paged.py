"""Paged KV cache with optional host-memory offloading (functional).

Section 5 lists KV-cache offloading among the techniques the injection
framework enables.  This module provides the functional substrate: a
vLLM-style paged cache whose pages can live on the GPU or be *offloaded*
to host memory.  Attention math is identical wherever pages live (tested
against the contiguous cache); placement only changes the simulated cost
(see :mod:`repro.sched.kv_offload`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, KVCacheError

DEFAULT_PAGE_TOKENS = 16


@dataclass
class Page:
    """One fixed-size block of K/V entries."""

    keys: np.ndarray       # (page_tokens, heads, head_dim)
    values: np.ndarray
    used: int = 0
    on_gpu: bool = True


class PagedKVCache:
    """Drop-in replacement for :class:`repro.model.kvcache.KVCache`.

    Storage is a list of fixed-size pages plus a logical length; gather
    materializes the contiguous view the attention kernel consumes.  Pages
    beyond ``gpu_budget_tokens`` are marked offloaded (host-resident).
    """

    def __init__(self, n_heads: int, head_dim: int,
                 page_tokens: int = DEFAULT_PAGE_TOKENS,
                 gpu_budget_tokens: int | None = None) -> None:
        if n_heads <= 0 or head_dim <= 0 or page_tokens <= 0:
            raise ConfigError("cache dimensions must be positive")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.page_tokens = page_tokens
        self.gpu_budget_tokens = gpu_budget_tokens
        self._pages: list[Page] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    def _new_page(self) -> Page:
        shape = (self.page_tokens, self.n_heads, self.head_dim)
        page = Page(keys=np.zeros(shape, dtype=np.float32),
                    values=np.zeros(shape, dtype=np.float32))
        self._pages.append(page)
        self._rebalance()
        return page

    def _rebalance(self) -> None:
        """Keep the most recent ``gpu_budget_tokens`` worth of pages on GPU."""
        if self.gpu_budget_tokens is None:
            return
        budget_pages = max(1, self.gpu_budget_tokens // self.page_tokens)
        for i, page in enumerate(self._pages):
            page.on_gpu = i >= len(self._pages) - budget_pages

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        expected = (k.shape[0], self.n_heads, self.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ConfigError(
                f"cache append shape {k.shape}/{v.shape}, expected {expected}"
            )
        for row in range(k.shape[0]):
            page = self._pages[-1] if self._pages else self._new_page()
            if page.used == self.page_tokens:
                page = self._new_page()
            page.keys[page.used] = k[row]
            page.values[page.used] = v[row]
            page.used += 1
            self._len += 1

    def keys(self) -> np.ndarray:
        return self._gather("keys")

    def values(self) -> np.ndarray:
        return self._gather("values")

    def _gather(self, field: str) -> np.ndarray:
        if not self._pages:
            return np.zeros((0, self.n_heads, self.head_dim), dtype=np.float32)
        parts = [getattr(p, field)[:p.used] for p in self._pages]
        return np.concatenate(parts, axis=0)

    def offloaded_tokens(self) -> int:
        """Tokens whose pages currently live in host memory."""
        return sum(p.used for p in self._pages if not p.on_gpu)

    def gpu_tokens(self) -> int:
        return sum(p.used for p in self._pages if p.on_gpu)

    def reset(self) -> None:
        self._pages.clear()
        self._len = 0


class PagedKVPool:
    """A fixed-budget page pool shared by multiple concurrent request slots.

    This is the serving-engine view of paged attention: one physical page
    budget (the GPU KV/VRAM allowance) backs any number of logical request
    *slots*.  Each slot grows page-by-page as its sequence extends; freeing
    a slot returns its pages to the free list for the next admission.
    Exhausting the budget raises :class:`~repro.errors.KVCacheError`, which
    the continuous-batching scheduler treats as "stop admitting".

    Gather semantics per slot are identical to :class:`PagedKVCache` (and
    are tested against it).
    """

    def __init__(self, n_heads: int, head_dim: int, budget_tokens: int,
                 page_tokens: int = DEFAULT_PAGE_TOKENS) -> None:
        if n_heads <= 0 or head_dim <= 0 or page_tokens <= 0:
            raise ConfigError("pool dimensions must be positive")
        if budget_tokens < page_tokens:
            raise ConfigError(
                f"budget_tokens={budget_tokens} smaller than one page "
                f"({page_tokens} tokens)"
            )
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.page_tokens = page_tokens
        self.budget_pages = budget_tokens // page_tokens
        self.budget_tokens = self.budget_pages * page_tokens
        self._free: list[Page] = []
        self._slots: dict[int, list[Page]] = {}
        # Host-side stash of preempted slots: slot id -> (keys, values)
        # contiguous arrays captured at swap-out time.
        self._swapped: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._allocated_pages = 0
        self._next_slot = 0

    # -- capacity accounting ------------------------------------------------

    @property
    def free_pages(self) -> int:
        return self.budget_pages - self._allocated_pages

    @property
    def free_tokens(self) -> int:
        """Tokens guaranteed appendable into *new* pages."""
        return self.free_pages * self.page_tokens

    @property
    def used_tokens(self) -> int:
        """Tokens currently stored across every live slot."""
        return sum(sum(p.used for p in pages) for pages in self._slots.values())

    @property
    def n_slots(self) -> int:
        return len(self._slots)

    def pages_needed(self, n_tokens: int) -> int:
        """Pages a fresh slot needs to hold ``n_tokens``."""
        return -(-n_tokens // self.page_tokens)

    def can_fit(self, n_tokens: int) -> bool:
        """Whether a fresh slot of ``n_tokens`` fits the remaining budget."""
        return self.pages_needed(n_tokens) <= self.free_pages

    # -- slot lifecycle -----------------------------------------------------

    def allocate(self) -> int:
        """Open a new (empty) request slot and return its id."""
        slot = self._next_slot
        self._next_slot += 1
        self._slots[slot] = []
        return slot

    def free(self, slot: int) -> None:
        """Close a slot, returning all of its pages to the free list."""
        pages = self._slots.pop(self._checked(slot))
        for page in pages:
            page.used = 0
            self._free.append(page)
        self._allocated_pages -= len(pages)

    def _checked(self, slot: int) -> int:
        if slot not in self._slots:
            raise KVCacheError(f"slot {slot} is not allocated")
        return slot

    # -- preemption: swap-out / swap-in lifecycle ----------------------------

    @property
    def swapped_tokens(self) -> int:
        """Tokens currently stashed in host memory across swapped slots."""
        return sum(k.shape[0] for k, _ in self._swapped.values())

    @property
    def n_swapped(self) -> int:
        return len(self._swapped)

    def swap_out(self, slot: int) -> int:
        """Offload ``slot``'s KV to host memory, freeing its GPU pages.

        The slot id survives as a *swapped* handle: the contiguous K/V
        contents are stashed host-side, every page returns to the free
        list, and the slot leaves the live set (``free`` on it raises --
        pages can only ever be released once).  Returns the number of
        tokens offloaded.  The serving scheduler prices the transfer
        separately (see ``BatchCostModel.swap_transfer_us``); the pool
        only tracks placement.
        """
        self._checked(slot)
        if slot in self._swapped:
            raise KVCacheError(f"slot {slot} is already swapped out")
        keys = self._gather(slot, "keys")
        values = self._gather(slot, "values")
        self.free(slot)
        self._swapped[slot] = (keys, values)
        return keys.shape[0]

    def _checked_swapped(self, slot: int) -> int:
        if slot not in self._swapped:
            raise KVCacheError(f"slot {slot} is not swapped out")
        return slot

    def swap_in(self, slot: int) -> int:
        """Re-upload a swapped slot's KV into fresh pages; returns new slot.

        Raises :class:`~repro.errors.KVCacheError` if the pool cannot hold
        the stashed tokens (the caller must re-check capacity before
        resuming, exactly like a fresh admission).  The old slot id is
        retired; attention state is bit-identical to before the swap
        (tested against :meth:`keys`/:meth:`values` round-trips).
        """
        self._checked_swapped(slot)
        keys, values = self._swapped[slot]
        if not self.can_fit(keys.shape[0]):
            raise KVCacheError(
                f"cannot swap in slot {slot}: needs "
                f"{self.pages_needed(keys.shape[0])} pages, "
                f"{self.free_pages} free"
            )
        del self._swapped[slot]
        new_slot = self.allocate()
        if keys.shape[0]:
            self.append(new_slot, keys, values)
        return new_slot

    def discard_swapped(self, slot: int) -> None:
        """Drop a swapped slot's host stash (the request was shed)."""
        del self._swapped[self._checked_swapped(slot)]

    def _grow(self, slot: int) -> Page:
        if self._allocated_pages >= self.budget_pages:
            raise KVCacheError(
                f"KV page budget exhausted: {self.budget_pages} pages "
                f"({self.budget_tokens} tokens) across {self.n_slots} slots"
            )
        if self._free:
            page = self._free.pop()
        else:
            shape = (self.page_tokens, self.n_heads, self.head_dim)
            page = Page(keys=np.zeros(shape, dtype=np.float32),
                        values=np.zeros(shape, dtype=np.float32))
        self._allocated_pages += 1
        self._slots[slot].append(page)
        return page

    # -- data path ----------------------------------------------------------

    def append(self, slot: int, k: np.ndarray, v: np.ndarray) -> None:
        """Append K/V rows to ``slot``, growing it by whole pages as needed."""
        pages = self._slots[self._checked(slot)]
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        expected = (k.shape[0], self.n_heads, self.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ConfigError(
                f"pool append shape {k.shape}/{v.shape}, expected {expected}"
            )
        for row in range(k.shape[0]):
            page = pages[-1] if pages else self._grow(slot)
            if page.used == self.page_tokens:
                page = self._grow(slot)
            page.keys[page.used] = k[row]
            page.values[page.used] = v[row]
            page.used += 1

    def append_placeholder(self, slot: int, n_tokens: int) -> None:
        """Reserve ``n_tokens`` of zero K/V (occupancy tracking only)."""
        if n_tokens <= 0:
            return
        shape = (n_tokens, self.n_heads, self.head_dim)
        zeros = np.zeros(shape, dtype=np.float32)
        self.append(slot, zeros, zeros)

    def tokens(self, slot: int) -> int:
        return sum(p.used for p in self._slots[self._checked(slot)])

    def keys(self, slot: int) -> np.ndarray:
        return self._gather(slot, "keys")

    def values(self, slot: int) -> np.ndarray:
        return self._gather(slot, "values")

    def _gather(self, slot: int, field: str) -> np.ndarray:
        pages = self._slots[self._checked(slot)]
        if not pages:
            return np.zeros((0, self.n_heads, self.head_dim), dtype=np.float32)
        parts = [getattr(p, field)[:p.used] for p in pages]
        return np.concatenate(parts, axis=0)
