"""Training substrate: trainable model twin, synthetic tasks, trainer."""

from .model import TrainableMoETransformer
from .schedule import ConstantLR, WarmupCosineLR
from .tasks import BOS, SEP, Example, Task, default_suite, task
from .trainer import TrainConfig, TrainReport, example_loss, train, train_for_task

__all__ = [
    "TrainableMoETransformer", "ConstantLR", "WarmupCosineLR",
    "BOS", "SEP", "Example", "Task", "default_suite", "task",
    "TrainConfig", "TrainReport", "example_loss", "train", "train_for_task",
]
