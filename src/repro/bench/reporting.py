"""Text-table rendering for benchmark output (paper-style rows)."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render a fixed-width text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def speedup_string(base: float, improved: float) -> str:
    """'2.41x' style ratio of improved over base throughput."""
    if base <= 0:
        return "n/a"
    return f"{improved / base:.2f}x"
