"""Training loop: teacher-forced next-token prediction on synthetic tasks."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autograd.ops import cross_entropy
from ..autograd.optim import Adam, clip_grad_norm
from ..errors import ConfigError
from ..model.transformer import ModelConfig, MoETransformer
from .model import TrainableMoETransformer
from .tasks import Example, Task


@dataclass(frozen=True)
class TrainConfig:
    steps: int = 300
    batch_size: int = 4
    lr: float = 3e-3
    grad_clip: float = 1.0
    seed: int = 0
    log_every: int = 50
    # Router weight-entropy regularizer (see TrainableMoETransformer._moe):
    # spreads gate mass over the selected experts like load-balanced
    # production training does.
    router_entropy_coef: float = 0.0
    # Optional LR schedule (see repro.train.schedule); None keeps `lr`.
    lr_schedule: object | None = None


@dataclass
class TrainReport:
    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def initial_loss(self) -> float:
        return self.losses[0] if self.losses else float("nan")


def example_loss(model: TrainableMoETransformer, ex: Example,
                 router_entropy_coef: float = 0.0):
    """Cross-entropy of the answer tokens under teacher forcing.

    The model sees ``prompt + target[:-1]`` and is scored on predicting
    each target token at its position.  ``router_entropy_coef`` adds the
    router weight-entropy regularizer collected during the forward pass.
    """
    tokens = np.concatenate([ex.prompt, ex.target])
    logits = model.forward(tokens[:-1])
    n_answer = len(ex.target)
    answer_logits = logits.take_rows(
        np.arange(len(tokens) - 1 - n_answer, len(tokens) - 1)
    )
    loss = cross_entropy(answer_logits, ex.target)
    if router_entropy_coef > 0.0:
        for aux in model.aux_losses:
            loss = loss + aux * router_entropy_coef
    return loss


def train(model: TrainableMoETransformer, examples: list[Example],
          config: TrainConfig = TrainConfig()) -> TrainReport:
    """Run the training loop in place; returns per-step mean losses."""
    if not examples:
        raise ConfigError("no training examples")
    opt = Adam(model.parameters(), lr=config.lr)
    rng = np.random.default_rng(config.seed)
    report = TrainReport()
    for step in range(config.steps):
        if config.lr_schedule is not None:
            opt.lr = config.lr_schedule.lr_at(step, config.steps)
        batch_idx = rng.integers(0, len(examples), size=config.batch_size)
        opt.zero_grad()
        total = 0.0
        for bi in batch_idx:
            loss = example_loss(model, examples[int(bi)],
                                router_entropy_coef=config.router_entropy_coef)
            loss.backward()
            total += float(loss.data)
        clip_grad_norm(model.parameters(), config.grad_clip)
        opt.step()
        report.losses.append(total / config.batch_size)
    return report


def train_for_task(
    model_config: ModelConfig,
    task: Task,
    n_train: int = 256,
    train_config: TrainConfig = TrainConfig(),
    split_seed: int = 0,
) -> tuple[MoETransformer, TrainReport, list[Example]]:
    """Train a fresh model on ``task`` and deploy it for inference.

    Returns the *inference* model (weights exported from the trained twin),
    the training report, and the held-out test examples.
    """
    if model_config.vocab_size < task.min_vocab:
        raise ConfigError(
            f"vocab {model_config.vocab_size} too small for task "
            f"{task.name!r} (needs {task.min_vocab})"
        )
    trainable = TrainableMoETransformer(model_config)
    train_split, test_split = task.splits(n_train, n_test=64, seed=split_seed)
    report = train(trainable, train_split, train_config)
    deployed = MoETransformer(model_config)
    deployed.load_state_dict(trainable.export_state_dict())
    return deployed, report, test_split
