"""A batch-size-1 local serving loop over an inference session.

Local deployments (the paper's target) serve one request at a time; what
matters is queueing delay, time-to-first-token, and time-per-output-token.
``LocalServer`` replays a workload of timed requests through an
:class:`~repro.serving.session.InferenceSession`, producing a
:class:`~repro.serving.metrics.ServingStats` summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .metrics import RequestTiming, ServingStats
from .priority import Priority
from .session import GenerationRequest, InferenceSession


@dataclass(frozen=True)
class TimedRequest:
    """A request plus its (simulated) arrival time and priority class.

    ``priority`` only matters to schedulers configured with a
    :class:`~repro.serving.priority.PriorityConfig`; the FIFO servers
    ignore it (every request is effectively STANDARD).
    """

    arrival_us: float
    request: GenerationRequest
    priority: Priority = Priority.STANDARD


class LocalServer:
    """FIFO, batch-1 serving: requests queue while one generation runs."""

    def __init__(self, session: InferenceSession) -> None:
        self.session = session
        self.stats = ServingStats()

    def replay(self, workload: list[TimedRequest]) -> ServingStats:
        """Serve a workload in arrival order; returns aggregate stats."""
        if not workload:
            raise ConfigError("empty workload")
        ordered = sorted(workload, key=lambda t: t.arrival_us)
        clock = 0.0
        for timed in ordered:
            start = max(clock, timed.arrival_us)
            result = self.session.generate(timed.request)
            first_token = start + result.prefill_us + result.per_token_us
            finish = start + result.total_us
            self.stats.add(RequestTiming(
                arrival_us=timed.arrival_us,
                start_us=start,
                first_token_us=first_token,
                finish_us=finish,
                prompt_tokens=len(np.atleast_1d(timed.request.prompt)),
                generated_tokens=result.n_tokens,
            ))
            clock = finish
        return self.stats


def poisson_workload(
    n_requests: int,
    mean_interarrival_us: float,
    prompt_len: int,
    max_new_tokens: int,
    vocab_size: int,
    seed: int = 0,
    priority: Priority = Priority.STANDARD,
) -> list[TimedRequest]:
    """Synthetic open-loop workload with Poisson arrivals.

    ``priority`` tags every request with one class; mixed-class traffic
    is built by merging several calls (distinct seeds keep the arrival
    processes independent).
    """
    if n_requests <= 0:
        raise ConfigError("n_requests must be positive")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(mean_interarrival_us, size=n_requests))
    out = []
    for a in arrivals:
        prompt = rng.integers(1, vocab_size, size=prompt_len)
        out.append(TimedRequest(
            arrival_us=float(a),
            request=GenerationRequest(prompt=prompt,
                                      max_new_tokens=max_new_tokens),
            priority=priority,
        ))
    return out
