"""GPU kernel-launch model: per-kernel launches vs a single CUDA graph.

Section 2.3 measures the launch path of each system: Fiddler's Python host
pays ~16 us per launch (73% of GPU time), llama.cpp's C++ host ~5 us (21%),
and KTransformers captures the whole decode step in **one** CUDA graph whose
replay costs ~0.5 us per kernel with a single host launch.  The
``cudaLaunchHostFunc`` trick (Section 3.3) keeps CPU submit/sync callbacks
*inside* the graph, so CPU work points no longer fragment it.

``GpuExecutor`` turns these modes into simulator tasks: launches occupy the
``host`` resource, kernels the ``gpu`` resource, and in per-kernel mode the
GPU provably idles while the host is still launching.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

from ..errors import GraphCaptureError
from ..hw.event_sim import Resource, Simulator, Task
from ..hw.spec import MachineSpec

GRAPH_LAUNCH_US = 10.0   # single host-side launch of a captured graph


class LaunchMode(Enum):
    """How GPU kernels reach the device."""

    PER_KERNEL_PYTHON = "per_kernel_python"   # Fiddler: ~16 us/launch
    PER_KERNEL_CPP = "per_kernel_cpp"         # llama.cpp: ~5 us/launch
    CUDA_GRAPH = "cuda_graph"                 # KT: one launch, ~0.5 us replay

    def launch_latency_us(self, machine: MachineSpec) -> float:
        if self is LaunchMode.PER_KERNEL_PYTHON:
            return 16.0
        if self is LaunchMode.PER_KERNEL_CPP:
            return machine.gpu.kernel_launch_latency_us
        return machine.gpu.graph_replay_latency_us

    @property
    def uses_graph(self) -> bool:
        return self is LaunchMode.CUDA_GRAPH

    def sync_latency_us(self) -> float:
        """Cost of one CPU<->GPU synchronization barrier.

        Non-graph modes block the host on stream syncs; with
        ``cudaLaunchHostFunc`` nodes inside a graph the barrier is free.
        """
        if self is LaunchMode.PER_KERNEL_PYTHON:
            return 12.0
        if self is LaunchMode.PER_KERNEL_CPP:
            return 6.0
        return 0.0


@dataclass
class GpuExecutor:
    """Emits launch+kernel task pairs under a given launch mode."""

    sim: Simulator
    machine: MachineSpec
    mode: LaunchMode

    def __post_init__(self) -> None:
        self.gpu: Resource = self.sim.resource("gpu")
        self.host: Resource = self.sim.resource("host")
        self._graph_launched_for_step: Optional[Task] = None

    def begin_step(self, deps: Iterable[Task] = ()) -> Optional[Task]:
        """Start one decode/prefill step.

        In graph mode this is the single host launch that replays the whole
        captured step; per-kernel modes have no step-level work.
        """
        if self.mode.uses_graph:
            self._graph_launched_for_step = self.sim.submit(
                "launch:graph", self.host, GRAPH_LAUNCH_US, deps=deps
            )
            return self._graph_launched_for_step
        self._graph_launched_for_step = None
        return None

    def kernel(
        self,
        name: str,
        duration_us: float,
        n_kernels: int,
        deps: Iterable[Task] = (),
    ) -> Task:
        """Submit a group of ``n_kernels`` GPU kernels totalling ``duration_us``.

        Per-kernel mode: a host launch task (``n_kernels * latency``) must
        finish before the kernels execute, and launches serialize on the
        host thread -- this is what starves the GPU in Figure 4.  Graph
        mode: kernels run back-to-back with only the replay overhead added,
        gated by the step's single graph launch.
        """
        deps = list(deps)
        if duration_us < 0:
            raise GraphCaptureError(f"negative kernel duration for {name!r}")
        lat = self.mode.launch_latency_us(self.machine)
        if self.mode.uses_graph:
            if self._graph_launched_for_step is None:
                raise GraphCaptureError(
                    "graph mode requires begin_step() before kernels"
                )
            total = duration_us + n_kernels * lat
            return self.sim.submit(
                f"kernel:{name}", self.gpu, total,
                deps=deps + [self._graph_launched_for_step],
            )
        launch = self.sim.submit(
            f"launch:{name}", self.host, n_kernels * lat, deps=deps
        )
        return self.sim.submit(
            f"kernel:{name}", self.gpu, duration_us, deps=[launch]
        )

    def sync_point(self, name: str, deps: Iterable[Task] = ()) -> Task:
        """A CPU<->GPU barrier (submit or sync in the paper's terminology).

        Inside a CUDA graph these become ``cudaLaunchHostFunc`` callbacks
        with no host blocking; otherwise they cost host time.
        """
        return self.sim.submit(
            f"sync:{name}", self.host, self.mode.sync_latency_us(), deps=deps
        )
