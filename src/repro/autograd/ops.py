"""Composite autograd ops used by the trainable transformer."""

from __future__ import annotations

import numpy as np

from ..errors import AutogradError
from .tensor import Tensor, _accumulate


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of (n, vocab) logits against integer targets.

    Implemented with a fused, numerically stable backward
    (``softmax - onehot``) rather than composing primitive ops.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.shape != (logits.shape[0],):
        raise AutogradError(
            f"cross_entropy shapes: logits {logits.shape}, targets {targets.shape}"
        )
    z = logits.data
    zmax = z.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(z - zmax).sum(axis=1, keepdims=True)) + zmax
    n = z.shape[0]
    nll = (logsumexp[:, 0] - z[np.arange(n), targets]).mean()

    out = Tensor(np.float32(nll))

    def backward(g: np.ndarray) -> None:
        probs = np.exp(z - logsumexp)
        probs[np.arange(n), targets] -= 1.0
        _accumulate(logits, (g * probs / n).astype(np.float32))

    return logits._make(out.data, (logits,), backward)


def rmsnorm(x: Tensor, gain: Tensor, eps: float = 1e-6) -> Tensor:
    """Root-mean-square norm, composed from differentiable primitives."""
    ms = (x * x).mean(axis=-1, keepdims=True)
    inv = (ms + eps) ** -0.5
    return x * inv * gain


def rope_apply(x: Tensor, positions: np.ndarray, base: float = 10000.0) -> Tensor:
    """Rotary embedding as a fixed linear map; backward rotates by -angle.

    ``x``: (seq, heads, dim even); matches :func:`repro.model.attention.rope`
    exactly so trained weights transfer to the inference model.
    """
    d = x.shape[-1]
    if d % 2 != 0:
        raise AutogradError("rope requires an even last dimension")
    half = d // 2
    freqs = base ** (-np.arange(half, dtype=np.float32) / half)
    angles = np.asarray(positions, dtype=np.float32)[:, None] * freqs[None, :]
    cos = np.cos(angles)[:, None, :]
    sin = np.sin(angles)[:, None, :]

    x1 = x.data[..., :half]
    x2 = x.data[..., half:]
    data = np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos],
                          axis=-1).astype(np.float32)

    def backward(g: np.ndarray) -> None:
        g1 = g[..., :half]
        g2 = g[..., half:]
        gx = np.concatenate([g1 * cos + g2 * sin, -g1 * sin + g2 * cos],
                            axis=-1).astype(np.float32)
        _accumulate(x, gx)

    return x._make(data, (x,), backward)


def embedding(weight: Tensor, token_ids: np.ndarray) -> Tensor:
    """Differentiable table lookup (scatter-add backward)."""
    return weight.take_rows(np.asarray(token_ids))


def causal_attend(q: Tensor, k: Tensor, v: Tensor,
                  q_positions: np.ndarray) -> Tensor:
    """Causal attention over (seq, heads, dim) tensors (training path).

    Matches ``repro.model.attention._attend`` numerically.
    """
    d = q.shape[-1]
    qh = q.swapaxes(0, 1)                       # (h, q, d)
    kh = k.swapaxes(0, 1)
    vh = v.swapaxes(0, 1)
    scores = (qh @ kh.swapaxes(1, 2)) * (1.0 / np.sqrt(d))
    key_pos = np.arange(k.shape[0])
    mask = (key_pos[None, :] > np.asarray(q_positions)[:, None])
    penalty = np.where(mask, -1e9, 0.0).astype(np.float32)[None, :, :]
    probs = softmax(scores + Tensor(penalty), axis=-1)
    out = probs @ vh                            # (h, q, d)
    return out.swapaxes(0, 1)                   # (q, h, d)
