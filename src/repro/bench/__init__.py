"""Benchmark harness: per-figure data producers and table rendering."""

from .report import EvaluationReport, ReportSection, generate_report
from .reporting import format_table, speedup_string
from .workloads import (
    ChatRequestSpec,
    chat_workload_lengths,
    expected_tokens,
    zipf_token_stream,
)
from .runner import (
    ABLATION_STEPS,
    PAPER_PRESETS,
    PREFILL_LENGTHS,
    DeferralTimeline,
    LaunchAnalysis,
    fig3_kernel_throughput,
    fig4_launch_overhead,
    fig7_kernel_crossover,
    fig10_deferral_timeline,
    fig11_prefill,
    fig12_decode,
    fig14_breakdown,
    quant_machine_and_dtype,
    table1_models,
)

__all__ = [
    "EvaluationReport", "ReportSection", "generate_report",
    "format_table", "speedup_string",
    "ChatRequestSpec", "chat_workload_lengths", "expected_tokens",
    "zipf_token_stream",
    "ABLATION_STEPS", "PAPER_PRESETS", "PREFILL_LENGTHS",
    "DeferralTimeline", "LaunchAnalysis",
    "fig3_kernel_throughput", "fig4_launch_overhead", "fig7_kernel_crossover",
    "fig10_deferral_timeline", "fig11_prefill", "fig12_decode",
    "fig14_breakdown", "quant_machine_and_dtype", "table1_models",
]
