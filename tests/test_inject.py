"""Tests for the YAML injection framework (Section 5, Listing 1)."""

import numpy as np
import pytest

from repro.errors import InjectionError
from repro.inject import (
    FlashInferMLA,
    FusedMoEOperator,
    MarlinLinear,
    inject,
    parse_rules,
    resolve_class,
)
from repro.kernels import AVX512Kernel, HybridKernel
from repro.model import Linear, MoETransformer, tiny_config
from repro.model.moe_layer import MoEBlock

LISTING1_YAML = """
- match:
    class: MoEBlock
  replace:
    class: operators.experts.FusedMoE
    device: "cpu"
    kwargs:
      backend: "hybrid_AMX_AVX512"
      data_type: "int8"
      n_deferred_experts: 2

- match:
    name: "layers\\\\..*\\\\.self_attn$"
  replace:
    class: operators.attention.FlashInferMLA
    device: "cuda:0"

- match:
    name: "^(?!lm_head$).*"
    class: Linear
  replace:
    class: operators.linear.MarlinLinear
    device: "cuda:0"
    kwargs:
      data_type: "int4"
"""


def _fresh_model():
    return MoETransformer(tiny_config("tiny-ds"))


class TestRuleParsing:
    def test_parse_listing1(self):
        rules = parse_rules(LISTING1_YAML)
        assert len(rules) == 3
        assert rules[0].replace.kwargs["n_deferred_experts"] == 2
        assert rules[1].replace.device == "cuda:0"

    def test_empty_document(self):
        assert parse_rules("") == []

    def test_non_list_rejected(self):
        with pytest.raises(InjectionError):
            parse_rules("match: {}")

    def test_unknown_keys_rejected(self):
        with pytest.raises(InjectionError):
            parse_rules("- {match: {name: x}, replace: {class: y}, extra: 1}")

    def test_match_needs_criterion(self):
        with pytest.raises(InjectionError):
            parse_rules("- {match: {}, replace: {class: y}}")

    def test_replace_needs_class(self):
        with pytest.raises(InjectionError):
            parse_rules("- {match: {name: x}, replace: {}}")

    def test_bad_regex_rejected(self):
        with pytest.raises(InjectionError):
            parse_rules('- {match: {name: "["}, replace: {class: y}}')

    def test_invalid_yaml_rejected(self):
        with pytest.raises(InjectionError):
            parse_rules("- match: [unclosed")


class TestResolution:
    def test_registry_lookup(self):
        assert resolve_class("operators.experts.FusedMoE") is FusedMoEOperator
        assert resolve_class("FusedMoEOperator") is FusedMoEOperator

    def test_import_path_lookup(self):
        assert resolve_class("repro.model.modules.Linear") is Linear

    def test_unknown_rejected(self):
        with pytest.raises(InjectionError):
            resolve_class("no.such.Thing")


class TestInjection:
    def test_moe_blocks_replaced(self):
        model = _fresh_model()
        rules = parse_rules(LISTING1_YAML[:LISTING1_YAML.index("- match:\n    name:")])
        report = inject(model, rules)
        moe_layers = [l for l in model.layers if l.is_moe]
        assert report.count() == len(moe_layers)
        for layer in moe_layers:
            assert isinstance(layer.mlp, FusedMoEOperator)
            assert layer.mlp.n_deferred_experts == 2
            assert layer.mlp.device == "cpu"
            assert isinstance(layer.mlp.kernel, HybridKernel)

    def test_full_listing1_adaptation(self):
        model = _fresh_model()
        report = inject(model, parse_rules(LISTING1_YAML))
        names = dict(report.replacements)
        assert any(v == "FusedMoEOperator" for v in names.values())
        assert any(v == "FlashInferMLA" for v in names.values())
        assert any(v == "MarlinLinear" for v in names.values())
        # lm_head excluded by the negative-lookahead name pattern.
        assert isinstance(model.lm_head, Linear)
        assert "lm_head" not in names

    def test_injection_preserves_function_bf16(self):
        """Swapping in the fused operator (bf16) must not change outputs."""
        tokens = np.array([1, 2, 3, 4, 5])
        base = _fresh_model()
        expected = base.forward(tokens)
        rules = parse_rules("""
- match: {class: MoEBlock}
  replace:
    class: operators.experts.FusedMoE
    kwargs: {backend: "AVX512", data_type: "bf16"}
""")
        inject(base, rules)
        got = base.forward(tokens)
        assert np.allclose(got, expected, atol=1e-3)

    def test_injection_quantized_close(self):
        tokens = np.array([1, 2, 3])
        base = _fresh_model()
        expected = base.forward(tokens)
        inject(base, parse_rules(LISTING1_YAML))
        got = base.forward(tokens)
        # Int8 experts + Int4 linears perturb but do not break the model.
        assert got.shape == expected.shape
        assert np.abs(got - expected).mean() < np.abs(expected).mean()

    def test_first_matching_rule_wins(self):
        model = _fresh_model()
        rules = parse_rules("""
- match: {class: MoEBlock}
  replace:
    class: operators.experts.FusedMoE
    kwargs: {backend: "AMX"}
- match: {class: MoEBlock}
  replace:
    class: operators.experts.FusedMoE
    kwargs: {backend: "AVX512"}
""")
        inject(model, rules)
        moe = next(l.mlp for l in model.layers if l.is_moe)
        assert moe.backend == "AMX"

    def test_wrong_target_class_rejected(self):
        model = _fresh_model()
        rules = parse_rules("""
- match: {name: "embed_tokens"}
  replace: {class: operators.experts.FusedMoE}
""")
        with pytest.raises(InjectionError):
            inject(model, rules)

    def test_device_tag_set(self):
        model = _fresh_model()
        rules = parse_rules("""
- match: {name: "self_attn$"}
  replace: {class: operators.attention.FlashInferMLA, device: "cuda:1"}
""")
        inject(model, rules)
        assert model.layers[0].self_attn.device == "cuda:1"


class TestOperators:
    def test_marlin_linear_close_to_dense(self):
        rng = np.random.default_rng(0)
        lin = Linear(24, 17, rng=rng)
        marlin = MarlinLinear.from_module(lin, data_type="int8")
        x = rng.standard_normal((3, 24)).astype(np.float32)
        assert np.allclose(marlin(x), lin(x), atol=0.1)
        assert marlin.out_features == 17

    def test_marlin_requires_quantized_dtype(self):
        with pytest.raises(InjectionError):
            MarlinLinear.from_module(Linear(8, 8), data_type="bf16")

    def test_flashinfer_wraps_attention(self):
        model = _fresh_model()
        attn = model.layers[0].self_attn
        wrapped = FlashInferMLA.from_module(attn)
        cache = wrapped.make_cache()
        x = np.random.default_rng(1).standard_normal((4, 32)).astype(np.float32)
        ref_cache = attn.make_cache()
        assert np.allclose(wrapped(x, cache), attn(x, ref_cache), atol=1e-5)

    def test_flashinfer_rejects_non_attention(self):
        with pytest.raises(InjectionError):
            FlashInferMLA.from_module(Linear(4, 4))

    def test_unknown_backend_rejected(self):
        model = _fresh_model()
        block = next(l.mlp for l in model.layers if l.is_moe)
        with pytest.raises(InjectionError):
            FusedMoEOperator.from_module(block, backend="sse2")

    def test_fused_operator_is_moe_block(self):
        """Injected operators stay substitutable wherever MoEBlock is used
        (the deferral engine relies on the MoEBlock piece API)."""
        model = _fresh_model()
        block = next(l.mlp for l in model.layers if l.is_moe)
        op = FusedMoEOperator.from_module(block, backend="AVX512")
        assert isinstance(op, MoEBlock)
        assert isinstance(op.kernel, AVX512Kernel)
