"""Model presets: the exact Table 1 configurations plus tiny functional ones.

The three evaluated models (shape metadata used by the performance
simulator -- no weights are ever allocated at these sizes):

==================  ======  ======  ======
field               DS-3    DS-2    QW-2
==================  ======  ======  ======
total parameters    671B    236B    57B
GPU parameters      17B     13B     8B
CPU parameters      654B    223B    49B
MoE layers          58      59      28
routed experts      256     160     64
routing             top-8   top-6   top-8
==================  ======  ======  ======

``tiny_config`` returns runnable :class:`~repro.model.transformer.ModelConfig`
instances with the same *structure* (shared + routed experts, grouped
routing, MLA) at laptop scale for the functional/accuracy experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..tensor.dtypes import BF16, INT4, INT8, DType
from .transformer import ModelConfig


@dataclass(frozen=True)
class ModelPreset:
    """Shape metadata of one evaluated model (Table 1 plus architecture)."""

    name: str
    display_name: str
    hidden: int
    moe_intermediate: int
    n_layers: int
    n_moe_layers: int
    n_experts: int
    top_k: int
    n_shared_experts: int
    shared_intermediate: int
    n_heads: int
    kv_rank: int                 # 0 -> standard MHA; >0 -> MLA latent width
    vocab_size: int
    gpu_params: float            # parameters resident on the GPU (Table 1)
    quant_dtype: DType           # highest-accuracy dtype fitting the RTX 4080
    # Expert Deferral defaults from Section 6.3: (bf16, quantized).
    deferred_experts_bf16: int
    deferred_experts_quant: int

    @property
    def n_dense_layers(self) -> int:
        return self.n_layers - self.n_moe_layers

    @property
    def cpu_params(self) -> float:
        """Routed-expert parameters offloaded to CPU DRAM."""
        return (
            float(self.n_moe_layers) * self.n_experts
            * 3.0 * self.hidden * self.moe_intermediate
        )

    @property
    def total_params(self) -> float:
        return self.cpu_params + self.gpu_params

    def expert_bytes(self, dtype: DType) -> float:
        """Storage of one routed expert's three projections."""
        return 3.0 * self.hidden * self.moe_intermediate * dtype.bytes_per_element

    def shared_expert_bytes(self, dtype: DType) -> float:
        return (
            self.n_shared_experts * 3.0 * self.hidden
            * self.shared_intermediate * dtype.bytes_per_element
        )

    def gpu_layer_bytes(self, dtype: DType) -> float:
        """Per-layer GPU-resident weight bytes (attention + dense + shared)."""
        return self.gpu_params * dtype.bytes_per_element / self.n_layers

    def cpu_dram_bytes(self, dtype: DType) -> float:
        return self.n_moe_layers * self.n_experts * self.expert_bytes(dtype)


DS3 = ModelPreset(
    name="ds3",
    display_name="DeepSeek-V3-0324 (671B)",
    hidden=7168,
    moe_intermediate=2048,
    n_layers=61,
    n_moe_layers=58,
    n_experts=256,
    top_k=8,
    n_shared_experts=1,
    shared_intermediate=2048,
    n_heads=128,
    kv_rank=512,
    vocab_size=129_280,
    gpu_params=17e9,
    quant_dtype=INT4,
    deferred_experts_bf16=3,
    deferred_experts_quant=6,
)

DS2 = ModelPreset(
    name="ds2",
    display_name="DeepSeek-V2.5-1210 (236B)",
    hidden=5120,
    moe_intermediate=1536,
    n_layers=60,
    n_moe_layers=59,
    n_experts=160,
    top_k=6,
    n_shared_experts=2,
    shared_intermediate=1536,
    n_heads=128,
    kv_rank=512,
    vocab_size=102_400,
    gpu_params=13e9,
    quant_dtype=INT8,
    deferred_experts_bf16=4,
    deferred_experts_quant=4,
)

QW2 = ModelPreset(
    name="qw2",
    display_name="Qwen2-57B-A14B",
    hidden=3584,
    moe_intermediate=2560,
    n_layers=28,
    n_moe_layers=28,
    n_experts=64,
    top_k=8,
    n_shared_experts=1,
    shared_intermediate=20_480,
    n_heads=28,
    kv_rank=0,
    vocab_size=151_936,
    gpu_params=8e9,
    quant_dtype=INT8,
    deferred_experts_bf16=2,
    deferred_experts_quant=4,
)

PAPER_MODELS = {p.name: p for p in (DS3, DS2, QW2)}


def preset(name: str) -> ModelPreset:
    """Fetch a paper model preset by short name (``ds3``, ``ds2``, ``qw2``)."""
    try:
        return PAPER_MODELS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown model preset {name!r}; expected one of {sorted(PAPER_MODELS)}"
        ) from None


# ---------------------------------------------------------------------------
# Tiny functional configurations (runnable + trainable).
# ---------------------------------------------------------------------------

_TINY_CONFIGS = {
    # Structurally DS-3-like: MLA attention, grouped top-k, 1 shared expert,
    # one leading dense layer.
    "tiny-ds": dict(
        vocab_size=64, hidden=32, n_layers=3, n_heads=4,
        moe_intermediate=48, n_experts=8, top_k=4, n_shared_experts=1,
        n_groups=4, top_k_groups=2, first_dense_layers=1,
        dense_intermediate=64, attention="mla", kv_rank=16,
    ),
    # Qwen-like: plain top-k MHA, big shared expert.
    "tiny-qw": dict(
        vocab_size=64, hidden=32, n_layers=2, n_heads=4,
        moe_intermediate=48, n_experts=8, top_k=4, n_shared_experts=1,
        attention="mha",
    ),
    # Minimal smoke-test model.
    "tiny": dict(
        vocab_size=32, hidden=16, n_layers=2, n_heads=2,
        moe_intermediate=24, n_experts=4, top_k=2, n_shared_experts=1,
        attention="mha",
    ),
}


def tiny_config(name: str = "tiny", **overrides) -> ModelConfig:
    """A runnable scaled-down config; ``overrides`` patch any field."""
    if name not in _TINY_CONFIGS:
        raise ConfigError(
            f"unknown tiny config {name!r}; expected one of {sorted(_TINY_CONFIGS)}"
        )
    params = dict(_TINY_CONFIGS[name])
    params.update(overrides)
    return ModelConfig(**params)
