"""Deterministic fault injection for the CPU/GPU hybrid serving stack.

``repro.faults`` perturbs the simulated hardware mid-run -- PCIe
bandwidth loss, transient expert-upload failures, straggler sockets,
NUMA contention bursts, clock jitter -- through hooks in
:mod:`repro.hw.event_sim` and :mod:`repro.hw.roofline`, so every cost
model prices the same degraded timeline.  Everything is seeded and
replayable: the chaos harness (``benchmarks/test_chaos_serving.py``)
relies on bit-identical perturbations across runs.
"""

from .injector import (
    IDENTITY_PERTURBATION,
    NUMA_CPU_SHARE,
    FaultInjector,
    StepPerturbation,
)
from .plan import (
    ClockJitter,
    CpuStraggler,
    FaultPlan,
    FaultWindow,
    NumaContention,
    PcieDegradation,
    ReplicaFault,
    UploadFailureWindow,
    canonical_chaos_plan,
)
from .retry import RetryPolicy

__all__ = [
    "ClockJitter", "CpuStraggler", "FaultInjector", "FaultPlan",
    "FaultWindow", "IDENTITY_PERTURBATION", "NUMA_CPU_SHARE",
    "NumaContention", "PcieDegradation", "ReplicaFault", "RetryPolicy",
    "StepPerturbation", "UploadFailureWindow", "canonical_chaos_plan",
]
