"""AMX tile geometry (Section 3.2).

Each AMX tile register holds a 16-row by 64-byte submatrix; a single
instruction loads or stores a full tile.  All KTransformers weight layouts
are expressed in units of these tiles, and every tile row is aligned to a
64-byte cache line.
"""

from __future__ import annotations

import math

from ..errors import LayoutError
from .dtypes import DType

TILE_ROWS = 16
TILE_ROW_BYTES = 64
CACHE_LINE_BYTES = 64


def tile_cols(dt: DType) -> int:
    """Number of elements per tile row for a payload dtype.

    Int4 packs two elements per byte, so a 64-byte row holds 128 of them.
    """
    bits = dt.bits
    cols = TILE_ROW_BYTES * 8 // bits
    if cols * bits != TILE_ROW_BYTES * 8:
        raise LayoutError(f"dtype {dt.name} does not evenly fill a tile row")
    return cols


def padded_rows(rows: int) -> int:
    """Rows rounded up to a whole number of 16-row tiles."""
    if rows <= 0:
        raise LayoutError(f"rows must be positive, got {rows}")
    return math.ceil(rows / TILE_ROWS) * TILE_ROWS


def padded_cols(cols: int, dt: DType) -> int:
    """Columns rounded up to a whole number of tile rows (64 bytes)."""
    if cols <= 0:
        raise LayoutError(f"cols must be positive, got {cols}")
    tc = tile_cols(dt)
    return math.ceil(cols / tc) * tc


def tile_grid(rows: int, cols: int, dt: DType) -> tuple[int, int]:
    """Number of (row-tiles, col-tiles) covering a rows x cols matrix."""
    return padded_rows(rows) // TILE_ROWS, padded_cols(cols, dt) // tile_cols(dt)


def tiles_in_matrix(rows: int, cols: int, dt: DType) -> int:
    """Total tile count covering a rows x cols matrix."""
    tr, tc = tile_grid(rows, cols, dt)
    return tr * tc


def tile_bytes() -> int:
    """Storage footprint of one tile (payload only)."""
    return TILE_ROWS * TILE_ROW_BYTES


def is_cache_line_aligned(offset_bytes: int) -> bool:
    """True if a byte offset sits on a 64-byte cache-line boundary."""
    return offset_bytes % CACHE_LINE_BYTES == 0
