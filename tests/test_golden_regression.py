"""Golden regression tests: pinned simulated throughputs.

These widen the safety net around the calibration: beyond the ratio bands
(tested elsewhere), the *absolute* simulated numbers for a few canonical
configurations are pinned with a 15% tolerance, so an accidental change to
any cost constant, scheduler rule, or workload lowering shows up even if it
happens to preserve the ratios.

If a deliberate recalibration moves these numbers, update the goldens and
record the change in EXPERIMENTS.md.
"""

import pytest

from repro.baselines import FIDDLER, LLAMACPP
from repro.core import KTRANSFORMERS, run_decode, run_prefill
from repro.hw import paper_testbed
from repro.model import DS2, DS3, QW2, MoETransformer, tiny_config
from repro.serving import BatchCostModel, InferenceSession
from repro.tensor import BF16, INT4

MACHINE = paper_testbed("a100")
MACHINE_4080 = paper_testbed("4080")
TOL = 0.15

GOLDEN_DECODE_TPS = {
    ("ktransformers", "ds3"): 6.16,
    ("ktransformers", "ds2"): 12.19,
    ("ktransformers", "qw2"): 22.28,
    ("fiddler", "ds3"): 1.84,
    ("llamacpp", "ds3"): 3.91,
}

GOLDEN_PREFILL_TPS = {
    ("ktransformers", "ds3", 2048): 464.6,
    ("ktransformers", "qw2", 2048): 2690.0,
    ("fiddler", "ds3", 2048): 131.6,
    ("llamacpp", "ds3", 2048): 83.0,
}

SYSTEMS = {s.name: s for s in (FIDDLER, LLAMACPP, KTRANSFORMERS)}
PRESETS = {p.name: p for p in (DS3, DS2, QW2)}


@pytest.mark.parametrize("system,model", sorted(GOLDEN_DECODE_TPS))
def test_golden_decode(system, model):
    expected = GOLDEN_DECODE_TPS[(system, model)]
    r = run_decode(SYSTEMS[system], PRESETS[model], MACHINE, BF16, n_tokens=6)
    assert r.tokens_per_s == pytest.approx(expected, rel=TOL)


@pytest.mark.parametrize("system,model,plen", sorted(GOLDEN_PREFILL_TPS))
def test_golden_prefill(system, model, plen):
    expected = GOLDEN_PREFILL_TPS[(system, model, plen)]
    r = run_prefill(SYSTEMS[system], PRESETS[model], MACHINE, BF16,
                    prompt_len=plen)
    assert r.tokens_per_s == pytest.approx(expected, rel=TOL)


def test_golden_deferral_ds3():
    r = run_decode(KTRANSFORMERS, DS3, MACHINE, BF16, n_tokens=6,
                   n_deferred=3)
    assert r.tokens_per_s == pytest.approx(8.21, rel=TOL)


def test_golden_quantized_ds3_4080():
    r = run_decode(KTRANSFORMERS, DS3, MACHINE_4080, INT4, n_tokens=6)
    assert r.tokens_per_s == pytest.approx(15.43, rel=TOL)


def test_golden_intro_fiddler_prefill():
    """The introduction's motivating number: Fiddler-style prefill on DS-3
    runs at ~70 tokens/s; our simulated Fiddler lands in that regime."""
    r = run_prefill(FIDDLER, DS3, MACHINE, BF16, prompt_len=8192)
    assert 60.0 <= r.tokens_per_s <= 180.0


# Serving-engine pricing pins (DS-3 costs on the A100 testbed).  These are
# what BENCH_serving / BENCH_expert_cache numbers are built from, so a
# pricing refactor that shifts them must be deliberate and recorded.
GOLDEN_DECODE_STEP_US = {
    (1, 64): 162_222.0,
    (8, 64): 801_589.0,
    (16, 256): 1_485_880.0,
}

GOLDEN_BATCHED_PREFILL_US = {
    128: 3_950_184.0,
    2048: 4_407_961.0,
}


@pytest.fixture(scope="module")
def batch_costs():
    model = MoETransformer(tiny_config("tiny-qw"))
    return BatchCostModel(InferenceSession(model, DS3))


@pytest.mark.parametrize("batch,ctx", sorted(GOLDEN_DECODE_STEP_US))
def test_golden_batched_decode_step(batch_costs, batch, ctx):
    expected = GOLDEN_DECODE_STEP_US[(batch, ctx)]
    assert batch_costs.decode_step_us([ctx] * batch) == pytest.approx(
        expected, rel=TOL)


@pytest.mark.parametrize("tokens", sorted(GOLDEN_BATCHED_PREFILL_US))
def test_golden_batched_prefill(batch_costs, tokens):
    expected = GOLDEN_BATCHED_PREFILL_US[tokens]
    assert batch_costs.batched_prefill_us(tokens) == pytest.approx(
        expected, rel=TOL)


def test_golden_intro_fiddler_decode():
    """Intro: 4.68 tokens/s decode for the Fiddler-style baseline; our
    simulated Fiddler is in the same few-tokens-per-second regime."""
    r = run_decode(FIDDLER, DS3, MACHINE, BF16, n_tokens=6)
    assert 1.0 <= r.tokens_per_s <= 6.0
