"""Fault injection: turning a :class:`~repro.faults.plan.FaultPlan` into
perturbed timelines.

The injector is *stateless*: every query is a pure function of the plan,
the serving clock, and stable integer keys (iteration index, expert
coordinates, retry attempt).  Stochastic draws seed a fresh
``numpy`` generator from ``[plan.seed, stream, *key]``, so the same plan
produces bit-identical perturbations however many times a run is
replayed -- the property the chaos harness's reproducibility tests pin.

Two wiring points push one coherent perturbed timeline through every
cost model:

- :meth:`StepPerturbation.sim_hook` installs into
  :class:`repro.hw.event_sim.Simulator` (``perturb=``) and rescales task
  durations by resource: ``cpu*`` tasks stretch by the straggler barrier
  plus the NUMA-inflated reduce share, ``pcie*`` tasks stretch by the
  inverse bandwidth fraction.  ``repro.sched.decode`` passes the hook
  through, so batched decode pricing sees the same degraded hardware;
- :meth:`StepPerturbation.degrade_link` produces the bandwidth-scaled
  :class:`~repro.hw.spec.InterconnectSpec` that
  :meth:`repro.moe.expert_cache.ExpertCacheManager.step` uses for upload
  transfer and stall accounting
  (:func:`repro.hw.roofline.overlapped_transfer_stall_us` on the same
  degraded link).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigError
from ..hw.event_sim import Task
from ..hw.roofline import degraded_link
from ..hw.spec import InterconnectSpec
from .plan import FaultPlan

# Share of a routed-expert layer's CPU time spent in cross-socket
# reduce/combine traffic; NUMA contention inflates only that share.
NUMA_CPU_SHARE = 0.3

# Private seed-stream tags keeping jitter / upload / retry draws independent.
_JITTER_STREAM = 101
_UPLOAD_STREAM = 211
_RETRY_STREAM = 307


@dataclass(frozen=True)
class StepPerturbation:
    """The fault state one serving iteration executes under.

    ``cpu_scale`` is the straggler barrier multiplier (>= 1),
    ``pcie_scale`` the remaining PCIe bandwidth fraction (<= 1),
    ``numa_scale`` the cross-socket contention multiplier (>= 1),
    ``jitter_scale`` this iteration's clock-noise factor, and
    ``upload_failure_prob`` the Bernoulli parameter of expert-upload
    failures.  All values are piecewise-constant per iteration, so
    pricing under a perturbation memoizes on :meth:`price_key`.
    """

    cpu_scale: float = 1.0
    pcie_scale: float = 1.0
    numa_scale: float = 1.0
    jitter_scale: float = 1.0
    upload_failure_prob: float = 0.0

    @property
    def is_identity(self) -> bool:
        """True when nothing is perturbed at all."""
        return (self.prices_identity and self.jitter_scale == 1.0
                and self.upload_failure_prob == 0.0)

    @property
    def prices_identity(self) -> bool:
        """True when step *pricing* is unperturbed (jitter rides outside)."""
        return (self.cpu_scale == 1.0 and self.pcie_scale == 1.0
                and self.numa_scale == 1.0)

    @property
    def cpu_time_scale(self) -> float:
        """Effective CPU-task multiplier: straggler barrier x NUMA share."""
        return self.cpu_scale * (1.0 + (self.numa_scale - 1.0) * NUMA_CPU_SHARE)

    def price_key(self) -> tuple[float, float, float]:
        """Memoization key for cost models pricing under this perturbation."""
        return (self.cpu_scale, self.pcie_scale, self.numa_scale)

    def sim_hook(self) -> Callable[[Task, float], float]:
        """A ``Simulator(perturb=...)`` hook applying this perturbation.

        CPU tasks stretch by :attr:`cpu_time_scale`; PCIe tasks stretch by
        ``1 / pcie_scale``; GPU/host tasks are untouched (the GPU itself
        is not a modelled fault domain).
        """
        cpu_mult = self.cpu_time_scale
        pcie_mult = 1.0 / self.pcie_scale

        def perturb(task: Task, now: float) -> float:
            name = task.resource.name
            if name.startswith("cpu"):
                return task.duration * cpu_mult
            if name.startswith("pcie"):
                return task.duration * pcie_mult
            return task.duration

        return perturb

    def degrade_link(self, link: InterconnectSpec) -> InterconnectSpec:
        """``link`` with PCIe/UPI bandwidth scaled by this perturbation.

        Returns ``link`` itself (not a copy) when unperturbed, so
        unfaulted iterations reuse the exact same spec object and float
        arithmetic as a run with no injector.
        """
        return degraded_link(link, pcie_scale=self.pcie_scale,
                             cross_socket_scale=1.0 / self.numa_scale)


IDENTITY_PERTURBATION = StepPerturbation()


class FaultInjector:
    """Deterministic oracle answering "what is broken at time t?".

    Attach one to a
    :class:`~repro.serving.continuous.ContinuousBatchingServer`
    (``fault_injector=``); the serving loop queries
    :meth:`perturbation_at` once per decode iteration and
    :meth:`failed_uploads` / :meth:`retry_fails` for the expert-upload
    fault channel.  All methods are pure given the plan.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def perturbation_at(self, t_us: float, step_idx: int) -> StepPerturbation:
        """The (piecewise-constant) perturbation active at ``t_us``.

        Overlapping windows compose pessimistically: the worst PCIe
        fraction wins, the slowest straggler sets the barrier, the worst
        NUMA contention applies.  ``step_idx`` seeds this iteration's
        jitter draw.
        """
        if step_idx < 0:
            raise ConfigError("step_idx must be >= 0")
        cpu = max((w.slowdown for w in self.plan.stragglers
                   if w.active_at(t_us)), default=1.0)
        pcie = min((w.bandwidth_fraction for w in self.plan.pcie
                    if w.active_at(t_us)), default=1.0)
        numa = max((w.slowdown for w in self.plan.numa
                    if w.active_at(t_us)), default=1.0)
        prob = max((w.probability for w in self.plan.upload_failures
                    if w.active_at(t_us)), default=0.0)
        jitter = 1.0
        if self.plan.jitter is not None and self.plan.jitter.sigma > 0.0:
            rng = np.random.default_rng(
                [self.plan.seed, _JITTER_STREAM, step_idx])
            sigma = self.plan.jitter.sigma
            jitter = float(rng.uniform(1.0 - sigma, 1.0 + sigma))
        return StepPerturbation(
            cpu_scale=cpu, pcie_scale=pcie, numa_scale=numa,
            jitter_scale=jitter, upload_failure_prob=prob,
        )

    def failed_uploads(
        self, t_us: float, step_idx: int,
        uploads: Sequence[tuple[int, int]],
    ) -> tuple[tuple[int, int], ...]:
        """Which of this step's planned expert uploads fail in transit.

        One uniform draw per upload from the ``[seed, stream, step]``
        substream, compared against the failure probability active at
        ``t_us``; the subset (in upload order) is returned.
        """
        if not uploads:
            return ()
        prob = max((w.probability for w in self.plan.upload_failures
                    if w.active_at(t_us)), default=0.0)
        if prob <= 0.0:
            return ()
        rng = np.random.default_rng([self.plan.seed, _UPLOAD_STREAM, step_idx])
        draws = rng.random(len(uploads))
        return tuple(u for u, d in zip(uploads, draws) if d < prob)

    def retry_fails(self, t_us: float, step_idx: int, layer: int,
                    expert: int, attempt: int) -> bool:
        """Whether retry ``attempt`` of expert ``(layer, expert)`` fails.

        Seeded per ``(step, layer, expert, attempt)`` so every attempt is
        an independent -- but replayable -- Bernoulli draw against the
        failure probability active at ``t_us``.
        """
        if attempt <= 0:
            raise ConfigError("retry attempts are 1-based")
        prob = max((w.probability for w in self.plan.upload_failures
                    if w.active_at(t_us)), default=0.0)
        if prob <= 0.0:
            return False
        rng = np.random.default_rng(
            [self.plan.seed, _RETRY_STREAM, step_idx, layer, expert, attempt])
        return bool(rng.random() < prob)
