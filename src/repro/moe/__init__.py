"""MoE execution substrate: routing, experts, fusion, scheduling, NUMA."""

from .affinity import (
    DEFAULT_CACHE_HIT_DISCOUNT,
    AffinityOutcome,
    affinity_schedule,
)
from .experts import (
    ExpertWeights,
    expert_flops,
    expert_forward,
    expert_weight_bytes,
    make_expert,
    silu,
)
from .fused import FusedExpertWeights, FusedMoE, fuse_expert, moe_forward_reference
from .numa import (
    OBLIVIOUS_BANDWIDTH_EFFICIENCY,
    OBLIVIOUS_STREAMING_EFFICIENCY,
    MoELayerDims,
    NumaStrategy,
    TPShardedExpert,
    expert_time_us,
    moe_layer_time_us,
    oblivious_cpu,
    oblivious_efficiency,
)
from .expert_cache import (
    CacheStepResult,
    ExpertCacheConfig,
    ExpertCacheManager,
    oracle_hit_rate,
)
from .mixed_precision import (
    PRECISION_LADDER,
    PrecisionAssignment,
    apply_mixed_precision,
    assign_expert_precision,
    bandwidth_savings,
    expert_sensitivity,
)
from .placement import (
    PlacementPlan,
    placement_speedup_estimate,
    plan_gpu_residency,
    profile_expert_popularity,
    zipf_popularity,
)
from .router import (
    RouterConfig,
    RoutingResult,
    balanced_synthetic_logits,
    route,
    skewed_synthetic_logits,
)
from .stats import (
    coactivation_matrix,
    effective_experts,
    gate_weight_entropy,
    load_balance_factor,
    routing_summary,
)
from .scheduling import (
    ScheduleOutcome,
    WorkItem,
    dynamic_schedule,
    speedup,
    static_schedule,
)

__all__ = [
    "DEFAULT_CACHE_HIT_DISCOUNT", "AffinityOutcome", "affinity_schedule",
    "ExpertWeights", "expert_flops", "expert_forward", "expert_weight_bytes",
    "make_expert", "silu",
    "FusedExpertWeights", "FusedMoE", "fuse_expert", "moe_forward_reference",
    "OBLIVIOUS_BANDWIDTH_EFFICIENCY", "OBLIVIOUS_STREAMING_EFFICIENCY",
    "MoELayerDims", "NumaStrategy",
    "TPShardedExpert", "expert_time_us", "moe_layer_time_us", "oblivious_cpu",
    "oblivious_efficiency",
    "RouterConfig", "RoutingResult", "balanced_synthetic_logits", "route",
    "skewed_synthetic_logits",
    "ScheduleOutcome", "WorkItem", "dynamic_schedule", "speedup",
    "static_schedule",
    "PRECISION_LADDER", "PrecisionAssignment", "apply_mixed_precision",
    "assign_expert_precision", "bandwidth_savings", "expert_sensitivity",
    "CacheStepResult", "ExpertCacheConfig", "ExpertCacheManager",
    "oracle_hit_rate",
    "PlacementPlan", "placement_speedup_estimate", "plan_gpu_residency",
    "profile_expert_popularity", "zipf_popularity",
    "coactivation_matrix", "effective_experts", "gate_weight_entropy",
    "load_balance_factor", "routing_summary",
]
