"""NUMA placement and CPU work-scheduling tuning (Sections 3.2-3.3).

Compares the three expert placements on a dual-socket machine (oblivious /
expert parallelism / tensor parallelism) for both phases, then shows how
dynamic work scheduling absorbs prefill imbalance.

Run:  python examples/numa_tuning.py
"""

import numpy as np

from repro.bench import format_table
from repro.hw import KT_AMX, KT_AVX512, XEON_8452Y, cpu_gemm_time_us, paper_testbed
from repro.model import DS3
from repro.moe import (
    MoELayerDims,
    NumaStrategy,
    RouterConfig,
    WorkItem,
    dynamic_schedule,
    moe_layer_time_us,
    route,
    skewed_synthetic_logits,
    speedup,
    static_schedule,
)
from repro.tensor import BF16


def numa_comparison() -> None:
    machine = paper_testbed()
    dims = MoELayerDims(DS3.hidden, DS3.moe_intermediate, BF16)
    decode_counts = [1, 0] * 4 + [0] * (DS3.n_experts - 8)
    prefill_counts = [64] * DS3.n_experts

    rows = []
    for phase, counts, profile, streaming in (
        ("decode", decode_counts, KT_AVX512, False),
        ("prefill", prefill_counts, KT_AMX, True),
    ):
        times = {
            s: moe_layer_time_us(counts, dims, profile, machine, s,
                                 streaming_access=streaming)
            for s in NumaStrategy
        }
        best = min(times, key=times.get)
        rows.append((
            phase,
            times[NumaStrategy.OBLIVIOUS] / 1e3,
            times[NumaStrategy.EXPERT_PARALLEL] / 1e3,
            times[NumaStrategy.TENSOR_PARALLEL] / 1e3,
            best.value,
        ))
    print(format_table(
        ["phase", "oblivious (ms)", "expert-par (ms)", "tensor-par (ms)",
         "winner"],
        rows,
        title="One DS-3 MoE layer on 2x Xeon 8452Y",
    ))
    print()


def scheduling_comparison() -> None:
    cfg = RouterConfig(n_experts=DS3.n_experts, top_k=DS3.top_k)
    rng = np.random.default_rng(0)
    rows = []
    for label, bonus in (("balanced", 0.0), ("mild skew", 0.5),
                         ("hot experts", 1.0)):
        logits = skewed_synthetic_logits(2048, cfg, rng, hot_fraction=0.05,
                                         hot_bonus=bonus)
        counts = route(logits, cfg).expert_token_counts(cfg.n_experts)
        items = [
            WorkItem(cpu_gemm_time_us(
                KT_AMX, int(t), DS3.hidden, 2 * DS3.moe_intermediate, BF16,
                XEON_8452Y, threads_fraction=1.0 / XEON_8452Y.cores), e)
            for e, t in enumerate(counts) if t > 0
        ]
        st = static_schedule(items, XEON_8452Y.cores)
        dy = dynamic_schedule(items, XEON_8452Y.cores, chunk_us=50.0)
        rows.append((label, int(counts.max()), st.makespan_us / 1e3,
                     dy.makespan_us / 1e3, f"{speedup(st, dy):.2f}x"))
    print(format_table(
        ["workload", "hottest expert (tokens)", "static (ms)",
         "dynamic (ms)", "dynamic gain"],
        rows,
        title="Static vs dynamic thread scheduling, 2048-token prefill chunk",
    ))


def main() -> None:
    numa_comparison()
    scheduling_comparison()


if __name__ == "__main__":
    main()
