"""Serving layer: sessions (real tokens, simulated clocks) and servers.

Two servers share the same workload/stats types: the paper's batch-1
``LocalServer`` and the iteration-level ``ContinuousBatchingServer``
(optionally priority-aware with swap/recompute preemption, and
optionally session-aware via the radix prefix-KV cache and host KV
tier in :mod:`repro.serving.prefix_cache`).
"""

from .continuous import (
    BatchCostModel,
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    serving_expert_cache,
)
from .controller import (
    ControllerConfig,
    ControllerStats,
    KnobDecision,
    OnlineController,
)
from .fleet import (
    ROUTING_POLICIES,
    FleetConfig,
    FleetRouter,
    FleetStats,
    RoutingWeightAdapter,
    RoutingWeightConfig,
)
from .metrics import (
    BatchTimeline,
    CachePoint,
    ExpertCacheTimeline,
    FaultStats,
    GraphStats,
    PipelineStats,
    PreemptionStats,
    RequestTiming,
    RollingWindow,
    ServingSLO,
    ServingStats,
    SessionStats,
    ShedRecord,
    TimelinePoint,
    percentile,
    percentiles,
)
from .prefix_cache import (
    KVTierConfig,
    MatchProbe,
    PrefixCacheConfig,
    RadixPrefixCache,
)
from .priority import Priority, PriorityConfig
from .resilience import DegradationTracker, ResilienceConfig, RetryState
from .server import (
    LocalServer,
    TimedRequest,
    multi_turn_workload,
    poisson_workload,
)
from .session import (
    GenerationRequest,
    GenerationResult,
    InferenceSession,
    PhaseCostModel,
)
from .traffic import (
    TrafficPhase,
    diurnal_workload,
    flash_crowd_workload,
    hot_set_shift_workload,
    three_phase_scenario,
)

__all__ = [
    "BatchCostModel", "BatchSchedulerConfig", "ContinuousBatchingServer",
    "serving_expert_cache",
    "ControllerConfig", "ControllerStats", "KnobDecision",
    "OnlineController",
    "FleetConfig", "FleetRouter", "FleetStats", "ROUTING_POLICIES",
    "RoutingWeightAdapter", "RoutingWeightConfig",
    "BatchTimeline", "CachePoint", "ExpertCacheTimeline", "FaultStats",
    "GraphStats", "PipelineStats", "PreemptionStats", "RequestTiming",
    "RollingWindow", "ServingSLO",
    "ServingStats", "SessionStats",
    "ShedRecord", "TimelinePoint", "percentile", "percentiles",
    "KVTierConfig", "MatchProbe", "PrefixCacheConfig", "RadixPrefixCache",
    "Priority", "PriorityConfig",
    "DegradationTracker", "ResilienceConfig", "RetryState",
    "LocalServer", "TimedRequest", "multi_turn_workload", "poisson_workload",
    "GenerationRequest", "GenerationResult", "InferenceSession",
    "PhaseCostModel",
    "TrafficPhase", "diurnal_workload", "flash_crowd_workload",
    "hot_set_shift_workload", "three_phase_scenario",
]
