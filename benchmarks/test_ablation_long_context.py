"""Ablation: long-context decode — MLA latent caching vs full-KV offload.

DeepSeek's MLA stores a 512-wide latent per token per layer (~64 KB/token
across DS-3's 61 layers) where a standard MHA cache of QW-2's width costs
~400 KB/token; with weights already filling most VRAM, the MHA cache spills
to host memory at moderate contexts and every decode step then drags the
cold pages across PCIe.  This sweep quantifies both curves.
"""

from repro.bench import format_table
from repro.hw import paper_testbed
from repro.model import DS3, QW2
from repro.sched import gpu_kv_budget_tokens, kv_offload_step_cost

CONTEXTS = (1_000, 4_000, 16_000, 64_000, 128_000)


def _sweep():
    machine = paper_testbed("a100")
    rows = []
    for ctx in CONTEXTS:
        mla = kv_offload_step_cost(
            DS3, machine, ctx,
            weight_bytes=DS3.gpu_params * DS3.quant_dtype.bytes_per_element)
        mha = kv_offload_step_cost(
            QW2, machine, ctx, weight_bytes=QW2.gpu_params * 2.0)
        rows.append((
            ctx,
            mla.total_us_per_layer,
            mla.offload_fraction * 100,
            mha.total_us_per_layer,
            mha.offload_fraction * 100,
        ))
    machine_budget = {
        "mla": gpu_kv_budget_tokens(
            DS3, machine,
            DS3.gpu_params * DS3.quant_dtype.bytes_per_element),
        "mha": gpu_kv_budget_tokens(QW2, machine, QW2.gpu_params * 2.0),
    }
    return rows, machine_budget


def test_ablation_long_context(run_once):
    rows, budgets = run_once(_sweep)
    print()
    print(format_table(
        ["context", "MLA us/layer", "MLA offloaded %",
         "MHA us/layer", "MHA offloaded %"],
        rows,
        title=f"Long-context decode attention (budgets: MLA "
              f"{budgets['mla']:,} tokens, MHA {budgets['mha']:,} tokens)",
    ))
    # MLA holds vastly more context on-GPU.
    assert budgets["mla"] > 5 * budgets["mha"]
    by_ctx = {r[0]: r for r in rows}
    # At 128k, MLA still fits while the MHA cache is mostly offloaded.
    assert by_ctx[128_000][2] == 0.0
    assert by_ctx[128_000][4] > 50.0
    # Offloading makes the MHA step cost blow up past its budget.
    assert by_ctx[128_000][3] > 10 * by_ctx[4_000][3]
    # MLA's per-layer attention stays cheap even at 128k context.
    assert by_ctx[128_000][1] < by_ctx[128_000][3] / 5
