"""GPU kernel-launch model: per-kernel launches vs a single CUDA graph.

Section 2.3 measures the launch path of each system: Fiddler's Python host
pays ~16 us per launch (73% of GPU time), llama.cpp's C++ host ~5 us (21%),
and KTransformers captures the whole decode step in **one** CUDA graph whose
replay costs ~0.5 us per kernel with a single host launch.  The
``cudaLaunchHostFunc`` trick (Section 3.3) keeps CPU submit/sync callbacks
*inside* the graph, so CPU work points no longer fragment it.

``GpuExecutor`` turns these modes into simulator tasks: launches occupy the
``host`` resource, kernels the ``gpu`` resource, and in per-kernel mode the
GPU provably idles while the host is still launching.

:class:`GraphCache` models what replay-only pricing leaves out: a graph is
only free to *replay* once it has been *captured* for the step's exact
shape.  Under iteration-level admission the batch shape changes every step,
so graphs are captured per ``(batch bucket, chunk bucket, cache topology)``
key; the first use of a key pays a capture stall (walking every kernel in
the step at the per-kernel launch latency, plus instantiation overhead),
later uses replay for free, and a bounded LRU evicts cold graphs -- an
evicted key pays capture again on its next use.  Batch shapes are padded
up to their bucket by the serving engine, which prices the padding tokens
honestly (the padded batch's full step cost is charged).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, Iterable, Optional

from ..errors import ConfigError, GraphCaptureError
from ..hw.event_sim import Resource, Simulator, Task
from ..hw.spec import MachineSpec

# Default host-side launch cost of one captured graph; kept as the
# GPUSpec.graph_launch_us default so existing goldens hold.  Schedulers
# should read the spec field -- this constant exists for back-compat and
# as the documented calibration value (Section 2.3).
GRAPH_LAUNCH_US = 10.0


class LaunchMode(Enum):
    """How GPU kernels reach the device."""

    PER_KERNEL_PYTHON = "per_kernel_python"   # Fiddler: ~16 us/launch
    PER_KERNEL_CPP = "per_kernel_cpp"         # llama.cpp: ~5 us/launch
    CUDA_GRAPH = "cuda_graph"                 # KT: one launch, ~0.5 us replay

    def launch_latency_us(self, machine: MachineSpec) -> float:
        if self is LaunchMode.PER_KERNEL_PYTHON:
            return 16.0
        if self is LaunchMode.PER_KERNEL_CPP:
            return machine.gpu.kernel_launch_latency_us
        return machine.gpu.graph_replay_latency_us

    @property
    def uses_graph(self) -> bool:
        return self is LaunchMode.CUDA_GRAPH

    def sync_latency_us(self) -> float:
        """Cost of one CPU<->GPU synchronization barrier.

        Non-graph modes block the host on stream syncs; with
        ``cudaLaunchHostFunc`` nodes inside a graph the barrier is free.
        """
        if self is LaunchMode.PER_KERNEL_PYTHON:
            return 12.0
        if self is LaunchMode.PER_KERNEL_CPP:
            return 6.0
        return 0.0


@dataclass
class GpuExecutor:
    """Emits launch+kernel task pairs under a given launch mode."""

    sim: Simulator
    machine: MachineSpec
    mode: LaunchMode

    def __post_init__(self) -> None:
        self.gpu: Resource = self.sim.resource("gpu")
        self.host: Resource = self.sim.resource("host")
        self._graph_launched_for_step: Optional[Task] = None

    def begin_step(self, deps: Iterable[Task] = ()) -> Optional[Task]:
        """Start one decode/prefill step.

        In graph mode this is the single host launch that replays the whole
        captured step; per-kernel modes have no step-level work.  The launch
        cost comes from the machine spec (``gpu.graph_launch_us``).
        """
        if self.mode.uses_graph:
            self._graph_launched_for_step = self.sim.submit(
                "launch:graph", self.host, self.machine.gpu.graph_launch_us,
                deps=deps,
            )
            return self._graph_launched_for_step
        self._graph_launched_for_step = None
        return None

    def kernel(
        self,
        name: str,
        duration_us: float,
        n_kernels: int,
        deps: Iterable[Task] = (),
    ) -> Task:
        """Submit a group of ``n_kernels`` GPU kernels totalling ``duration_us``.

        Per-kernel mode: a host launch task (``n_kernels * latency``) must
        finish before the kernels execute, and launches serialize on the
        host thread -- this is what starves the GPU in Figure 4.  Graph
        mode: kernels run back-to-back with only the replay overhead added,
        gated by the step's single graph launch.
        """
        deps = list(deps)
        if duration_us < 0:
            raise GraphCaptureError(f"negative kernel duration for {name!r}")
        lat = self.mode.launch_latency_us(self.machine)
        if self.mode.uses_graph:
            if self._graph_launched_for_step is None:
                raise GraphCaptureError(
                    "graph mode requires begin_step() before kernels"
                )
            total = duration_us + n_kernels * lat
            return self.sim.submit(
                f"kernel:{name}", self.gpu, total,
                deps=deps + [self._graph_launched_for_step],
            )
        launch = self.sim.submit(
            f"launch:{name}", self.host, n_kernels * lat, deps=deps
        )
        return self.sim.submit(
            f"kernel:{name}", self.gpu, duration_us, deps=[launch]
        )

    def sync_point(self, name: str, deps: Iterable[Task] = ()) -> Task:
        """A CPU<->GPU barrier (submit or sync in the paper's terminology).

        Inside a CUDA graph these become ``cudaLaunchHostFunc`` callbacks
        with no host blocking; otherwise they cost host time.
        """
        return self.sim.submit(
            f"sync:{name}", self.host, self.mode.sync_latency_us(), deps=deps
        )


# --------------------------------------------------------------------------
# Graph-capture cache: capture cost amortized over shape-bucketed replays.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GraphCacheConfig:
    """Policy knobs of the CUDA-graph capture cache.

    ``batch_buckets`` are the batch-size shapes graphs are captured at;
    a batch pads up to the smallest bucket that holds it (the padded
    batch's full step cost is charged, so padding is priced honestly).
    ``max_graphs`` bounds how many captured graphs stay instantiated
    (device memory holds the graph exec plus its workspace); the
    least-recently-used graph is evicted beyond that and must re-capture
    on its next use.  ``instantiation_us`` is the fixed
    ``cudaGraphInstantiate`` overhead added on top of walking the step's
    kernels at the per-kernel launch latency during capture.
    """

    batch_buckets: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
    max_graphs: int = 16
    instantiation_us: float = 400.0

    def __post_init__(self) -> None:
        if not self.batch_buckets:
            raise ConfigError("batch_buckets must not be empty")
        if any(b <= 0 for b in self.batch_buckets):
            raise ConfigError("batch_buckets must be positive")
        if list(self.batch_buckets) != sorted(set(self.batch_buckets)):
            raise ConfigError("batch_buckets must be strictly increasing")
        if self.max_graphs <= 0:
            raise ConfigError("max_graphs must be positive")
        if self.instantiation_us < 0:
            raise ConfigError("instantiation_us must be >= 0")

    def batch_bucket(self, batch_size: int) -> int:
        """Smallest capture bucket holding ``batch_size`` (last if beyond)."""
        if batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        for b in self.batch_buckets:
            if batch_size <= b:
                return b
        return self.batch_buckets[-1]


@dataclass(frozen=True)
class GraphLookup:
    """Outcome of one :meth:`GraphCache.lookup`.

    ``captured`` marks a capture (cold key or re-capture after eviction);
    ``capture_us`` is the stall this use pays (zero on a replay hit) and
    ``evicted`` the key displaced to make room, if any.
    """

    key: Hashable
    captured: bool
    capture_us: float
    evicted: Hashable | None = None


class GraphCache:
    """Bounded LRU of captured CUDA graphs, keyed by step shape.

    One entry per ``(batch bucket, chunk bucket, cache topology)`` key --
    anything that changes the captured step's kernel sequence needs its
    own graph, while duration-only changes (fault perturbations stretch
    task times, not shapes) replay the existing one.  ``lookup`` is the
    whole interface: it returns the capture stall to charge this use and
    updates recency/eviction state, so a fixed key sequence always yields
    the same lookup sequence (pure function of call history -- the
    bit-reproducibility the serving goldens rely on).
    """

    def __init__(self, config: GraphCacheConfig, machine: MachineSpec) -> None:
        self.config = config
        self.machine = machine
        self._entries: dict[Hashable, float] = {}   # key -> capture cost paid
        self.captures = 0
        self.replays = 0
        self.evictions = 0

    @property
    def n_cached(self) -> int:
        return len(self._entries)

    def capture_cost_us(self, n_kernels: int) -> float:
        """Modeled cost of capturing a step of ``n_kernels`` kernels.

        Capture walks every kernel through the regular (uncaptured)
        launch path once -- ``n_kernels`` host launches at the spec's
        per-kernel latency -- then pays the fixed instantiation overhead.
        """
        if n_kernels <= 0:
            raise ConfigError("n_kernels must be positive")
        return (n_kernels * self.machine.gpu.kernel_launch_latency_us
                + self.config.instantiation_us)

    def lookup(self, key: Hashable, n_kernels: int) -> GraphLookup:
        """Fetch (or capture) the graph for ``key``; returns the stall.

        A hit refreshes the key's recency and costs nothing extra -- the
        step itself is already priced at graph-replay launch latency.  A
        miss captures: the returned ``capture_us`` stalls the iteration,
        and the LRU entry is evicted when the cache is full.  Re-capture
        after eviction pays exactly the same cost as the first capture
        (same key, same kernel walk), so eviction never changes a priced
        step time -- only who pays the stall.
        """
        if key in self._entries:
            cost = self._entries.pop(key)
            self._entries[key] = cost          # refresh recency (dict order)
            self.replays += 1
            return GraphLookup(key=key, captured=False, capture_us=0.0)
        capture_us = self.capture_cost_us(n_kernels)
        evicted = None
        if len(self._entries) >= self.config.max_graphs:
            evicted = next(iter(self._entries))
            del self._entries[evicted]
            self.evictions += 1
        self._entries[key] = capture_us
        self.captures += 1
        return GraphLookup(key=key, captured=True, capture_us=capture_us,
                           evicted=evicted)
