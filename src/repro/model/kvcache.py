"""Key/value caches for autoregressive decoding.

Two flavours: a plain per-layer cache for standard multi-head attention,
and a compressed cache for MLA layers, which store the low-rank latent
``kv_c`` instead of full K/V (DeepSeek's Multi-head Latent Attention --
this is what makes a 671B model's cache fit one GPU).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class KVCache:
    """Append-only K/V store for one attention layer.

    Shapes: ``(seq, heads, head_dim)``, grown geometrically so appends are
    amortized O(1).
    """

    def __init__(self, n_heads: int, head_dim: int, initial_capacity: int = 64):
        if n_heads <= 0 or head_dim <= 0:
            raise ConfigError("cache dims must be positive")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self._capacity = max(1, initial_capacity)
        self._len = 0
        self._k = np.zeros((self._capacity, n_heads, head_dim), dtype=np.float32)
        self._v = np.zeros_like(self._k)

    def __len__(self) -> int:
        return self._len

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        """Append ``(new_tokens, heads, head_dim)`` keys and values."""
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        expected = (k.shape[0], self.n_heads, self.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ConfigError(
                f"cache append shape {k.shape}/{v.shape}, expected {expected}"
            )
        need = self._len + k.shape[0]
        if need > self._capacity:
            while self._capacity < need:
                self._capacity *= 2
            self._k = np.resize(self._k, (self._capacity, self.n_heads, self.head_dim))
            self._v = np.resize(self._v, (self._capacity, self.n_heads, self.head_dim))
        self._k[self._len:need] = k
        self._v[self._len:need] = v
        self._len = need

    def keys(self) -> np.ndarray:
        return self._k[:self._len]

    def values(self) -> np.ndarray:
        return self._v[:self._len]

    def reset(self) -> None:
        self._len = 0


class LatentKVCache:
    """Compressed cache for MLA: stores the (seq, kv_rank) latent only."""

    def __init__(self, kv_rank: int, initial_capacity: int = 64) -> None:
        if kv_rank <= 0:
            raise ConfigError("kv_rank must be positive")
        self.kv_rank = kv_rank
        self._capacity = max(1, initial_capacity)
        self._len = 0
        self._latent = np.zeros((self._capacity, kv_rank), dtype=np.float32)

    def __len__(self) -> int:
        return self._len

    def append(self, latent: np.ndarray) -> None:
        latent = np.asarray(latent, dtype=np.float32)
        if latent.ndim != 2 or latent.shape[1] != self.kv_rank:
            raise ConfigError(
                f"latent shape {latent.shape}, expected (*, {self.kv_rank})"
            )
        need = self._len + latent.shape[0]
        if need > self._capacity:
            while self._capacity < need:
                self._capacity *= 2
            self._latent = np.resize(self._latent, (self._capacity, self.kv_rank))
        self._latent[self._len:need] = latent
        self._len = need

    def latents(self) -> np.ndarray:
        return self._latent[:self._len]

    def reset(self) -> None:
        self._len = 0
