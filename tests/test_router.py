"""Unit + property tests for MoE routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.moe import (
    RouterConfig,
    balanced_synthetic_logits,
    route,
    skewed_synthetic_logits,
)


def _cfg(**kw):
    defaults = dict(n_experts=16, top_k=4)
    defaults.update(kw)
    return RouterConfig(**defaults)


class TestTopK:
    def test_selects_highest_logits(self):
        logits = np.zeros((1, 8), dtype=np.float32)
        logits[0, [2, 5, 7]] = [3.0, 2.0, 1.0]
        r = route(logits, RouterConfig(n_experts=8, top_k=3))
        assert list(r.indices[0]) == [2, 5, 7]

    def test_weights_sorted_descending(self):
        rng = np.random.default_rng(0)
        r = route(rng.standard_normal((10, 16)), _cfg())
        assert np.all(np.diff(r.weights, axis=1) <= 1e-7)

    def test_weights_normalized(self):
        rng = np.random.default_rng(1)
        r = route(rng.standard_normal((5, 16)), _cfg())
        assert np.allclose(r.weights.sum(axis=1), 1.0, atol=1e-5)

    def test_unnormalized_weights_are_softmax_scores(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((4, 16)).astype(np.float32)
        r = route(logits, _cfg(normalize_weights=False))
        picked = np.take_along_axis(r.scores, r.indices, axis=1)
        assert np.allclose(r.weights, picked, atol=1e-6)

    def test_routed_scaling(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((4, 16)).astype(np.float32)
        base = route(logits, _cfg())
        scaled = route(logits, _cfg(routed_scaling=2.5))
        assert np.allclose(scaled.weights, base.weights * 2.5, atol=1e-6)

    def test_no_duplicate_experts_per_token(self):
        rng = np.random.default_rng(4)
        r = route(rng.standard_normal((50, 16)), _cfg())
        for row in r.indices:
            assert len(set(row.tolist())) == len(row)

    def test_expert_token_counts(self):
        logits = np.zeros((3, 4), dtype=np.float32)
        logits[:, 0] = 5.0
        r = route(logits, RouterConfig(n_experts=4, top_k=1))
        counts = r.expert_token_counts(4)
        assert counts[0] == 3 and counts.sum() == 3

    def test_active_experts(self):
        logits = np.zeros((2, 4), dtype=np.float32)
        logits[0, 1] = 9.0
        logits[1, 3] = 9.0
        r = route(logits, RouterConfig(n_experts=4, top_k=1))
        assert list(r.active_experts()) == [1, 3]


class TestGroupedTopK:
    def test_respects_group_selection(self):
        # 8 experts in 4 groups of 2; only the best 2 groups may contribute.
        logits = np.array([[10.0, 9.0, 8.0, 7.0, 0.0, 0.0, 0.0, 0.0]],
                          dtype=np.float32)
        cfg = RouterConfig(n_experts=8, top_k=4, n_groups=4, top_k_groups=2)
        r = route(logits, cfg)
        assert set(r.indices[0].tolist()) == {0, 1, 2, 3}

    def test_excluded_group_never_selected(self):
        rng = np.random.default_rng(5)
        cfg = RouterConfig(n_experts=16, top_k=4, n_groups=4, top_k_groups=2)
        for _ in range(20):
            logits = rng.standard_normal((1, 16)).astype(np.float32)
            r = route(logits, cfg)
            groups = set(int(e) // 4 for e in r.indices[0])
            assert len(groups) <= 2

    def test_deepseek_v3_shape(self):
        """256 experts, top-8, 8 groups with top-4 group selection."""
        rng = np.random.default_rng(6)
        cfg = RouterConfig(n_experts=256, top_k=8, n_groups=8, top_k_groups=4)
        r = route(rng.standard_normal((3, 256)), cfg)
        assert r.indices.shape == (3, 8)


class TestValidation:
    def test_bad_top_k(self):
        with pytest.raises(ConfigError):
            RouterConfig(n_experts=4, top_k=5)

    def test_bad_groups(self):
        with pytest.raises(ConfigError):
            RouterConfig(n_experts=10, top_k=2, n_groups=3)

    def test_top_k_unsatisfiable_within_groups(self):
        with pytest.raises(ConfigError):
            RouterConfig(n_experts=8, top_k=5, n_groups=4, top_k_groups=2)

    def test_bad_logits_shape(self):
        with pytest.raises(ConfigError):
            route(np.zeros((2, 5)), _cfg())


class TestSyntheticLogits:
    def test_balanced_loads_roughly_uniform(self):
        rng = np.random.default_rng(7)
        cfg = RouterConfig(n_experts=32, top_k=4)
        logits = balanced_synthetic_logits(2000, cfg, rng)
        counts = route(logits, cfg).expert_token_counts(32)
        expected = 2000 * 4 / 32
        assert counts.min() > expected * 0.5
        assert counts.max() < expected * 1.6

    def test_skewed_creates_hot_experts(self):
        rng = np.random.default_rng(8)
        cfg = RouterConfig(n_experts=32, top_k=4)
        logits = skewed_synthetic_logits(2000, cfg, rng, hot_fraction=0.1)
        counts = route(logits, cfg).expert_token_counts(32)
        assert counts.max() > 3 * np.median(counts)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 20), st.integers(1, 8), st.integers(0, 2**31 - 1))
def test_property_topk_indices_valid(tokens, k, seed):
    rng = np.random.default_rng(seed)
    cfg = RouterConfig(n_experts=8, top_k=min(k, 8))
    r = route(rng.standard_normal((tokens, 8)), cfg)
    assert r.indices.min() >= 0 and r.indices.max() < 8
    assert r.indices.shape == (tokens, cfg.top_k)
    assert np.all(r.weights >= 0)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 30), st.integers(0, 2**31 - 1))
def test_property_token_counts_sum(tokens, seed):
    rng = np.random.default_rng(seed)
    cfg = RouterConfig(n_experts=16, top_k=4)
    r = route(rng.standard_normal((tokens, 16)), cfg)
    assert r.expert_token_counts(16).sum() == tokens * 4
