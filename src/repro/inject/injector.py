"""The module injector: walk the model tree and substitute matches.

During initialization the framework walks the model tree; whenever a module
satisfies a rule's match clause it is replaced by the rule's class
(constructed from the original module so weights carry over), and traversal
continues recursively through the *new* submodules.  The procedure adds no
runtime overhead beyond construction and leaves the model's public
interface unchanged (Section 5).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import InjectionError
from ..model.modules import Module
from .rules import InjectionRule

# Registry of injectable operator classes, keyed by the names rule files
# use (e.g. "operators.experts.FusedMoE").  Dotted paths not found here
# fall back to a real import.
_REGISTRY: dict[str, type] = {}


def register_operator(name: str) -> Callable[[type], type]:
    """Class decorator: expose a replacement operator to rule files."""

    def deco(cls: type) -> type:
        _REGISTRY[name] = cls
        _REGISTRY[cls.__name__] = cls
        return cls

    return deco


def resolve_class(ref: str) -> type:
    """Resolve a replace-clause class reference to a Python class."""
    if ref in _REGISTRY:
        return _REGISTRY[ref]
    if "." in ref:
        module_path, cls_name = ref.rsplit(".", 1)
        try:
            mod = importlib.import_module(module_path)
            return getattr(mod, cls_name)
        except (ImportError, AttributeError):
            pass
    raise InjectionError(f"cannot resolve replacement class {ref!r}")


@dataclass
class InjectionReport:
    """What the injector did: dotted name -> replacement class name."""

    replacements: dict[str, str] = field(default_factory=dict)

    def count(self) -> int:
        return len(self.replacements)


def build_replacement(rule: InjectionRule, original: Module) -> Module:
    """Construct the replacement module from the original.

    Replacement classes provide ``from_module(original, **kwargs)`` (the
    preferred protocol, letting them repack weights); otherwise they are
    called as ``cls(original, **kwargs)``.
    """
    cls = resolve_class(rule.replace.class_ref)
    kwargs = dict(rule.replace.kwargs)
    if hasattr(cls, "from_module"):
        new = cls.from_module(original, **kwargs)
    else:
        new = cls(original, **kwargs)
    if not isinstance(new, Module):
        raise InjectionError(
            f"replacement {rule.replace.class_ref!r} did not produce a Module"
        )
    if rule.replace.device is not None:
        object.__setattr__(new, "device", rule.replace.device)
    return new


def inject(model: Module, rules: list[InjectionRule],
           report: Optional[InjectionReport] = None) -> InjectionReport:
    """Apply rules to ``model`` in place; first matching rule wins.

    The root module itself is never replaced (only descendants), matching
    the framework's semantics of editing a HuggingFace model in place.
    """
    if report is None:
        report = InjectionReport()
    _walk(model, "", rules, report)
    return report


def _walk(parent: Module, prefix: str, rules: list[InjectionRule],
          report: InjectionReport) -> None:
    for child_name, child in list(parent.named_children()):
        dotted = f"{prefix}.{child_name}" if prefix else child_name
        replaced = False
        for rule in rules:
            if rule.match.matches(dotted, child):
                new = build_replacement(rule, child)
                parent.add_module(child_name, new)
                report.replacements[dotted] = type(new).__name__
                # Traversal continues through the new submodules.
                _walk(new, dotted, rules, report)
                replaced = True
                break
        if not replaced:
            _walk(child, dotted, rules, report)
