"""Attention modules: standard multi-head attention and simplified MLA.

Both support incremental decoding through the caches in
:mod:`repro.model.kvcache`.  Rotary position embeddings give the tiny
trained models real positional structure (needed by the sequence tasks in
the accuracy experiments).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from .kvcache import KVCache, LatentKVCache
from .modules import Linear, Module


def rope(x: np.ndarray, positions: np.ndarray, base: float = 10000.0) -> np.ndarray:
    """Rotary position embedding over the last axis (must be even)."""
    d = x.shape[-1]
    if d % 2 != 0:
        raise ConfigError("RoPE requires an even head dimension")
    half = d // 2
    freqs = base ** (-np.arange(half, dtype=np.float32) / half)
    angles = positions[:, None].astype(np.float32) * freqs[None, :]
    cos = np.cos(angles)
    sin = np.sin(angles)
    # x is (seq, heads, d); broadcast cos/sin over heads.
    x1, x2 = x[..., :half], x[..., half:]
    cos_b = cos[:, None, :]
    sin_b = sin[:, None, :]
    return np.concatenate(
        [x1 * cos_b - x2 * sin_b, x1 * sin_b + x2 * cos_b], axis=-1
    ).astype(np.float32)


def _softmax(x: np.ndarray) -> np.ndarray:
    e = np.exp(x - x.max(axis=-1, keepdims=True))
    return e / e.sum(axis=-1, keepdims=True)


def _attend(q: np.ndarray, k: np.ndarray, v: np.ndarray,
            q_positions: np.ndarray) -> np.ndarray:
    """Causal scaled-dot-product attention.

    ``q``: (new, heads, d); ``k``/``v``: (total, heads, d);
    ``q_positions``: absolute position of each query row.  Query i may only
    attend to keys at positions <= q_positions[i].
    """
    d = q.shape[-1]
    scores = np.einsum("qhd,khd->hqk", q, k) / np.sqrt(d)
    key_pos = np.arange(k.shape[0])
    mask = key_pos[None, :] > q_positions[:, None]          # (new, total)
    scores = np.where(mask[None, :, :], -1e9, scores)
    probs = _softmax(scores)
    return np.einsum("hqk,khd->qhd", probs, v)


class MultiHeadAttention(Module):
    """Standard MHA with RoPE and an incremental KV cache."""

    def __init__(self, hidden: int, n_heads: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if hidden % n_heads != 0:
            raise ConfigError(f"hidden {hidden} not divisible by {n_heads} heads")
        self.hidden = hidden
        self.n_heads = n_heads
        self.head_dim = hidden // n_heads
        if self.head_dim % 2 != 0:
            raise ConfigError("head_dim must be even for RoPE")
        r = rng or np.random.default_rng(0)
        self.wq = Linear(hidden, hidden, rng=r)
        self.wk = Linear(hidden, hidden, rng=r)
        self.wv = Linear(hidden, hidden, rng=r)
        self.wo = Linear(hidden, hidden, rng=r)

    def make_cache(self) -> KVCache:
        return KVCache(self.n_heads, self.head_dim)

    def forward(self, x: np.ndarray, cache: KVCache,
                positions: Optional[np.ndarray] = None) -> np.ndarray:
        """Process ``x`` (new_tokens, hidden), appending to ``cache``."""
        x = np.asarray(x, dtype=np.float32)
        new = x.shape[0]
        if positions is None:
            positions = np.arange(len(cache), len(cache) + new)
        q = self.wq(x).reshape(new, self.n_heads, self.head_dim)
        k = self.wk(x).reshape(new, self.n_heads, self.head_dim)
        v = self.wv(x).reshape(new, self.n_heads, self.head_dim)
        q = rope(q, positions)
        k = rope(k, positions)
        cache.append(k, v)
        out = _attend(q, cache.keys(), cache.values(), positions)
        return self.wo(out.reshape(new, self.hidden))


class MLAAttention(Module):
    """Simplified Multi-head Latent Attention (DeepSeek V2/V3 style).

    Keys and values are reconstructed from a shared low-rank latent
    ``kv_c = x @ w_kv_down`` of dimension ``kv_rank``; only the latent is
    cached, shrinking cache traffic by ``hidden*2/kv_rank``.  (The
    decoupled RoPE key of the real model is folded into the reconstructed
    keys here for simplicity.)
    """

    def __init__(self, hidden: int, n_heads: int, kv_rank: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if hidden % n_heads != 0:
            raise ConfigError(f"hidden {hidden} not divisible by {n_heads} heads")
        self.hidden = hidden
        self.n_heads = n_heads
        self.head_dim = hidden // n_heads
        if self.head_dim % 2 != 0:
            raise ConfigError("head_dim must be even for RoPE")
        self.kv_rank = kv_rank
        r = rng or np.random.default_rng(0)
        self.wq = Linear(hidden, hidden, rng=r)
        self.w_kv_down = Linear(hidden, kv_rank, rng=r)
        self.w_k_up = Linear(kv_rank, hidden, rng=r)
        self.w_v_up = Linear(kv_rank, hidden, rng=r)
        self.wo = Linear(hidden, hidden, rng=r)

    def make_cache(self) -> LatentKVCache:
        return LatentKVCache(self.kv_rank)

    def forward(self, x: np.ndarray, cache: LatentKVCache,
                positions: Optional[np.ndarray] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        new = x.shape[0]
        if positions is None:
            positions = np.arange(len(cache), len(cache) + new)
        q = self.wq(x).reshape(new, self.n_heads, self.head_dim)
        q = rope(q, positions)
        cache.append(self.w_kv_down(x))
        latents = cache.latents()
        total = latents.shape[0]
        k = self.w_k_up(latents).reshape(total, self.n_heads, self.head_dim)
        v = self.w_v_up(latents).reshape(total, self.n_heads, self.head_dim)
        k = rope(k, np.arange(total))
        out = _attend(q, k, v, positions)
        return self.wo(out.reshape(new, self.hidden))
