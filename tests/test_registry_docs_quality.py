"""Repository quality gates: registry/docs consistency, docstring coverage."""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro
from repro.bench.registry import (EXPERIMENTS, artifact_files, bench_files,
                                 experiment)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


class TestExperimentRegistry:
    def test_every_registered_bench_exists(self):
        for e in EXPERIMENTS:
            assert (BENCH_DIR / e.bench_file).is_file(), e.exp_id

    def test_every_bench_file_registered(self):
        on_disk = {p.name for p in BENCH_DIR.glob("test_*.py")}
        assert on_disk == bench_files()

    def test_ids_unique(self):
        ids = [e.exp_id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_lookup(self):
        assert experiment("fig11").paper_ref == "Figure 11"
        with pytest.raises(KeyError):
            experiment("fig99")

    def test_core_figures_covered(self):
        ids = {e.exp_id for e in EXPERIMENTS}
        for required in ("fig3", "fig4", "fig7", "fig10", "fig11", "fig12",
                        "fig13", "fig14", "table1", "table2"):
            assert required in ids

    def test_experiments_md_mentions_every_bench(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        missing = [e.bench_file for e in EXPERIMENTS
                   if e.bench_file not in text]
        assert not missing, f"EXPERIMENTS.md does not mention: {missing}"

    def test_every_artifact_on_disk_registered(self):
        # A benchmark must not emit a BENCH_*.json the registry cannot
        # account for (CI runs the same check against fresh artifacts).
        on_disk = {p.name for p in BENCH_DIR.glob("BENCH_*.json")}
        unregistered = on_disk - artifact_files()
        assert not unregistered, f"unregistered artifacts: {unregistered}"

    def test_registered_artifacts_unique_and_well_formed(self):
        artifacts = [e.artifact for e in EXPERIMENTS if e.artifact]
        assert len(artifacts) == len(set(artifacts))
        for name in artifacts:
            assert name.startswith("BENCH_") and name.endswith(".json")


def _public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" in info.name:
            continue
        yield importlib.import_module(info.name)


class TestDocstringCoverage:
    def test_every_module_has_docstring(self):
        bare = [m.__name__ for m in _public_modules() if not m.__doc__]
        assert not bare, f"modules without docstrings: {bare}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in _public_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_docs_folder_complete(self):
        for doc in ("architecture.md", "calibration.md", "api.md"):
            assert (REPO_ROOT / "docs" / doc).is_file()

    def test_top_level_docs_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            path = REPO_ROOT / doc
            assert path.is_file()
            assert len(path.read_text()) > 1000
