"""Closed-form tests for the pipeline stage-split decode interval model.

``tests/test_multi_gpu_batch_kv.py`` covers the task-graph simulators
(:func:`simulate_pipelined_prefill` / ``_decode``) and the layer-to-stage
assignment; this file locks down the *steady-state interval* model the
continuous-batching scheduler prices decode iterations with
(:func:`stage_works` / :func:`stage_boundary_bytes` /
:func:`interstage_transfer_us` / :func:`staged_interval_us` /
:func:`staged_step_time_us`), plus the :class:`BatchCostModel` pipeline
plumbing built on top of it.
"""

import pytest

from repro.errors import SchedulingError
from repro.hw import paper_testbed
from repro.hw.roofline import pcie_transfer_time_us
from repro.model import DS3, MoETransformer, tiny_config
from repro.sched import (
    DecodeScheduleConfig,
    LaunchMode,
    PipelineConfig,
    batched_step_time_us,
    interstage_transfer_us,
    stage_boundary_bytes,
    stage_works,
    staged_interval_us,
    staged_step_time_us,
)
from repro.sched.workload import DecodeLayerWork
from repro.serving import BatchCostModel, InferenceSession, PipelineStats

MACHINE = paper_testbed("a100")
SCHED = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8)


def _work(attn=40.0, shared=25.0, cpu=300.0, xfer=64e3):
    return DecodeLayerWork(gpu_attn_us=attn, gpu_shared_us=shared,
                           cpu_routed_us=cpu, transfer_bytes=xfer,
                           n_gpu_kernels=12)


def _works(n_layers=8, **kw):
    return [_work(**kw) for _ in range(n_layers)]


class TestStageSplit:
    def test_partition_preserves_order_and_layers(self):
        works = [_work(attn=float(k)) for k in range(8)]
        stages = stage_works(works, PipelineConfig(2))
        assert len(stages) == 2
        assert stages[0] + stages[1] == works
        assert [w.gpu_attn_us for w in stages[0]] == [0.0, 1.0, 2.0, 3.0]

    def test_more_stages_than_layers_leaves_trailing_empty(self):
        stages = stage_works(_works(2), PipelineConfig(4))
        assert [len(s) for s in stages] == [1, 1, 0, 0]

    def test_empty_works_raises(self):
        with pytest.raises(SchedulingError):
            stage_works([], PipelineConfig(2))

    def test_boundary_count_matches_nonempty_stages(self):
        works = _works(8)
        for n_stages in (1, 2, 4, 8):
            boundary = stage_boundary_bytes(works, PipelineConfig(n_stages))
            nonempty = sum(
                1 for s in stage_works(works, PipelineConfig(n_stages)) if s)
            assert len(boundary) == nonempty - 1

    def test_boundary_bytes_are_the_boundary_layers(self):
        works = [_work(xfer=float(1000 + k)) for k in range(8)]
        # 2 stages over 8 layers: the only boundary layer is index 4.
        assert stage_boundary_bytes(works, PipelineConfig(2)) == (1004.0,)

    def test_single_stage_has_no_boundaries(self):
        assert stage_boundary_bytes(_works(), PipelineConfig(1)) == ()
        assert interstage_transfer_us(
            _works(), PipelineConfig(1), MACHINE.interconnect) == 0.0

    def test_transfer_pricing_matches_roofline(self):
        works = _works(8, xfer=256e3)
        cfg = PipelineConfig(4)
        expected = sum(
            pcie_transfer_time_us(b, MACHINE.interconnect)
            for b in stage_boundary_bytes(works, cfg))
        assert interstage_transfer_us(
            works, cfg, MACHINE.interconnect) == expected
        assert expected > 0.0


class TestStagedInterval:
    def test_one_stage_is_exactly_the_batched_step(self):
        works = _works()
        serial = batched_step_time_us(works, SCHED, MACHINE)
        assert staged_interval_us(
            works, SCHED, MACHINE, PipelineConfig(1)) == serial
        assert staged_step_time_us(
            works, SCHED, MACHINE, PipelineConfig(1)) == serial

    def test_single_nonempty_stage_collapses_to_serial(self):
        # 1 layer over 2 stages: only stage 0 holds work.
        works = _works(1)
        serial = batched_step_time_us(works, SCHED, MACHINE)
        assert staged_interval_us(
            works, SCHED, MACHINE, PipelineConfig(2)) == serial

    def test_interval_never_beats_serial(self):
        works = _works()
        serial = batched_step_time_us(works, SCHED, MACHINE)
        for n_stages in (2, 3, 4, 8):
            assert staged_interval_us(
                works, SCHED, MACHINE, PipelineConfig(n_stages)) <= serial

    def test_gpu_bound_interval_is_the_slowest_stage(self):
        works = _works(cpu=0.0)
        cfg = PipelineConfig(2)
        serial = batched_step_time_us(works, SCHED, MACHINE)
        slowest = max(
            batched_step_time_us(s, SCHED, MACHINE)
            for s in stage_works(works, cfg) if s)
        got = staged_interval_us(works, SCHED, MACHINE, cfg)
        assert got == min(serial, slowest)
        # With no CPU floor a 2-way split genuinely runs faster.
        assert got < serial

    def test_cpu_floor_serializes_across_stages(self):
        # Routed experts dwarf GPU work: the shared CPU pool floors the
        # interval at the summed expert time, so splitting buys nothing.
        works = _works(attn=1.0, shared=1.0, cpu=500.0, xfer=1e3)
        cfg = PipelineConfig(4)
        floor = sum(w.cpu_routed_us for w in works)
        got = staged_interval_us(works, SCHED, MACHINE, cfg)
        assert got >= floor
        assert got <= batched_step_time_us(works, SCHED, MACHINE)

    def test_step_time_is_interval_plus_handoffs(self):
        works = _works()
        for n_stages in (2, 4):
            cfg = PipelineConfig(n_stages)
            assert staged_step_time_us(works, SCHED, MACHINE, cfg) == (
                staged_interval_us(works, SCHED, MACHINE, cfg)
                + interstage_transfer_us(works, cfg, MACHINE.interconnect))

    def test_interval_closed_form(self):
        # min(serial, max(slowest stage, shared-CPU floor)), exactly.
        works = _works(attn=1.0, shared=1.0, cpu=500.0, xfer=1e6)
        cfg = PipelineConfig(2)
        serial = batched_step_time_us(works, SCHED, MACHINE)
        slowest = max(batched_step_time_us(s, SCHED, MACHINE)
                      for s in stage_works(works, cfg) if s)
        floor = sum(w.cpu_routed_us for w in works)
        assert staged_interval_us(works, SCHED, MACHINE, cfg) == \
            min(serial, max(slowest, floor))


class TestBatchCostModelPipeline:
    @pytest.fixture(scope="class")
    def session(self):
        return InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)

    def test_single_stage_factors_are_identity(self, session):
        model = BatchCostModel(session)
        assert model.pipeline_factors([64, 64]) == (1.0, ())
        assert model.staged_decode_step_us([64, 64]) == \
            model.decode_step_us([64, 64])

    def test_factors_shape_and_memoization(self, session):
        model = BatchCostModel(session, pipeline_stages=2)
        ratio, boundary = model.pipeline_factors([64] * 4)
        assert 0.0 < ratio <= 1.0
        assert len(boundary) == 1
        # Same step shape -> the memoized tuple, not a re-simulation.
        assert model.pipeline_factors([64] * 4) is \
            model.pipeline_factors([64] * 4)

    def test_staged_decode_prices_ratio_plus_handoffs(self, session):
        model = BatchCostModel(session, pipeline_stages=2)
        ctx = [64] * 4
        ratio, boundary = model.pipeline_factors(ctx)
        link = session.costs.machine.interconnect
        expected = (model.decode_step_us(ctx) * ratio
                    + sum(pcie_transfer_time_us(b, link) for b in boundary))
        assert model.staged_decode_step_us(ctx) == expected

    def test_staged_decode_matches_direct_stage_pricing(self, session):
        # The ratio decomposition must be exact, not approximate: pricing
        # through pipeline_factors equals pricing the staged step
        # directly from the same per-layer works.
        model = BatchCostModel(session, pipeline_stages=2)
        ctx = [64] * 4
        via_ratio = model.staged_decode_step_us(ctx)
        key = model._key(ctx)
        model.decode_step_us(ctx)
        direct = staged_step_time_us(
            model._works[key], model._schedule_config(),
            session.costs.machine, PipelineConfig(2))
        assert via_ratio == direct


class TestPipelineStats:
    def test_summary_keys_and_speedup(self):
        stats = PipelineStats(n_stages=2, staged_iterations=10,
                              serial_us=2000.0, staged_us=1600.0,
                              interstage_transfer_us=40.0)
        s = stats.summary()
        assert s["pipeline_stages"] == 2
        assert s["pipeline_iterations"] == 10
        assert s["pipeline_step_speedup"] == pytest.approx(2000.0 / 1600.0)

    def test_empty_stats_speedup_is_neutral(self):
        assert PipelineStats(n_stages=2).summary()[
            "pipeline_step_speedup"] == 1.0
