"""Unit tests for the fleet router: policies, faults, and accounting.

The fleet *bench* (``benchmarks/test_fleet_serving.py``) scores routing
policies on a realistic workload; this file pins the mechanics with
small deterministic workloads: policy selection tables, affinity
stickiness, kill resubmission (nothing lost, nothing double-counted),
drain semantics, shed accounting, and the stats plumbing.
"""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan, ReplicaFault
from repro.model import QW2, MoETransformer, tiny_config
from repro.serving import (
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    FleetConfig,
    FleetRouter,
    GenerationRequest,
    InferenceSession,
    Priority,
    ServingSLO,
    TimedRequest,
)

SESSION = InferenceSession(MoETransformer(tiny_config("tiny-qw")), QW2)


def make_server(**sched):
    """A small, fast replica for unit workloads."""
    cfg = dict(kv_budget_tokens=2048, max_batch_size=4)
    cfg.update(sched)
    return ContinuousBatchingServer(SESSION, BatchSchedulerConfig(**cfg))


def req(arrival_us, prompt_len=32, max_new=2, session_id=None,
        priority=Priority.STANDARD):
    """One timed request with a deterministic prompt."""
    prompt = [(i * 7 + prompt_len) % 61 + 1 for i in range(prompt_len)]
    return TimedRequest(arrival_us=arrival_us,
                        request=GenerationRequest(prompt,
                                                  max_new_tokens=max_new),
                        priority=priority, session_id=session_id)


def fleet(n=2, policy="least-loaded", plan=None, **cfg):
    return FleetRouter(make_server,
                       FleetConfig(n_replicas=n, policy=policy, **cfg),
                       fault_plan=plan)


class TestConfigValidation:
    def test_bad_replica_count(self):
        with pytest.raises(ConfigError):
            FleetConfig(n_replicas=0)

    def test_bad_policy(self):
        with pytest.raises(ConfigError):
            FleetConfig(policy="random")

    def test_bad_on_kill(self):
        with pytest.raises(ConfigError):
            FleetConfig(on_kill="retry")

    def test_negative_resubmit_delay(self):
        with pytest.raises(ConfigError):
            FleetConfig(resubmit_delay_us=-1.0)

    def test_fault_targets_missing_replica(self):
        plan = FaultPlan(replicas=(ReplicaFault(1e6, 2e6, replica=5),))
        with pytest.raises(ConfigError):
            fleet(n=2, plan=plan)

    def test_replica_fault_validation(self):
        with pytest.raises(ConfigError):
            ReplicaFault(1e6, 2e6, replica=-1)
        with pytest.raises(ConfigError):
            ReplicaFault(1e6, 2e6, kind="pause")

    def test_empty_workload(self):
        with pytest.raises(ConfigError):
            fleet().replay([])


class TestRoutingPolicies:
    def test_round_robin_rotates(self):
        stats = fleet(n=2, policy="round-robin").replay(
            [req(i * 1e5) for i in range(4)])
        assert stats.routed == [2, 2]
        assert [a[3] for a in stats.assignments] == [0, 1, 0, 1]

    def test_least_loaded_avoids_backlog(self):
        # Request 1 loads replica 0; request 2 lands while it is still
        # estimated busy, so the router picks the idle replica 1.
        stats = fleet(n=2).replay([req(0.0), req(1e4)])
        assert [a[3] for a in stats.assignments] == [0, 1]

    def test_least_loaded_idle_ties_spread(self):
        # Simultaneous-ish arrivals on an idle fleet spread by
        # assignment count instead of all hitting replica 0.
        stats = fleet(n=4).replay(
            [req(0.0), req(0.0), req(0.0), req(0.0)])
        assert sorted(stats.routed) == [1, 1, 1, 1]

    def test_affinity_sticks_across_turns(self):
        wl = [req(0.0, session_id="a"),
              req(1e5, session_id="b"),
              req(2e6, session_id="a"),
              req(2.5e6, session_id="b"),
              req(4e6, session_id="a")]
        stats = fleet(n=2, policy="session-affinity").replay(wl)
        by_sid = {}
        for t_us, sid, _prio, replica in stats.assignments:
            by_sid.setdefault(sid, set()).add(replica)
        assert all(len(replicas) == 1 for replicas in by_sid.values())
        assert by_sid["a"] != by_sid["b"]
        assert stats.affinity_hits == 3        # follow-up turns
        assert stats.affinity_rebalances == 0

    def test_affinity_untagged_falls_back(self):
        stats = fleet(n=2, policy="session-affinity").replay(
            [req(0.0), req(1e4)])
        assert stats.affinity_hits == 0
        assert sum(stats.routed) == 2

    def test_affinity_rebalances_around_dead_replica(self):
        # Session pinned to replica 0; its second turn arrives while
        # replica 0 is killed, so the session remaps (one rebalance) and
        # stays on the new replica afterwards.
        plan = FaultPlan(replicas=(ReplicaFault(1e6, 4e6, replica=0),))
        wl = [req(0.0, session_id="a"),
              req(2e6, session_id="a"),
              req(5e6, session_id="a")]
        stats = fleet(n=2, policy="session-affinity", plan=plan).replay(wl)
        assert stats.affinity_rebalances == 1
        assert stats.assignments[1][3] == 1
        assert stats.assignments[2][3] == 1    # sticky on the new home

    def test_priority_spill_protects_fast_lane(self):
        wl = [req(0.0, priority=Priority.BATCH),
              req(1e4, priority=Priority.BATCH),
              req(2e4, priority=Priority.INTERACTIVE)]
        stats = fleet(n=2, policy="priority-spill").replay(wl)
        batch = [a[3] for a in stats.assignments[:2]]
        interactive = stats.assignments[2][3]
        # Batch traffic spilled away from the protected replica; the
        # interactive arrival takes the least-loaded (protected) one.
        assert stats.spill_routed == 2
        assert interactive not in batch or len(set(batch)) == 1


class TestKillSemantics:
    KILL = FaultPlan(replicas=(ReplicaFault(2e5, 3e6, replica=0),))

    def test_resubmit_loses_nothing(self):
        # The request routed to replica 0 is in flight when the kill
        # lands: it must resubmit and finish elsewhere, exactly once.
        wl = [req(0.0), req(1e4)]
        stats = fleet(n=2, plan=self.KILL).replay(wl)
        assert stats.kills == 1
        assert stats.killed_in_flight == 1
        assert stats.resubmitted == 1
        assert stats.n_requests == 2           # nothing lost
        assert stats.n_shed == 0
        assert len(stats.timings) == 2         # nothing double-counted

    def test_resubmit_delay_shifts_arrival(self):
        stats = fleet(n=2, plan=self.KILL,
                      resubmit_delay_us=5e4).replay([req(0.0), req(1e4)])
        resubmitted = [t for t in stats.timings
                       if t.arrival_us == 2e5 + 5e4]
        assert len(resubmitted) == 1

    def test_shed_on_kill_counts_against_goodput(self):
        stats = fleet(n=2, plan=self.KILL, on_kill="shed").replay(
            [req(0.0), req(1e4)])
        assert stats.shed_on_kill == 1
        assert stats.n_shed == 1
        assert stats.n_requests == 1
        good = stats.goodput(ServingSLO(ttft_ms=1e6, tpot_ms=1e6))
        assert good["attainment"] == pytest.approx(0.5)

    def test_killed_replica_restarts_cold(self):
        # Work routed to replica 0 after the window runs on a fresh
        # server: two epochs, both serving.
        wl = [req(0.0), req(1e4), req(4e6), req(4.01e6)]
        stats = fleet(n=2, plan=self.KILL).replay(wl)
        assert stats.n_requests == 4
        assert len(stats.epoch_stats) >= 2


class TestDrainSemantics:
    DRAIN = FaultPlan(
        replicas=(ReplicaFault(1e5, 3e6, replica=0, kind="drain"),))

    def test_drain_completes_in_flight_work(self):
        # Replica 0 takes a request, then drains: the request still
        # finishes on replica 0 -- no casualties, no resubmission.
        wl = [req(0.0), req(2e5)]
        stats = fleet(n=2, plan=self.DRAIN).replay(wl)
        assert stats.drains == 1
        assert stats.kills == 0
        assert stats.resubmitted == 0
        assert stats.n_requests == 2
        assert stats.routed == [1, 1]          # drained replica skipped
        assert stats.assignments[1][3] == 1

    def test_all_draining_defers_arrivals(self):
        plan = FaultPlan(
            replicas=(ReplicaFault(1e5, 2e6, replica=0, kind="drain"),))
        wl = [req(2e5)]
        stats = fleet(n=1, plan=plan).replay(wl)
        assert stats.deferred_arrivals == 1
        assert stats.n_requests == 1
        # The arrival waited at the router until the window closed.
        assert stats.timings[0].arrival_us == 2e6


class TestFleetStats:
    def test_summary_carries_fleet_counters(self):
        stats = fleet(n=2, policy="round-robin").replay(
            [req(0.0), req(1e5)])
        s = stats.summary()
        assert s["fleet_replicas"] == 2.0
        assert s["fleet_kills"] == 0.0
        assert s["fleet_routed_imbalance"] == 1.0
        assert s["requests"] == 2.0

    def test_idle_replica_summary_is_zeroed(self):
        stats = fleet(n=2).replay([req(0.0)])
        assert stats.replica_summary(1) == {"requests": 0.0}
        assert stats.replica_summary(0)["requests"] == 1.0

    def test_reuse_fraction_without_prefix_cache(self):
        stats = fleet(n=2).replay([req(0.0), req(1e5)])
        assert stats.prefix_reuse_fraction() == 0.0

    def test_merged_pipeline_accounting(self):
        # Staged replicas keep their pipeline counters through the
        # multi-epoch merge.
        router = FleetRouter(
            lambda: make_server(pipeline_stages=2),
            FleetConfig(n_replicas=2, policy="round-robin"))
        s = router.replay([req(0.0), req(1e5)]).summary()
        assert s["pipeline_stages"] == 2.0
        assert s["pipeline_iterations"] > 0
