"""Iteration-level continuous batching over the discrete-event simulator.

The paper's :class:`~repro.serving.server.LocalServer` is strictly FIFO at
batch size 1: a request queues until the previous generation finishes.
:class:`ContinuousBatchingServer` instead recomposes the running batch at
every decode iteration (Orca-style):

- an **admission queue** holds arrived requests; at each iteration
  boundary the scheduler admits as many as fit the KV **token budget**
  (tracked as page reservations against a shared
  :class:`~repro.model.paged.PagedKVPool`) and the batch-size cap;
- newly admitted requests are **prefilled together** in one batched pass
  -- simulated prefill cost is dominated by fixed per-pass overheads, so
  co-admission amortizes it the way real engines batch prompt tokens;
- each **decode iteration** generates one token for every in-flight
  request.  The step is priced by
  :func:`~repro.sched.workload.batched_decode_layer_work`: per-expert
  token counts are aggregated across the batch before ARI kernel
  dispatch, so batching visibly moves the AVX-512/AMX crossover (Fig. 7)
  and CPU expert GEMMs are coalesced per expert;
- finished requests free their KV pages immediately, unblocking the next
  admission.

Prefill is scheduled two ways.  By default it runs as its own batched
pass at the iteration boundary, stalling in-flight decodes for its
duration -- the classic continuous-batching trade reflected in the TPOT
tail.  With ``BatchSchedulerConfig(prefill_chunk_tokens=...)`` the
scheduler instead splits each admitted prompt into fixed token-budget
chunks and co-schedules one chunk per iteration *alongside* the decode
batch (Sarathi-style hybrid iterations), so decodes never stall for a
full prompt.  Mixed iterations are priced at the per-expert token-count
level (:func:`~repro.sched.workload.hybrid_chunk_layer_work`): the
decode batch already streams its active experts' weights from DRAM every
step, so chunk tokens routed to those experts coalesce onto GEMMs that
are running anyway and only the *marginal* expert work is billed --
that piggybacking is what makes chunking affordable under the paper's
weight-streaming-dominated CPU cost model.  A chunk budget at least as
large as every co-admitted fresh prompt degenerates to the monolithic
pass bit-for-bit.  Token *values* stay real: each request's tokens come
from the functional model via the session, exactly as in the batch-1
server.

With a :class:`~repro.serving.priority.PriorityConfig` attached, the
admission queue becomes priority-aware: candidates (arrived requests plus
previously preempted ones awaiting resume) are ranked by *effective*
priority -- the request's class improved one step per ``aging_us`` of
waiting, so BATCH work can never be starved permanently -- and when a
higher-class candidate is blocked by the batch cap (the SLO-risk signal)
or by KV-pool pressure, the scheduler may **preempt** the
lowest-effective-priority in-flight victim.  Eviction uses one of two
mechanisms, chosen per victim by a cost model: **swap** moves the
victim's KV pages to host memory over PCIe (priced via
:func:`~repro.sched.decode.kv_swap_transfer_us` on the possibly
fault-degraded link) and re-uploads them on resume; **recompute** frees
the pages outright and re-prefills the victim's context (prompt plus
every token already emitted) through the ordinary chunked-prefill path
when it resumes.  A single-priority workload under a priority config --
or no config at all -- reproduces the FIFO scheduler bit-for-bit:
candidate ranking degenerates to arrival order and no preemption trigger
can fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from ..errors import ConfigError, KVCacheError
from ..core.engine import batched_decode_works, hybrid_chunk_works, run_prefill
from ..faults.injector import (
    IDENTITY_PERTURBATION,
    FaultInjector,
    StepPerturbation,
)
from ..hw.roofline import overlapped_transfer_stall_us, pcie_transfer_time_us
from ..hw.spec import InterconnectSpec
from ..kernels.backend import KernelBackend, resolve_backend
from ..model.paged import DEFAULT_PAGE_TOKENS, PagedKVPool
from ..moe.expert_cache import (
    CacheStepResult,
    ExpertCacheConfig,
    ExpertCacheManager,
)
from ..sched.cuda_graph import GraphCache, GraphCacheConfig
from ..sched.decode import (
    DecodeScheduleConfig,
    batched_step_time_us,
    cache_aware_step_time_us,
    kv_swap_transfer_us,
)
from ..sched.kv_offload import kv_page_transfer_us
from ..sched.multi_gpu import (
    PipelineConfig,
    stage_boundary_bytes,
    staged_interval_us,
)
from ..sched.workload import (
    BatchedDispatchSummary,
    DecodeLayerWork,
    ExpertGemmDispatch,
    HybridChunkWork,
    apply_expert_cache,
    chunk_only_work,
    kv_token_bytes,
    merge_hybrid_work,
)
from .controller import ControllerConfig, ControllerStats, OnlineController
from .metrics import (
    BatchTimeline,
    ExpertCacheTimeline,
    FaultStats,
    GraphStats,
    PipelineStats,
    PreemptionStats,
    RequestTiming,
    ServingStats,
    SessionStats,
)
from .prefix_cache import (
    KVTierConfig,
    MatchProbe,
    PrefixCacheConfig,
    RadixPrefixCache,
)
from .priority import PriorityConfig
from .resilience import DegradationTracker, ResilienceConfig, RetryState
from .server import TimedRequest
from .session import InferenceSession

# Synchronous re-upload attempts the *naive* (no-ResilienceConfig) server
# makes per failed expert upload, each stalling the whole batch for the
# full PCIe transfer on the degraded link.
NAIVE_UPLOAD_ATTEMPTS = 8

# Per-expert token counts of the representative MoE layer for one decode
# iteration; lets benchmarks inject non-stationary routing into the server.
RoutingStream = Callable[[int, int], np.ndarray]   # (iteration, batch) -> counts


@dataclass(frozen=True)
class BatchSchedulerConfig:
    """Policy knobs of the iteration-level scheduler.

    ``kv_budget_tokens`` is the shared KV/VRAM allowance backing every
    concurrent request; admission reserves ``prompt + max_new_tokens``
    worth of pages up front so an admitted request can never be evicted
    mid-flight.  ``max_batch_size`` caps the decode batch regardless of
    budget.

    ``prefill_chunk_tokens`` enables chunked prefill: each iteration
    co-schedules at most that many prompt tokens alongside the decode
    batch (``None`` keeps the monolithic boundary pass).  A fresh
    admission wave whose total prompt tokens fit the budget still runs
    as one monolithic pass, so a budget of ``kv_budget_tokens`` is
    guaranteed to reproduce the un-chunked scheduler exactly.
    ``chunk_policy`` arbitrates the shared iteration token budget:
    ``"decode-priority"`` charges each decoding request's token against
    the chunk budget first (prefill gets the remainder, possibly zero);
    ``"prefill-priority"`` always grants prefill the full budget.

    ``graph_cache`` attaches a CUDA-graph capture cache
    (:class:`~repro.sched.cuda_graph.GraphCacheConfig`): decode batches
    pad up to capture buckets, first use of a step shape pays a capture
    stall, and ``graph_*`` counters land in the stats.  ``None`` keeps the
    legacy free-replay pricing bit-for-bit.  ``gemm_dispatch`` selects
    how GPU-resident (expert-cache-hit) expert GEMMs are priced:
    ``"legacy"`` (single undifferentiated blob, the pre-graph goldens),
    ``"per-expert"`` (one launch per hit expert), ``"grouped"`` (single
    grouped kernel with layout-aware streaming), or ``"auto"`` (the cost
    model prices both arms and picks the cheaper per cache outcome).

    ``pipeline_stages`` shards the layer stack across that many GPUs
    (contiguous balanced stages, :class:`repro.sched.PipelineConfig`):
    decode iterations price as the steady-state pipelined interval plus
    stage-boundary activation handoffs over PCIe, composing with the
    expert cache, chunked prefill, graph capture, and fault
    perturbations.  ``1`` (the default) keeps the single-GPU pricing
    bit-for-bit.

    ``backend`` names a registered
    :class:`~repro.kernels.backend.KernelBackend` (or passes one
    directly): the cost model prices every step with that backend's
    kernel lanes, ARI crossover, and launch constants.  ``None`` keeps
    the system profile's kernels, which the default
    ``"kt-amx-avx512"`` backend reproduces bit-for-bit -- switching
    backends is pure configuration.  Unknown names raise
    :class:`ValueError` at construction time listing the registered
    choices.
    """

    kv_budget_tokens: int = 8192
    max_batch_size: int = 32
    page_tokens: int = DEFAULT_PAGE_TOKENS
    ari_threshold: int | None = None   # None -> backend's calibrated crossover
    prefill_chunk_tokens: int | None = None   # None -> monolithic prefill
    chunk_policy: str = "decode-priority"
    graph_cache: GraphCacheConfig | None = None   # None -> free replay
    gemm_dispatch: str = "legacy"
    pipeline_stages: int = 1
    backend: "str | KernelBackend | None" = None   # None -> system kernels

    def __post_init__(self) -> None:
        if self.kv_budget_tokens <= 0:
            raise ConfigError("kv_budget_tokens must be positive")
        if self.max_batch_size <= 0:
            raise ConfigError("max_batch_size must be positive")
        if self.page_tokens <= 0:
            raise ConfigError("page_tokens must be positive")
        if (self.prefill_chunk_tokens is not None
                and self.prefill_chunk_tokens <= 0):
            raise ConfigError("prefill_chunk_tokens must be positive")
        if self.chunk_policy not in ("decode-priority", "prefill-priority"):
            raise ConfigError(
                f"unknown chunk_policy {self.chunk_policy!r}; expected "
                "'decode-priority' or 'prefill-priority'")
        if self.gemm_dispatch not in ("legacy", "per-expert", "grouped",
                                      "auto"):
            raise ConfigError(
                f"unknown gemm_dispatch {self.gemm_dispatch!r}; expected "
                "'legacy', 'per-expert', 'grouped' or 'auto'")
        if self.pipeline_stages <= 0:
            raise ConfigError("pipeline_stages must be positive")
        # Fail fast on typo'd backend names: raises ValueError listing
        # the registered backends.
        resolve_backend(self.backend)


class BatchCostModel:
    """Caches simulated batched prefill/decode step costs.

    Decode steps are keyed by ``(batch_size, context bucket)``; each entry
    runs the full task-graph simulator once via
    :func:`~repro.sched.decode.batched_step_time_us` and keeps the
    :class:`~repro.sched.workload.BatchedDispatchSummary` for
    observability.  Batched prefill cost is keyed by the total prompt
    tokens of the co-admitted requests, bucketed like the session's
    :class:`~repro.serving.session.PhaseCostModel` -- but returning the
    whole-pass cost (prefill is overhead-dominated, so cost is flat
    across a bucket, not proportional to tokens).
    """

    CTX_BUCKETS = (64, 256, 1024, 4096)
    PREFILL_BUCKETS = (32, 128, 512, 2048, 8192)
    CHUNK_BUCKETS = (16, 32, 64, 128, 256, 512, 1024, 2048)

    HIT_RATE_BUCKETS = 20        # cached-step pricing quantizes hit rate
    CONTIG_BUCKETS = 8           # dispatch pricing quantizes layout contiguity

    def __init__(self, session: InferenceSession,
                 ari_threshold: int | None = None,
                 gemm_dispatch: str = "legacy",
                 pipeline_stages: int = 1,
                 backend: "str | KernelBackend | None" = None) -> None:
        if gemm_dispatch not in ("legacy", "per-expert", "grouped", "auto"):
            raise ConfigError(
                f"unknown gemm_dispatch {gemm_dispatch!r}")
        if pipeline_stages <= 0:
            raise ConfigError("pipeline_stages must be positive")
        self.session = session
        self.backend = resolve_backend(backend)
        # The backend's launch constants apply to every priced step; with
        # no backend (or one that overrides nothing, like the default)
        # this is the session's machine spec object itself, keeping the
        # float paths bit-identical.
        self.machine = (self.backend.apply_launch(session.costs.machine)
                        if self.backend is not None
                        else session.costs.machine)
        self.ari_threshold = ari_threshold
        self.gemm_dispatch = gemm_dispatch
        self.pipeline_stages = pipeline_stages
        self._pipeline = (PipelineConfig(pipeline_stages)
                          if pipeline_stages > 1 else None)
        # (stage ratio, boundary activation bytes) per step-shape memo key.
        self._pipeline_factors: dict[tuple, tuple[float, tuple[float, ...]]]\
            = {}
        self._step: dict[tuple[int, int], float] = {}
        self._summaries: dict[tuple[int, int], BatchedDispatchSummary] = {}
        self._works: dict[tuple[int, int], list[DecodeLayerWork]] = {}
        self._cached_step: dict[tuple, float] = {}
        self._cached_works: dict[tuple, list[DecodeLayerWork]] = {}
        # "auto" dispatch decisions, keyed by (shape, cache outcome,
        # contiguity bucket) -- both arms are priced once, then reused.
        self._dispatch_choice: dict[tuple, str] = {}
        self._prefill: dict[int, float] = {}
        # Fault-perturbed variants, additionally keyed by the
        # perturbation's price_key (piecewise-constant per fault window).
        self._perturbed: dict[tuple, float] = {}
        self._cached_pert: dict[tuple, float] = {}
        # Hybrid (decode + prefill-chunk) iteration pricing: chunk layer
        # works keyed by (batch size, chunk bucket); merged steps by the
        # decode key plus the chunk bucket; cached/perturbed variants
        # compose the existing cache and fault keys on top.
        self._chunk_works: dict[tuple[int, int], list[HybridChunkWork]] = {}
        self._chunk_summaries: dict[
            tuple[int, int], BatchedDispatchSummary] = {}
        self._hybrid_works: dict[tuple, list[DecodeLayerWork]] = {}
        self._hybrid: dict[tuple, float] = {}
        self._hybrid_pert: dict[tuple, float] = {}
        self._cached_hybrid: dict[tuple, float] = {}
        self._cached_hybrid_pert: dict[tuple, float] = {}

    @staticmethod
    def _bucket(value: int, buckets: tuple[int, ...]) -> int:
        for b in buckets:
            if value <= b:
                return b
        return buckets[-1]

    def _key(self, context_lens: list[int]) -> tuple[int, int]:
        if not context_lens:
            raise ConfigError("decode step needs at least one request")
        return (len(context_lens),
                self._bucket(max(context_lens), self.CTX_BUCKETS))

    def _schedule_config(self) -> DecodeScheduleConfig:
        costs = self.session.costs
        return DecodeScheduleConfig(
            launch_mode=costs.system.launch_mode,
            overlap_cpu_gpu=costs.system.overlap_cpu_gpu,
            top_k=costs.preset.top_k,
            n_deferred=self.session.n_deferred,
        )

    def decode_step_us(self, context_lens: list[int]) -> float:
        """Steady-state cost of one decode iteration over these requests."""
        costs = self.session.costs
        key = self._key(context_lens)
        if key not in self._step:
            bsz, ctx = key
            works, summary = batched_decode_works(
                costs.system, costs.preset, self.machine, costs.dtype,
                context_lens=[ctx] * bsz, ari_threshold=self.ari_threshold,
                backend=self.backend,
            )
            self._step[key] = batched_step_time_us(
                works, self._schedule_config(), self.machine
            )
            self._summaries[key] = summary
            self._works[key] = works
        return self._step[key]

    def attn_window_us(self, context_lens: list[int]) -> float:
        """GPU attention time of one iteration -- the prefetch window."""
        key = self._key(context_lens)
        self.decode_step_us(context_lens)
        return sum(w.gpu_attn_us for w in self._works[key])

    def _hit_bucket(self, cache_step: CacheStepResult) -> int:
        return round(self.HIT_RATE_BUCKETS * cache_step.hit_tokens
                     / cache_step.total_tokens)

    def _contig_idx(self, cache_step: CacheStepResult) -> int:
        return round(self.CONTIG_BUCKETS * cache_step.layout_contiguity)

    def _cached_works_for(
        self, key: tuple[int, int], hit_bucket: int, n_hit_experts: int,
        dispatch: ExpertGemmDispatch | None,
    ) -> tuple[tuple, list[DecodeLayerWork]]:
        """Memoized cache-repriced works for one (shape, outcome, dispatch).

        The legacy (``dispatch is None``) memo key is exactly the
        pre-dispatch shape ``(*key, hit_bucket, n_hit_experts)`` so legacy
        pricing stays bit-identical; explicit dispatch arms extend it with
        the mode and contiguity bucket.
        """
        if dispatch is None:
            ck = (*key, hit_bucket, n_hit_experts)
        else:
            ck = (*key, hit_bucket, n_hit_experts, dispatch.mode,
                  round(self.CONTIG_BUCKETS * dispatch.layout_contiguity))
        if ck not in self._cached_works:
            costs = self.session.costs
            bsz = key[0]
            layer_tokens = bsz * costs.preset.top_k
            hit_tokens = round(layer_tokens * hit_bucket
                               / self.HIT_RATE_BUCKETS)
            self._cached_works[ck] = [
                w if w.cpu_routed_us <= 0.0 else apply_expert_cache(
                    w, costs.preset, self.machine, costs.dtype,
                    total_tokens=layer_tokens, hit_tokens=hit_tokens,
                    n_hit_experts=n_hit_experts, dispatch=dispatch,
                )
                for w in self._works[key]
            ]
        return ck, self._cached_works[ck]

    def _arm_step_us(self, key: tuple[int, int], hit_bucket: int,
                     n_hit_experts: int,
                     dispatch: ExpertGemmDispatch | None) -> float:
        """Clean cached-step price of one dispatch arm (memoized)."""
        ck, works = self._cached_works_for(key, hit_bucket, n_hit_experts,
                                           dispatch)
        if ck not in self._cached_step:
            self._cached_step[ck] = cache_aware_step_time_us(
                works, self._schedule_config(), self.machine,
            )
        return self._cached_step[ck]

    def _resolve_dispatch(self, key: tuple[int, int], hit_bucket: int,
                          n_hit_experts: int,
                          contig_idx: int) -> ExpertGemmDispatch | None:
        """The dispatch arm pricing uses for one quantized cache outcome.

        ``"legacy"`` (and any outcome with no hit experts) keeps the
        blob model; ``"auto"`` prices the per-expert and grouped arms
        through the full task-graph simulator once per quantized outcome
        and picks the cheaper, memoizing the decision.
        """
        if self.gemm_dispatch == "legacy" or n_hit_experts == 0:
            return None
        contig = contig_idx / self.CONTIG_BUCKETS
        if self.gemm_dispatch != "auto":
            return ExpertGemmDispatch(self.gemm_dispatch, contig)
        dk = (*key, hit_bucket, n_hit_experts, contig_idx)
        if dk not in self._dispatch_choice:
            per = self._arm_step_us(
                key, hit_bucket, n_hit_experts,
                ExpertGemmDispatch("per-expert", contig))
            grp = self._arm_step_us(
                key, hit_bucket, n_hit_experts,
                ExpertGemmDispatch("grouped", contig))
            self._dispatch_choice[dk] = ("grouped" if grp <= per
                                         else "per-expert")
        return ExpertGemmDispatch(self._dispatch_choice[dk], contig)

    def gemm_dispatch_for(
        self, context_lens: list[int], cache_step: CacheStepResult,
    ) -> ExpertGemmDispatch | None:
        """The dispatch arm chosen for this iteration's cache outcome.

        ``None`` under legacy pricing or when nothing hit; the serving
        engine uses this for the ``grouped_gemm_*`` counters and the
        graph-topology key.
        """
        if cache_step.total_tokens == 0:
            return None
        key = self._key(context_lens)
        self.decode_step_us(context_lens)          # populate works cache
        return self._resolve_dispatch(
            key, self._hit_bucket(cache_step), cache_step.n_hit_experts,
            self._contig_idx(cache_step))

    def _cached_key_works(
        self, context_lens: list[int], cache_step: CacheStepResult,
    ) -> tuple[tuple, list[DecodeLayerWork]]:
        """Memo key and cache-repriced layer works for one cache outcome.

        MoE layers are repriced with cache hits as GPU expert work and
        misses on the CPU (:func:`repro.sched.workload.apply_expert_cache`,
        hit rate quantized to 1/``HIT_RATE_BUCKETS`` and layout
        contiguity to 1/``CONTIG_BUCKETS`` for memoization), under the
        dispatch arm :meth:`_resolve_dispatch` selects.  Shared by the
        clean and fault-perturbed cached pricing paths so both see the
        same repriced task graph.
        """
        key = self._key(context_lens)
        self.decode_step_us(context_lens)          # populate works cache
        hit_bucket = self._hit_bucket(cache_step)
        dispatch = self._resolve_dispatch(
            key, hit_bucket, cache_step.n_hit_experts,
            self._contig_idx(cache_step))
        return self._cached_works_for(key, hit_bucket,
                                      cache_step.n_hit_experts, dispatch)

    def cached_decode_step_us(self, context_lens: list[int],
                              cache_step: CacheStepResult) -> float:
        """One iteration's cost under the expert cache's latest outcome.

        The cache step's non-overlapped prefetch stall is added on top of
        the memoized repriced step (see :meth:`_cached_key_works`).
        """
        if cache_step.total_tokens == 0:
            return self.decode_step_us(context_lens) + cache_step.stall_us
        ck, works = self._cached_key_works(context_lens, cache_step)
        if ck not in self._cached_step:
            self._cached_step[ck] = cache_aware_step_time_us(
                works, self._schedule_config(), self.machine,
            )
        return self._cached_step[ck] + cache_step.stall_us

    def perturbed_decode_step_us(self, context_lens: list[int],
                                 pert: StepPerturbation) -> float:
        """Decode-iteration cost under an active fault perturbation.

        Reruns the task-graph simulation with the perturbation's duration
        hook installed, so stragglers/NUMA contention stretch CPU tasks
        and PCIe degradation stretches transfers *inside* the overlap
        structure (a slower link may hide behind attention rather than
        adding linearly).  Identity perturbations short-circuit to the
        unperturbed memo so a run with an empty fault plan is
        bit-identical to one with no injector at all.
        """
        if pert.prices_identity:
            return self.decode_step_us(context_lens)
        key = self._key(context_lens)
        self.decode_step_us(context_lens)          # populate works cache
        pk = (key, pert.price_key())
        if pk not in self._perturbed:
            self._perturbed[pk] = batched_step_time_us(
                self._works[key], self._schedule_config(),
                self.machine, perturb=pert.sim_hook(),
            )
        return self._perturbed[pk]

    def perturbed_cached_step_us(self, context_lens: list[int],
                                 cache_step: CacheStepResult,
                                 pert: StepPerturbation) -> float:
        """Cache-aware iteration cost under an active fault perturbation.

        Same repriced works as :meth:`cached_decode_step_us` (so the
        cache's hit/miss split is identical), simulated under the
        perturbation's duration hook; the cache step's stall -- already
        computed against the degraded link by the caller -- rides on top.
        """
        if pert.prices_identity:
            return self.cached_decode_step_us(context_lens, cache_step)
        if cache_step.total_tokens == 0:
            return (self.perturbed_decode_step_us(context_lens, pert)
                    + cache_step.stall_us)
        ck, works = self._cached_key_works(context_lens, cache_step)
        pk = (ck, pert.price_key())
        if pk not in self._cached_pert:
            self._cached_pert[pk] = cache_aware_step_time_us(
                works, self._schedule_config(), self.machine,
                perturb=pert.sim_hook(),
            )
        return self._cached_pert[pk] + cache_step.stall_us

    def dispatch_summary(self, context_lens: list[int]) -> BatchedDispatchSummary:
        """The ARI dispatch decisions behind :meth:`decode_step_us`."""
        self.decode_step_us(context_lens)
        return self._summaries[self._key(context_lens)]

    # -- hybrid (decode + prefill-chunk) iterations --------------------------

    def _hybrid_schedule_config(self) -> DecodeScheduleConfig:
        """Mixed iterations run with Expert Deferral disabled.

        A prefill chunk keeps nearly every expert active (Section 4.1), so
        deferring "inactive" experts against the next step has nothing to
        defer to; the rest of the schedule (launch mode, overlap) is the
        decode config's.
        """
        return replace(self._schedule_config(), n_deferred=0)

    def _chunk_key(self, batch_size: int, chunk_tokens: int
                   ) -> tuple[int, int]:
        if chunk_tokens <= 0:
            raise ConfigError("chunk_tokens must be positive")
        return (batch_size, self._bucket(chunk_tokens, self.CHUNK_BUCKETS))

    def _chunk_layer_works(self, batch_size: int,
                           chunk_tokens: int) -> list[HybridChunkWork]:
        """Per-layer marginal chunk works, memoized on (batch, chunk bucket).

        Chunk sizes are bucketed like context lengths; the largest bucket
        prices every bigger chunk (serving configs should keep
        ``prefill_chunk_tokens`` at or below it).
        """
        ck = self._chunk_key(batch_size, chunk_tokens)
        if ck not in self._chunk_works:
            costs = self.session.costs
            works, summary = hybrid_chunk_works(
                costs.system, costs.preset, self.machine, costs.dtype,
                chunk_tokens=ck[1], batch_size=ck[0],
                ari_threshold=self.ari_threshold,
                backend=self.backend,
            )
            self._chunk_works[ck] = works
            self._chunk_summaries[ck] = summary
        return self._chunk_works[ck]

    def _hybrid_key_works(
        self, context_lens: list[int], chunk_tokens: int,
    ) -> tuple[tuple, list[DecodeLayerWork]]:
        """Memo key and merged layer works for one mixed iteration.

        Merges the decode batch's (unmodified) layer works with the
        chunk's marginal works; an empty batch yields the chunk-only
        iteration.  Shared by the clean and fault-perturbed hybrid
        pricing paths.
        """
        bsz = len(context_lens)
        chunk_works = self._chunk_layer_works(bsz, chunk_tokens)
        if bsz:
            dkey = self._key(context_lens)
            self.decode_step_us(context_lens)      # populate works cache
            hk = (dkey, self._chunk_key(bsz, chunk_tokens)[1])
            if hk not in self._hybrid_works:
                self._hybrid_works[hk] = [
                    merge_hybrid_work(d, c)
                    for d, c in zip(self._works[dkey], chunk_works)
                ]
        else:
            hk = (0, self._chunk_key(bsz, chunk_tokens)[1])
            if hk not in self._hybrid_works:
                self._hybrid_works[hk] = [
                    chunk_only_work(c) for c in chunk_works
                ]
        return hk, self._hybrid_works[hk]

    def hybrid_step_us(self, context_lens: list[int],
                       chunk_tokens: int) -> float:
        """Steady-state cost of one decode iteration carrying a chunk.

        ``context_lens`` may be empty (chunk-only iteration: nothing is
        decodable yet).  Bit-identical to
        :func:`repro.sched.decode.hybrid_step_time_us` over the same
        works; memoized on (batch size, context bucket, chunk bucket).
        """
        hk, works = self._hybrid_key_works(context_lens, chunk_tokens)
        if hk not in self._hybrid:
            self._hybrid[hk] = batched_step_time_us(
                works, self._hybrid_schedule_config(),
                self.machine,
            )
        return self._hybrid[hk]

    def hybrid_attn_window_us(self, context_lens: list[int],
                              chunk_tokens: int) -> float:
        """GPU attention time of a mixed iteration -- the prefetch window.

        The chunk's prefill-style attention extends the window behind
        which expert-cache uploads can hide.
        """
        _, works = self._hybrid_key_works(context_lens, chunk_tokens)
        return sum(w.gpu_attn_us for w in works)

    def hybrid_dispatch_summary(self, context_lens: list[int],
                                chunk_tokens: int) -> BatchedDispatchSummary:
        """Combined (decode + chunk) ARI dispatch of a mixed iteration."""
        bsz = len(context_lens)
        self._chunk_layer_works(bsz, chunk_tokens)
        return self._chunk_summaries[self._chunk_key(bsz, chunk_tokens)]

    def cached_hybrid_step_us(self, context_lens: list[int],
                              chunk_tokens: int,
                              cache_step: CacheStepResult) -> float:
        """Mixed-iteration cost under the expert cache's latest outcome.

        The decode batch's layers are cache-repriced exactly as in
        :meth:`cached_decode_step_us`; the chunk's marginal expert work
        stays on the CPU (prefill streams every active expert from DRAM
        regardless of GPU residency), so it rides on top unchanged.
        """
        if cache_step.total_tokens == 0:
            return (self.hybrid_step_us(context_lens, chunk_tokens)
                    + cache_step.stall_us)
        ck, cached_works = self._cached_key_works(context_lens, cache_step)
        chunk_works = self._chunk_layer_works(len(context_lens), chunk_tokens)
        hk = (ck, self._chunk_key(len(context_lens), chunk_tokens)[1])
        if hk not in self._cached_hybrid:
            merged = [merge_hybrid_work(d, c)
                      for d, c in zip(cached_works, chunk_works)]
            self._cached_hybrid[hk] = cache_aware_step_time_us(
                merged, self._hybrid_schedule_config(),
                self.machine,
            )
        return self._cached_hybrid[hk] + cache_step.stall_us

    def perturbed_hybrid_step_us(self, context_lens: list[int],
                                 chunk_tokens: int,
                                 pert: StepPerturbation) -> float:
        """Mixed-iteration cost under an active fault perturbation.

        Identity perturbations short-circuit to the clean memo (same
        bit-identity guarantee as :meth:`perturbed_decode_step_us`).
        """
        if pert.prices_identity:
            return self.hybrid_step_us(context_lens, chunk_tokens)
        hk, works = self._hybrid_key_works(context_lens, chunk_tokens)
        pk = (hk, pert.price_key())
        if pk not in self._hybrid_pert:
            self._hybrid_pert[pk] = batched_step_time_us(
                works, self._hybrid_schedule_config(),
                self.machine, perturb=pert.sim_hook(),
            )
        return self._hybrid_pert[pk]

    def perturbed_cached_hybrid_step_us(self, context_lens: list[int],
                                        chunk_tokens: int,
                                        cache_step: CacheStepResult,
                                        pert: StepPerturbation) -> float:
        """Cache-aware mixed-iteration cost under a fault perturbation."""
        if pert.prices_identity:
            return self.cached_hybrid_step_us(context_lens, chunk_tokens,
                                              cache_step)
        if cache_step.total_tokens == 0:
            return (self.perturbed_hybrid_step_us(context_lens, chunk_tokens,
                                                  pert)
                    + cache_step.stall_us)
        ck, cached_works = self._cached_key_works(context_lens, cache_step)
        chunk_works = self._chunk_layer_works(len(context_lens), chunk_tokens)
        hk = (ck, self._chunk_key(len(context_lens), chunk_tokens)[1])
        pk = (hk, pert.price_key())
        if pk not in self._cached_hybrid_pert:
            merged = [merge_hybrid_work(d, c)
                      for d, c in zip(cached_works, chunk_works)]
            self._cached_hybrid_pert[pk] = cache_aware_step_time_us(
                merged, self._hybrid_schedule_config(),
                self.machine, perturb=pert.sim_hook(),
            )
        return self._cached_hybrid_pert[pk] + cache_step.stall_us

    def step_kernel_count(self, context_lens: list[int],
                          chunk_tokens: int = 0,
                          cache_step: CacheStepResult | None = None) -> int:
        """Kernel count of one iteration's captured step.

        What a CUDA-graph capture walks: every layer's attention +
        shared/expert kernel groups (``n_gpu_kernels``, including any
        dispatch-added expert GEMM launches), one merge per MoE layer,
        and the LM head.  Works are resolved through the same memoized
        paths as pricing, so the count matches the priced task graph.
        """
        if not context_lens:
            _, works = self._hybrid_key_works([], chunk_tokens)
        elif cache_step is not None and cache_step.total_tokens > 0:
            _, works = self._cached_key_works(context_lens, cache_step)
        elif chunk_tokens:
            _, works = self._hybrid_key_works(context_lens, chunk_tokens)
        else:
            self.decode_step_us(context_lens)
            works = self._works[self._key(context_lens)]
        moe_layers = sum(1 for w in works if w.cpu_routed_us > 0)
        return sum(w.n_gpu_kernels for w in works) + moe_layers + 1

    # -- pipeline-stage pricing ----------------------------------------------

    def pipeline_factors(self, context_lens: list[int],
                         chunk_tokens: int = 0
                         ) -> tuple[float, tuple[float, ...]]:
        """Stage-split ratio and boundary bytes for one iteration shape.

        The ratio is ``staged interval / unsplit serial cost`` over the
        step's *clean* layer works (:func:`repro.sched.staged_interval_us`
        against :func:`repro.sched.decode.batched_step_time_us`) -- it is
        structural per step shape, so expert-cache repricing, fault
        perturbations, and clock jitter (which scale the whole step)
        compose multiplicatively through it.  The stage-boundary
        activation bytes come back raw for the caller to price on the
        link of the moment (possibly fault-degraded).  Single-stage
        models return ``(1.0, ())`` without touching any memo.
        """
        if self._pipeline is None:
            return 1.0, ()
        cfg = self._schedule_config()
        if not context_lens:
            key, works = self._hybrid_key_works([], chunk_tokens)
            full = self.hybrid_step_us([], chunk_tokens)
            cfg = self._hybrid_schedule_config()
        elif chunk_tokens:
            key, works = self._hybrid_key_works(context_lens, chunk_tokens)
            full = self.hybrid_step_us(context_lens, chunk_tokens)
            cfg = self._hybrid_schedule_config()
        else:
            key = self._key(context_lens)
            full = self.decode_step_us(context_lens)
            works = self._works[key]
        if key not in self._pipeline_factors:
            staged = staged_interval_us(works, cfg,
                                        self.machine,
                                        self._pipeline)
            self._pipeline_factors[key] = (
                staged / full, stage_boundary_bytes(works, self._pipeline))
        return self._pipeline_factors[key]

    def staged_decode_step_us(self, context_lens: list[int]) -> float:
        """Pipelined steady-state cost of one clean decode iteration.

        ``decode_step_us * stage ratio + boundary handoffs`` on the
        undegraded link -- exactly what the serving loop charges per
        iteration when no cache/fault/jitter effect is active, and the
        quantity the golden pins lock down.
        """
        ratio, boundary = self.pipeline_factors(context_lens)
        link = self.machine.interconnect
        return (self.decode_step_us(context_lens) * ratio
                + sum(pcie_transfer_time_us(b, link) for b in boundary))

    def batched_prefill_us(self, total_prompt_tokens: int) -> float:
        """One prefill pass over all co-admitted prompts' tokens."""
        if total_prompt_tokens <= 0:
            raise ConfigError("prefill needs at least one token")
        costs = self.session.costs
        bucket = self._bucket(total_prompt_tokens, self.PREFILL_BUCKETS)
        if bucket not in self._prefill:
            r = run_prefill(costs.system, costs.preset, self.machine,
                            costs.dtype, prompt_len=bucket,
                            backend=self.backend)
            self._prefill[bucket] = r.elapsed_us
        cost = self._prefill[bucket]
        if total_prompt_tokens > self.PREFILL_BUCKETS[-1]:
            cost *= total_prompt_tokens / self.PREFILL_BUCKETS[-1]
        return cost

    # -- preemption pricing --------------------------------------------------

    def kv_swap_bytes(self, n_tokens: int) -> float:
        """Bytes one swap direction moves for ``n_tokens`` of KV context.

        The per-token unit comes from
        :func:`repro.sched.workload.kv_token_bytes` (MLA latent for
        ``kv_rank > 0`` presets, full K/V otherwise) scaled by the
        preset's layer count -- every layer's cache pages travel.
        """
        preset = self.session.costs.preset
        return n_tokens * kv_token_bytes(preset) * preset.n_layers

    def swap_transfer_us(self, n_tokens: int, link=None) -> float:
        """One-way PCIe time to move ``n_tokens`` of KV context.

        ``link`` defaults to the machine's interconnect; the serving loop
        passes the fault-degraded link active on the serving clock, so a
        chaos window makes swap-preemption dearer exactly when the bus is
        congested (and the auto mechanism shifts toward recompute).
        """
        costs = self.session.costs
        if link is None:
            link = self.machine.interconnect
        return kv_swap_transfer_us(
            n_tokens, kv_token_bytes(costs.preset),
            costs.preset.n_layers, link)

    def recompute_resume_us(self, n_tokens: int) -> float:
        """Estimated cost of re-prefilling ``n_tokens`` of context.

        Recompute-preempted requests resume through the ordinary
        (chunked) prefill scheduler, so the estimate reuses the memoized
        :meth:`batched_prefill_us` -- the same pricing the resumed
        request's monolithic re-prefill would actually pay.
        """
        if n_tokens <= 0:
            return 0.0
        return self.batched_prefill_us(n_tokens)


def serving_expert_cache(
    session: InferenceSession,
    vram_budget_bytes: float,
    **overrides,
) -> ExpertCacheManager:
    """An :class:`ExpertCacheManager` sized for a session's cost preset.

    The serving cost model prices one representative MoE layer replicated
    across the model, so the serving-side cache covers one layer of the
    preset's experts; ``overrides`` patch any :class:`ExpertCacheConfig`
    policy field (``ewma_alpha``, ``admit_margin``, ...).
    """
    costs = session.costs
    config = ExpertCacheConfig(
        n_layers=1,
        n_experts=costs.preset.n_experts,
        expert_bytes=costs.preset.expert_bytes(costs.dtype),
        vram_budget_bytes=vram_budget_bytes,
        **overrides,
    )
    return ExpertCacheManager(config, costs.machine.interconnect)


@dataclass
class _InFlight:
    """Bookkeeping of one admitted request.

    The chunk state machine lives in ``prefilled``: a request holds its
    full KV-page reservation from admission but is only *decodable* once
    ``prefill_target`` tokens are in KV (monolithic mode covers the
    whole prompt in the admission iteration; chunked mode advances
    ``prefilled`` one chunk share at a time).

    Preemption extends the state machine: a preempted request leaves the
    active batch with its page reservation released.  ``swapped`` marks
    the swap mechanism (KV stashed host-side under the old slot id,
    restored on resume); the recompute mechanism instead zeroes
    ``prefilled``/``context_len`` and raises ``prefill_target`` to
    ``prompt_len + emitted`` so the ordinary prefill scheduler rebuilds
    the full context -- prompt plus already-emitted tokens -- on resume.
    ``prefill_target`` equals ``prompt_len`` until a recompute
    preemption, so un-preempted scheduling is bit-identical to before.

    ``shared_tokens`` is the page-aligned prompt prefix served from the
    radix prefix cache at admission: those tokens never enter this
    request's own slot (they live in refcounted cache pages), so the
    slot holds ``context_len - shared_tokens`` tokens and preemption
    swap/recompute sizing works on that difference.  Always 0 without a
    prefix-cache config, keeping the sessionless engine bit-identical.
    """

    timed: TimedRequest
    slot: int
    reserved_pages: int
    tokens: np.ndarray          # real token values, generated at admission
    start_us: float             # admission time (first prefill work)
    context_len: int            # prefilled + emitted so far
    prompt_len: int
    prefill_target: int = 0     # tokens that must be in KV to decode
    prefilled: int = 0
    emitted: int = 0
    first_token_us: float = field(default=0.0)
    preempt_count: int = 0
    swapped: bool = False       # True while preempted via the swap mechanism
    shared_tokens: int = 0      # prompt tokens pinned in the prefix cache

    @property
    def decodable(self) -> bool:
        """Whether the full context is in KV (request can emit tokens)."""
        return self.prefilled >= self.prefill_target


class ContinuousBatchingServer:
    """Drop-in alternative to ``LocalServer`` with iteration-level batching.

    ``replay(workload)`` serves the same :class:`TimedRequest` workloads and
    returns the same :class:`~repro.serving.metrics.ServingStats`; the
    per-iteration batch size, KV occupancy, mid-prefill count and
    co-scheduled chunk size are additionally recorded on :attr:`timeline`.

    With ``BatchSchedulerConfig(prefill_chunk_tokens=...)`` prompts
    prefill in per-iteration chunks co-scheduled with the decode batch
    (hybrid iterations priced via ``BatchCostModel.hybrid_step_us``);
    partially-prefilled requests hold their full KV reservation but emit
    nothing until the last chunk lands, and the decode timeout sheds
    them like runaway decodes.

    With a ``fault_injector`` attached, every decode iteration is priced
    under the perturbation active on the serving clock and planned expert
    uploads can fail in transit.  Without a ``resilience`` policy the
    server is the *naive* arm: it re-uploads failed experts synchronously
    (:data:`NAIVE_UPLOAD_ATTEMPTS` blocking transfers stalling the whole
    batch) and never sheds load.  With a :class:`ResilienceConfig` it
    retries off the critical path with capped exponential backoff, sheds
    queue/decode-timeout violators, and degrades to cache-bypass (all
    experts priced on the CPU) when failures persist; everything is
    surfaced on ``stats.faults``.

    With a ``priorities`` :class:`~repro.serving.priority.PriorityConfig`
    the admission queue is ranked by aged effective priority and blocked
    high-class candidates may preempt the worst in-flight victim via
    swap or recompute (see the module docstring); preemption counters
    land on ``stats.preemptions`` and per-class latency breakdowns in
    ``stats.summary()``.  Preempted requests remain subject to the
    resilience policy's decode timeout while parked, so preemption and
    shedding compose: a victim that cannot resume in time is shed with
    its pages already released (freed exactly once).

    With a ``prefix_cache`` :class:`~repro.serving.prefix_cache.
    PrefixCacheConfig` the server becomes session-aware: admission
    probes a page-granular radix tree of previously served prompts,
    pins the longest cached prefix by reference, and reserves/prefills
    only the fresh suffix -- multi-turn conversations skip re-prefilling
    their history, composing with chunked prefill (the suffix chunks
    like any prompt), priorities (preemption sizes swap/recompute on
    the slot-resident suffix; the pinned prefix survives eviction), and
    faults (tier transfers price on the degraded link).  A ``kv_tier``
    :class:`~repro.serving.prefix_cache.KVTierConfig` adds the host-DRAM
    layer: idle sessions' cached pages park off-GPU (off the critical
    path) and swap back in on -- or, with prefetch, *ahead of* -- the
    session's next turn, with the think-time EWMA predicting when.
    Reuse/tier counters land on ``stats.sessions`` and the timeline;
    ``prefix_cache=None`` (the default) is bit-identical to the
    sessionless engine.

    With a ``controller`` :class:`~repro.serving.controller.
    ControllerConfig` the engine self-tunes: an
    :class:`~repro.serving.controller.OnlineController` observes
    windowed signals at every iteration boundary and adapts
    ``prefill_chunk_tokens`` / ``max_batch_size`` at runtime via
    bounded hill-climbing with guarded rollback (see the controller
    module docstring).  Knob moves install a replacement frozen config
    between iterations, so every pricing memo stays valid; decision
    counters land on ``stats.controller`` and ``controller=None`` (the
    default) is bit-identical to the static-config engine.
    """

    def __init__(self, session: InferenceSession,
                 config: BatchSchedulerConfig | None = None,
                 expert_cache: ExpertCacheManager | None = None,
                 routing_stream: Optional[RoutingStream] = None,
                 fault_injector: FaultInjector | None = None,
                 resilience: ResilienceConfig | None = None,
                 priorities: PriorityConfig | None = None,
                 prefix_cache: PrefixCacheConfig | None = None,
                 kv_tier: KVTierConfig | None = None,
                 controller: ControllerConfig | None = None) -> None:
        self.session = session
        self.config = config or BatchSchedulerConfig()
        self.priorities = priorities
        self.costs = BatchCostModel(
            session,
            ari_threshold=self.config.ari_threshold,
            gemm_dispatch=self.config.gemm_dispatch,
            pipeline_stages=self.config.pipeline_stages,
            backend=self.config.backend)
        # The pool tracks token occupancy only; K/V payloads stay tiny.
        self.pool = PagedKVPool(
            n_heads=1, head_dim=1,
            budget_tokens=self.config.kv_budget_tokens,
            page_tokens=self.config.page_tokens,
        )
        self.expert_cache = expert_cache
        self._routing_stream = routing_stream
        if routing_stream is not None and expert_cache is None:
            raise ConfigError("routing_stream requires an expert_cache")
        self.stats = ServingStats()
        self.timeline = BatchTimeline(
            kv_budget_tokens=self.pool.budget_tokens)
        self.cache_timeline: ExpertCacheTimeline | None = None
        if expert_cache is not None:
            self.cache_timeline = ExpertCacheTimeline()
            self.stats.expert_cache = self.cache_timeline
        self.fault_injector = fault_injector
        self.resilience = resilience
        self.fault_stats = FaultStats()
        if fault_injector is not None or resilience is not None:
            self.stats.faults = self.fault_stats
        self._degradation: DegradationTracker | None = None
        if (resilience is not None and fault_injector is not None
                and expert_cache is not None):
            self._degradation = DegradationTracker(resilience)
        self._retries: list[RetryState] = []
        self._reserved_pages = 0
        self._iteration = 0
        self.preempt_stats = PreemptionStats()
        if priorities is not None:
            self.stats.preemptions = self.preempt_stats
        self._preempted: list[_InFlight] = []
        self._preempt_stall_us = 0.0
        self.graph_cache: GraphCache | None = self._make_graph_cache()
        self.graph_stats: GraphStats | None = None
        if (self.config.graph_cache is not None
                or self.config.gemm_dispatch != "legacy"):
            # Attached only when a graph/dispatch feature is on, so legacy
            # configs keep their summaries (and goldens) unchanged.
            self.graph_stats = GraphStats()
            self.stats.graphs = self.graph_stats
        self._last_graph_capture_us = 0.0
        self._last_cache_step: CacheStepResult | None = None
        self._last_step_topology: tuple = ("plain",)
        self.pipeline_stats: PipelineStats | None = None
        if self.config.pipeline_stages > 1:
            # Attached only when the layer stack is actually sharded, so
            # single-stage configs keep their summaries (and goldens)
            # unchanged.
            self.pipeline_stats = PipelineStats(
                n_stages=self.config.pipeline_stages)
            self.stats.pipeline = self.pipeline_stats
        if kv_tier is not None and prefix_cache is None:
            raise ConfigError("kv_tier requires a prefix_cache config")
        self.kv_tier = kv_tier
        self.prefix_cache: RadixPrefixCache | None = None
        self.session_stats: SessionStats | None = None
        if prefix_cache is not None:
            self.prefix_cache = RadixPrefixCache(self.pool, prefix_cache,
                                                 kv_tier)
            # Attached only when the prefix cache is on, so sessionless
            # configs keep their summaries (and goldens) unchanged.
            self.session_stats = SessionStats()
            self.stats.sessions = self.session_stats
        self._tier_stall_us = 0.0
        # Per-session think-time EWMA state for ahead-of-turn swap-in.
        self._session_last_finish: dict[str, float] = {}
        self._session_think: dict[str, float] = {}
        self._predicted_next: dict[str, float] = {}
        self._controller: OnlineController | None = None
        self.controller_stats: ControllerStats | None = None
        if controller is not None:
            # Attached only when the control plane is on, so static
            # configs keep their summaries (and goldens) unchanged.
            self.controller_stats = ControllerStats()
            self.stats.controller = self.controller_stats
            self._controller = OnlineController(
                controller,
                base_chunk=self.config.prefill_chunk_tokens,
                base_batch=self.config.max_batch_size,
                stats=self.controller_stats)

    # -- kernel backend ------------------------------------------------------

    def _make_graph_cache(self) -> GraphCache | None:
        """The capture cache under the active backend's launch constants.

        Capture pricing sees the cost model's (launch-adjusted) machine,
        plus the backend's ``graph_instantiation_us`` override when it
        carries one; ``graph_cache=None`` configs price replay as free,
        exactly as before.
        """
        if self.config.graph_cache is None:
            return None
        graph_config = self.config.graph_cache
        backend = self.costs.backend
        if (backend is not None
                and backend.launch.graph_instantiation_us is not None):
            graph_config = replace(
                graph_config,
                instantiation_us=backend.launch.graph_instantiation_us)
        return GraphCache(graph_config, self.costs.machine)

    def rebind_backend(self, backend: "str | KernelBackend | None") -> None:
        """Re-point a *fresh* server's pricing at another kernel backend.

        Replica factories are zero-argument (:class:`~repro.serving.
        fleet.FleetRouter` calls them once per replica epoch), so
        mixed-hardware fleets bind each replica's backend by rebuilding
        the cost model and graph cache on the just-created server.
        Refuses once any request has been served: pricing memos must
        never mix backends.
        """
        if self._iteration or self.stats.timings or self.stats.shed:
            raise ConfigError(
                "rebind_backend requires a fresh server (no served work)")
        self.config = replace(self.config, backend=backend)
        self.costs = BatchCostModel(
            self.session,
            ari_threshold=self.config.ari_threshold,
            gemm_dispatch=self.config.gemm_dispatch,
            pipeline_stages=self.config.pipeline_stages,
            backend=backend)
        self.graph_cache = self._make_graph_cache()

    # -- admission ----------------------------------------------------------

    def _request_pages(self, timed: TimedRequest) -> int:
        prompt_len = len(np.atleast_1d(timed.request.prompt))
        return self.pool.pages_needed(
            prompt_len + timed.request.max_new_tokens)

    def _pages_in_use(self) -> int:
        """Pages committed right now: request reservations + cache pages.

        Admission must leave room for both -- the radix cache's
        GPU-resident pages live in the same pool as request slots.
        Zero cache term without a prefix cache, so the sessionless
        budget check is unchanged.
        """
        cached = (self.prefix_cache.gpu_pages
                  if self.prefix_cache is not None else 0)
        return self._reserved_pages + cached

    def _prompt_tuple(self, timed: TimedRequest) -> tuple:
        """The request's prompt as the radix cache's token-tuple key."""
        return tuple(int(t) for t in np.atleast_1d(timed.request.prompt))

    def _effective(self, timed: TimedRequest, clock: float) -> int:
        """The candidate's aged priority class (0 when priorities are off)."""
        if self.priorities is None:
            return 0
        return self.priorities.effective_priority(
            int(timed.priority), timed.arrival_us, clock)

    def _next_candidate(self, pending: list[TimedRequest], clock: float):
        """Highest-ranked admission candidate, or ``None``.

        Candidates are previously preempted requests awaiting resume plus
        arrived queue entries, ranked by
        ``(effective priority, arrival, resume-before-new)``; ties keep
        the FIFO pop order, so a single priority class degenerates to
        strict arrival order.  Returns ``("resume", _InFlight)`` or
        ``("new", index into pending)``.
        """
        best = None
        best_key = None
        for a in self._preempted:
            key = (self._effective(a.timed, clock), a.timed.arrival_us, 0)
            if best_key is None or key < best_key:
                best_key, best = key, ("resume", a)
        for idx in range(len(pending) - 1, -1, -1):
            timed = pending[idx]
            if timed.arrival_us > clock:
                break
            key = (self._effective(timed, clock), timed.arrival_us, 1)
            if best_key is None or key < best_key:
                best_key, best = key, ("new", idx)
            if self.priorities is None:
                break           # FIFO: only the queue head is a candidate
        return best

    def _make_room(self, active: list[_InFlight], timed: TimedRequest,
                   clock: float, pages_needed: int) -> bool:
        """Try to free capacity for a blocked candidate by preempting.

        The victim is the in-flight request with the *worst* effective
        priority -- strictly worse than the candidate's, so same-class
        traffic never preempts itself (the bit-identity guarantee) and an
        aged BATCH request stops being evictable by fresh INTERACTIVE
        arrivals.  Victims below ``max_preemptions`` evictions only;
        latest-started wins ties (least work in flight to redo).  When
        the candidate is blocked on KV pages (``pages_needed > 0``) a
        feasibility precheck ensures the eligible victims can actually
        cover the deficit before any eviction happens, so preemptions are
        never wasted.  Returns whether a victim was evicted.
        """
        if self.priorities is None or not self.priorities.preemption:
            return False
        cand_eff = self._effective(timed, clock)
        eligible = [
            a for a in active
            if a.preempt_count < self.priorities.max_preemptions
            and self._effective(a.timed, clock) > cand_eff
        ]
        if not eligible:
            return False
        if pages_needed:
            freeable = sum(a.reserved_pages for a in eligible)
            if (self._pages_in_use() - freeable + pages_needed
                    > self.pool.budget_pages):
                return False
        victim = max(eligible, key=lambda a: (
            self._effective(a.timed, clock), a.start_us, a.slot))
        self._preempt(victim, clock)
        active[:] = [a for a in active if a is not victim]
        return True

    def _choose_mechanism(self, victim: _InFlight, clock: float) -> str:
        """Swap vs recompute for this victim, per config and cost model.

        ``auto`` compares the round-trip PCIe cost of moving the victim's
        KV context out and back (on the link active *now* -- degraded
        links tilt toward recompute) against the estimated cost of
        re-prefilling the full context on resume, and picks the cheaper.
        """
        mech = self.priorities.mechanism
        if mech != "auto":
            return mech
        slot_tokens = victim.context_len - victim.shared_tokens
        if slot_tokens == 0:
            return "recompute"      # nothing in this slot: freeing is free
        swap_us = 2.0 * self.costs.swap_transfer_us(
            slot_tokens, self._link_at(clock))
        rec_us = self.costs.recompute_resume_us(
            victim.prompt_len + victim.emitted - victim.shared_tokens)
        return "swap" if swap_us <= rec_us else "recompute"

    def _link_at(self, clock: float) -> InterconnectSpec:
        """The (possibly fault-degraded) PCIe link on the serving clock."""
        link = self.costs.machine.interconnect
        if self.fault_injector is None:
            return link
        pert = self.fault_injector.perturbation_at(clock, self._iteration)
        return pert.degrade_link(link)

    def _preempt(self, victim: _InFlight, clock: float) -> None:
        """Evict one in-flight request, releasing its KV reservation.

        Swap stashes the victim's pages host-side (both transfer legs
        stall the serving clock via ``_preempt_stall_us``); recompute
        frees them and rewinds the prefill state machine so the full
        context re-prefills on resume.  Either way the reservation
        returns to the admission budget immediately.
        """
        self.preempt_stats.preemptions += 1
        victim.preempt_count += 1
        mechanism = self._choose_mechanism(victim, clock)
        if mechanism == "swap":
            n_tokens = self.pool.swap_out(victim.slot)
            victim.swapped = True
            stall = self.costs.swap_transfer_us(n_tokens,
                                                self._link_at(clock))
            self.preempt_stats.swaps += 1
            self.preempt_stats.swap_out_bytes += self.costs.kv_swap_bytes(
                n_tokens)
            self.preempt_stats.swap_stall_us += stall
            self._preempt_stall_us += stall
        else:
            self.pool.free(victim.slot)
            victim.swapped = False
            self.preempt_stats.recomputes += 1
            # Only the slot-resident suffix is discarded: the shared
            # prefix stays pinned in the cache across the preemption,
            # so resume re-prefills from shared_tokens, not zero.
            self.preempt_stats.recompute_tokens += (
                victim.context_len - victim.shared_tokens)
            victim.prefill_target = victim.prompt_len + victim.emitted
            victim.prefilled = victim.shared_tokens
            victim.context_len = victim.shared_tokens
        self._reserved_pages -= victim.reserved_pages
        self._preempted.append(victim)

    def _resume(self, a: _InFlight, clock: float) -> None:
        """Bring a preempted request back into the active batch.

        Swapped victims re-upload their stashed KV into fresh pages (the
        second transfer leg, priced on the link active now); recompute
        victims just reopen an empty slot -- their context rebuilds
        through the ordinary prefill scheduler.  The page reservation is
        re-taken in full, so mid-flight growth stays safe exactly as for
        a fresh admission.
        """
        self._preempted = [p for p in self._preempted if p is not a]
        if a.swapped:
            n_tokens = a.context_len - a.shared_tokens
            a.slot = self.pool.swap_in(a.slot)
            a.swapped = False
            stall = self.costs.swap_transfer_us(n_tokens,
                                                self._link_at(clock))
            self.preempt_stats.swap_in_bytes += self.costs.kv_swap_bytes(
                n_tokens)
            self.preempt_stats.swap_stall_us += stall
            self._preempt_stall_us += stall
        else:
            a.slot = self.pool.allocate()
        self._reserved_pages += a.reserved_pages
        self.preempt_stats.resumes += 1

    def _admit(self, pending: list[TimedRequest], active: list[_InFlight],
               clock: float) -> None:
        """Admit/resume candidates that fit the budget and batch cap.

        Candidates are taken in effective-priority order (strict arrival
        order without a priority config) with head-of-line blocking: the
        first candidate that cannot be placed -- even after any permitted
        preemptions -- stops admission, which combined with aging
        guarantees no class waits forever.  Admission appends to
        ``active`` in candidate order, preserving the FIFO scheduler's
        exact behaviour for single-class traffic.
        """
        while True:
            cand = self._next_candidate(pending, clock)
            if cand is None:
                return
            kind, ref = cand
            timed = ref.timed if kind == "resume" else pending[ref]
            while len(active) >= self.config.max_batch_size:
                if not self._make_room(active, timed, clock, pages_needed=0):
                    return
            need = (ref.reserved_pages if kind == "resume"
                    else self._request_pages(timed))
            if kind == "new" and need > self.pool.budget_pages:
                raise KVCacheError(
                    f"request needs {need} KV pages but the pool budget is "
                    f"{self.pool.budget_pages}; raise kv_budget_tokens"
                )
            # Longest-prefix probe: cached pages shrink the reservation
            # to the fresh suffix, host-parked pages add unpark pages.
            probe = MatchProbe(0, 0)
            if kind == "new" and self.prefix_cache is not None:
                probe = self.prefix_cache.probe(self._prompt_tuple(timed))
                if probe.matched_tokens:
                    need = self.pool.pages_needed(
                        len(np.atleast_1d(timed.request.prompt))
                        + timed.request.max_new_tokens
                        - probe.matched_tokens)
            extra = self.pool.pages_needed(probe.unpark_tokens)
            while self._pages_in_use() + need + extra > self.pool.budget_pages:
                deficit = (self._pages_in_use() + need + extra
                           - self.pool.budget_pages)
                if (self.prefix_cache is not None
                        and self.prefix_cache.evict_pages(
                            deficit, clock, protect=probe.nodes) > 0):
                    continue
                if self._make_room(active, timed, clock,
                                   pages_needed=need + extra):
                    continue
                if probe.matched_tokens:
                    # Reuse itself is what blocks placement (the pinned
                    # prefix plus the suffix exceed what preemption can
                    # free): fall back to a no-reuse admission.
                    probe = MatchProbe(0, 0)
                    need = self._request_pages(timed)
                    extra = 0
                    continue
                return
            if kind == "resume":
                self._resume(ref, clock)
                active.append(ref)
                continue
            del pending[ref]
            prompt = np.atleast_1d(np.asarray(timed.request.prompt))
            result = self.session.generate(timed.request)  # real tokens
            matched = 0
            if probe.matched_tokens:
                matched, unparked = self.prefix_cache.acquire(
                    self._prompt_tuple(timed), clock)
                if unparked:
                    self._tier_swap_in(timed, unparked, clock)
            self._observe_session(timed, clock)
            if self.session_stats is not None:
                self.session_stats.prompt_tokens_total += len(prompt)
                if matched:
                    self.session_stats.prefix_hits += 1
                    self.session_stats.prefill_tokens_avoided += matched
                else:
                    self.session_stats.prefix_misses += 1
            slot = self.pool.allocate()
            self._reserved_pages += need
            # KV pages fill as prefill progresses: the monolithic pass
            # appends the whole prompt in the admission iteration, the
            # chunked scheduler one chunk share at a time.  A cached
            # prefix counts as already prefilled -- its pages are live
            # cache references, so only the suffix enters this slot.
            active.append(_InFlight(
                timed=timed, slot=slot, reserved_pages=need,
                tokens=result.tokens, start_us=clock,
                context_len=matched, prompt_len=len(prompt),
                prefill_target=len(prompt),
                prefilled=matched, shared_tokens=matched,
            ))

    # -- session tier: swap-in pricing, prediction, release ------------------

    def _tier_swap_in(self, timed: TimedRequest, unparked: int,
                      clock: float) -> None:
        """Price the swap-in of ``unparked`` host-parked prefix tokens.

        The transfer crosses the (possibly fault-degraded) PCIe link at
        :func:`~repro.sched.kv_offload.kv_page_transfer_us` pricing.
        With prefetch on and a think-time prediction for the session,
        the transfer is modelled as launched ahead of the predicted
        turn (never before the session's previous turn finished), so an
        accurate prediction hides the transfer entirely -- only the
        non-hidden remainder stalls the serving clock, accumulated in
        ``_tier_stall_us`` exactly like preemption swap traffic.  A turn
        arriving *before* the scheduled prefetch launch degrades to an
        on-demand swap-in starting now, never a wait for the schedule.
        """
        xfer = kv_page_transfer_us(self.session.costs.preset, unparked,
                                   self._link_at(clock))
        sid = timed.session_id
        if (self.kv_tier is not None and self.kv_tier.prefetch
                and sid is not None and sid in self._predicted_next):
            start = max(self._session_last_finish.get(sid, 0.0),
                        self._predicted_next[sid] - xfer)
            start = min(start, clock)
        else:
            start = clock
        stall = max(0.0, start + xfer - clock)
        ss = self.session_stats
        if stall == 0.0:
            ss.prefetch_hits += 1
        ss.swap_in_stall_us += stall
        self._tier_stall_us += stall

    def _observe_session(self, timed: TimedRequest, clock: float) -> None:
        """Update the session's think-time EWMA from this turn's arrival."""
        sid = timed.session_id
        if sid is None or self.kv_tier is None:
            return
        last = self._session_last_finish.get(sid)
        if last is None:
            return
        think = max(0.0, timed.arrival_us - last)
        prev = self._session_think.get(sid)
        alpha = self.kv_tier.think_ewma_alpha
        self._session_think[sid] = (
            think if prev is None else alpha * think + (1 - alpha) * prev)

    def _predict_next_turn(self, a: _InFlight, clock: float) -> None:
        """At turn finish, predict the session's next arrival (if any EWMA)."""
        sid = a.timed.session_id
        if sid is None or self.kv_tier is None:
            return
        self._session_last_finish[sid] = clock
        think = self._session_think.get(sid)
        if think is not None:
            self._predicted_next[sid] = clock + think

    def _release_prefix(self, a: _InFlight, clock: float,
                        insert: bool) -> None:
        """Insert the finished prompt into the cache, then drop its pins.

        Insert runs first (``insert=False`` for shed/timed-out requests)
        so the request's own references protect its shared prefix while
        the insert makes room; the new node may claim at most the pages
        left over after every live reservation and the cache's current
        footprint.
        """
        if self.prefix_cache is None:
            return
        prompt = self._prompt_tuple(a.timed)
        if insert:
            headroom = (self.pool.budget_pages - self._reserved_pages
                        - self.prefix_cache.gpu_pages)
            self.prefix_cache.insert(prompt, clock,
                                     max_new_pages=max(0, headroom))
        if a.shared_tokens:
            self.prefix_cache.release(prompt, a.shared_tokens, clock)

    def _sync_session_stats(self) -> None:
        """Mirror the cache's cumulative counters into the run stats."""
        ss = self.session_stats
        c = self.prefix_cache
        ss.inserted_tokens = c.inserted_tokens
        ss.evicted_tokens = c.evicted_tokens
        ss.parked_tokens = c.parked_tokens
        ss.unparked_tokens = c.unparked_tokens
        ss.dropped_host_tokens = c.dropped_host_tokens
        # Park (swap-out) runs off the critical path; only swap-in ever
        # stalls the clock.  Bytes are priced at the preemption-swap
        # unit, so tier and preemption traffic are directly comparable.
        ss.swap_out_bytes = self.costs.kv_swap_bytes(c.parked_tokens)
        ss.swap_in_bytes = self.costs.kv_swap_bytes(c.unparked_tokens)
        ss.peak_host_tokens = max(ss.peak_host_tokens, c.host_tokens)
        ss.peak_gpu_cached_tokens = max(ss.peak_gpu_cached_tokens,
                                        c.gpu_tokens)

    # -- serving loop -------------------------------------------------------

    def replay(self, workload: list[TimedRequest]) -> ServingStats:
        """Serve a workload with continuous batching; returns aggregate stats."""
        if not workload:
            raise ConfigError("empty workload")
        # Stack with the earliest arrival on top (pop from the end).
        pending = sorted(workload, key=lambda t: -t.arrival_us)
        active: list[_InFlight] = []
        clock = 0.0

        decode_timeout = (self.resilience.decode_timeout_us
                          if self.resilience is not None else None)
        while pending or active or self._preempted:
            self._shed_stale(pending, clock)
            if decode_timeout is not None and self._preempted:
                # Preempted requests age against the same decode deadline
                # as running ones (measured from first admission): a
                # victim parked past the timeout is shed, not resumed.
                self._shed_stalled_preempted(clock, decode_timeout)
            if not pending and not active and not self._preempted:
                break
            self._admit(pending, active, clock)
            # Swap-out/swap-in PCIe traffic from this admission round
            # stalls the serving clock before any prefill/decode work.
            if self._preempt_stall_us:
                clock += self._preempt_stall_us
                self._preempt_stall_us = 0.0
            # Host-tier swap-in traffic from this admission round stalls
            # the clock too (only the prefetch-unhidden remainder).
            if self._tier_stall_us:
                clock += self._tier_stall_us
                self._tier_stall_us = 0.0
            if self.kv_tier is not None:
                # Parking runs off the critical path: idle sessions'
                # pages drain to host DRAM without stalling the clock.
                self.prefix_cache.park_idle(clock)
            if not active:
                blocked = ((pending and pending[-1].arrival_us <= clock)
                           or (not pending and self._preempted))
                if blocked:
                    # Nothing in flight, yet the best candidate could
                    # not be placed: only prefix-cache pages can be in
                    # the way.  Drain the cache and retry; a candidate
                    # blocked even then can never be placed.
                    if (self.prefix_cache is not None
                            and self.prefix_cache.evict_pages(
                                self.pool.budget_pages, clock) > 0):
                        continue
                    raise KVCacheError(
                        "admission deadlock: prefix pages pinned by "
                        "preempted requests exceed the KV budget")
                if not pending:
                    break
                # Nothing in flight and nothing admissible: jump to the
                # next arrival (the budget check above guarantees any
                # single request fits an empty pool).
                clock = pending[-1].arrival_us
                continue
            if decode_timeout is not None:
                # Load shedding for requests stuck mid-prefill: they hold
                # KV pages without emitting, so a stalled prefill can
                # starve admission exactly like a runaway decode.
                active = self._shed_stalled_prefills(active, clock,
                                                     decode_timeout)
                if not active:
                    continue

            prefill_us, chunk_tokens, assignments = self._plan_prefill(active)
            clock += prefill_us
            decoding = [a for a in active if a.decodable]

            # One iteration: every decodable request emits a token, and
            # (in chunked mode) up to chunk_tokens prompt tokens prefill
            # alongside.  Requests completing prefill via a chunk become
            # decodable next iteration; the monolithic pass above already
            # marked its requests decodable this iteration.
            clock += self._decode_step_us(
                [a.context_len for a in decoding], clock,
                chunk_tokens=chunk_tokens)
            self._iteration += 1
            for a, share in assignments:
                self.pool.append_placeholder(a.slot, share)
                a.prefilled += share
                a.context_len += share
            finished: set[int] = set()
            for a in decoding:
                a.emitted += 1
                a.context_len += 1
                self.pool.append_placeholder(a.slot, 1)
                if a.emitted == 1:
                    a.first_token_us = clock
                if a.emitted >= len(a.tokens):
                    self._finish(a, clock)
                    finished.add(id(a))
                elif (decode_timeout is not None
                      and clock - a.start_us > decode_timeout):
                    # Load shedding: cut off a request decoding past its
                    # deadline; its pages free immediately for admission.
                    self.fault_stats.timed_out_requests += 1
                    self._finish(a, clock, timed_out=True)
                    finished.add(id(a))
            self.timeline.record(
                clock, batch_size=len(active),
                kv_used_tokens=self.pool.used_tokens,
                n_prefilling=sum(1 for a in active if not a.decodable),
                chunk_tokens=chunk_tokens,
                n_preempted=len(self._preempted),
                graph_capture_us=self._last_graph_capture_us,
                prefix_cached_tokens=(self.prefix_cache.gpu_tokens
                                      if self.prefix_cache is not None
                                      else 0),
                host_parked_tokens=(self.prefix_cache.host_tokens
                                    if self.prefix_cache is not None
                                    else 0))
            if self.session_stats is not None:
                self._sync_session_stats()
            if finished:
                active = [a for a in active if id(a) not in finished]
            if self._controller is not None:
                # Live knob mutation at the iteration boundary: the
                # controller observes this iteration's signals; any
                # returned override installs a validated replacement
                # config that the next iteration's planning reads.
                arrived = sum(1 for t in pending if t.arrival_us <= clock)
                moves = self._controller.tick(clock, self.stats,
                                              queue_depth=arrived)
                if moves:
                    self.config = replace(self.config, **moves)
        if self.session_stats is not None:
            self._sync_session_stats()
        return self.stats

    def _chunk_budget(self, n_decoding: int) -> float:
        """This iteration's prefill token budget under the chunk policy."""
        budget = self.config.prefill_chunk_tokens
        if budget is None:
            return float("inf")     # monolithic: always fully covered
        if self.config.chunk_policy == "decode-priority":
            # Each decoding request's token counts against the shared
            # iteration budget first; prefill gets the remainder.  When
            # nothing is decodable the full budget applies, so prefill
            # always makes progress.
            return max(budget - n_decoding, 0)
        return budget

    def _plan_prefill(
        self, active: list[_InFlight],
    ) -> tuple[float, int, list[tuple[_InFlight, int]]]:
        """Plan this iteration's prefill work over the active requests.

        Returns ``(monolithic_pass_us, chunk_tokens, assignments)``.  A
        *fresh* prefill queue (no request mid-prefill) whose total
        remaining tokens fit the chunk budget runs as one monolithic
        batched pass -- the un-chunked scheduler's exact path, requests
        decodable this same iteration.  Otherwise prompt tokens are
        assigned FIFO (oldest admission first) up to the budget and the
        chunk is co-scheduled with the decode batch.
        """
        prefilling = [a for a in active if not a.decodable]
        if not prefilling:
            return 0.0, 0, []
        budget = self._chunk_budget(len(active) - len(prefilling))
        remaining = sum(a.prefill_target - a.prefilled for a in prefilling)
        if (budget >= remaining
                and all(a.prefilled == a.shared_tokens for a in prefilling)):
            # Fresh queue (nothing mid-chunk; cached prefixes count as
            # already prefilled): one monolithic pass over the fresh
            # suffixes only -- reuse composes with chunked prefill by
            # shrinking `remaining` on both paths identically.
            for a in prefilling:
                self.pool.append_placeholder(a.slot,
                                             a.prefill_target - a.prefilled)
                a.prefilled = a.prefill_target
                a.context_len = a.prefill_target
            return self.costs.batched_prefill_us(remaining), 0, []
        assignments: list[tuple[_InFlight, int]] = []
        left = budget
        for a in prefilling:
            if left <= 0:
                break
            share = int(min(a.prefill_target - a.prefilled, left))
            assignments.append((a, share))
            left -= share
        return 0.0, sum(share for _, share in assignments), assignments

    def _shed_stalled_prefills(self, active: list[_InFlight], clock: float,
                               timeout: float) -> list[_InFlight]:
        """Shed mid-prefill requests older than the decode timeout.

        A shed request emitted nothing: its timing records zero generated
        tokens with ``first_token_us`` pinned to the shed time, and its
        KV pages (including already-prefilled chunks) free immediately.
        Never fires under the monolithic scheduler -- prefill completes
        in the admission iteration there.
        """
        kept: list[_InFlight] = []
        for a in active:
            if not a.decodable and clock - a.start_us > timeout:
                self.fault_stats.timed_out_requests += 1
                a.first_token_us = clock
                self._finish(a, clock, timed_out=True)
            else:
                kept.append(a)
        return kept

    def _shed_stale(self, pending: list[TimedRequest], clock: float) -> None:
        """Shed queued requests whose wait exceeds the queue timeout.

        The timeout applies in arrival order regardless of priority
        class; each shed arrival is recorded on the stats so the goodput
        accounting window still covers it.
        """
        if self.resilience is None or self.resilience.queue_timeout_us is None:
            return
        timeout = self.resilience.queue_timeout_us
        while pending and clock - pending[-1].arrival_us > timeout:
            timed = pending.pop()
            self.fault_stats.shed_requests += 1
            self.stats.record_shed(timed.arrival_us, int(timed.priority))

    def _shed_stalled_preempted(self, clock: float, timeout: float) -> None:
        """Shed preempted requests parked past the decode timeout.

        A preempted request holds no KV pages, but its host-side swap
        stash (if any) is discarded and its timing recorded as timed out
        -- tokens emitted before the preemption stay counted, and
        ``first_token_us`` pins to the shed time when nothing was ever
        emitted.  Pages were already released at preemption, so nothing
        is freed here (freed-exactly-once).
        """
        kept: list[_InFlight] = []
        for a in self._preempted:
            if clock - a.start_us > timeout:
                self.fault_stats.timed_out_requests += 1
                self.preempt_stats.shed_while_preempted += 1
                if a.swapped:
                    self.pool.discard_swapped(a.slot)
                self._release_prefix(a, clock, insert=False)
                if a.emitted == 0:
                    a.first_token_us = clock
                self._record_timing(a, clock, timed_out=True)
            else:
                kept.append(a)
        self._preempted = kept

    def _decode_step_us(self, context_lens: list[int], clock: float,
                        chunk_tokens: int = 0) -> float:
        """Price one iteration, adding graph-capture effects when enabled.

        Without a graph cache this is exactly :meth:`_priced_step_us`.
        With one, the decode batch first pads up to its capture bucket
        (padding slots run real kernels, so the padded batch's full step
        cost is charged -- priced honestly), the step is priced, and then
        the graph for the step's shape key is looked up: a cold key pays
        a capture stall on top of the step cost (visible in TTFT/TPOT),
        a warm key replays for free.  Fault perturbations stretch task
        *durations*, not the kernel topology, so they deliberately do not
        enter the graph key -- a perturbed step replays the same graph.
        """
        self._last_graph_capture_us = 0.0
        self._last_cache_step = None
        if self.graph_cache is None:
            return self._apply_pipeline(
                self._priced_step_us(context_lens, clock, chunk_tokens),
                context_lens, chunk_tokens, clock)
        padded = list(context_lens)
        if padded:
            bucket = self.graph_cache.config.batch_bucket(len(padded))
            pad = bucket - len(padded)
            if pad:
                padded.extend([max(padded)] * pad)
                self.graph_stats.padding_tokens += pad
        cost = self._apply_pipeline(
            self._priced_step_us(padded, clock, chunk_tokens),
            padded, chunk_tokens, clock)
        key = self._graph_key(padded, chunk_tokens)
        n_kernels = self.costs.step_kernel_count(
            padded, chunk_tokens, self._last_cache_step)
        look = self.graph_cache.lookup(key, n_kernels)
        self.graph_stats.captures = self.graph_cache.captures
        self.graph_stats.replays = self.graph_cache.replays
        self.graph_stats.evictions = self.graph_cache.evictions
        if look.captured:
            self.graph_stats.capture_stall_us += look.capture_us
            self._last_graph_capture_us = look.capture_us
        return cost + look.capture_us

    def _apply_pipeline(self, cost: float, context_lens: list[int],
                        chunk_tokens: int, clock: float) -> float:
        """Reprice one iteration for the pipeline-stage split.

        ``cost * stage ratio + boundary handoffs``: the ratio carries
        whatever cache repricing, fault perturbation, and jitter the
        priced cost already absorbed (they scale the whole step), while
        the stage-boundary activation transfers are priced fresh on the
        clock's possibly fault-degraded link.  The graph caller applies
        this *before* any capture stall -- capture is a one-off host-side
        cost the stage overlap cannot hide or divide.  A no-op (returns
        ``cost`` untouched) for single-stage configs.
        """
        if self.pipeline_stats is None:
            return cost
        if not context_lens and not chunk_tokens:
            return cost
        ratio, boundary = self.costs.pipeline_factors(context_lens,
                                                      chunk_tokens)
        link = self._link_at(clock)
        xfer = sum(pcie_transfer_time_us(b, link) for b in boundary)
        staged = cost * ratio + xfer
        ps = self.pipeline_stats
        ps.staged_iterations += 1
        ps.serial_us += cost
        ps.staged_us += staged
        ps.interstage_transfer_us += xfer
        return staged

    def _graph_key(self, context_lens: list[int],
                   chunk_tokens: int) -> tuple:
        """Shape key of one captured step.

        ``(batch bucket, context bucket, chunk bucket, topology)`` --
        ``context_lens`` arrives already padded, so its length *is* the
        batch bucket.  The topology token (set by :meth:`_priced_step_us`)
        distinguishes kernel sequences the shape alone cannot: plain vs
        chunk-only vs cache-bypass vs each quantized cache outcome and
        dispatch arm.
        """
        if context_lens:
            batch_bucket = len(context_lens)
            ctx_bucket = BatchCostModel._bucket(max(context_lens),
                                               BatchCostModel.CTX_BUCKETS)
        else:
            batch_bucket = ctx_bucket = 0
        chunk_bucket = (BatchCostModel._bucket(chunk_tokens,
                                               BatchCostModel.CHUNK_BUCKETS)
                        if chunk_tokens else 0)
        return (batch_bucket, ctx_bucket, chunk_bucket,
                self._last_step_topology)

    def _priced_step_us(self, context_lens: list[int], clock: float,
                        chunk_tokens: int = 0) -> float:
        """Price one iteration, consulting the expert cache if any.

        ``chunk_tokens > 0`` marks a hybrid iteration: the decode batch's
        pricing flows exactly as below but through the ``hybrid_*``
        variants, which add the chunk's marginal expert work on top.  An
        empty ``context_lens`` (chunk-only iteration: nothing decodable
        yet) skips every cache interaction -- prefill streams each active
        expert from DRAM regardless of GPU residency, so the cache
        neither observes routing nor uploads -- and records a
        zero-activity cache point to keep the timelines aligned.

        With a cache attached, the iteration's per-expert token counts
        (from the injected routing stream, or the cost model's dispatch
        summary) update the EWMA residency state; hits are priced as GPU
        expert work, misses stay on the CPU, and planned uploads prefetch
        behind the attention window with only the non-overlapped
        remainder stalling the step.

        With a fault injector attached, the whole iteration is priced
        under the perturbation active at ``clock`` (same degraded link
        for upload stall accounting), planned uploads can fail in
        transit (handled per the resilience policy -- see the class
        docstring), and the iteration cost picks up this step's clock
        jitter last, outside the memoized pricing.
        """
        pert = (self.fault_injector.perturbation_at(clock, self._iteration)
                if self.fault_injector is not None else IDENTITY_PERTURBATION)
        if not context_lens:
            self._last_step_topology = ("chunk-only",)
            cost = (self.costs.perturbed_hybrid_step_us([], chunk_tokens,
                                                        pert)
                    * pert.jitter_scale)
            if self.cache_timeline is not None:
                self.cache_timeline.record(
                    clock + cost, hit_tokens=0, miss_tokens=0, uploads=0,
                    evictions=0, bytes_transferred=0.0, stall_us=0.0,
                )
            return cost
        if self.expert_cache is None:
            self._last_step_topology = ("plain",)
            if chunk_tokens:
                return (self.costs.perturbed_hybrid_step_us(
                            context_lens, chunk_tokens, pert)
                        * pert.jitter_scale)
            return (self.costs.perturbed_decode_step_us(context_lens, pert)
                    * pert.jitter_scale)
        if self._degradation is not None and self._degradation.bypassing:
            self._last_step_topology = ("bypass",)
            return self._degraded_step_us(context_lens, clock, pert,
                                          chunk_tokens)

        if self._routing_stream is not None:
            counts = np.asarray(
                self._routing_stream(self._iteration, len(context_lens)))
        else:
            counts = np.asarray(
                self.costs.dispatch_summary(context_lens).expert_token_counts)
        window = (self.costs.hybrid_attn_window_us(context_lens, chunk_tokens)
                  if chunk_tokens
                  else self.costs.attn_window_us(context_lens))
        link = pert.degrade_link(self.expert_cache.interconnect)
        result = self.expert_cache.step(counts, overlap_window_us=window,
                                        link=link)

        extra_stall = 0.0
        had_failures = False
        if self.resilience is not None and self._retries:
            stall, abandoned = self._process_retries(clock, window, link)
            extra_stall += stall
            had_failures = had_failures or abandoned
        failed: tuple[tuple[int, int], ...] = ()
        if self.fault_injector is not None and result.uploads:
            failed = self.fault_injector.failed_uploads(
                clock, self._iteration, result.uploads)
        if failed:
            had_failures = True
            self.fault_stats.upload_failures += len(failed)
            for layer, expert in failed:
                self.expert_cache.fail_upload(layer, expert)
            if self.resilience is None:
                extra_stall += self._naive_retry_stall_us(clock, failed, link)
            else:
                retry = self.resilience.retry
                for layer, expert in failed:
                    due = clock + retry.delay_us(
                        1, key=(self._iteration, layer, expert))
                    self._retries.append(RetryState(layer, expert, 1, due))

        self._last_cache_step = result
        if result.total_tokens:
            ck, _ = self.costs._cached_key_works(context_lens, result)
            self._last_step_topology = ("cached", *ck)
            if self.graph_stats is not None:
                dispatch = self.costs.gemm_dispatch_for(context_lens, result)
                if dispatch is not None:
                    if dispatch.mode == "grouped":
                        self.graph_stats.grouped_gemm_iterations += 1
                        self.graph_stats.grouped_gemm_launches_saved += (
                            max(0, result.n_hit_experts - 1)
                            * self.session.costs.preset.n_moe_layers)
                    else:
                        self.graph_stats.per_expert_iterations += 1
        else:
            self._last_step_topology = ("cached-idle",)

        if chunk_tokens:
            cost = self.costs.perturbed_cached_hybrid_step_us(
                context_lens, chunk_tokens, result, pert)
        else:
            cost = self.costs.perturbed_cached_step_us(context_lens, result,
                                                       pert)
        cost += extra_stall
        if extra_stall:
            self.fault_stats.fault_stall_us += extra_stall
        cost *= pert.jitter_scale
        self.cache_timeline.record(
            clock + cost,
            hit_tokens=result.hit_tokens, miss_tokens=result.miss_tokens,
            uploads=len(result.uploads), evictions=len(result.evictions),
            bytes_transferred=result.bytes_transferred,
            stall_us=result.stall_us,
        )
        if self._degradation is not None:
            self._degradation.observe(had_failures, clock, self.fault_stats)
            if self._degradation.bypassing and self._retries:
                # Entering degraded mode orphans in-flight retries: the
                # cache is bypassed, so completing them buys nothing.
                self.fault_stats.retries_abandoned += len(self._retries)
                self._retries.clear()
        return cost

    def _degraded_step_us(self, context_lens: list[int], clock: float,
                          pert: StepPerturbation,
                          chunk_tokens: int = 0) -> float:
        """One cache-bypassed iteration: all routed experts priced on CPU.

        Graceful degradation under a persistently failing cache: no
        residency update, no uploads attempted (so no upload faults), the
        plain CPU-expert pricing applies (hybrid-priced when a chunk is
        co-scheduled).  Ticks the degradation cooldown and records a
        zero-activity cache timeline point.
        """
        self._degradation.tick_bypass()
        self.fault_stats.degraded_iterations += 1
        base = (self.costs.perturbed_hybrid_step_us(context_lens,
                                                    chunk_tokens, pert)
                if chunk_tokens
                else self.costs.perturbed_decode_step_us(context_lens, pert))
        cost = base * pert.jitter_scale
        self.cache_timeline.record(
            clock + cost, hit_tokens=0, miss_tokens=0, uploads=0,
            evictions=0, bytes_transferred=0.0, stall_us=0.0,
        )
        return cost

    def _process_retries(self, clock: float, window_us: float,
                         link: InterconnectSpec) -> tuple[float, bool]:
        """Run upload retries whose backoff expired; returns (stall, gave_up).

        A successful retry re-admits the expert (if it still fits) and
        pays only the non-overlapped remainder of its transfer -- it
        rides the prefetch window like a planned upload.  A failing
        retry re-enqueues with the next backoff delay until the policy's
        attempt cap, then is abandoned (feeding the degradation
        tracker).
        """
        due = [r for r in self._retries if r.due_us <= clock]
        if not due:
            return 0.0, False
        keep = [r for r in self._retries if r.due_us > clock]
        retry = self.resilience.retry
        expert_bytes = self.expert_cache.config.expert_bytes
        stall = 0.0
        abandoned = False
        for r in due:
            self.fault_stats.record_retry(r.attempt)
            fails = self.fault_injector.retry_fails(
                clock, self._iteration, r.layer, r.expert, r.attempt)
            if not fails:
                self.fault_stats.retries_succeeded += 1
                if self.expert_cache.admit(r.layer, r.expert):
                    stall += overlapped_transfer_stall_us(
                        expert_bytes, link, window_us)
            elif r.attempt >= retry.max_retries:
                self.fault_stats.retries_abandoned += 1
                abandoned = True
            else:
                nxt = r.attempt + 1
                keep.append(RetryState(
                    r.layer, r.expert, nxt,
                    clock + retry.delay_us(
                        nxt, key=(self._iteration, r.layer, r.expert)),
                ))
        self._retries = keep
        return stall, abandoned

    def _naive_retry_stall_us(
        self, clock: float, failed: tuple[tuple[int, int], ...],
        link: InterconnectSpec,
    ) -> float:
        """Blocking synchronous re-uploads: the naive arm's failure mode.

        Every failed expert is re-uploaded immediately and synchronously
        -- each attempt stalls the *whole batch* for the full PCIe
        transfer on the (possibly degraded) link, compounding exactly the
        congestion that failed the upload in the first place.
        """
        expert_bytes = self.expert_cache.config.expert_bytes
        xfer = pcie_transfer_time_us(expert_bytes, link)
        stall = 0.0
        for layer, expert in failed:
            for attempt in range(1, NAIVE_UPLOAD_ATTEMPTS + 1):
                self.fault_stats.record_retry(attempt)
                stall += xfer
                if not self.fault_injector.retry_fails(
                        clock, self._iteration, layer, expert, attempt):
                    self.fault_stats.retries_succeeded += 1
                    self.expert_cache.admit(layer, expert)
                    break
            else:
                self.fault_stats.retries_abandoned += 1
        return stall

    def _finish(self, a: _InFlight, clock: float,
                timed_out: bool = False) -> None:
        """Release an active request's pages and record its timing.

        With a prefix cache, the finished prompt is inserted (so the
        session's next turn can reuse it) before the request's own
        prefix pins are released; timed-out requests release without
        inserting.  The session's next-turn prediction updates here --
        finish time is when the user starts thinking.
        """
        self.pool.free(a.slot)
        self._reserved_pages -= a.reserved_pages
        self._release_prefix(a, clock, insert=not timed_out)
        self._predict_next_turn(a, clock)
        self._record_timing(a, clock, timed_out)

    def _record_timing(self, a: _InFlight, clock: float,
                       timed_out: bool = False) -> None:
        """Record one request's lifecycle timing (no page bookkeeping)."""
        self.stats.add(RequestTiming(
            arrival_us=a.timed.arrival_us,
            start_us=a.start_us,
            first_token_us=a.first_token_us,
            finish_us=clock,
            prompt_tokens=len(np.atleast_1d(a.timed.request.prompt)),
            generated_tokens=a.emitted,
            timed_out=timed_out,
            priority=int(a.timed.priority),
        ))
