"""End-to-end throughput engine: lower a model onto a machine and measure.

`KTRANSFORMERS` is the system profile of this paper (hybrid AMX/AVX-512
kernels, one CUDA graph per step, NUMA-aware tensor parallelism, async
CPU-GPU overlap).  ``run_prefill`` / ``run_decode`` execute any
:class:`~repro.baselines.base.SystemProfile` on any Table 1 preset and
machine, returning throughput plus the full execution trace -- every
figure in Section 6 is produced through these two entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..baselines.base import SystemProfile
from ..errors import ConfigError
from ..hw.event_sim import Simulator
from ..hw.spec import MachineSpec
from ..hw.trace import Trace
from ..hw.units import tokens_per_second
from ..kernels.backend import (
    KT_AMX_AVX512_BACKEND,
    KernelBackend,
    resolve_backend,
)
from ..model.presets import ModelPreset
from ..moe.numa import NumaStrategy
from ..sched.cuda_graph import LaunchMode
from ..sched.decode import DecodeScheduleConfig, simulate_decode
from ..sched.prefill import simulate_prefill
from ..sched.workload import (
    BatchedDispatchSummary,
    DecodeLayerWork,
    HybridChunkWork,
    PrefillLayerWork,
    ari_selection_for,
    batched_decode_layer_work,
    decode_layer_work,
    hybrid_chunk_layer_work,
    prefill_layer_work,
)
from ..tensor.dtypes import BF16, DType

# The paper system's kernels come off the registry's default backend --
# the same KT_AMX/KT_AVX512 profile objects as always, now with a single
# owner.
KTRANSFORMERS = SystemProfile(
    name="ktransformers",
    display_name="KTransformers",
    prefill_kernel=KT_AMX_AVX512_BACKEND.throughput_profile,
    decode_kernel=KT_AMX_AVX512_BACKEND.latency_profile,
    launch_mode=LaunchMode.CUDA_GRAPH,
    numa_strategy=NumaStrategy.TENSOR_PARALLEL,
    overlap_cpu_gpu=True,
    dynamic_scheduling=True,
    decode_kernels_per_layer=45,
    prefill_kernels_per_layer=45,
)


@dataclass
class ThroughputResult:
    """Outcome of one simulated prefill or decode run."""

    system: str
    model: str
    phase: str
    tokens: int
    elapsed_us: float
    trace: Trace

    @property
    def tokens_per_s(self) -> float:
        return tokens_per_second(self.tokens, self.elapsed_us)

    def utilization(self, resource: str) -> float:
        return self.trace.utilization(resource)


def _dense_decode_work(moe_work: DecodeLayerWork) -> DecodeLayerWork:
    """A dense (non-MoE) layer: GPU-only, no routed experts."""
    return DecodeLayerWork(
        gpu_attn_us=moe_work.gpu_attn_us,
        gpu_shared_us=0.0,
        cpu_routed_us=0.0,
        transfer_bytes=0.0,
        n_gpu_kernels=moe_work.n_gpu_kernels,
    )


def decode_works(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType,
    context_len: int,
    batch_size: int = 1,
    backend: "str | KernelBackend | None" = None,
) -> list[DecodeLayerWork]:
    """Per-layer decode work: dense layers first, then MoE layers.

    ``backend`` selects a registry :class:`KernelBackend` (by name or
    object) for the kernel lanes and launch constants; ``None`` keeps the
    system profile's kernels, which the default backend matches
    bit-for-bit.
    """
    backend = resolve_backend(backend)
    if backend is not None:
        machine = backend.apply_launch(machine)
    # ARI-aware dispatch also applies to batched decode: large batches push
    # per-expert token counts past the latency/throughput crossover.
    selection = ari_selection_for(machine, system.decode_kernel,
                                  system.prefill_kernel, None, backend)
    tokens_per_expert = batch_size * preset.top_k / preset.n_experts
    kernel = selection.select_profile(tokens_per_expert)
    moe = decode_layer_work(
        preset, machine, dtype, context_len,
        cpu_profile=kernel,
        numa_strategy=system.numa_strategy,
        kernels_per_layer=system.decode_kernels_per_layer,
        batch_size=batch_size,
    )
    dense = _dense_decode_work(moe)
    return [dense] * preset.n_dense_layers + [moe] * preset.n_moe_layers


def run_decode(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType = BF16,
    n_tokens: int = 32,
    context_len: int = 32,
    n_deferred: int | None = None,
    batch_size: int = 1,
    backend: "str | KernelBackend | None" = None,
) -> ThroughputResult:
    """Simulate decoding ``n_tokens`` steps of ``batch_size`` sequences.

    ``n_deferred`` enables Expert Deferral (None or 0 disables it; the
    paper's per-model defaults live on the preset).  ``backend`` selects a
    registry :class:`KernelBackend` for kernels and launch constants.
    Reported throughput counts ``n_tokens * batch_size`` generated tokens.
    """
    backend = resolve_backend(backend)
    if backend is not None:
        machine = backend.apply_launch(machine)
    works = decode_works(system, preset, machine, dtype, context_len,
                         batch_size=batch_size, backend=backend)
    config = DecodeScheduleConfig(
        launch_mode=system.launch_mode,
        overlap_cpu_gpu=system.overlap_cpu_gpu,
        top_k=preset.top_k,
        n_deferred=n_deferred or 0,
    )
    sim = simulate_decode(works, config, machine, n_tokens)
    return _result(system, preset, "decode", n_tokens * batch_size, sim)


def batched_decode_works(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType,
    context_lens: Sequence[int],
    ari_threshold: int | None = None,
    seed: int = 0,
    backend: "str | KernelBackend | None" = None,
) -> tuple[list[DecodeLayerWork], BatchedDispatchSummary]:
    """Per-layer work of one multi-request decode step (continuous batching).

    Unlike :func:`decode_works`, kernel dispatch happens per expert over
    the batch's *aggregated* token counts, so a big enough batch shifts
    individual experts from the latency to the throughput kernel even
    while others stay below the crossover.  ``backend`` selects a
    registry backend for the lanes and launch constants; ``None`` keeps
    the system profile's kernels.
    """
    backend = resolve_backend(backend)
    if backend is not None:
        machine = backend.apply_launch(machine)
    kwargs = {} if ari_threshold is None else {"ari_threshold": ari_threshold}
    moe, summary = batched_decode_layer_work(
        preset, machine, dtype, context_lens,
        avx512_profile=system.decode_kernel,
        amx_profile=system.prefill_kernel,
        numa_strategy=system.numa_strategy,
        kernels_per_layer=system.decode_kernels_per_layer,
        seed=seed,
        backend=backend,
        **kwargs,
    )
    dense = _dense_decode_work(moe)
    works = [dense] * preset.n_dense_layers + [moe] * preset.n_moe_layers
    return works, summary


def hybrid_chunk_works(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType,
    chunk_tokens: int,
    batch_size: int,
    ari_threshold: int | None = None,
    seed: int = 0,
    backend: "str | KernelBackend | None" = None,
) -> tuple[list[HybridChunkWork], BatchedDispatchSummary]:
    """Per-layer marginal work of piggybacking a prefill chunk on decode.

    Lowers :func:`repro.sched.workload.hybrid_chunk_layer_work` across the
    preset's layer stack: dense layers carry only the chunk's attention
    (no routed experts), MoE layers carry the chunk's marginal
    routed-expert time over a ``batch_size``-request decode batch.  Merge
    the result with :func:`batched_decode_works` output via
    :func:`repro.sched.workload.merge_hybrid_work` to price a mixed
    iteration; ``batch_size == 0`` prices a chunk-only iteration.
    ``backend`` selects a registry backend; ``None`` keeps the system
    profile's kernels.
    """
    backend = resolve_backend(backend)
    if backend is not None:
        machine = backend.apply_launch(machine)
    kwargs = {} if ari_threshold is None else {"ari_threshold": ari_threshold}
    moe, summary = hybrid_chunk_layer_work(
        preset, machine, dtype, chunk_tokens, batch_size,
        avx512_profile=system.decode_kernel,
        amx_profile=system.prefill_kernel,
        numa_strategy=system.numa_strategy,
        kernels_per_layer=system.decode_kernels_per_layer,
        seed=seed,
        backend=backend,
        **kwargs,
    )
    dense = HybridChunkWork(
        gpu_attn_us=moe.gpu_attn_us,
        gpu_shared_us=0.0,
        cpu_routed_us=0.0,
        transfer_bytes=0.0,
        n_gpu_kernels=moe.n_gpu_kernels,
    )
    works = [dense] * preset.n_dense_layers + [moe] * preset.n_moe_layers
    return works, summary


def run_batched_decode(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType = BF16,
    n_tokens: int = 8,
    context_lens: Sequence[int] = (32,),
    n_deferred: int | None = None,
    ari_threshold: int | None = None,
    backend: "str | KernelBackend | None" = None,
) -> tuple[ThroughputResult, BatchedDispatchSummary]:
    """Simulate ``n_tokens`` continuous-batching decode iterations.

    Each iteration decodes one token for every request in
    ``context_lens`` (one entry per request, giving its context length).
    ``backend`` selects a registry :class:`KernelBackend`.  Reported
    throughput counts ``n_tokens * len(context_lens)`` generated tokens;
    the returned summary records the per-expert ARI dispatch.
    """
    backend = resolve_backend(backend)
    if backend is not None:
        machine = backend.apply_launch(machine)
    works, summary = batched_decode_works(
        system, preset, machine, dtype, context_lens,
        ari_threshold=ari_threshold, backend=backend,
    )
    config = DecodeScheduleConfig(
        launch_mode=system.launch_mode,
        overlap_cpu_gpu=system.overlap_cpu_gpu,
        top_k=preset.top_k,
        n_deferred=n_deferred or 0,
    )
    sim = simulate_decode(works, config, machine, n_tokens)
    result = _result(system, preset, "decode",
                     n_tokens * len(context_lens), sim)
    return result, summary


def run_prefill(
    system: SystemProfile,
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType = BF16,
    prompt_len: int = 1024,
    chunk_tokens: int = 2048,
    seed: int = 0,
    backend: "str | KernelBackend | None" = None,
) -> ThroughputResult:
    """Simulate prefilling a ``prompt_len``-token prompt in chunks.

    ``backend`` selects a registry :class:`KernelBackend`; ``None`` keeps
    the system profile's kernels (matched bit-for-bit by the default
    backend).
    """
    if prompt_len <= 0:
        raise ConfigError("prompt_len must be positive")
    backend = resolve_backend(backend)
    if backend is not None:
        machine = backend.apply_launch(machine)
    selection = ari_selection_for(machine, system.decode_kernel,
                                  system.prefill_kernel, None, backend)
    chunks: list[int] = []
    remaining = prompt_len
    while remaining > 0:
        take = min(chunk_tokens, remaining)
        chunks.append(take)
        remaining -= take

    works_per_chunk: list[list[PrefillLayerWork]] = []
    for i, size in enumerate(chunks):
        # ARI-aware dispatch (Section 3.2): short chunks route so few
        # tokens to each expert that the low-latency lane wins.
        tokens_per_expert = size * preset.top_k / preset.n_experts
        kernel = selection.select_profile(tokens_per_expert)
        moe = prefill_layer_work(
            preset, machine, dtype, size,
            cpu_profile=kernel,
            numa_strategy=system.numa_strategy,
            kernels_per_layer=system.prefill_kernels_per_layer,
            dynamic_scheduling=system.dynamic_scheduling,
            seed=seed + i,
        )
        dense = PrefillLayerWork(
            gpu_attn_us=moe.gpu_attn_us,
            gpu_shared_us=0.0,
            cpu_routed_us=0.0,
            transfer_bytes=0.0,
            n_gpu_kernels=moe.n_gpu_kernels,
        )
        works_per_chunk.append(
            [dense] * preset.n_dense_layers + [moe] * preset.n_moe_layers
        )

    sim = simulate_prefill(works_per_chunk, system.launch_mode, machine,
                           system.overlap_cpu_gpu)
    return _result(system, preset, "prefill", prompt_len, sim)


def _result(system: SystemProfile, preset: ModelPreset, phase: str,
            tokens: int, sim: Simulator) -> ThroughputResult:
    return ThroughputResult(
        system=system.name,
        model=preset.name,
        phase=phase,
        tokens=tokens,
        elapsed_us=sim.now,
        trace=Trace.from_simulator(sim),
    )
