"""Learning-rate schedules for the training substrate."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class ConstantLR:
    """No schedule: the optimizer's base rate throughout."""

    base_lr: float

    def __post_init__(self) -> None:
        if self.base_lr <= 0:
            raise ConfigError("base_lr must be positive")

    def lr_at(self, step: int, total_steps: int) -> float:
        return self.base_lr


@dataclass(frozen=True)
class WarmupCosineLR:
    """Linear warmup then cosine decay to ``min_lr`` -- the standard LLM
    pretraining shape, scaled down."""

    base_lr: float
    warmup_steps: int
    min_lr: float = 0.0

    def __post_init__(self) -> None:
        if self.base_lr <= 0:
            raise ConfigError("base_lr must be positive")
        if self.warmup_steps < 0:
            raise ConfigError("warmup_steps must be >= 0")
        if not 0 <= self.min_lr <= self.base_lr:
            raise ConfigError("min_lr must be in [0, base_lr]")

    def lr_at(self, step: int, total_steps: int) -> float:
        if total_steps <= 0:
            raise ConfigError("total_steps must be positive")
        if self.warmup_steps > 0 and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        span = max(total_steps - self.warmup_steps, 1)
        progress = min((step - self.warmup_steps) / span, 1.0)
        cos = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cos
