"""repro: a pure-Python reproduction of KTransformers (SOSP 2025).

CPU/GPU hybrid inference for Mixture-of-Experts models: AMX-style tiled
kernels, asynchronous CPU-GPU scheduling over a single CUDA graph,
NUMA-aware tensor parallelism, and the Expert Deferral mechanism --
implemented functionally in numpy with a calibrated discrete-event
performance simulator standing in for the paper's dual-Xeon + A100 testbed.

Quick start::

    from repro import KTRANSFORMERS, run_decode, paper_testbed, DS3
    result = run_decode(KTRANSFORMERS, DS3, paper_testbed("a100"))
    print(result.tokens_per_s)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from .baselines import FIDDLER, LLAMACPP, SystemProfile
from .core import (
    KTRANSFORMERS,
    DeferralConfig,
    DeferralEngine,
    SkippingConfig,
    SkippingEngine,
    ThroughputResult,
    autotune_deferral,
    heuristic_deferred_count,
    run_decode,
    run_prefill,
)
from .errors import ReproError
from .hw import MachineSpec, Simulator, Trace, paper_testbed
from .inject import inject, load_rules, parse_rules
from .model import (
    DS2,
    DS3,
    QW2,
    ModelConfig,
    ModelPreset,
    MoETransformer,
    preset,
    tiny_config,
)
from .tensor import BF16, FP16, FP32, INT4, INT8, dtype

__version__ = "1.0.0"

__all__ = [
    "FIDDLER", "LLAMACPP", "SystemProfile",
    "KTRANSFORMERS", "DeferralConfig", "DeferralEngine", "SkippingConfig",
    "SkippingEngine", "ThroughputResult", "autotune_deferral",
    "heuristic_deferred_count", "run_decode", "run_prefill",
    "ReproError",
    "MachineSpec", "Simulator", "Trace", "paper_testbed",
    "inject", "load_rules", "parse_rules",
    "DS2", "DS3", "QW2", "ModelConfig", "ModelPreset", "MoETransformer",
    "preset", "tiny_config",
    "BF16", "FP16", "FP32", "INT4", "INT8", "dtype",
    "__version__",
]
