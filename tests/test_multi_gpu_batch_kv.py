"""Tests for multi-GPU pipelining, batched decode, and KV offloading."""

import numpy as np
import pytest

from repro.core import KTRANSFORMERS, decode_works, run_decode
from repro.errors import ConfigError, SchedulingError
from repro.hw import Trace, paper_testbed
from repro.model import DS3, QW2, KVCache, PagedKVCache, MultiHeadAttention
from repro.sched import (
    PipelineConfig,
    gpu_kv_budget_tokens,
    kv_bytes_per_token_layer,
    kv_cache_total_bytes,
    kv_offload_step_cost,
    prefill_layer_work,
    simulate_pipelined_decode,
    simulate_pipelined_prefill,
    vram_per_stage_bytes,
)
from repro.tensor import BF16

MACHINE = paper_testbed("a100")


def _prefill_works(n_chunks=4):
    work = prefill_layer_work(
        DS3, MACHINE, BF16, 512, KTRANSFORMERS.prefill_kernel,
        KTRANSFORMERS.numa_strategy, 45,
    )
    return [[work] * 8 for __ in range(n_chunks)]


class TestPipelineConfig:
    def test_stage_assignment_balanced(self):
        cfg = PipelineConfig(2)
        stages = [cfg.stage_of(i, 8) for i in range(8)]
        assert stages == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_uneven_layers(self):
        cfg = PipelineConfig(3)
        stages = [cfg.stage_of(i, 7) for i in range(7)]
        assert stages == [0, 0, 0, 1, 1, 1, 2]
        assert max(stages) < 3

    def test_invalid(self):
        with pytest.raises(SchedulingError):
            PipelineConfig(0)

    def test_vram_split(self):
        assert vram_per_stage_bytes(40e9, PipelineConfig(2)) == 20e9
        with pytest.raises(SchedulingError):
            vram_per_stage_bytes(-1.0, PipelineConfig(2))


class TestPipelinedExecution:
    def test_prefill_uses_all_stages(self):
        sim = simulate_pipelined_prefill(_prefill_works(), MACHINE,
                                         PipelineConfig(2))
        trace = Trace.from_simulator(sim)
        assert trace.busy_time("gpu0") > 0
        assert trace.busy_time("gpu1") > 0

    def test_prefill_gpu_work_overlaps_across_stages(self):
        sim = simulate_pipelined_prefill(_prefill_works(), MACHINE,
                                         PipelineConfig(2))
        trace = Trace.from_simulator(sim)
        assert trace.overlap_time("gpu0", "gpu1") > 0

    def test_cpu_bound_prefill_does_not_scale_with_stages(self):
        """The shared CPU expert pool serializes: wall time ~ unchanged."""
        t1 = simulate_pipelined_prefill(_prefill_works(), MACHINE,
                                        PipelineConfig(1)).now
        t2 = simulate_pipelined_prefill(_prefill_works(), MACHINE,
                                        PipelineConfig(2)).now
        assert t2 < t1 * 1.05
        assert t2 > t1 * 0.7

    def test_decode_latency_not_improved_by_pipeline(self):
        works = decode_works(KTRANSFORMERS, DS3, MACHINE, BF16, 128)[:8]
        t1 = simulate_pipelined_decode(works, MACHINE, PipelineConfig(1), 2).now
        t2 = simulate_pipelined_decode(works, MACHINE, PipelineConfig(2), 2).now
        assert t2 >= t1 * 0.99  # serial traversal; extra hops cost a bit

    def test_empty_inputs_rejected(self):
        with pytest.raises(SchedulingError):
            simulate_pipelined_prefill([], MACHINE, PipelineConfig(1))
        with pytest.raises(SchedulingError):
            simulate_pipelined_decode([], MACHINE, PipelineConfig(1), 1)


class TestBatchedDecode:
    def test_small_batches_gain_little(self):
        """MoE batching is weak at small batches: batch 8 activates ~5x
        more experts (8*top_k assignments over 64 experts), so per-step
        weight traffic grows almost as fast as the batch."""
        r1 = run_decode(KTRANSFORMERS, QW2, MACHINE, BF16, n_tokens=4,
                        batch_size=1)
        r8 = run_decode(KTRANSFORMERS, QW2, MACHINE, BF16, n_tokens=4,
                        batch_size=8)
        assert r8.tokens == 32
        assert 1.3 <= r8.tokens_per_s / r1.tokens_per_s <= 3.0

    def test_large_batches_amortize_expert_weights(self):
        """Once every expert is active anyway (batch*top_k >> n_experts),
        extra sequences ride along nearly free."""
        r8 = run_decode(KTRANSFORMERS, QW2, MACHINE, BF16, n_tokens=2,
                        batch_size=8)
        r64 = run_decode(KTRANSFORMERS, QW2, MACHINE, BF16, n_tokens=2,
                         batch_size=64)
        assert r64.tokens_per_s > 3 * r8.tokens_per_s
        # Per-step time grows far slower than the 8x batch growth.
        assert r64.elapsed_us < r8.elapsed_us * 3

    def test_large_batch_flips_kernel_to_amx(self):
        """QW-2: batch 64 -> 8 tokens/expert -> prefill (AMX) kernel."""
        small = decode_works(KTRANSFORMERS, QW2, MACHINE, BF16, 32,
                             batch_size=1)
        # The work values differ if a different kernel was selected.
        big = decode_works(KTRANSFORMERS, QW2, MACHINE, BF16, 32,
                           batch_size=64)
        assert big[-1].cpu_routed_us != small[-1].cpu_routed_us * 64

    def test_invalid_batch_rejected(self):
        from repro.sched import decode_layer_work
        from repro.moe import NumaStrategy
        from repro.hw import KT_AVX512
        with pytest.raises(ValueError):
            decode_layer_work(QW2, MACHINE, BF16, 32, KT_AVX512,
                              NumaStrategy.TENSOR_PARALLEL, 45, batch_size=0)


class TestPagedKVCache:
    def test_matches_contiguous_cache(self):
        rng = np.random.default_rng(0)
        plain = KVCache(2, 4)
        paged = PagedKVCache(2, 4, page_tokens=3)
        for __ in range(3):
            k = rng.standard_normal((5, 2, 4)).astype(np.float32)
            v = rng.standard_normal((5, 2, 4)).astype(np.float32)
            plain.append(k, v)
            paged.append(k, v)
        assert np.allclose(plain.keys(), paged.keys())
        assert np.allclose(plain.values(), paged.values())
        assert len(paged) == 15
        assert paged.n_pages == 5

    def test_attention_works_over_paged_cache(self):
        rng = np.random.default_rng(1)
        attn = MultiHeadAttention(16, 4, rng=rng)
        x = rng.standard_normal((6, 16)).astype(np.float32)
        ref = attn(x, attn.make_cache())
        paged = PagedKVCache(4, 4, page_tokens=2)
        got = attn(x, paged)
        assert np.allclose(got, ref, atol=1e-5)

    def test_offload_marks_cold_pages(self):
        cache = PagedKVCache(1, 2, page_tokens=4, gpu_budget_tokens=8)
        cache.append(np.zeros((20, 1, 2)), np.zeros((20, 1, 2)))
        assert cache.gpu_tokens() == 8
        assert cache.offloaded_tokens() == 12

    def test_no_budget_keeps_all_on_gpu(self):
        cache = PagedKVCache(1, 2, page_tokens=4)
        cache.append(np.zeros((10, 1, 2)), np.zeros((10, 1, 2)))
        assert cache.offloaded_tokens() == 0

    def test_reset(self):
        cache = PagedKVCache(1, 2)
        cache.append(np.ones((3, 1, 2)), np.ones((3, 1, 2)))
        cache.reset()
        assert len(cache) == 0 and cache.n_pages == 0

    def test_bad_shapes_rejected(self):
        cache = PagedKVCache(2, 4)
        with pytest.raises(ConfigError):
            cache.append(np.zeros((1, 2, 3)), np.zeros((1, 2, 3)))
        with pytest.raises(ConfigError):
            PagedKVCache(0, 4)


class TestKVOffloadCost:
    def test_mla_cache_much_smaller(self):
        assert (kv_bytes_per_token_layer(DS3)
                < kv_bytes_per_token_layer(QW2) / 10)

    def test_total_bytes(self):
        total = kv_cache_total_bytes(DS3, 1000)
        assert total == pytest.approx(DS3.kv_rank * 2 * 1000 * DS3.n_layers)

    def test_budget_shrinks_with_weights(self):
        small = gpu_kv_budget_tokens(QW2, MACHINE, weight_bytes=10e9)
        big = gpu_kv_budget_tokens(QW2, MACHINE, weight_bytes=30e9)
        assert small > big >= 0

    def test_no_offload_within_budget(self):
        cost = kv_offload_step_cost(QW2, MACHINE, 1000, weight_bytes=16e9)
        assert cost.offloaded_tokens == 0
        assert cost.fetch_us_per_layer == 0.0

    def test_offload_cliff_beyond_budget(self):
        weights = QW2.gpu_params * 2.0
        budget = gpu_kv_budget_tokens(QW2, MACHINE, weights)
        inside = kv_offload_step_cost(QW2, MACHINE, budget, weights)
        outside = kv_offload_step_cost(QW2, MACHINE, budget * 2, weights)
        assert outside.offloaded_tokens > 0
        assert outside.total_us_per_layer > 1.5 * inside.total_us_per_layer

    def test_mla_quantized_never_offloads_at_long_context(self):
        """Int4 DS-3 weights leave enough VRAM that MLA's latent cache
        holds 100k+ tokens entirely on the GPU."""
        weights = DS3.gpu_params * DS3.quant_dtype.bytes_per_element
        cost = kv_offload_step_cost(DS3, MACHINE, 100_000, weights)
        assert cost.offloaded_tokens == 0

    def test_mha_offloads_far_earlier_than_mla(self):
        weights = 16e9
        mha_budget = gpu_kv_budget_tokens(QW2, MACHINE, weights)
        mla_budget = gpu_kv_budget_tokens(DS3, MACHINE, weights)
        assert mla_budget > 5 * mha_budget

    def test_negative_context_rejected(self):
        with pytest.raises(ConfigError):
            kv_offload_step_cost(QW2, MACHINE, -1, 1e9)
