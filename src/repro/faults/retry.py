"""Capped exponential backoff with seeded, bounded jitter.

The hardened serving path retries failed expert uploads off the critical
path; this module owns the retry *schedule* so it can be unit-pinned
exactly: ``delay(attempt) = min(cap, base * 2^(attempt-1)) * (1 + j)``
with ``j`` uniform in ``[-jitter, +jitter]`` drawn from a generator
seeded by ``(seed, key..., attempt)``.  Deterministic keys make the whole
retry timeline a pure function of the fault plan's seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigError

_BACKOFF_STREAM = 401


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff shape for failed expert uploads.

    ``max_retries`` bounds attempts per upload; ``base_us``/``cap_us``
    shape the exponential backoff; ``jitter`` is the +-fractional noise
    decorrelating retries (seeded by ``seed`` plus the caller's key, so
    it is reproducible, not random).
    """

    max_retries: int = 4
    base_us: float = 200_000.0
    cap_us: float = 2_000_000.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries <= 0:
            raise ConfigError("max_retries must be positive")
        if self.base_us <= 0 or self.cap_us < self.base_us:
            raise ConfigError("need 0 < base_us <= cap_us")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if self.seed < 0:
            raise ConfigError("seed must be >= 0")

    def delay_us(self, attempt: int, key: Sequence[int] = ()) -> float:
        """Backoff delay before retry ``attempt`` (1-based) of upload ``key``.

        Always within ``[base * 2^(a-1) * (1 - jitter),
        base * 2^(a-1) * (1 + jitter)]`` clipped at ``cap_us`` before
        jitter -- the bounds the fault-matrix tests pin.
        """
        if attempt <= 0:
            raise ConfigError("retry attempts are 1-based")
        base = min(self.cap_us, self.base_us * 2.0 ** (attempt - 1))
        if self.jitter == 0.0:
            return base
        rng = np.random.default_rng(
            [self.seed, _BACKOFF_STREAM, *(int(k) for k in key), attempt])
        return base * (1.0 + self.jitter * float(rng.uniform(-1.0, 1.0)))

    def schedule_us(self, key: Sequence[int] = ()) -> tuple[float, ...]:
        """All ``max_retries`` backoff delays for one upload key."""
        return tuple(self.delay_us(a, key)
                     for a in range(1, self.max_retries + 1))
