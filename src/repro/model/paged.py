"""Paged KV cache with optional host-memory offloading (functional).

Section 5 lists KV-cache offloading among the techniques the injection
framework enables.  This module provides the functional substrate: a
vLLM-style paged cache whose pages can live on the GPU or be *offloaded*
to host memory.  Attention math is identical wherever pages live (tested
against the contiguous cache); placement only changes the simulated cost
(see :mod:`repro.sched.kv_offload`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError

DEFAULT_PAGE_TOKENS = 16


@dataclass
class Page:
    """One fixed-size block of K/V entries."""

    keys: np.ndarray       # (page_tokens, heads, head_dim)
    values: np.ndarray
    used: int = 0
    on_gpu: bool = True


class PagedKVCache:
    """Drop-in replacement for :class:`repro.model.kvcache.KVCache`.

    Storage is a list of fixed-size pages plus a logical length; gather
    materializes the contiguous view the attention kernel consumes.  Pages
    beyond ``gpu_budget_tokens`` are marked offloaded (host-resident).
    """

    def __init__(self, n_heads: int, head_dim: int,
                 page_tokens: int = DEFAULT_PAGE_TOKENS,
                 gpu_budget_tokens: int | None = None) -> None:
        if n_heads <= 0 or head_dim <= 0 or page_tokens <= 0:
            raise ConfigError("cache dimensions must be positive")
        self.n_heads = n_heads
        self.head_dim = head_dim
        self.page_tokens = page_tokens
        self.gpu_budget_tokens = gpu_budget_tokens
        self._pages: list[Page] = []
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    def _new_page(self) -> Page:
        shape = (self.page_tokens, self.n_heads, self.head_dim)
        page = Page(keys=np.zeros(shape, dtype=np.float32),
                    values=np.zeros(shape, dtype=np.float32))
        self._pages.append(page)
        self._rebalance()
        return page

    def _rebalance(self) -> None:
        """Keep the most recent ``gpu_budget_tokens`` worth of pages on GPU."""
        if self.gpu_budget_tokens is None:
            return
        budget_pages = max(1, self.gpu_budget_tokens // self.page_tokens)
        for i, page in enumerate(self._pages):
            page.on_gpu = i >= len(self._pages) - budget_pages

    def append(self, k: np.ndarray, v: np.ndarray) -> None:
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        expected = (k.shape[0], self.n_heads, self.head_dim)
        if k.shape != expected or v.shape != expected:
            raise ConfigError(
                f"cache append shape {k.shape}/{v.shape}, expected {expected}"
            )
        for row in range(k.shape[0]):
            page = self._pages[-1] if self._pages else self._new_page()
            if page.used == self.page_tokens:
                page = self._new_page()
            page.keys[page.used] = k[row]
            page.values[page.used] = v[row]
            page.used += 1
            self._len += 1

    def keys(self) -> np.ndarray:
        return self._gather("keys")

    def values(self) -> np.ndarray:
        return self._gather("values")

    def _gather(self, field: str) -> np.ndarray:
        if not self._pages:
            return np.zeros((0, self.n_heads, self.head_dim), dtype=np.float32)
        parts = [getattr(p, field)[:p.used] for p in self._pages]
        return np.concatenate(parts, axis=0)

    def offloaded_tokens(self) -> int:
        """Tokens whose pages currently live in host memory."""
        return sum(p.used for p in self._pages if not p.on_gpu)

    def gpu_tokens(self) -> int:
        return sum(p.used for p in self._pages if p.on_gpu)

    def reset(self) -> None:
        self._pages.clear()
        self._len = 0
