"""Prefill-phase task-graph builder.

Prefill processes the whole prompt (optionally in chunks) through every
layer.  The phase is dominated by CPU expert GEMMs at high arithmetic
intensity, so the kernel choice (AMX vs AVX-512) and the work-scheduling
policy decide throughput; launch overhead matters much less than in decode
because it amortizes over thousands of tokens.  Expert Deferral is *not*
applied here (Section 4.1: during prefill nearly all experts are active in
both the immediate and deferred sets, doubling memory traffic).
"""

from __future__ import annotations

from ..errors import SchedulingError
from ..hw.event_sim import Simulator, Task
from ..hw.roofline import pcie_transfer_time_us
from ..hw.spec import MachineSpec
from .cuda_graph import GpuExecutor, LaunchMode
from .workload import PrefillLayerWork

MERGE_KERNEL_US = 4.0


def build_prefill_chunk(
    sim: Simulator,
    ex: GpuExecutor,
    works: list[PrefillLayerWork],
    machine: MachineSpec,
    overlap_cpu_gpu: bool,
    chunk_deps: list[Task],
    chunk_idx: int = 0,
) -> Task:
    """Emit one prefill chunk's task graph; returns the chunk-end task."""
    if not works:
        raise SchedulingError("prefill chunk needs at least one layer")
    cpu = sim.resource("cpu")
    pcie = sim.resource("pcie")

    ex.begin_step(deps=chunk_deps)
    prev_out: list[Task] = list(chunk_deps)
    for k, w in enumerate(works):
        tag = f"{chunk_idx}.{k}"
        attn = ex.kernel(f"attn:{tag}", w.gpu_attn_us,
                         max(1, int(w.n_gpu_kernels * 0.8)), deps=prev_out)
        if w.cpu_routed_us <= 0.0:
            prev_out = [attn]
            continue
        submit = ex.sync_point(f"submit:{tag}", deps=[attn])
        to_cpu = sim.submit(
            f"xfer:to_cpu:{tag}", pcie,
            pcie_transfer_time_us(w.transfer_bytes, machine.interconnect),
            deps=[submit],
        )
        routed = sim.submit(f"cpu:routed:{tag}", cpu, w.cpu_routed_us,
                            deps=[to_cpu])
        from_cpu = sim.submit(
            f"xfer:to_gpu:{tag}", pcie,
            pcie_transfer_time_us(w.transfer_bytes, machine.interconnect),
            deps=[routed],
        )
        sync = ex.sync_point(f"sync:{tag}", deps=[from_cpu])
        shared = ex.kernel(
            f"shared:{tag}", w.gpu_shared_us,
            max(1, int(w.n_gpu_kernels * 0.2)),
            deps=[attn] if overlap_cpu_gpu else [sync],
        )
        prev_out = [ex.kernel(f"merge:{tag}", MERGE_KERNEL_US, 1,
                              deps=[shared, sync])]
    return prev_out[0]


def simulate_prefill(
    works_per_chunk: list[list[PrefillLayerWork]],
    launch_mode: LaunchMode,
    machine: MachineSpec,
    overlap_cpu_gpu: bool,
) -> Simulator:
    """Run every prefill chunk in sequence and return the drained simulator."""
    if not works_per_chunk:
        raise SchedulingError("prefill needs at least one chunk")
    sim = Simulator()
    ex = GpuExecutor(sim, machine, launch_mode)
    deps: list[Task] = []
    for i, works in enumerate(works_per_chunk):
        end = build_prefill_chunk(sim, ex, works, machine, overlap_cpu_gpu,
                                  chunk_deps=deps, chunk_idx=i)
        deps = [end]
    sim.drain()
    return sim
