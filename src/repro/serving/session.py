"""Inference sessions: real tokens, simulated clocks.

An :class:`InferenceSession` couples the two halves of the reproduction:

- the **functional** stack generates actual tokens (optionally through the
  Expert Deferral engine), so outputs are real model behavior;
- the **performance** stack prices each phase on the simulated machine, so
  the session reports the TTFT/TPOT a Table-1-scale deployment would see.

Despite the name, a session is *not* a standalone serving loop and holds
no multi-turn state: it is the token/cost backend shared by both servers
-- the batch-1 :class:`~repro.serving.server.LocalServer` and the
iteration-level :class:`~repro.serving.continuous.
ContinuousBatchingServer` -- and every ``generate`` call is stateless.
Conversational KV state across turns (shared system prompts, earlier
turns' pages) lives in the engine's radix prefix cache
(:mod:`repro.serving.prefix_cache`), not here.

Phase costs are measured once per (prompt-length bucket) via the same
engine entry points the benchmarks use, then cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..baselines.base import SystemProfile
from ..core.deferral import DeferralConfig, DeferralEngine
from ..core.engine import KTRANSFORMERS, run_decode, run_prefill
from ..errors import ConfigError
from ..hw.spec import MachineSpec, paper_testbed
from ..model.presets import ModelPreset
from ..model.transformer import MoETransformer
from ..tensor.dtypes import BF16, DType


@dataclass(frozen=True)
class GenerationRequest:
    """One generation call."""

    prompt: np.ndarray
    max_new_tokens: int
    greedy: bool = True
    temperature: float = 1.0
    stop_token: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_new_tokens <= 0:
            raise ConfigError("max_new_tokens must be positive")
        if len(np.atleast_1d(self.prompt)) == 0:
            raise ConfigError("prompt must not be empty")


@dataclass
class GenerationResult:
    """Generated tokens plus the simulated cost of producing them."""

    tokens: np.ndarray
    prefill_us: float
    per_token_us: float

    @property
    def n_tokens(self) -> int:
        return int(len(self.tokens))

    @property
    def total_us(self) -> float:
        return self.prefill_us + self.per_token_us * self.n_tokens

    @property
    def decode_tokens_per_s(self) -> float:
        if self.per_token_us <= 0:
            return 0.0
        return 1e6 / self.per_token_us


class PhaseCostModel:
    """Caches simulated prefill/decode costs per prompt-length bucket."""

    BUCKETS = (32, 128, 512, 2048, 8192)

    def __init__(self, system: SystemProfile, preset: ModelPreset,
                 machine: MachineSpec, dtype: DType,
                 n_deferred: int = 0) -> None:
        self.system = system
        self.preset = preset
        self.machine = machine
        self.dtype = dtype
        self.n_deferred = n_deferred
        self._prefill_us: dict[int, float] = {}
        self._per_token_us: Optional[float] = None

    def _bucket(self, prompt_len: int) -> int:
        for b in self.BUCKETS:
            if prompt_len <= b:
                return b
        return self.BUCKETS[-1]

    def prefill_us(self, prompt_len: int) -> float:
        bucket = self._bucket(prompt_len)
        if bucket not in self._prefill_us:
            r = run_prefill(self.system, self.preset, self.machine,
                            self.dtype, prompt_len=bucket)
            self._prefill_us[bucket] = r.elapsed_us / bucket
        return self._prefill_us[bucket] * prompt_len

    def per_token_us(self) -> float:
        if self._per_token_us is None:
            r = run_decode(self.system, self.preset, self.machine, self.dtype,
                           n_tokens=8, n_deferred=self.n_deferred)
            self._per_token_us = r.elapsed_us / 8
        return self._per_token_us


class InferenceSession:
    """A ready-to-serve deployment of a functional model."""

    def __init__(
        self,
        model: MoETransformer,
        preset: ModelPreset,
        machine: Optional[MachineSpec] = None,
        system: SystemProfile = KTRANSFORMERS,
        dtype: DType = BF16,
        n_deferred: Optional[int] = None,
    ) -> None:
        self.model = model
        self.preset = preset
        self.machine = machine or paper_testbed("a100")
        if n_deferred is None:
            n_deferred = 0
        self.n_deferred = n_deferred
        if n_deferred > 0:
            self._engine = DeferralEngine(model, DeferralConfig(n_deferred))
        else:
            self._engine = model
        self.costs = PhaseCostModel(system, preset, self.machine, dtype,
                                    n_deferred=n_deferred)

    def generate(
        self,
        request: GenerationRequest,
        on_token: Optional[Callable[[int, float], None]] = None,
    ) -> GenerationResult:
        """Serve one request; ``on_token(token, simulated_time_us)`` streams."""
        prompt = np.atleast_1d(np.asarray(request.prompt))
        tokens = self._engine.generate(
            prompt,
            max_new_tokens=request.max_new_tokens,
            greedy=request.greedy,
            temperature=request.temperature,
            stop_token=request.stop_token,
        )
        prefill_us = self.costs.prefill_us(len(prompt))
        per_token = self.costs.per_token_us()
        if on_token is not None:
            clock = prefill_us
            for t in tokens:
                clock += per_token
                on_token(int(t), clock)
        return GenerationResult(tokens=tokens, prefill_us=prefill_us,
                                per_token_us=per_token)
