"""Weight-offloading baseline (Section 2.1's pre-Fiddler approach).

Before computation offloading, MoE systems kept expert weights in CPU
memory and **transferred the activated experts to the GPU on demand**
(Mixtral-offloading, Pre-gated MoE, ProMoE, HOBBIT...).  The paper explains
why this hits a wall: each decoded token activates top-k experts whose
weights must cross PCIe (32 GB/s), while computation offloading only moves
activations and exploits the CPU's 440 GB/s of DRAM bandwidth.

This module models that approach over the same simulator -- including an
expert cache in spare VRAM with an LRU policy -- so the crossover the paper
argues from first principles can be *measured*.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..hw.roofline import gpu_kernel_time_us, pcie_transfer_time_us
from ..hw.spec import MachineSpec
from ..model.presets import ModelPreset
from ..tensor.dtypes import DType


class ExpertCache:
    """LRU cache of expert weights resident in spare VRAM."""

    def __init__(self, capacity_experts: int) -> None:
        if capacity_experts < 0:
            raise ConfigError("cache capacity must be >= 0")
        self.capacity = capacity_experts
        self._lru: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, layer: int, expert: int) -> bool:
        """Touch (layer, expert); returns True on hit."""
        key = (layer, expert)
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if self.capacity == 0:
            return False
        if len(self._lru) >= self.capacity:
            self._lru.popitem(last=False)
        self._lru[key] = None
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class WeightOffloadResult:
    """Outcome of a simulated weight-offloading decode run."""

    tokens: int
    elapsed_us: float
    cache_hit_rate: float
    pcie_time_us: float
    gpu_time_us: float

    @property
    def tokens_per_s(self) -> float:
        return self.tokens / (self.elapsed_us / 1e6)


def spare_vram_experts(preset: ModelPreset, machine: MachineSpec,
                       dtype: DType) -> int:
    """Experts that fit in VRAM left over after the GPU-resident weights."""
    resident = preset.gpu_params * dtype.bytes_per_element
    spare = machine.gpu.vram_capacity * 0.9 - resident
    per_expert = preset.expert_bytes(dtype)
    return max(0, int(spare // per_expert))


def simulate_weight_offload_decode(
    preset: ModelPreset,
    machine: MachineSpec,
    dtype: DType,
    n_tokens: int = 16,
    seed: int = 0,
    cache_experts: int | None = None,
) -> WeightOffloadResult:
    """Decode with on-demand expert transfer over PCIe.

    Per token and MoE layer: the router picks ``top_k`` experts uniformly
    (MoE balancing); cache misses stream the expert's weights over PCIe,
    then the GPU computes the (tiny) expert GEMV.  PCIe transfers serialize
    with each other; the GPU compute is overlapped with the next transfer
    (double buffering), so the wall time per layer is approximately
    ``max(transfer_total, compute_total) + per-layer overheads``.
    """
    if n_tokens <= 0:
        raise ConfigError("n_tokens must be positive")
    rng = np.random.default_rng(seed)
    cache = ExpertCache(
        spare_vram_experts(preset, machine, dtype)
        if cache_experts is None else cache_experts
    )
    expert_bytes = preset.expert_bytes(dtype)
    link = machine.interconnect

    total_pcie = 0.0
    total_gpu = 0.0
    elapsed = 0.0
    for __ in range(n_tokens):
        for layer in range(preset.n_moe_layers):
            picked = rng.choice(preset.n_experts, size=preset.top_k,
                                replace=False)
            transfer_us = 0.0
            for e in picked:
                if not cache.access(layer, int(e)):
                    transfer_us += pcie_transfer_time_us(expert_bytes, link)
            # Expert GEMV + attention share the GPU; attention dominates the
            # non-expert time and is identical to the hybrid systems'.
            compute_us = preset.top_k * gpu_kernel_time_us(
                2.0 * expert_bytes / dtype.bytes_per_element,
                expert_bytes, machine.gpu,
            )
            attn_us = gpu_kernel_time_us(
                0.0, preset.gpu_layer_bytes(dtype), machine.gpu,
            )
            total_pcie += transfer_us
            total_gpu += compute_us + attn_us
            elapsed += attn_us + max(transfer_us, compute_us)
    return WeightOffloadResult(
        tokens=n_tokens,
        elapsed_us=elapsed,
        cache_hit_rate=cache.hit_rate,
        pcie_time_us=total_pcie,
        gpu_time_us=total_gpu,
    )
