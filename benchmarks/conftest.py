"""Shared benchmark configuration.

Every benchmark uses ``benchmark.pedantic(fn, rounds=1, iterations=1)``:
the interesting output is the *simulated* throughput printed in the
paper's layout, not the wall-clock time of running the simulator, so one
round suffices.  ``-s`` is not required; printed tables are attached via
``capsys``-independent stdout at the end of each test.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a data-producer exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
