"""Micro-benchmark: dynamic vs static work scheduling (Section 3.2).

Paper anchor: dynamic task scheduling yields up to a 1.83x prefill
improvement under the imbalanced expert activations typical of prefill,
and is neutral at decode where per-task work is uniform.
"""

import numpy as np

from repro.bench import format_table
from repro.hw import XEON_8452Y, cpu_gemm_time_us, KT_AMX
from repro.model import DS3
from repro.moe import (
    RouterConfig,
    WorkItem,
    dynamic_schedule,
    route,
    skewed_synthetic_logits,
    speedup,
    static_schedule,
)
from repro.tensor import BF16


def _expert_items(counts):
    items = []
    for e, tokens in enumerate(counts):
        if tokens == 0:
            continue
        dur = cpu_gemm_time_us(
            KT_AMX, int(tokens), DS3.hidden, 2 * DS3.moe_intermediate,
            BF16, XEON_8452Y, threads_fraction=1.0 / XEON_8452Y.cores,
        )
        items.append(WorkItem(dur, e))
    return items


def _scenarios():
    rng = np.random.default_rng(0)
    cfg = RouterConfig(n_experts=DS3.n_experts, top_k=DS3.top_k)
    rows = []
    for hot_bonus in (0.0, 0.5, 0.8, 1.0):
        logits = skewed_synthetic_logits(2048, cfg, rng, hot_fraction=0.05,
                                         hot_bonus=hot_bonus)
        counts = route(logits, cfg).expert_token_counts(cfg.n_experts)
        items = _expert_items(counts)
        st = static_schedule(items, XEON_8452Y.cores)
        dy = dynamic_schedule(items, XEON_8452Y.cores, chunk_us=50.0)
        rows.append((hot_bonus, int(counts.max()), st.makespan_us,
                     dy.makespan_us, speedup(st, dy)))
    return rows


def test_micro_dynamic_scheduling(run_once):
    rows = run_once(_scenarios)
    print()
    print(format_table(
        ["hot-expert bias", "max tokens/expert", "static (us)",
         "dynamic (us)", "speedup"],
        rows,
        title="Dynamic vs static scheduling, DS-3 prefill chunk (2048 tokens)",
    ))
    gains = [r[4] for r in rows]
    # Balanced routing: dynamic is neutral-to-positive, not a regression.
    assert gains[0] >= 0.98
    # Gains grow with imbalance, reaching the paper's ~1.83x territory.
    assert gains == sorted(gains)
    assert 1.6 <= max(gains) <= 2.2
