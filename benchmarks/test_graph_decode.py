"""Graph-captured grouped decode vs per-expert uncaptured dispatch.

Two levels of evidence for the ISSUE-6 tentpole, both emitted to
``benchmarks/BENCH_graph_decode.json``:

**Workload-level sweep** -- steady-state cost of one cache-hot batched
decode step (QW2 costs, full hit rate, contiguous arena layout) across
batch sizes and weight dtypes, over the 2x2 of launch mode
(``PER_KERNEL_CPP`` uncaptured vs ``CUDA_GRAPH`` replay) x expert-GEMM
dispatch (``per-expert`` vs ``grouped``).  The headline arm pair is
captured+grouped vs per-expert+uncaptured: at INT4 weights the routed
GEMMs are launch-bound enough that the combination must win >= 1.15x at
batch >= 32.  BF16 numbers are reported unasserted -- HBM expert
streaming dominates there and the honest speedup is ~1.09x.  Capture
amortization is made explicit: the one-time capture cost of the step's
kernel graph and the break-even step count it implies.

**Serving-level churn** -- a Poisson workload through the
``ContinuousBatchingServer`` with the graph cache and ``"auto"``
dispatch enabled on top of the expert cache.  Admission/completion churn
moves the batch across bucket boundaries, so some iterations capture;
the claim is that captures stay far below iterations (replay
amortization works under churn), the run is bit-reproducible, and a
disabled-feature config reproduces the legacy scheduler exactly.
"""

import json
import math
from pathlib import Path

from repro.bench import format_table
from repro.hw import KT_AVX512, paper_testbed
from repro.model import DS3, QW2, MoETransformer, tiny_config
from repro.moe import NumaStrategy
from repro.sched import (
    DecodeScheduleConfig,
    ExpertGemmDispatch,
    GraphCache,
    GraphCacheConfig,
    LaunchMode,
    batched_step_time_us,
    decode_layer_work,
)
from repro.sched.workload import apply_expert_cache
from repro.serving import (
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    poisson_workload,
    serving_expert_cache,
)
from repro.tensor import BF16, INT4

MACHINE = paper_testbed("a100")
BATCHES = (4, 8, 16, 32, 48)
DTYPES = ((BF16, "bf16"), (INT4, "int4"))
CONTEXT_LEN = 256
HEADLINE_DTYPE = "int4"
HEADLINE_SPEEDUP = 1.15
HEADLINE_MIN_BATCH = 32
OUT_PATH = Path(__file__).parent / "BENCH_graph_decode.json"

ARMS = (
    ("per-expert/uncaptured", LaunchMode.PER_KERNEL_CPP, "per-expert"),
    ("per-expert/graph", LaunchMode.CUDA_GRAPH, "per-expert"),
    ("grouped/uncaptured", LaunchMode.PER_KERNEL_CPP, "grouped"),
    ("grouped/graph", LaunchMode.CUDA_GRAPH, "grouped"),
)


def _hot_works(batch, dtype):
    """Per-layer work for a fully cache-hit QW2 decode step, per dispatch."""
    base = decode_layer_work(
        QW2, MACHINE, dtype, context_len=CONTEXT_LEN, cpu_profile=KT_AVX512,
        numa_strategy=NumaStrategy.TENSOR_PARALLEL,
        kernels_per_layer=45, batch_size=batch)
    total = batch * QW2.top_k
    n_hit = min(QW2.n_experts, total)
    works = {}
    for mode in ("per-expert", "grouped"):
        dispatch = ExpertGemmDispatch(mode, layout_contiguity=1.0)
        w = apply_expert_cache(base, QW2, MACHINE, dtype, total, total,
                               n_hit, dispatch=dispatch)
        works[mode] = [w] * QW2.n_moe_layers
    return works, n_hit


def _sweep():
    cache = GraphCache(GraphCacheConfig(), MACHINE)
    rows = []
    for dtype, dtype_name in DTYPES:
        for batch in BATCHES:
            works, n_hit = _hot_works(batch, dtype)
            arm_us = {}
            for label, launch, dispatch in ARMS:
                cfg = DecodeScheduleConfig(
                    launch_mode=launch, overlap_cpu_gpu=True,
                    top_k=QW2.top_k)
                arm_us[label] = batched_step_time_us(
                    works[dispatch], cfg, MACHINE)
            # One decode step's kernel graph: per-layer kernels plus the
            # per-layer merge and the lm_head (mirrors step_kernel_count).
            graph_works = works["grouped"]
            n_kernels = (sum(w.n_gpu_kernels for w in graph_works)
                         + len(graph_works) + 1)
            capture_us = cache.capture_cost_us(n_kernels)
            saving = (arm_us["per-expert/uncaptured"]
                      - arm_us["grouped/graph"])
            rows.append({
                "dtype": dtype_name,
                "batch": batch,
                "n_hit_experts": n_hit,
                "step_us": arm_us,
                "headline_speedup":
                    arm_us["per-expert/uncaptured"] / arm_us["grouped/graph"],
                "launch_only_speedup":
                    arm_us["grouped/uncaptured"] / arm_us["grouped/graph"],
                "dispatch_only_speedup":
                    arm_us["per-expert/uncaptured"]
                    / arm_us["grouped/uncaptured"],
                "graph_kernels": n_kernels,
                "capture_us": capture_us,
                "break_even_steps": math.ceil(capture_us / saving)
                    if saving > 0 else None,
            })
    return rows


def _serving_arm(graph, seed=11):
    """One churned serving run; returns (timings, summary, n_iterations)."""
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)
    extra = ({"graph_cache": GraphCacheConfig(), "gemm_dispatch": "auto"}
             if graph else {})
    cache = serving_expert_cache(
        session, vram_budget_bytes=12 * DS3.expert_bytes(BF16))
    server = ContinuousBatchingServer(
        session,
        BatchSchedulerConfig(kv_budget_tokens=512, max_batch_size=4, **extra),
        expert_cache=cache)
    stats = server.replay(poisson_workload(
        n_requests=12, mean_interarrival_us=6e5, prompt_len=16,
        max_new_tokens=8, vocab_size=64, seed=seed))
    timings = [(t.arrival_us, t.start_us, t.first_token_us, t.finish_us)
               for t in stats.timings]
    return timings, stats.summary(), server.timeline.n_iterations


def _churn():
    graphed, summary, n_iter = _serving_arm(graph=True)
    repeat, summary2, _ = _serving_arm(graph=True)
    legacy, legacy_summary, _ = _serving_arm(graph=False)
    return {
        "n_iterations": n_iter,
        "summary": summary,
        "bit_reproducible": graphed == repeat and summary == summary2,
        "legacy_summary": legacy_summary,
        "graph_run_equals_legacy": graphed == legacy,
    }


def test_graph_decode(run_once):
    sweep, churn = run_once(lambda: (_sweep(), _churn()))
    OUT_PATH.write_text(json.dumps(
        {"machine": "a100",
         "model_costs": QW2.name,
         "context_len": CONTEXT_LEN,
         "headline": {"dtype": HEADLINE_DTYPE,
                      "min_batch": HEADLINE_MIN_BATCH,
                      "required_speedup": HEADLINE_SPEEDUP},
         "sweep": sweep,
         "serving_churn": churn}, indent=2))

    print()
    print(format_table(
        ["dtype", "batch", "headline x", "launch-only x", "dispatch-only x",
         "capture (us)", "break-even steps"],
        [(r["dtype"], r["batch"], round(r["headline_speedup"], 3),
          round(r["launch_only_speedup"], 3),
          round(r["dispatch_only_speedup"], 3),
          round(r["capture_us"], 1), r["break_even_steps"])
         for r in sweep],
        title="Captured+grouped vs per-expert+uncaptured decode step (QW2)",
    ))

    for r in sweep:
        for us in r["step_us"].values():
            assert math.isfinite(us) and us > 0
        # Replay can only remove launch/sync overhead, never add work.
        assert r["launch_only_speedup"] >= 1.0
        # Capture pays off within a short steady-state window.
        assert r["break_even_steps"] is not None and r["break_even_steps"] < 50

    # Headline: captured+grouped wins >= 1.15x over per-expert uncaptured
    # at INT4 weights for every batch >= 32.
    for r in sweep:
        if r["dtype"] == HEADLINE_DTYPE and r["batch"] >= HEADLINE_MIN_BATCH:
            assert r["headline_speedup"] >= HEADLINE_SPEEDUP

    s = churn["summary"]
    # Churn amortization: captures happen but replays dominate -- far
    # fewer captures than iterations.
    assert s["graph_captures"] >= 1
    assert s["graph_replays"] > s["graph_captures"]
    assert s["graph_captures"] <= churn["n_iterations"] / 2
    assert s["grouped_gemm_iterations"] + \
        s["grouped_gemm_per_expert_iterations"] > 0
    # Both arms are deterministic; the graph arm prices capture stalls so
    # it must NOT be bit-identical to the legacy run.
    assert churn["bit_reproducible"]
    assert not churn["graph_run_equals_legacy"]
    assert "graph_captures" not in churn["legacy_summary"]
