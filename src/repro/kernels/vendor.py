"""Vendor-baseline kernels: PyTorch dispatching to oneDNN (Section 2.2).

These model the *existing* software stack the paper benchmarks against in
Figure 3: oneDNN's AMX path reaches only ~7% of the theoretical peak, and
the generic AVX-512 path ~1.8 TFLOPS, both hampered by row-major layouts
that were not co-designed with the tile registers.  Functionally they are
plain GEMMs (PyTorch is numerically correct, just slow).
"""

from __future__ import annotations

import numpy as np

from ..hw.roofline import LLAMACPP_AVX512, TORCH_AMX, TORCH_AVX512
from ..tensor.layout import PackedWeights, unpack_matrix
from .base import CPUGemmKernel


class _DenseGemmKernel(CPUGemmKernel):
    """Functional fallback: unpack to row-major and matmul."""

    def run(self, x: np.ndarray, weights: PackedWeights) -> np.ndarray:
        xp = self._check_shapes(x, weights)
        w = unpack_matrix(weights)
        return xp[:, :weights.rows] @ w


class TorchAMXKernel(_DenseGemmKernel):
    """PyTorch -> oneDNN AMX path (5.4 TFLOPS saturated, 7% of peak)."""

    profile = TORCH_AMX


class TorchAVX512Kernel(_DenseGemmKernel):
    """PyTorch -> oneDNN AVX-512 path (1.8 TFLOPS saturated)."""

    profile = TORCH_AVX512


class LlamaCppKernel(_DenseGemmKernel):
    """llama.cpp's hand-rolled AVX-512 kernels (good fusion, no AMX)."""

    profile = LLAMACPP_AVX512
