"""Multi-turn session serving: radix prefix-KV reuse + tiered KV offload.

Three arms over one conversational workload (4 sessions x 4 turns, a
shared 256-token system prompt, linearly growing turn prompts), all
emitted to ``benchmarks/BENCH_session.json``:

- **no-reuse** -- the PR 6 engine: every turn re-prefills its whole
  prompt from token zero.
- **prefix** -- same KV budget with the radix prefix cache: follow-up
  turns skip the cached page-aligned prefix (system prompt + earlier
  turns), paying prefill only for the fresh suffix.
- **prefix+tier** -- a quarter of the KV budget plus the host-DRAM
  tier: idle sessions' pages park in host memory between turns and swap
  back (prefetched against the predicted next turn), so the same
  sessions fit in far less VRAM.

Claims asserted: >= 40% of prompt prefill tokens avoided by reuse,
follow-up-turn TTFT p95 strictly better than no-reuse, both arms
bit-reproducible, and the tier arm sustains the full workload at 4x the
sessions-per-GB of KV VRAM.
"""

import json
from pathlib import Path

import numpy as np

from repro.bench import format_table
from repro.model import DS3, MoETransformer, tiny_config
from repro.sched.workload import kv_token_bytes
from repro.serving import (
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    KVTierConfig,
    PrefixCacheConfig,
    multi_turn_workload,
)

OUT_PATH = Path(__file__).parent / "BENCH_session.json"

N_SESSIONS = 4
N_TURNS = 4
FULL_BUDGET = 8192
TIER_BUDGET = 2048
MIN_REUSE = 0.40

WORKLOAD = dict(
    n_sessions=N_SESSIONS, n_turns=N_TURNS, system_tokens=256,
    user_tokens=32, assistant_tokens=32, max_new_tokens=16, vocab_size=64,
    mean_think_us=5e6, service_allowance_us=20e6,
    mean_session_offset_us=4e6, seed=7,
)


def _kv_vram_gb(budget_tokens):
    """Bytes of VRAM the KV budget stands for, in GB (DS3 pricing)."""
    return budget_tokens * kv_token_bytes(DS3) * DS3.n_layers / 1e9


def _run(budget_tokens, prefix, tier):
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)
    server = ContinuousBatchingServer(
        session,
        BatchSchedulerConfig(kv_budget_tokens=budget_tokens),
        prefix_cache=PrefixCacheConfig() if prefix else None,
        kv_tier=KVTierConfig(idle_park_us=2e6) if tier else None)
    workload = multi_turn_workload(**WORKLOAD)
    stats = server.replay(list(workload))
    timings = [(t.arrival_us, t.start_us, t.first_token_us, t.finish_us)
               for t in stats.timings]

    first_arrival = {}
    for t in workload:
        first_arrival.setdefault(t.session_id, t.arrival_us)
    followup_ttft = [
        t.first_token_us - t.arrival_us
        for t, w in zip(stats.timings,
                        sorted(workload, key=lambda x: x.arrival_us))
        if w.arrival_us > first_arrival[w.session_id]]

    return {
        "timings": timings,
        "summary": stats.summary(),
        "followup_ttft_p95_ms":
            float(np.percentile(followup_ttft, 95)) / 1e3,
        "followup_ttft_mean_ms": float(np.mean(followup_ttft)) / 1e3,
        "kv_vram_gb": _kv_vram_gb(budget_tokens),
        "sessions_per_gb": N_SESSIONS / _kv_vram_gb(budget_tokens),
        "timeline_peak_cached_tokens": max(
            p.prefix_cached_tokens for p in server.timeline.points),
        "timeline_peak_parked_tokens": max(
            p.host_parked_tokens for p in server.timeline.points),
    }


def _arms():
    arms = {}
    for name, budget, prefix, tier in (
            ("no_reuse", FULL_BUDGET, False, False),
            ("prefix", FULL_BUDGET, True, False),
            ("prefix_tier", TIER_BUDGET, True, True)):
        run1 = _run(budget, prefix, tier)
        run2 = _run(budget, prefix, tier)
        run1["bit_reproducible"] = (
            run1["timings"] == run2["timings"]
            and run1["summary"] == run2["summary"])
        arms[name] = run1
    return arms


def test_session_prefix(run_once):
    arms = run_once(_arms)
    base, prefix, tier = (arms[k] for k in
                          ("no_reuse", "prefix", "prefix_tier"))

    reuse = prefix["summary"]["prefix_reuse_fraction"]
    OUT_PATH.write_text(json.dumps(
        {"model_costs": DS3.name,
         "workload": WORKLOAD,
         "claims": {"min_reuse_fraction": MIN_REUSE,
                    "tier_budget_fraction": TIER_BUDGET / FULL_BUDGET},
         "arms": {k: {kk: vv for kk, vv in v.items() if kk != "timings"}
                  for k, v in arms.items()}}, indent=2))

    print()
    print(format_table(
        ["arm", "kv vram (GB)", "sessions/GB", "reuse", "follow-up "
         "ttft p95 (ms)", "swap-in stall (ms)"],
        [(name,
          round(a["kv_vram_gb"], 3),
          round(a["sessions_per_gb"], 2),
          round(a["summary"].get("prefix_reuse_fraction", 0.0), 3),
          round(a["followup_ttft_p95_ms"], 1),
          round(a["summary"].get("tier_swap_in_stall_ms", 0.0), 2))
         for name, a in arms.items()],
        title="Multi-turn session serving (DS3 costs, 4 sessions x 4 turns)",
    ))

    # Every arm serves the full workload and is bit-reproducible.
    for a in arms.values():
        assert a["summary"]["requests"] == N_SESSIONS * N_TURNS
        assert a["bit_reproducible"]

    # Headline: >= 40% of prompt prefill tokens avoided by prefix reuse.
    assert reuse >= MIN_REUSE
    assert prefix["summary"]["prefix_tokens_avoided"] >= MIN_REUSE * \
        prefix["summary"]["prefix_prompt_tokens"]

    # Follow-up turns see strictly better TTFT than the no-reuse arm.
    assert prefix["followup_ttft_p95_ms"] < base["followup_ttft_p95_ms"]
    assert prefix["followup_ttft_mean_ms"] < base["followup_ttft_mean_ms"]

    # The no-reuse arm has no session accounting at all; the prefix arms
    # surface hit/miss and occupancy in summary and timeline.
    assert "prefix_hits" not in base["summary"]
    assert prefix["summary"]["prefix_hits"] > 0
    assert prefix["timeline_peak_cached_tokens"] > 0

    # Tier arm: a quarter of the VRAM still serves every session -- 4x
    # the sessions-per-GB -- with real park/unpark traffic and stalls
    # kept small by prediction-driven prefetch.
    assert tier["sessions_per_gb"] >= 4 * base["sessions_per_gb"] * 0.99
    assert tier["summary"]["prefix_reuse_fraction"] >= MIN_REUSE
    assert tier["summary"]["tier_parked_tokens"] > 0
    assert tier["summary"]["tier_unparked_tokens"] > 0
    assert tier["summary"]["tier_swap_out_mb"] > 0
    assert tier["timeline_peak_parked_tokens"] > 0
    assert tier["summary"]["tier_swap_in_stall_ms"] < 100.0
