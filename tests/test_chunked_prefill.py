"""Tests for chunked prefill: hybrid pricing, chunk scheduler, KV holds."""

import numpy as np
import pytest

from repro.core import KTRANSFORMERS, batched_decode_works, hybrid_chunk_works
from repro.errors import ConfigError
from repro.faults import FaultInjector, canonical_chaos_plan
from repro.hw.spec import paper_testbed
from repro.kernels import DEFAULT_ARI_THRESHOLD
from repro.model import DS3, QW2, MoETransformer, tiny_config
from repro.sched.decode import DecodeScheduleConfig, hybrid_step_time_us
from repro.sched.workload import (
    batched_expert_counts,
    chunk_only_work,
    hybrid_chunk_layer_work,
    merge_hybrid_work,
)
from repro.serving import (
    BatchCostModel,
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    poisson_workload,
)
from repro.serving.continuous import serving_expert_cache
from repro.serving.resilience import ResilienceConfig
from repro.tensor import BF16


@pytest.fixture(scope="module")
def machine():
    return paper_testbed("a100")


@pytest.fixture(scope="module")
def session():
    model = MoETransformer(tiny_config("tiny-qw"))
    return InferenceSession(model, DS3)


def _workload(n, interarrival_us, prompt_len=16, new_tokens=6, seed=7):
    return poisson_workload(
        n_requests=n, mean_interarrival_us=interarrival_us,
        prompt_len=prompt_len, max_new_tokens=new_tokens,
        vocab_size=64, seed=seed,
    )


def _timings(stats):
    return [(t.arrival_us, t.start_us, t.first_token_us, t.finish_us,
             t.prompt_tokens, t.generated_tokens, t.timed_out)
            for t in stats.timings]


class TestHybridChunkPricing:
    """The counts-level marginal pricing behind hybrid iterations."""

    def test_marginal_nonnegative_and_bounded(self, machine):
        """Chunk marginal CPU cost is >= 0 and <= the chunk priced alone."""
        alone, _ = hybrid_chunk_works(
            KTRANSFORMERS, QW2, machine, BF16, chunk_tokens=64, batch_size=0)
        piggy, _ = hybrid_chunk_works(
            KTRANSFORMERS, QW2, machine, BF16, chunk_tokens=64, batch_size=16)
        for a, p in zip(alone, piggy):
            assert p.cpu_routed_us >= 0.0
            assert p.cpu_routed_us <= a.cpu_routed_us + 1e-9

    def test_piggybacking_discount_in_saturated_regime(self, machine):
        """A near-capacity QW2 decode batch streams most experts already,
        so the chunk's marginal expert bill is well below its standalone
        bill -- the whole point of decode piggybacking."""
        alone, _ = hybrid_chunk_works(
            KTRANSFORMERS, QW2, machine, BF16, chunk_tokens=256, batch_size=0)
        piggy, _ = hybrid_chunk_works(
            KTRANSFORMERS, QW2, machine, BF16, chunk_tokens=256,
            batch_size=16)
        moe_alone = sum(w.cpu_routed_us for w in alone)
        moe_piggy = sum(w.cpu_routed_us for w in piggy)
        assert moe_piggy < 0.8 * moe_alone

    def test_combined_counts_reconstruct(self, machine):
        """Summary counts are decode + chunk routed token counts."""
        work, summary = hybrid_chunk_layer_work(
            QW2, machine, BF16, chunk_tokens=32, batch_size=8,
            avx512_profile=KTRANSFORMERS.decode_kernel,
            amx_profile=KTRANSFORMERS.prefill_kernel,
            numa_strategy=KTRANSFORMERS.numa_strategy,
            kernels_per_layer=KTRANSFORMERS.decode_kernels_per_layer,
        )
        assert sum(summary.expert_token_counts) == (8 + 32) * QW2.top_k
        assert summary.batch_size == 8
        decode_counts = batched_expert_counts(QW2, 8)
        # Chunk tokens add on top of (never replace) the decode counts.
        assert all(c >= d for c, d in
                   zip(summary.expert_token_counts, decode_counts))
        assert work.transfer_bytes > 0 and work.gpu_attn_us > 0

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            hybrid_chunk_layer_work(
                QW2, machine, BF16, chunk_tokens=0, batch_size=4,
                avx512_profile=KTRANSFORMERS.decode_kernel,
                amx_profile=KTRANSFORMERS.prefill_kernel,
                numa_strategy=KTRANSFORMERS.numa_strategy,
                kernels_per_layer=1)
        with pytest.raises(ValueError):
            hybrid_chunk_layer_work(
                QW2, machine, BF16, chunk_tokens=8, batch_size=-1,
                avx512_profile=KTRANSFORMERS.decode_kernel,
                amx_profile=KTRANSFORMERS.prefill_kernel,
                numa_strategy=KTRANSFORMERS.numa_strategy,
                kernels_per_layer=1)

    def test_merge_adds_chunk_on_top(self, machine):
        decode_works, _ = batched_decode_works(
            KTRANSFORMERS, QW2, machine, BF16, context_lens=[64] * 8)
        chunk_works, _ = hybrid_chunk_works(
            KTRANSFORMERS, QW2, machine, BF16, chunk_tokens=32, batch_size=8)
        merged = [merge_hybrid_work(d, c)
                  for d, c in zip(decode_works, chunk_works)]
        for d, c, m in zip(decode_works, chunk_works, merged):
            assert m.gpu_attn_us == pytest.approx(d.gpu_attn_us
                                                  + c.gpu_attn_us)
            assert m.cpu_routed_us == pytest.approx(d.cpu_routed_us
                                                    + c.cpu_routed_us)
            assert m.n_gpu_kernels == d.n_gpu_kernels
        only = chunk_only_work(chunk_works[-1])
        assert only.cpu_routed_us == chunk_works[-1].cpu_routed_us

    def test_hybrid_step_costs_more_than_decode_less_than_sum(self, machine):
        """One mixed iteration beats running the chunk as its own step."""
        decode_works, _ = batched_decode_works(
            KTRANSFORMERS, QW2, machine, BF16, context_lens=[64] * 16)
        chunk_works, _ = hybrid_chunk_works(
            KTRANSFORMERS, QW2, machine, BF16, chunk_tokens=128,
            batch_size=16)
        config = DecodeScheduleConfig(
            launch_mode=KTRANSFORMERS.launch_mode,
            overlap_cpu_gpu=KTRANSFORMERS.overlap_cpu_gpu,
            top_k=QW2.top_k)
        decode = hybrid_step_time_us([], chunk_works, config, machine)
        hybrid = hybrid_step_time_us(decode_works, chunk_works, config,
                                     machine)
        from repro.sched.decode import batched_step_time_us
        pure = batched_step_time_us(decode_works, config, machine)
        assert hybrid > pure
        assert hybrid < pure + decode

    def test_hybrid_step_time_validation(self, machine):
        config = DecodeScheduleConfig(
            launch_mode=KTRANSFORMERS.launch_mode,
            overlap_cpu_gpu=KTRANSFORMERS.overlap_cpu_gpu,
            top_k=QW2.top_k)
        from repro.errors import SchedulingError
        with pytest.raises(SchedulingError):
            hybrid_step_time_us([], [], config, machine)
        decode_works, _ = batched_decode_works(
            KTRANSFORMERS, QW2, machine, BF16, context_lens=[64])
        chunk_works, _ = hybrid_chunk_works(
            KTRANSFORMERS, QW2, machine, BF16, chunk_tokens=16, batch_size=1)
        with pytest.raises(SchedulingError):
            hybrid_step_time_us(decode_works[:-1], chunk_works, config,
                                machine)


class TestBatchCostModelHybrid:
    """Memoized hybrid pricing on the serving cost model."""

    def test_matches_sched_level_function(self, session):
        """BatchCostModel.hybrid_step_us is bit-identical to pricing the
        merged works through sched.decode.hybrid_step_time_us."""
        costs = BatchCostModel(session)
        got = costs.hybrid_step_us([64] * 8, 32)
        c = session.costs
        decode_works, _ = batched_decode_works(
            c.system, c.preset, c.machine, c.dtype, context_lens=[64] * 8)
        chunk_works, _ = hybrid_chunk_works(
            c.system, c.preset, c.machine, c.dtype, chunk_tokens=32,
            batch_size=8)
        want = hybrid_step_time_us(
            decode_works, chunk_works, costs._hybrid_schedule_config(),
            c.machine)
        assert got == want

    def test_memoized_by_buckets(self, session):
        costs = BatchCostModel(session)
        a = costs.hybrid_step_us([64] * 4, 17)
        b = costs.hybrid_step_us([60] * 4, 30)   # same ctx + chunk bucket
        assert a == b
        assert len(costs._hybrid) == 1
        costs.hybrid_step_us([64] * 4, 33)       # next chunk bucket
        assert len(costs._hybrid) == 2

    def test_chunk_only_supported(self, session):
        costs = BatchCostModel(session)
        alone = costs.hybrid_step_us([], 64)
        assert alone > 0
        hybrid = costs.hybrid_step_us([64] * 8, 64)
        decode = costs.decode_step_us([64] * 8)
        assert hybrid > decode

    def test_chunk_tokens_must_be_positive(self, session):
        costs = BatchCostModel(session)
        with pytest.raises(ConfigError):
            costs.hybrid_step_us([64], 0)

    def test_hybrid_window_extends_decode_window(self, session):
        costs = BatchCostModel(session)
        assert (costs.hybrid_attn_window_us([64] * 4, 128)
                > costs.attn_window_us([64] * 4))

    def test_hybrid_dispatch_summary_combines(self, session):
        costs = BatchCostModel(session)
        s = costs.hybrid_dispatch_summary([64] * 8, 32)
        preset = session.costs.preset
        assert sum(s.expert_token_counts) == (8 + 32) * preset.top_k


class TestChunkSchedulerConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BatchSchedulerConfig(prefill_chunk_tokens=0)
        with pytest.raises(ConfigError):
            BatchSchedulerConfig(prefill_chunk_tokens=-5)
        with pytest.raises(ConfigError):
            BatchSchedulerConfig(chunk_policy="round-robin")
        cfg = BatchSchedulerConfig(prefill_chunk_tokens=64,
                                   chunk_policy="prefill-priority")
        assert cfg.prefill_chunk_tokens == 64


class TestChunkStateMachine:
    """The per-request chunk state machine inside the server loop."""

    def test_prompt_prefills_across_iterations(self, session):
        """A prompt larger than the chunk budget takes several iterations
        to become decodable; mid-prefill it holds KV without emitting."""
        server = ContinuousBatchingServer(session, BatchSchedulerConfig(
            kv_budget_tokens=256, max_batch_size=4, prefill_chunk_tokens=4))
        wl = _workload(1, 1000, prompt_len=16, new_tokens=3)
        stats = server.replay(list(wl))
        points = server.timeline.points
        # 16-token prompt at 4 tokens/iteration: 4 chunk-only iterations
        # (batch of 1, all prefilling), then 3 decode iterations.
        assert [p.chunk_tokens for p in points] == [4, 4, 4, 4, 0, 0, 0]
        assert [p.n_prefilling for p in points] == [1, 1, 1, 0, 0, 0, 0]
        # KV occupancy grows chunk by chunk, then token by token; the
        # final point records after the finished request frees its pages.
        assert [p.kv_used_tokens for p in points] == [4, 8, 12, 16, 17, 18,
                                                      0]
        (t,) = stats.timings
        assert t.generated_tokens == 3
        assert not t.timed_out
        # Pool fully drained at the end.
        assert server.pool.n_slots == 0
        assert server.pool.used_tokens == 0
        assert server._reserved_pages == 0

    def test_hybrid_iterations_carry_decodes(self, session):
        """A later arrival prefills in chunks while the first request
        keeps decoding -- no monolithic stall in between."""
        server = ContinuousBatchingServer(session, BatchSchedulerConfig(
            kv_budget_tokens=256, max_batch_size=4, prefill_chunk_tokens=8,
            chunk_policy="prefill-priority"))
        wl = [t for t in _workload(2, 1, prompt_len=16, new_tokens=8)]
        stats = server.replay(list(wl))
        hybrid = [p for p in server.timeline.points
                  if p.chunk_tokens > 0 and p.batch_size > p.n_prefilling]
        assert hybrid, "expected mixed decode+chunk iterations"
        assert server.timeline.n_hybrid_iterations == len(hybrid)
        assert all(t.generated_tokens == 8 for t in stats.timings)

    def test_decode_priority_reserves_budget_for_decodes(self, session):
        """decode-priority charges each decoding request against the
        iteration budget; prefill-priority gives prefill the whole
        budget, so its chunks are at least as large at every iteration."""
        wl = list(_workload(3, 1, prompt_len=32, new_tokens=12))
        chunks = {}
        for policy in ("decode-priority", "prefill-priority"):
            server = ContinuousBatchingServer(session, BatchSchedulerConfig(
                kv_budget_tokens=512, max_batch_size=4,
                prefill_chunk_tokens=8, chunk_policy=policy))
            server.replay(list(wl))
            chunks[policy] = [p.chunk_tokens for p in server.timeline.points
                              if p.batch_size > p.n_prefilling > 0]
        assert chunks["decode-priority"], "no hybrid iterations observed"
        # Hybrid iterations under decode-priority give up budget to the
        # decoding requests (chunks below 8); prefill-priority always
        # schedules the full chunk budget.
        assert any(c < 8 for c in chunks["decode-priority"])
        assert all(c == 8 for c in chunks["prefill-priority"])

    def test_fresh_covered_queue_takes_monolithic_path(self, session):
        """chunk >= kv budget: every admission wave is fully covered, so
        the chunked scheduler reproduces the monolithic server exactly."""
        wl = list(_workload(8, 200_000, prompt_len=16, new_tokens=6))
        mono = ContinuousBatchingServer(session, BatchSchedulerConfig(
            kv_budget_tokens=1024, max_batch_size=8))
        want = _timings(mono.replay(list(wl)))
        for policy in ("decode-priority", "prefill-priority"):
            chunked = ContinuousBatchingServer(session, BatchSchedulerConfig(
                kv_budget_tokens=1024, max_batch_size=8,
                prefill_chunk_tokens=1024, chunk_policy=policy))
            got = _timings(chunked.replay(list(wl)))
            assert got == want
            assert chunked.timeline.n_chunked_iterations == 0

    def test_chunked_replay_deterministic(self, session):
        wl = list(_workload(6, 50_000, prompt_len=24, new_tokens=5))

        def run():
            server = ContinuousBatchingServer(session, BatchSchedulerConfig(
                kv_budget_tokens=512, max_batch_size=4,
                prefill_chunk_tokens=8))
            return _timings(server.replay(list(wl)))

        assert run() == run()

    def test_first_token_after_full_prefill(self, session):
        """TTFT in chunked mode is the end of the iteration after the
        last chunk lands, never earlier."""
        server = ContinuousBatchingServer(session, BatchSchedulerConfig(
            kv_budget_tokens=256, max_batch_size=2, prefill_chunk_tokens=4))
        stats = server.replay(list(_workload(1, 1000, prompt_len=12,
                                             new_tokens=2)))
        (t,) = stats.timings
        third_iter = server.timeline.points[2].t_us
        assert t.first_token_us > third_iter


class TestMidPrefillShedding:
    """Timeout shedding understands requests stuck mid-prefill."""

    def test_mid_prefill_timeout_sheds_and_frees_kv(self, session):
        # 64-token prompt at 1 token/iteration would take 64 iterations;
        # the decode timeout cuts it off mid-prefill.
        server = ContinuousBatchingServer(
            session,
            BatchSchedulerConfig(kv_budget_tokens=256, max_batch_size=2,
                                 prefill_chunk_tokens=1),
            resilience=ResilienceConfig(decode_timeout_us=2e6))
        stats = server.replay(list(_workload(1, 1000, prompt_len=64,
                                             new_tokens=4)))
        (t,) = stats.timings
        assert t.timed_out
        assert t.generated_tokens == 0
        assert t.first_token_us == t.finish_us
        assert t.arrival_us <= t.start_us <= t.first_token_us
        assert stats.faults.timed_out_requests == 1
        # Pages held across chunks were freed exactly once.
        assert server.pool.n_slots == 0
        assert server.pool.used_tokens == 0
        assert server._reserved_pages == 0
        # Shed requests count against goodput.
        from repro.serving import ServingSLO
        g = stats.goodput(ServingSLO(ttft_ms=1e9, tpot_ms=1e9))
        assert g["attainment"] == 0.0

    def test_shed_unblocks_admission(self, session):
        """Freed mid-prefill pages admit the queued request."""
        server = ContinuousBatchingServer(
            session,
            BatchSchedulerConfig(kv_budget_tokens=80, max_batch_size=2,
                                 prefill_chunk_tokens=1),
            resilience=ResilienceConfig(decode_timeout_us=2e6))
        wl = list(_workload(2, 1000, prompt_len=64, new_tokens=2))
        stats = server.replay(wl)
        assert len(stats.timings) == 2
        shed = [t for t in stats.timings if t.timed_out]
        assert shed, "expected at least one mid-prefill shed"
        assert server.pool.n_slots == 0
        assert server._reserved_pages == 0


class TestChunkedWithCacheAndFaults:
    """Hybrid iterations compose with the expert cache and chaos arms."""

    def _chaos_server(self, session, chunk):
        preset = session.costs.preset
        cache = serving_expert_cache(
            session,
            vram_budget_bytes=24 * preset.expert_bytes(session.costs.dtype))
        cfg = BatchSchedulerConfig(kv_budget_tokens=512, max_batch_size=4,
                                   prefill_chunk_tokens=chunk)
        return ContinuousBatchingServer(
            session, cfg, expert_cache=cache,
            fault_injector=FaultInjector(canonical_chaos_plan()),
            resilience=ResilienceConfig(queue_timeout_us=60e6,
                                        decode_timeout_us=150e6))

    def test_chunked_chaos_bit_reproducible(self, session):
        wl = list(_workload(5, 100_000, prompt_len=24, new_tokens=4))

        def run():
            server = self._chaos_server(session, chunk=8)
            stats = server.replay(list(wl))
            return (_timings(stats), stats.faults.upload_failures,
                    server.timeline.n_iterations,
                    server.cache_timeline.n_iterations)

        r1, r2 = run(), run()
        assert r1 == r2
        # Cache timeline stays aligned with the batch timeline even
        # through chunk-only iterations (zero-activity points).
        assert r1[2] == r1[3]

    def test_cache_hybrid_pricing_identity_composes(self, session):
        """Identity perturbation + zero-cache outcome reduce the hybrid
        cached/perturbed variants to the plain hybrid price."""
        from repro.faults.injector import IDENTITY_PERTURBATION
        costs = BatchCostModel(session)
        plain = costs.hybrid_step_us([64] * 4, 16)
        assert costs.perturbed_hybrid_step_us([64] * 4, 16,
                                              IDENTITY_PERTURBATION) == plain
