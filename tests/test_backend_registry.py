"""Kernel-backend registry tests (ISSUE 10).

Covers the satellites around the pluggable backend registry:

- the shared ARI selector: both historical call sites
  (``batched_decode_layer_work`` and ``hybrid_chunk_layer_work``) classify
  identically at the threshold, threshold +- 1, and 0 tokens;
- fail-fast string knobs: unknown ``backend`` / ``gemm_dispatch`` /
  ``chunk_policy`` names raise :class:`ValueError` at config construction,
  listing the valid choices;
- registry mechanics: register/unregister/replace semantics, resolution,
  launch-model overrides, AMX-capability fallback;
- property-based determinism: every registered backend prices strictly
  positive, bit-reproducible step times and conserves routed tokens.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KTRANSFORMERS, batched_decode_works
from repro.errors import ConfigError
from repro.hw import KT_AMX, KT_AVX512, paper_testbed
from repro.kernels import (
    DEFAULT_ARI_THRESHOLD,
    DEFAULT_BACKEND,
    AriSelection,
    KT_AMX_AVX512_BACKEND,
    TORCH_VENDOR_BACKEND,
    TRITON_PORTABLE_BACKEND,
    available_backends,
    backend_summaries,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.kernels.backend import LaunchModel
from repro.model import DS3, QW2, MoETransformer, tiny_config
from repro.sched.workload import (
    ari_selection_for,
    batched_decode_layer_work,
    hybrid_chunk_layer_work,
)
from repro.serving import (
    BatchCostModel,
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    FleetConfig,
    FleetRouter,
    InferenceSession,
    poisson_workload,
)
from repro.tensor import BF16

MACHINE = paper_testbed("a100")
NO_AMX = dataclasses.replace(
    MACHINE, cpu=dataclasses.replace(MACHINE.cpu, has_amx=False))


@pytest.fixture(scope="module")
def session():
    return InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)


def small_workload(seed=11):
    return poisson_workload(n_requests=6, mean_interarrival_us=1e6,
                            prompt_len=16, max_new_tokens=4, vocab_size=64,
                            seed=seed)


# --- satellite: one shared ARI selector for every call site -----------------

class TestSharedAriSelector:
    @pytest.mark.parametrize("threshold", [1, 4, 8])
    def test_boundary_classification(self, threshold):
        """The shared selector pins the crossover: latency lane at and
        below the threshold, throughput lane strictly above, idle at 0."""
        sel = ari_selection_for(MACHINE, KT_AVX512, KT_AMX, threshold)
        assert sel.kernel_name(0) == "idle"
        if threshold > 1:
            assert sel.kernel_name(threshold - 1) == "avx512"
        assert sel.kernel_name(threshold) == "avx512"
        assert sel.kernel_name(threshold + 1) == "amx"
        assert sel.select_profile(threshold) is KT_AVX512
        assert sel.select_profile(threshold + 1) is KT_AMX

    @pytest.mark.parametrize("threshold", [1, 4, 8])
    def test_call_sites_classify_identically(self, threshold):
        """Regression for the copy-pasted ``select()`` closures: both
        pricing call sites must classify every expert exactly as the
        shared selector does -- including counts sitting at the
        threshold, one either side of it, and idle experts."""
        sel = ari_selection_for(MACHINE, KT_AVX512, KT_AMX, threshold)
        kw = dict(
            avx512_profile=KTRANSFORMERS.decode_kernel,
            amx_profile=KTRANSFORMERS.prefill_kernel,
            numa_strategy=KTRANSFORMERS.numa_strategy,
            kernels_per_layer=KTRANSFORMERS.decode_kernels_per_layer,
            ari_threshold=threshold,
        )
        _, decode = batched_decode_layer_work(
            QW2, MACHINE, BF16, [64] * 8, **kw)
        _, hybrid = hybrid_chunk_layer_work(
            QW2, MACHINE, BF16, 32, 8, **kw)
        for summary in (decode, hybrid):
            assert summary.ari_threshold == threshold
            assert summary.kernel_names == sel.kernel_names(
                summary.expert_token_counts)
        # Where the two call sites see the same count, they must emit the
        # same label -- the historical divergence this refactor removes.
        decode_map = dict(zip(decode.expert_token_counts,
                              decode.kernel_names))
        hybrid_map = dict(zip(hybrid.expert_token_counts,
                              hybrid.kernel_names))
        shared = set(decode_map) & set(hybrid_map)
        assert shared
        for count in shared:
            assert decode_map[count] == hybrid_map[count]

    def test_default_threshold(self):
        sel = ari_selection_for(MACHINE, KT_AVX512, KT_AMX)
        assert sel.ari_threshold == DEFAULT_ARI_THRESHOLD

    def test_backend_overrides_profiles(self):
        sel = ari_selection_for(MACHINE, KT_AVX512, KT_AMX,
                                backend=TRITON_PORTABLE_BACKEND)
        assert sel.ari_threshold == TRITON_PORTABLE_BACKEND.ari_threshold
        assert sel.kernel_name(1) == "triton-tall"
        assert sel.kernel_name(100) == "triton-bulk"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            AriSelection(latency_profile=KT_AVX512,
                         throughput_profile=KT_AMX, ari_threshold=-1)


# --- satellite: fail-fast string knobs --------------------------------------

class TestFailFastKnobs:
    def test_unknown_backend_name(self):
        with pytest.raises(ValueError, match="kt-amx-avx512"):
            BatchSchedulerConfig(backend="cuda-tensorcore")

    def test_unknown_gemm_dispatch(self):
        with pytest.raises(ValueError, match="legacy"):
            BatchSchedulerConfig(gemm_dispatch="magic")

    def test_unknown_chunk_policy(self):
        with pytest.raises(ValueError, match="decode-priority"):
            BatchSchedulerConfig(chunk_policy="yolo")

    def test_unknown_backend_in_cost_model(self, session):
        with pytest.raises(ValueError, match="registered backends"):
            BatchCostModel(session, backend="nope")

    def test_unknown_backend_in_fleet(self):
        with pytest.raises(ValueError, match="registered backends"):
            FleetConfig(n_replicas=1, backends=("nope",))

    def test_fleet_backends_length_mismatch(self):
        with pytest.raises(ConfigError, match="per replica"):
            FleetConfig(n_replicas=2, backends=("kt-amx-avx512",))

    def test_config_error_is_value_error(self):
        """Construction-time knob rejections are catchable either way."""
        assert issubclass(ConfigError, ValueError)


# --- registry mechanics -----------------------------------------------------

class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert DEFAULT_BACKEND == "kt-amx-avx512"
        assert {"kt-amx-avx512", "torch-vendor",
                "triton-portable"} <= set(names)

    def test_get_unknown_lists_choices(self):
        with pytest.raises(ValueError, match="kt-amx-avx512"):
            get_backend("nope")

    def test_resolve_passthrough(self):
        assert resolve_backend(None) is None
        assert resolve_backend(KT_AMX_AVX512_BACKEND) is KT_AMX_AVX512_BACKEND
        assert resolve_backend("triton-portable") is TRITON_PORTABLE_BACKEND

    def test_register_unregister_roundtrip(self):
        custom = dataclasses.replace(KT_AMX_AVX512_BACKEND,
                                     name="custom-test")
        register_backend(custom)
        try:
            assert get_backend("custom-test") is custom
            with pytest.raises(ValueError, match="already registered"):
                register_backend(custom)
            register_backend(custom, replace=True)
        finally:
            unregister_backend("custom-test")
        with pytest.raises(ValueError):
            get_backend("custom-test")

    def test_cannot_unregister_default(self):
        with pytest.raises(ValueError):
            unregister_backend(DEFAULT_BACKEND)

    def test_summaries_cover_every_backend(self):
        rows = backend_summaries()
        assert {r["name"] for r in rows} == set(available_backends())
        for r in rows:
            assert r["ari_threshold"] >= 0

    def test_launch_model_rejects_negative(self):
        with pytest.raises(ValueError):
            LaunchModel(kernel_launch_latency_us=-1.0)

    def test_default_backend_launch_is_identity(self):
        """Bit-identity hinges on this: the default backend must hand back
        the *same* machine object, not a rebuilt equal one."""
        assert KT_AMX_AVX512_BACKEND.apply_launch(MACHINE) is MACHINE

    def test_launch_overrides_apply(self):
        m = TRITON_PORTABLE_BACKEND.apply_launch(MACHINE)
        assert m is not MACHINE
        assert m.gpu.kernel_launch_latency_us == 8.0
        assert m.gpu.graph_launch_us == 14.0
        # untouched fields and the original spec survive
        assert m.gpu.graph_replay_latency_us == \
            MACHINE.gpu.graph_replay_latency_us
        assert MACHINE.gpu.kernel_launch_latency_us != 8.0

    def test_amx_fallback_on_capability(self):
        lat, thr = KT_AMX_AVX512_BACKEND.resolve_profiles(NO_AMX)
        assert thr is lat is KT_AVX512
        # a backend whose throughput lane never touches AMX keeps it
        lat_t, thr_t = TRITON_PORTABLE_BACKEND.resolve_profiles(NO_AMX)
        assert thr_t is TRITON_PORTABLE_BACKEND.throughput_profile
        assert KT_AMX_AVX512_BACKEND.requires_amx_lane
        assert not TRITON_PORTABLE_BACKEND.requires_amx_lane

    def test_hybrid_kernel_from_backend(self):
        k = TORCH_VENDOR_BACKEND.make_hybrid_kernel()
        assert k.ari_threshold == TORCH_VENDOR_BACKEND.ari_threshold


# --- serving integration ----------------------------------------------------

class TestServingIntegration:
    def test_rebind_backend_fresh_server(self, session):
        server = ContinuousBatchingServer(
            session, BatchSchedulerConfig(kv_budget_tokens=512,
                                          max_batch_size=4))
        server.rebind_backend("torch-vendor")
        assert server.costs.backend.name == "torch-vendor"
        assert server.config.backend == "torch-vendor"

    def test_rebind_backend_refuses_served_work(self, session):
        server = ContinuousBatchingServer(
            session, BatchSchedulerConfig(kv_budget_tokens=512,
                                          max_batch_size=4))
        server.replay(small_workload())
        with pytest.raises(ConfigError, match="fresh"):
            server.rebind_backend("torch-vendor")

    def test_fleet_default_backend_bit_identity(self, session):
        """A fleet pinning every replica to the default backend replays
        bit-for-bit like one with no backends configured."""
        def make_server():
            return ContinuousBatchingServer(
                session, BatchSchedulerConfig(kv_budget_tokens=512,
                                              max_batch_size=4))

        def key(stats):
            return [(t.arrival_us, t.start_us, t.first_token_us,
                     t.finish_us, t.generated_tokens) for t in stats.timings]

        base = FleetRouter(make_server, FleetConfig(n_replicas=2)).replay(
            list(small_workload()))
        pinned = FleetRouter(
            make_server,
            FleetConfig(n_replicas=2,
                        backends=("kt-amx-avx512", None))).replay(
            list(small_workload()))
        assert key(pinned) == key(base)

    def test_fleet_mixed_backends_serve_all(self, session):
        def make_server():
            return ContinuousBatchingServer(
                session, BatchSchedulerConfig(kv_budget_tokens=512,
                                              max_batch_size=4))
        stats = FleetRouter(
            make_server,
            FleetConfig(n_replicas=2,
                        backends=("triton-portable", "torch-vendor"))
        ).replay(list(small_workload()))
        assert len(stats.timings) == 6
        assert all(t.generated_tokens > 0 for t in stats.timings)


# --- satellite: property fuzz over every registered backend -----------------

@settings(max_examples=15, deadline=None)
@given(name=st.sampled_from(sorted(available_backends())),
       batch=st.integers(min_value=1, max_value=8),
       ctx=st.integers(min_value=8, max_value=256))
def test_any_backend_deterministic_positive_steps(name, batch, ctx):
    """Every registered backend prices strictly positive step times,
    bit-reproducibly across independently built cost models."""
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), QW2)
    a = BatchCostModel(session, backend=name)
    b = BatchCostModel(session, backend=name)
    step = a.decode_step_us([ctx] * batch)
    assert step > 0.0
    assert step == b.decode_step_us([ctx] * batch)
    hybrid = a.hybrid_step_us([ctx] * batch, 32)
    assert hybrid > step
    assert hybrid == b.hybrid_step_us([ctx] * batch, 32)


@settings(max_examples=15, deadline=None)
@given(name=st.sampled_from(sorted(available_backends())),
       batch=st.integers(min_value=1, max_value=16))
def test_any_backend_conserves_tokens(name, batch):
    """Routed-token conservation holds under every backend: the dispatch
    summary accounts for exactly batch * top_k tokens, each classified
    by the backend's own lane labels."""
    backend = get_backend(name)
    _, summary = batched_decode_works(
        KTRANSFORMERS, QW2, MACHINE, BF16, [64] * batch, backend=backend)
    assert sum(summary.expert_token_counts) == batch * QW2.top_k
    labels = {backend.latency_label, backend.throughput_label, "idle"}
    assert set(summary.kernel_names) <= labels
