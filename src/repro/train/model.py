"""Trainable MoE transformer (autograd twin of the inference model).

Parameter names and forward semantics mirror
:class:`repro.model.transformer.MoETransformer` exactly, so a trained
model's ``export_state_dict()`` loads straight into the inference model via
``load_state_dict`` -- the standard train-then-deploy flow.  An equivalence
test asserts that both models produce the same logits for the same weights.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd.ops import (
    causal_attend,
    embedding,
    rmsnorm,
    rope_apply,
    softmax,
)
from ..autograd.tensor import Tensor
from ..errors import ConfigError
from ..model.transformer import ModelConfig


class TrainableMoETransformer:
    """Full-sequence (teacher-forced) trainable twin of ``MoETransformer``."""

    def __init__(self, config: ModelConfig, seed: Optional[int] = None) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed if seed is None else seed)
        self.params: dict[str, Tensor] = {}
        # Auxiliary router losses collected during the last forward pass
        # (negative entropy of the top-k gate weights, one per MoE layer).
        self.aux_losses: list[Tensor] = []
        self._build(rng)

    # -- parameter construction ---------------------------------------------

    def _add(self, name: str, rows: int, cols: int,
             rng: np.random.Generator, scale: float = 0.05) -> None:
        self.params[name] = Tensor.param(
            rng.standard_normal((rows, cols)).astype(np.float32) * scale,
            name=name,
        )

    def _add_gain(self, name: str, dim: int) -> None:
        self.params[name] = Tensor.param(np.ones(dim, dtype=np.float32),
                                         name=name)

    def _build(self, rng: np.random.Generator) -> None:
        c = self.config
        h = c.hidden
        self._add("embed_tokens.weight", c.vocab_size, h, rng)
        for i in range(c.n_layers):
            p = f"layers.{i}"
            self._add_gain(f"{p}.input_norm.gain", h)
            if c.attention == "mla":
                self._add(f"{p}.self_attn.wq.weight", h, h, rng)
                self._add(f"{p}.self_attn.w_kv_down.weight", h, c.kv_rank, rng)
                self._add(f"{p}.self_attn.w_k_up.weight", c.kv_rank, h, rng)
                self._add(f"{p}.self_attn.w_v_up.weight", c.kv_rank, h, rng)
                self._add(f"{p}.self_attn.wo.weight", h, h, rng)
            else:
                for w in ("wq", "wk", "wv", "wo"):
                    self._add(f"{p}.self_attn.{w}.weight", h, h, rng)
            self._add_gain(f"{p}.post_attn_norm.gain", h)
            if i < c.first_dense_layers:
                self._add(f"{p}.mlp.gate_proj.weight", h, c.dense_intermediate, rng)
                self._add(f"{p}.mlp.up_proj.weight", h, c.dense_intermediate, rng)
                self._add(f"{p}.mlp.down_proj.weight", c.dense_intermediate, h, rng)
            else:
                self._add(f"{p}.mlp.gate.weight", h, c.n_experts, rng, scale=0.5)
                for j in range(c.n_shared_experts):
                    q = f"{p}.mlp.shared_experts.{j}"
                    self._add(f"{q}.w_gate", h, c.moe_intermediate, rng)
                    self._add(f"{q}.w_up", h, c.moe_intermediate, rng)
                    self._add(f"{q}.w_down", c.moe_intermediate, h, rng)
                for e in range(c.n_experts):
                    q = f"{p}.mlp.experts.{e}"
                    self._add(f"{q}.w_gate", h, c.moe_intermediate, rng)
                    self._add(f"{q}.w_up", h, c.moe_intermediate, rng)
                    self._add(f"{q}.w_down", c.moe_intermediate, h, rng)
        self._add_gain("norm.gain", h)
        self._add("lm_head.weight", h, c.vocab_size, rng)

    def parameters(self) -> list[Tensor]:
        return list(self.params.values())

    def n_parameters(self) -> int:
        return sum(int(p.data.size) for p in self.parameters())

    def export_state_dict(self) -> dict[str, np.ndarray]:
        """Weights keyed exactly like ``MoETransformer.state_dict()``."""
        return {name: p.data.copy() for name, p in self.params.items()}

    # -- forward ---------------------------------------------------------------

    def forward(self, token_ids: np.ndarray) -> Tensor:
        """Full-sequence causal forward; returns (seq, vocab) logits."""
        c = self.config
        ids = np.asarray(token_ids)
        positions = np.arange(len(ids))
        self.aux_losses = []
        x = embedding(self.params["embed_tokens.weight"], ids)
        for i in range(c.n_layers):
            x = self._layer(i, x, positions)
        x = rmsnorm(x, self.params["norm.gain"])
        return x @ self.params["lm_head.weight"]

    def _layer(self, i: int, x: Tensor, positions: np.ndarray) -> Tensor:
        p = f"layers.{i}"
        h = x + self._attention(p, rmsnorm(x, self.params[f"{p}.input_norm.gain"]),
                                positions)
        fin = rmsnorm(h, self.params[f"{p}.post_attn_norm.gain"])
        if i < self.config.first_dense_layers:
            return h + self._dense_ffn(p, fin)
        return h + self._moe(p, fin)

    def _attention(self, p: str, x: Tensor, positions: np.ndarray) -> Tensor:
        c = self.config
        seq = x.shape[0]
        heads, hd = c.n_heads, c.hidden // c.n_heads
        q = (x @ self.params[f"{p}.self_attn.wq.weight"]).reshape(seq, heads, hd)
        q = rope_apply(q, positions)
        if c.attention == "mla":
            latent = x @ self.params[f"{p}.self_attn.w_kv_down.weight"]
            k = (latent @ self.params[f"{p}.self_attn.w_k_up.weight"]
                 ).reshape(seq, heads, hd)
            v = (latent @ self.params[f"{p}.self_attn.w_v_up.weight"]
                 ).reshape(seq, heads, hd)
        else:
            k = (x @ self.params[f"{p}.self_attn.wk.weight"]).reshape(seq, heads, hd)
            v = (x @ self.params[f"{p}.self_attn.wv.weight"]).reshape(seq, heads, hd)
        k = rope_apply(k, positions)
        out = causal_attend(q, k, v, positions).reshape(seq, c.hidden)
        return out @ self.params[f"{p}.self_attn.wo.weight"]

    def _dense_ffn(self, p: str, x: Tensor) -> Tensor:
        g = x @ self.params[f"{p}.mlp.gate_proj.weight"]
        u = x @ self.params[f"{p}.mlp.up_proj.weight"]
        return (g.silu() * u) @ self.params[f"{p}.mlp.down_proj.weight"]

    def _expert_ffn(self, prefix: str, x: Tensor) -> Tensor:
        g = x @ self.params[f"{prefix}.w_gate"]
        u = x @ self.params[f"{prefix}.w_up"]
        return (g.silu() * u) @ self.params[f"{prefix}.w_down"]

    def _moe(self, p: str, fin: Tensor) -> Tensor:
        c = self.config
        out = Tensor(np.zeros_like(fin.data))
        for j in range(c.n_shared_experts):
            out = out + self._expert_ffn(f"{p}.mlp.shared_experts.{j}", fin)

        logits = fin @ self.params[f"{p}.mlp.gate.weight"]
        scores = softmax(logits)

        # Discrete selection mirrors repro.moe.router.route (numpy side)...
        masked = scores.data
        if c.n_groups > 1:
            masked = _grouped_mask(masked, c.n_groups, c.top_k_groups)
        k = c.top_k
        part = np.argpartition(-masked, k - 1, axis=1)[:, :k]
        part_scores = np.take_along_axis(masked, part, axis=1)
        order = np.argsort(-part_scores, axis=1, kind="stable")
        indices = np.take_along_axis(part, order, axis=1)

        # ...while the selected gate weights stay differentiable.
        top = scores.gather(indices, axis=-1)
        weights = top / top.sum(axis=-1, keepdims=True)

        # Router regularizer: negative entropy of the normalized top-k
        # weights.  Minimizing it (scaled by TrainConfig.router_entropy_coef)
        # spreads gate mass across the selected experts, mimicking the
        # load-balanced routing of production MoE training -- without it a
        # tiny router collapses onto slot 0 and the expert tail carries no
        # signal, which would make the deferral/skipping comparison vacuous.
        neg_entropy = (weights * (weights + 1e-9).log()).sum(axis=-1).mean()
        self.aux_losses.append(neg_entropy)

        n = fin.shape[0]
        for eid in np.unique(indices):
            tok, slot = np.nonzero(indices == eid)
            xe = fin.take_rows(tok)
            ye = self._expert_ffn(f"{p}.mlp.experts.{int(eid)}", xe)
            # The per-(token, slot) gate weight as a column vector.
            w = weights.take_rows(tok).gather(slot[:, None], axis=-1)
            out = out + (ye * w).scatter_rows(tok, n)
        return out


def _grouped_mask(scores: np.ndarray, n_groups: int, top_k_groups: int
                  ) -> np.ndarray:
    tokens, n_experts = scores.shape
    if n_experts % n_groups != 0:
        raise ConfigError("experts not divisible into groups")
    gsize = n_experts // n_groups
    grouped = scores.reshape(tokens, n_groups, gsize)
    gscores = grouped.max(axis=2)
    keep = np.argpartition(-gscores, top_k_groups - 1, axis=1)[:, :top_k_groups]
    mask = np.zeros((tokens, n_groups), dtype=bool)
    np.put_along_axis(mask, keep, True, axis=1)
    return np.where(mask[:, :, None], grouped, 0.0).reshape(tokens, n_experts)
