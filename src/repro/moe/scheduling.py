"""Static vs dynamic task scheduling across CPU threads (Section 3.2).

Prefill routes uneven token counts to experts, so statically partitioning
expert GEMMs across threads leaves some threads with much heavier work.
KTransformers instead splits large tasks into small sequential subtasks in
a lightweight work queue that threads drain dynamically; the paper reports
up to a 1.83x prefill improvement from this alone.

Both policies are simulated exactly (list scheduling over task durations)
rather than approximated with closed forms.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..errors import SchedulingError


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit: a (partial) expert GEMM."""

    duration_us: float
    expert_id: int

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise SchedulingError("work item duration must be non-negative")


@dataclass
class ScheduleOutcome:
    """Result of simulating one scheduling policy."""

    makespan_us: float
    per_thread_busy_us: list[float]
    n_subtasks: int

    @property
    def imbalance(self) -> float:
        """max/mean thread load; 1.0 is perfectly balanced."""
        busy = self.per_thread_busy_us
        mean = sum(busy) / len(busy)
        if mean == 0:
            return 1.0
        return max(busy) / mean


def static_schedule(items: Sequence[WorkItem], n_threads: int,
                    barrier_us: float = 2.0) -> ScheduleOutcome:
    """Contiguous static partitioning: thread i gets every i-th task.

    This mirrors the per-expert static assignment of the baseline systems:
    whole expert tasks are bound to threads up front, so one hot expert
    serializes its thread.
    """
    _validate(n_threads)
    loads = [0.0] * n_threads
    for i, item in enumerate(items):
        loads[i % n_threads] += item.duration_us
    makespan = max(loads) + barrier_us if items else barrier_us
    return ScheduleOutcome(makespan, loads, len(items))


def dynamic_schedule(
    items: Sequence[WorkItem],
    n_threads: int,
    chunk_us: float = 50.0,
    barrier_us: float = 2.0,
    per_chunk_overhead_us: float = 0.2,
) -> ScheduleOutcome:
    """Work-queue scheduling with task chunking.

    Each item is split into subtasks of at most ``chunk_us`` simulated
    duration (modelling the vertical sub-partitioning of expert weight
    matrices); idle threads pull the next chunk from a shared queue.  The
    greedy earliest-available-thread simulation is exact for this policy.
    """
    _validate(n_threads)
    if chunk_us <= 0:
        raise SchedulingError("chunk_us must be positive")
    chunks: list[float] = []
    for item in items:
        remaining = item.duration_us
        while remaining > chunk_us:
            chunks.append(chunk_us + per_chunk_overhead_us)
            remaining -= chunk_us
        if remaining > 0:
            chunks.append(remaining + per_chunk_overhead_us)

    avail = [0.0] * n_threads
    heap = [(0.0, i) for i in range(n_threads)]
    heapq.heapify(heap)
    for dur in chunks:
        t, idx = heapq.heappop(heap)
        avail[idx] = t + dur
        heapq.heappush(heap, (avail[idx], idx))
    makespan = (max(avail) if chunks else 0.0) + barrier_us
    return ScheduleOutcome(makespan, avail, len(chunks))


def speedup(static: ScheduleOutcome, dynamic: ScheduleOutcome) -> float:
    """Throughput gain of dynamic over static scheduling."""
    if dynamic.makespan_us <= 0:
        raise SchedulingError("dynamic makespan must be positive")
    return static.makespan_us / dynamic.makespan_us


def _validate(n_threads: int) -> None:
    if n_threads <= 0:
        raise SchedulingError(f"n_threads must be positive, got {n_threads}")
