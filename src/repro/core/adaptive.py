"""Adaptive Expert Deferral (extension beyond the paper).

The paper defers a *fixed* number of the lowest-score experts per layer
(Section 4.2 tunes that number offline).  Its related-work section points
at adaptive gating (NAEE, AdapMoE, Ada-K), which modulates expert usage per
token based on routing confidence.  This module combines the two ideas:

**Adaptive deferral** defers exactly the experts whose normalized gate
weight falls below a threshold -- confident tokens (mass concentrated in a
couple of experts) defer aggressively, uncertain tokens keep more experts
immediate -- subject to the paper's floor of 2 immediate experts and a
``max_deferred`` cap so the scheduler still has a worst-case bound.

Because deferral (unlike skipping) preserves every expert's contribution,
the adaptive variant trades scheduling slack against per-token behavioral
change exactly like the fixed variant, but allocates the slack where the
router says it is cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..model.moe_layer import MoEBlock
from ..model.transformer import MoETransformer, _select_token
from ..moe.router import RoutingResult
from .deferral import MIN_IMMEDIATE_EXPERTS


@dataclass(frozen=True)
class AdaptiveDeferralConfig:
    """Defer experts with gate weight below ``weight_threshold``."""

    weight_threshold: float
    max_deferred: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight_threshold < 1.0:
            raise ConfigError("weight_threshold must be in [0, 1)")
        if self.max_deferred < 0:
            raise ConfigError("max_deferred must be >= 0")


def adaptive_split(routing: RoutingResult, config: AdaptiveDeferralConfig
                   ) -> tuple[RoutingResult, RoutingResult, int]:
    """Split routing by weight threshold; returns (imm, def, n_deferred).

    Slots are weight-sorted, so the deferred set is always a suffix.  The
    per-token deferred count is the number of sub-threshold slots, clamped
    by ``max_deferred`` and the >=2-immediate floor.  (Batch rows share the
    most conservative count so the split stays a clean slot partition.)
    """
    k = routing.top_k
    below = routing.weights < config.weight_threshold
    # Per token: how many trailing slots fall below the threshold.
    per_token = below[:, ::-1].cumprod(axis=1).sum(axis=1)
    cap = min(config.max_deferred, max(k - MIN_IMMEDIATE_EXPERTS, 0))
    n_deferred = int(min(per_token.min(initial=k), cap))

    imm_w = routing.weights.copy()
    def_w = routing.weights.copy()
    split = k - n_deferred
    imm_w[:, split:] = 0.0
    def_w[:, :split] = 0.0
    imm = RoutingResult(routing.indices, imm_w, routing.scores)
    deferred = RoutingResult(routing.indices, def_w, routing.scores)
    return imm, deferred, n_deferred


class AdaptiveDeferralEngine:
    """Decode with per-layer, router-driven deferral counts."""

    def __init__(self, model: MoETransformer,
                 config: AdaptiveDeferralConfig) -> None:
        self.model = model
        self.config = config
        self.deferred_histogram: dict[int, int] = {}

    def _record(self, n: int) -> None:
        self.deferred_histogram[n] = self.deferred_histogram.get(n, 0) + 1

    def _decode_step(self, token_ids: np.ndarray, caches: list,
                     carried: dict[int, np.ndarray]) -> np.ndarray:
        model = self.model
        x = model.embed_tokens(np.atleast_1d(token_ids))
        moe_layers = [i for i, l in enumerate(model.layers) if l.is_moe]
        last_moe = moe_layers[-1]
        prev_moe: Optional[int] = None

        for idx, (layer, cache) in enumerate(zip(model.layers, caches)):
            h = layer.attn_part(x, cache)
            fin = layer.ffn_input(h)
            if not layer.is_moe:
                x = h + layer.mlp(fin)
                continue
            moe: MoEBlock = layer.mlp
            routing = moe.route(fin)
            contribution = moe.shared_forward(fin)
            if prev_moe is not None and prev_moe in carried:
                contribution = contribution + carried.pop(prev_moe)

            if idx != last_moe:
                imm, deferred, n = adaptive_split(routing, self.config)
                self._record(n)
                contribution = contribution + moe.routed_forward(fin, imm)
                if n > 0:
                    carried[idx] = moe.routed_forward(fin, deferred)
            else:
                contribution = contribution + moe.routed_forward(fin, routing)
            x = h + contribution
            prev_moe = idx
        return model.lm_head(model.norm(x))

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        greedy: bool = True,
        temperature: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        stop_token: Optional[int] = None,
    ) -> np.ndarray:
        """Standard prefill, adaptively-deferred decode."""
        if max_new_tokens < 0:
            raise ConfigError("max_new_tokens must be >= 0")
        caches = self.model.new_caches()
        logits = self.model.step(np.asarray(prompt), caches)
        carried: dict[int, np.ndarray] = {}
        sampler = rng or np.random.default_rng(0)
        out = []
        last = logits[-1]
        for __ in range(max_new_tokens):
            token = _select_token(last, greedy, temperature, sampler)
            out.append(token)
            if stop_token is not None and token == stop_token:
                break
            logits = self._decode_step(np.array([token]), caches, carried)
            last = logits[-1]
        return np.array(out, dtype=np.int64)

    def mean_deferred(self) -> float:
        """Average deferred count observed so far (scheduling slack)."""
        total = sum(self.deferred_histogram.values())
        if total == 0:
            return 0.0
        return sum(n * c for n, c in self.deferred_histogram.items()) / total
