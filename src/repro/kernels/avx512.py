"""KTransformers' lightweight AVX-512 kernel (Section 3.2).

Shares the AMX tile layout (so no repacking is ever needed to switch
kernels) but streams weights row-by-row with 512-bit vector FMAs instead of
tile multiplies.  This avoids AMX's 16-row tile padding, which is pure
waste when only one or a few tokens are being decoded.
"""

from __future__ import annotations

import numpy as np

from ..hw.roofline import KT_AVX512
from ..tensor.layout import PackedWeights
from ..tensor.tiles import TILE_ROWS
from .base import CPUGemmKernel

# One AVX-512 register holds 16 fp32 lanes; the kernel fuses multiply-add
# over strips of this width.
VECTOR_LANES = 16


class AVX512Kernel(CPUGemmKernel):
    """Row-streaming vector GEMM over the AMX layout (low-ARI path)."""

    profile = KT_AVX512

    def run(self, x: np.ndarray, weights: PackedWeights) -> np.ndarray:
        """Blocked broadcast-FMA over all column tasks at once.

        Each weight row r still issues one broadcast-FMA, but the update
        spans every column task's accumulator in a single vector op instead
        of per-task, per-strip Python iterations.  Every float32 multiply
        and add happens in the same order as :meth:`run_reference` (strips
        are disjoint columns), so the output is bit-identical.
        """
        xp = self._check_shapes(x, weights)
        tiles = weights.dense_tiles()            # (rt, ct, 16, tc)
        row_tiles, col_tiles, tr, tc = tiles.shape
        m = xp.shape[0]

        acc = np.zeros((col_tiles, m, tc), dtype=np.float32)
        for rt_idx in range(row_tiles):
            k_lo = rt_idx * TILE_ROWS
            block = tiles[rt_idx]                              # (ct, 16, tc)
            for r in range(TILE_ROWS):
                # broadcast-FMA: acc += x_col outer weight_row, for every
                # column task simultaneously.
                xcol = xp[:, k_lo + r]                         # (m,)
                acc += xcol[None, :, None] * block[:, r, :][:, None, :]

        out = acc.transpose(1, 0, 2).reshape(m, col_tiles * tc)
        return out[:, :weights.cols]

    def run_reference(self, x: np.ndarray, weights: PackedWeights) -> np.ndarray:
        """The explicit strip-level loop nest (kept as the layout oracle)."""
        xp = self._check_shapes(x, weights)
        tiles = weights.dense_tiles()            # (rt, ct, 16, tc)
        row_tiles, col_tiles, tr, tc = tiles.shape
        m = xp.shape[0]
        out = np.zeros((m, col_tiles * tc), dtype=np.float32)

        # The vector kernel walks the *same* tile stream as AMX but expands
        # each tile into scalar-row x vector-lane FMAs: for every weight row
        # r, broadcast x[:, r] and FMA against the row's 512-bit strips.
        for ct in range(col_tiles):
            col_lo = ct * tc
            acc = np.zeros((m, tc), dtype=np.float32)
            for rt_idx in range(row_tiles):
                k_lo = rt_idx * TILE_ROWS
                tile = tiles[rt_idx, ct]                       # (16, tc)
                for r in range(TILE_ROWS):
                    # broadcast-FMA: acc += x_col outer tile_row, computed
                    # strip-by-strip in VECTOR_LANES-wide chunks.
                    xcol = xp[:, k_lo + r:k_lo + r + 1]        # (m, 1)
                    for s in range(0, tc, VECTOR_LANES):
                        acc[:, s:s + VECTOR_LANES] += (
                            xcol * tile[r, s:s + VECTOR_LANES]
                        )
            out[:, col_lo:col_lo + tc] = acc

        return out[:, :weights.cols]
