"""Figure 11: prefill throughput vs prompt length, all models and systems.

Paper anchors: KTransformers wins at every prompt length (4.62x-19.74x
overall prefill speedups); llama.cpp beats Fiddler on short prompts
(better fusion) while Fiddler overtakes it on long prompts (oneDNN's AMX
path); quantized comparisons on the RTX 4080 pit KT against llama.cpp.
"""

import math

from repro.bench import fig11_prefill, format_table

HEADERS = ["prompt", "Fiddler", "llama.cpp", "KTransformers", "KT/best base"]


def _print(data, title):
    for model, rows in data.items():
        table = []
        for plen, fid, ll, kt in rows:
            best = ll if math.isnan(fid) else max(fid, ll)
            table.append((plen, fid, ll, kt, f"{kt / best:.2f}x"))
        print()
        print(format_table(HEADERS, table,
                           title=f"{title} [{model}] (tokens/s)"))


def test_fig11_prefill_bf16_a100(run_once):
    data = run_once(fig11_prefill)
    _print(data, "Figure 11 (BF16, A100)")
    assert set(data) == {"ds3", "ds2", "qw2"}
    for model, rows in data.items():
        for plen, fid, ll, kt in rows:
            assert kt > fid and kt > ll, f"{model}@{plen}: KT must win"
        # Short prompts: llama.cpp > Fiddler; long prompts: Fiddler > llama.cpp.
        assert rows[0][2] > rows[0][1], f"{model}: llama.cpp should win short"
        assert rows[-1][1] > rows[-1][2], f"{model}: Fiddler should win long"
        # Speedup over the best baseline: short prompts are bandwidth-bound
        # for everyone (modest edge); long prompts show the AMX advantage.
        for plen, fid, ll, kt in rows:
            ratio = kt / max(fid, ll)
            assert 1.15 <= ratio <= 21.0, f"{model}@{plen}: ratio {ratio:.2f}"

    # Somewhere in the sweep the speedup over the *weaker* baseline reaches
    # the paper's 4.62x-19.74x territory.
    peak = max(
        kt / min(fid, ll)
        for rows in data.values()
        for __, fid, ll, kt in rows
    )
    assert peak >= 4.62


def test_fig11_prefill_quantized_4080(run_once):
    data = run_once(fig11_prefill, quantized=True)
    _print(data, "Figure 11 (quantized, RTX 4080)")
    for model, rows in data.items():
        for plen, __, ll, kt in rows:
            assert kt > ll, f"{model}@{plen}: KT must beat llama.cpp"
