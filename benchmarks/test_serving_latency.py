"""Serving-latency characterization of the KTransformers deployment.

Not a paper figure, but the quantity local users feel: time-to-first-token
and time-per-output-token under increasing request rates, served by the
batch-1 local server with simulated DS-3-scale costs and real generated
tokens from the functional model.
"""

from repro.bench import format_table
from repro.model import DS3, MoETransformer, tiny_config
from repro.serving import InferenceSession, LocalServer, poisson_workload


def _latency_sweep():
    model = MoETransformer(tiny_config("tiny-qw", top_k=6))
    session = InferenceSession(model, DS3, n_deferred=3)
    rows = []
    for label, interarrival_s in (("light (1 req/min)", 60.0),
                                  ("moderate (1 req/10s)", 10.0),
                                  ("heavy (1 req/2s)", 2.0)):
        server = LocalServer(session)
        workload = poisson_workload(
            n_requests=8,
            mean_interarrival_us=interarrival_s * 1e6,
            prompt_len=32,
            max_new_tokens=8,
            vocab_size=model.config.vocab_size,
            seed=3,
        )
        s = server.replay(workload).summary()
        rows.append((label, s["ttft_p50_ms"], s["ttft_p95_ms"],
                     s["tpot_p50_ms"], s["queue_p95_ms"]))
    return rows


def test_serving_latency(run_once):
    rows = run_once(_latency_sweep)
    print()
    print(format_table(
        ["load", "TTFT p50 (ms)", "TTFT p95 (ms)", "TPOT p50 (ms)",
         "queue p95 (ms)"],
        rows,
        title="Local serving latency, DS-3-scale costs (batch 1, deferral on)",
    ))
    light, moderate, heavy = rows
    # Per-output-token latency is load-independent (batch 1).
    assert abs(light[3] - heavy[3]) < 1.0
    # Queueing delay grows with load.
    assert heavy[4] >= moderate[4] >= light[4]
    # Unloaded TTFT is prefill-dominated: a 32-token prompt on the 671B
    # model costs a few seconds at short-prompt prefill rates.
    assert light[1] < 5000.0
