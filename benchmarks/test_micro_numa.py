"""Micro-benchmarks: NUMA placement strategies (Sections 2.3 and 3.3).

Paper anchors: NUMA-aware tensor parallelism improves decode throughput up
to 1.63x over a NUMA-oblivious baseline (and up to 1.22x at prefill);
Fiddler's NUMA-oblivious scaling gains only ~16% from a second socket
(6.9 ms -> 5.8 ms per MoE layer).
"""

from repro.bench import format_table
from repro.hw import KT_AMX, KT_AVX512, TORCH_AVX512, paper_testbed, single_socket_testbed
from repro.model import DS3
from repro.moe import MoELayerDims, NumaStrategy, moe_layer_time_us
from repro.tensor import BF16

DIMS = MoELayerDims(DS3.hidden, DS3.moe_intermediate, BF16)
DECODE_COUNTS = [1, 0] * 4 + [0] * (DS3.n_experts - 8)  # 8 active experts
PREFILL_COUNTS = [64] * DS3.n_experts


def _strategy_table():
    machine = paper_testbed()
    rows = []
    for phase, counts, profile, streaming in (
        ("decode", DECODE_COUNTS, KT_AVX512, False),
        ("prefill", PREFILL_COUNTS, KT_AMX, True),
    ):
        times = {
            s.value: moe_layer_time_us(counts, DIMS, profile, machine, s,
                                       streaming_access=streaming)
            for s in NumaStrategy
        }
        rows.append((phase, times["oblivious"], times["expert_parallel"],
                     times["tensor_parallel"],
                     times["oblivious"] / times["tensor_parallel"]))
    return rows


def _fiddler_socket_scaling():
    counts = [1] * 8
    t1 = moe_layer_time_us(counts, DIMS, TORCH_AVX512,
                           single_socket_testbed(), NumaStrategy.OBLIVIOUS)
    t2 = moe_layer_time_us(counts, DIMS, TORCH_AVX512,
                           paper_testbed(), NumaStrategy.OBLIVIOUS)
    return t1, t2


def test_micro_numa_strategies(run_once):
    rows = run_once(_strategy_table)
    print()
    print(format_table(
        ["phase", "oblivious (us)", "expert-par (us)", "tensor-par (us)",
         "TP speedup"],
        rows,
        title="NUMA strategies, one DS-3 MoE layer, dual socket",
    ))
    by = {r[0]: r for r in rows}
    assert 1.3 <= by["decode"][4] <= 1.9     # paper: up to 1.63x
    assert 1.0 <= by["prefill"][4] <= 1.4    # paper: up to 1.22x
    assert by["decode"][4] > by["prefill"][4]


def test_micro_fiddler_numa_oblivious_scaling(benchmark):
    t1, t2 = benchmark.pedantic(_fiddler_socket_scaling, rounds=1, iterations=1)
    print(f"\nFiddler MoE layer decode: 1 socket {t1/1000:.2f} ms -> "
          f"2 sockets {t2/1000:.2f} ms ({t1/t2:.2f}x; paper 6.9->5.8 ms, 1.19x)")
    assert 1.05 <= t1 / t2 <= 1.35
