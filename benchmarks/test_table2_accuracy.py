"""Table 2: task accuracy with and without Expert Deferral.

Paper anchor: across HumanEval/MBPP/GSM8K/StrategyQA and all three models,
deferral changes scores by no more than ~2 points in either direction.

Reproduction: two tiny architectures mirroring the evaluated families --
``tiny-qw`` (MHA, plain top-k, like QW-2) and ``tiny-ds`` (MLA, grouped
top-k, leading dense layer, like DS-2/DS-3) -- trained from scratch on the
synthetic suite and compared between standard execution (k+0) and the
deferred configuration (2 immediate + the rest deferred).  Teacher-forced
answer NLL is reported alongside exact match as a continuous quality
signal.
"""

from repro.bench import format_table
from repro.core import DeferralConfig, DeferralEngine
from repro.eval import accuracy_row, corpus_nll, trained_task

# (architecture, top_k, deferred, tasks x training steps).
CONFIGS = (
    ("tiny-qw", 6, 4, (("modsum", 500), ("copy", 400), ("majority", 400),
                       ("recall", 600))),
    ("tiny-ds", 4, 2, (("modsum", 500), ("copy", 400))),
)


def _table2():
    rows = []
    for arch, top_k, n_def, tasks in CONFIGS:
        for name, steps in tasks:
            tt = trained_task(name, config_name=arch, steps=steps,
                              top_k=top_k)
            accs = accuracy_row(tt, [("standard", 0), ("deferral", n_def)])
            nll_base = corpus_nll(
                DeferralEngine(tt.model, DeferralConfig(0)), tt.test[:24])
            nll_def = corpus_nll(
                DeferralEngine(tt.model, DeferralConfig(n_def)), tt.test[:24])
            rows.append((
                arch, name, f"({top_k}+0)/(2+{n_def})",
                accs["standard"] * 100,
                accs[f"deferral@{n_def}"] * 100,
                (accs[f"deferral@{n_def}"] - accs["standard"]) * 100,
                nll_base, nll_def,
            ))
    return rows


def test_table2_accuracy(run_once):
    rows = run_once(_table2)
    print()
    print(format_table(
        ["arch", "task", "config", "base acc %", "defer acc %", "delta",
         "base NLL", "defer NLL"],
        rows,
        title="Table 2: accuracy with and without Expert Deferral",
    ))
    learned = [r for r in rows if r[3] >= 60.0]
    assert len(learned) >= 4, "most tasks should be learnable to >=60% EM"
    for arch, name, __, base, deferred, delta, nll_b, nll_d in rows:
        if base < 60.0:
            continue
        # Paper: deltas within ~2 points; we allow a wider band for the
        # small test sets (64 examples -> 1.6% quantization).
        assert abs(delta) <= 6.5, f"{arch}/{name}: deferral moved {delta:.1f}"
        # NLL under deferral stays close to the unmodified model.
        assert nll_d <= nll_b + 0.5, f"{arch}/{name}: NLL jumped"
    # Both architecture families are represented among learned tasks.
    assert {r[0] for r in learned} == {"tiny-qw", "tiny-ds"}
