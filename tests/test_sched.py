"""Tests for launch modes, decode/prefill task graphs, and workload lowering."""

import pytest

from repro.errors import GraphCaptureError, SchedulingError
from repro.hw import KT_AVX512, Simulator, Trace, paper_testbed
from repro.model import DS3, QW2
from repro.moe import NumaStrategy
from repro.sched import (
    DecodeScheduleConfig,
    GpuExecutor,
    LaunchMode,
    decode_layer_work,
    prefill_layer_work,
    scheduling_penalty,
    simulate_decode,
)
from repro.tensor import BF16, INT4

MACHINE = paper_testbed("a100")


def _work(cpu_us=100.0, gpu_us=50.0, shared_us=10.0, kernels=10):
    from repro.sched.workload import DecodeLayerWork
    return DecodeLayerWork(
        gpu_attn_us=gpu_us, gpu_shared_us=shared_us,
        cpu_routed_us=cpu_us, transfer_bytes=14336.0, n_gpu_kernels=kernels,
    )


class TestLaunchModes:
    def test_latencies_ordered(self):
        py = LaunchMode.PER_KERNEL_PYTHON.launch_latency_us(MACHINE)
        cpp = LaunchMode.PER_KERNEL_CPP.launch_latency_us(MACHINE)
        graph = LaunchMode.CUDA_GRAPH.launch_latency_us(MACHINE)
        assert py > cpp > graph

    def test_graph_sync_is_free(self):
        assert LaunchMode.CUDA_GRAPH.sync_latency_us() == 0.0
        assert LaunchMode.PER_KERNEL_PYTHON.sync_latency_us() > 0

    def test_graph_requires_begin_step(self):
        sim = Simulator()
        ex = GpuExecutor(sim, MACHINE, LaunchMode.CUDA_GRAPH)
        with pytest.raises(GraphCaptureError):
            ex.kernel("k", 10.0, 1)

    def test_per_kernel_creates_launch_tasks(self):
        sim = Simulator()
        ex = GpuExecutor(sim, MACHINE, LaunchMode.PER_KERNEL_PYTHON)
        ex.kernel("attn", 10.0, 5)
        sim.drain()
        tr = Trace.from_simulator(sim)
        assert tr.count("host", name_prefix="launch:") == 1
        assert tr.total_duration("host", name_prefix="launch:") == pytest.approx(80.0)

    def test_graph_mode_single_launch(self):
        sim = Simulator()
        ex = GpuExecutor(sim, MACHINE, LaunchMode.CUDA_GRAPH)
        ex.begin_step()
        for i in range(8):
            ex.kernel(f"k{i}", 5.0, 3)
        sim.drain()
        tr = Trace.from_simulator(sim)
        assert tr.count("host", name_prefix="launch:") == 1


class TestDecodeSchedule:
    def test_deferral_needs_two_immediate(self):
        with pytest.raises(SchedulingError):
            DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8,
                                 n_deferred=7)

    def test_n_immediate(self):
        cfg = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8,
                                   n_deferred=3)
        assert cfg.n_immediate == 5

    def test_graph_mode_faster_than_python_launches(self):
        works = [_work()] * 8
        t = {}
        for mode in (LaunchMode.PER_KERNEL_PYTHON, LaunchMode.CUDA_GRAPH):
            cfg = DecodeScheduleConfig(mode, True, top_k=8)
            t[mode] = simulate_decode(works, cfg, MACHINE, n_tokens=4).now
        assert t[LaunchMode.CUDA_GRAPH] < t[LaunchMode.PER_KERNEL_PYTHON]

    def test_overlap_faster_than_sequential(self):
        works = [_work(cpu_us=200.0, shared_us=150.0)] * 6
        cfg_seq = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, False, top_k=8)
        cfg_ovl = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8)
        t_seq = simulate_decode(works, cfg_seq, MACHINE, 2).now
        t_ovl = simulate_decode(works, cfg_ovl, MACHINE, 2).now
        assert t_ovl < t_seq

    def test_deferral_improves_throughput_when_gpu_heavy(self):
        works = [_work(cpu_us=400.0, gpu_us=250.0)] * 8
        base = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8)
        defer = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8,
                                     n_deferred=3)
        t0 = simulate_decode(works, base, MACHINE, 4).now
        t1 = simulate_decode(works, defer, MACHINE, 4).now
        assert t1 < t0

    def test_deferral_raises_cpu_utilization(self):
        works = [_work(cpu_us=400.0, gpu_us=250.0)] * 8
        base = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8)
        defer = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8,
                                     n_deferred=3)
        u0 = Trace.from_simulator(
            simulate_decode(works, base, MACHINE, 4)).utilization("cpu")
        u1 = Trace.from_simulator(
            simulate_decode(works, defer, MACHINE, 4)).utilization("cpu")
        assert u1 > u0

    def test_cpu_work_conserved_under_deferral(self):
        """Deferral reorders CPU work; it must not change its total amount."""
        works = [_work(cpu_us=400.0)] * 6
        base = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8)
        defer = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8,
                                     n_deferred=4)
        b0 = Trace.from_simulator(
            simulate_decode(works, base, MACHINE, 2)).total_duration("cpu")
        b1 = Trace.from_simulator(
            simulate_decode(works, defer, MACHINE, 2)).total_duration("cpu")
        assert b0 == pytest.approx(b1, rel=1e-6)

    def test_dense_layers_skip_cpu(self):
        works = [_work(cpu_us=0.0, kernels=5), _work()]
        cfg = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8)
        sim = simulate_decode(works, cfg, MACHINE, 1)
        tr = Trace.from_simulator(sim)
        assert tr.count("cpu") == 1

    def test_empty_layers_rejected(self):
        cfg = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8)
        with pytest.raises(SchedulingError):
            simulate_decode([], cfg, MACHINE, 1)

    def test_zero_tokens_rejected(self):
        cfg = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8)
        with pytest.raises(SchedulingError):
            simulate_decode([_work()], cfg, MACHINE, 0)

    def test_steps_serialize(self):
        works = [_work()] * 4
        cfg = DecodeScheduleConfig(LaunchMode.CUDA_GRAPH, True, top_k=8)
        t1 = simulate_decode(works, cfg, MACHINE, 1).now
        t4 = simulate_decode(works, cfg, MACHINE, 4).now
        assert t4 > 3 * t1


class TestWorkloadLowering:
    def test_decode_work_positive(self):
        w = decode_layer_work(DS3, MACHINE, BF16, 128, KT_AVX512,
                              NumaStrategy.TENSOR_PARALLEL, 28)
        assert w.gpu_attn_us > 0 and w.cpu_routed_us > 0
        assert w.transfer_bytes == DS3.hidden * 2

    def test_quantized_decode_cheaper(self):
        bf16 = decode_layer_work(DS3, MACHINE, BF16, 128, KT_AVX512,
                                 NumaStrategy.TENSOR_PARALLEL, 28)
        int4 = decode_layer_work(DS3, MACHINE, INT4, 128, KT_AVX512,
                                 NumaStrategy.TENSOR_PARALLEL, 28)
        assert int4.cpu_routed_us < bf16.cpu_routed_us / 2

    def test_cpu_split(self):
        w = _work(cpu_us=800.0)
        imm, deferred = w.cpu_split(5, 3, 8)
        assert imm == pytest.approx(500.0)
        assert deferred == pytest.approx(300.0)
        with pytest.raises(ValueError):
            w.cpu_split(5, 5, 8)

    def test_longer_context_costs_more_gpu(self):
        a = decode_layer_work(QW2, MACHINE, BF16, 32, KT_AVX512,
                              NumaStrategy.TENSOR_PARALLEL, 28)
        b = decode_layer_work(QW2, MACHINE, BF16, 8192, KT_AVX512,
                              NumaStrategy.TENSOR_PARALLEL, 28)
        assert b.gpu_attn_us > a.gpu_attn_us

    def test_prefill_per_token_cost_drops_with_chunk(self):
        """Expert weights stream once per chunk regardless of chunk size,
        so larger chunks amortize the traffic over more tokens."""
        from repro.hw import KT_AMX
        small = prefill_layer_work(DS3, MACHINE, BF16, 128, KT_AMX,
                                   NumaStrategy.TENSOR_PARALLEL, 28)
        big = prefill_layer_work(DS3, MACHINE, BF16, 2048, KT_AMX,
                                 NumaStrategy.TENSOR_PARALLEL, 28)
        assert big.cpu_routed_us / 2048 < small.cpu_routed_us / 128
        assert big.gpu_attn_us > small.gpu_attn_us

    def test_static_penalty_at_least_dynamic(self):
        import numpy as np
        counts = np.array([50, 3, 3, 3, 3, 2, 2, 1])
        p_static = scheduling_penalty(counts, 36, dynamic=False)
        p_dyn = scheduling_penalty(counts, 36, dynamic=True)
        assert p_static >= p_dyn >= 1.0

    def test_balanced_counts_small_penalty(self):
        import numpy as np
        counts = np.full(64, 32)
        assert scheduling_penalty(counts, 36, dynamic=True) < 1.2
