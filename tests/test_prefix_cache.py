"""Unit and property tests for the radix prefix-KV cache (ISSUE 7).

Direct tests pin the page-quantized semantics (page-aligned matches
strictly shorter than the prompt, mid-page divergence, split/refcount
inheritance, protect sets, host tiering); the hypothesis suite fuzzes
random insert/match/extend/evict/park interleavings and checks the
structural invariants the serving engine relies on:

- page-refcount conservation: after releasing every outstanding
  acquire, ``total_refs`` returns to zero;
- pool conservation: with no request slots, the pool's used tokens
  always equal the cache's GPU-resident tokens (pages freed exactly
  once -- the pool's own double-free guard would raise otherwise);
- a match is never the whole prompt and is always page-aligned;
- the same operation sequence replays bit-identically on a fresh cache.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, KVCacheError
from repro.model.paged import PagedKVPool
from repro.serving import (
    KVTierConfig,
    MatchProbe,
    PrefixCacheConfig,
    RadixPrefixCache,
)

PAGE = 16


def make_cache(budget_tokens=4096, capacity_tokens=None, tier=None):
    pool = PagedKVPool(n_heads=1, head_dim=1, budget_tokens=budget_tokens,
                       page_tokens=PAGE)
    cfg = PrefixCacheConfig(capacity_tokens=capacity_tokens)
    return RadixPrefixCache(pool, cfg, tier=tier)


def toks(*pages):
    """Build a prompt from page indices: page i is 16 copies of i."""
    out = []
    for p in pages:
        out.extend([p] * PAGE)
    return tuple(out)


# -- config validation -------------------------------------------------------

def test_config_rejects_nonpositive_capacity():
    with pytest.raises(ConfigError):
        PrefixCacheConfig(capacity_tokens=0)
    with pytest.raises(ConfigError):
        PrefixCacheConfig(capacity_tokens=-16)
    assert PrefixCacheConfig(capacity_tokens=None).capacity_tokens is None


def test_tier_config_validation():
    with pytest.raises(ConfigError):
        KVTierConfig(host_budget_tokens=0)
    with pytest.raises(ConfigError):
        KVTierConfig(idle_park_us=-1.0)
    with pytest.raises(ConfigError):
        KVTierConfig(think_ewma_alpha=0.0)
    with pytest.raises(ConfigError):
        KVTierConfig(think_ewma_alpha=1.5)
    assert KVTierConfig(think_ewma_alpha=1.0).prefetch is True


# -- matching semantics ------------------------------------------------------

def test_probe_empty_cache_matches_nothing():
    cache = make_cache()
    probe = cache.probe(toks(1, 2))
    assert probe == MatchProbe(0, 0, ())


def test_match_never_covers_whole_prompt():
    cache = make_cache()
    prompt = toks(1, 2, 3)
    cache.insert(prompt, now=0.0, max_new_pages=100)
    # The full prompt is cached, but at most len - 1 (page-floored) can
    # ever be served: the last token's logits must be recomputed.
    probe = cache.probe(prompt)
    assert probe.matched_tokens == 2 * PAGE
    assert probe.matched_tokens < len(prompt)
    # A one-page prompt can never match at all.
    assert cache.probe(toks(1)).matched_tokens == 0
    assert cache.probe((7,)).matched_tokens == 0


def test_match_is_page_aligned_on_mid_page_divergence():
    cache = make_cache()
    prompt = toks(1, 2)
    cache.insert(prompt, now=0.0, max_new_pages=100)
    # Diverge 3 tokens into the second page: only page 1 is reusable.
    other = list(prompt)
    other[PAGE + 3] = 99
    probe = cache.probe(tuple(other) + toks(5))
    assert probe.matched_tokens == PAGE


def test_extension_prompt_matches_previous_turn():
    cache = make_cache()
    turn1 = toks(1, 2)
    cache.insert(turn1, now=0.0, max_new_pages=100)
    turn2 = turn1 + toks(3, 4)
    assert cache.probe(turn2).matched_tokens == 2 * PAGE
    cache.insert(turn2, now=1.0, max_new_pages=100)
    turn3 = turn2 + toks(5)
    assert cache.probe(turn3).matched_tokens == 4 * PAGE


# -- acquire / release -------------------------------------------------------

def test_acquire_release_roundtrip_conserves_refs():
    cache = make_cache()
    prompt = toks(1, 2, 3)
    cache.insert(prompt, now=0.0, max_new_pages=100)
    matched, unparked = cache.acquire(prompt, now=1.0)
    assert matched == 2 * PAGE and unparked == 0
    assert cache.total_refs > 0
    cache.release(prompt, matched, now=2.0)
    assert cache.total_refs == 0


def test_acquire_splits_and_release_rewalks_both_halves():
    cache = make_cache()
    long = toks(1, 2, 3, 4)
    cache.insert(long, now=0.0, max_new_pages=100)
    assert cache.n_nodes == 1
    # Acquiring a 2-page prefix must split the 4-page node.
    short = toks(1, 2) + (9,)
    matched, _ = cache.acquire(short, now=1.0)
    assert matched == 2 * PAGE
    assert cache.n_nodes == 2
    # Pool conservation across the split (free-then-allocate).
    assert cache.pool.used_tokens == cache.gpu_tokens == 4 * PAGE
    cache.release(short, matched, now=2.0)
    assert cache.total_refs == 0


def test_split_copies_refs_to_both_halves():
    cache = make_cache()
    long = toks(1, 2, 3, 4)
    cache.insert(long, now=0.0, max_new_pages=100)
    m_long, _ = cache.acquire(long + (9,), now=1.0)
    assert m_long == 4 * PAGE
    # A second acquire of a shorter prefix splits the held node: the
    # back half keeps the first holder's reference.
    m_short, _ = cache.acquire(toks(1, 2) + (9,), now=2.0)
    assert m_short == 2 * PAGE
    assert cache.total_refs == 3   # long holder covers 2 nodes, short 1
    cache.release(long + (9,), m_long, now=3.0)
    cache.release(toks(1, 2) + (9,), m_short, now=3.0)
    assert cache.total_refs == 0


def test_release_underflow_raises():
    cache = make_cache()
    prompt = toks(1, 2)
    cache.insert(prompt, now=0.0, max_new_pages=100)
    matched, _ = cache.acquire(prompt, now=1.0)
    cache.release(prompt, matched, now=2.0)
    with pytest.raises(KVCacheError):
        cache.release(prompt, matched, now=3.0)


def test_release_zero_match_is_noop():
    cache = make_cache()
    cache.release(toks(1), 0, now=0.0)   # must not raise
    assert cache.total_refs == 0


# -- insert / capacity / eviction --------------------------------------------

def test_insert_returns_new_tokens_only():
    cache = make_cache()
    assert cache.insert(toks(1, 2), now=0.0, max_new_pages=100) == 2 * PAGE
    # Re-inserting the same prompt adds nothing.
    assert cache.insert(toks(1, 2), now=1.0, max_new_pages=100) == 0
    # Extending adds only the fresh suffix.
    assert cache.insert(toks(1, 2, 3), now=2.0, max_new_pages=100) == PAGE
    assert cache.inserted_tokens == 3 * PAGE


def test_insert_respects_page_grant():
    cache = make_cache()
    got = cache.insert(toks(1, 2, 3, 4), now=0.0, max_new_pages=2)
    assert got == 2 * PAGE
    assert cache.gpu_tokens == 2 * PAGE
    # Zero grant with evictable entries: the insert self-finances by
    # evicting its own LRU entry -- footprint never grows.
    assert cache.insert(toks(9, 8), now=1.0, max_new_pages=0) == 2 * PAGE
    assert cache.gpu_tokens == 2 * PAGE
    assert cache.probe(toks(1, 2) + (5,)).matched_tokens == 0
    # Zero grant with nothing to evict: nothing is inserted.
    empty = make_cache()
    assert empty.insert(toks(9, 8), now=0.0, max_new_pages=0) == 0


def test_capacity_cap_evicts_lru_then_trims():
    cache = make_cache(capacity_tokens=3 * PAGE)
    cache.insert(toks(1, 2), now=0.0, max_new_pages=100)
    cache.insert(toks(7, 8, 9), now=1.0, max_new_pages=100)
    # Total footprint never exceeds the cap; the older entry was evicted.
    assert cache.gpu_tokens + cache.host_tokens <= 3 * PAGE
    assert cache.evicted_tokens >= 2 * PAGE
    assert cache.probe(toks(7, 8, 9)).matched_tokens == 2 * PAGE


def test_evict_pages_respects_refs_and_protect():
    cache = make_cache()
    a, b = toks(1, 2), toks(7, 8)
    cache.insert(a, now=0.0, max_new_pages=100)
    cache.insert(b, now=1.0, max_new_pages=100)
    matched, _ = cache.acquire(a + (5,), now=2.0)
    probe_b = cache.probe(b + (5,))
    # Referenced node a and protected node b: nothing is evictable.
    assert cache.evict_pages(100, now=3.0, protect=probe_b.nodes) == 0
    assert cache.probe(a + (5,)).matched_tokens == 2 * PAGE
    cache.release(a + (5,), matched, now=4.0)
    assert cache.evict_pages(100, now=5.0) == 4
    assert cache.gpu_tokens == 0 and cache.pool.used_tokens == 0


def test_eviction_is_lru_deterministic():
    cache = make_cache()
    cache.insert(toks(1, 2), now=0.0, max_new_pages=100)
    cache.insert(toks(7, 8), now=5.0, max_new_pages=100)
    assert cache.evict_pages(2, now=10.0) == 2
    # LRU: the older entry went first.
    assert cache.probe(toks(1, 2) + (5,)).matched_tokens == 0
    assert cache.probe(toks(7, 8) + (5,)).matched_tokens == 2 * PAGE


# -- host tier ---------------------------------------------------------------

TIER = KVTierConfig(host_budget_tokens=8 * PAGE, idle_park_us=10.0)


def test_park_frees_pool_pages_and_probe_reports_unpark():
    cache = make_cache(tier=TIER)
    prompt = toks(1, 2, 3)
    cache.insert(prompt, now=0.0, max_new_pages=100)
    assert cache.park_idle(now=100.0) == 3 * PAGE
    assert cache.gpu_tokens == 0 and cache.pool.used_tokens == 0
    assert cache.host_tokens == 3 * PAGE
    probe = cache.probe(prompt)
    assert probe.matched_tokens == 2 * PAGE
    assert probe.unpark_tokens == 2 * PAGE


def test_acquire_unparks_host_nodes():
    cache = make_cache(tier=TIER)
    prompt = toks(1, 2, 3)
    cache.insert(prompt, now=0.0, max_new_pages=100)
    cache.park_idle(now=100.0)
    matched, unparked = cache.acquire(prompt, now=200.0)
    assert matched == unparked == 2 * PAGE
    assert cache.gpu_tokens == 2 * PAGE
    assert cache.host_tokens == PAGE   # the unreachable tail stays parked
    cache.release(prompt, matched, now=300.0)
    assert cache.total_refs == 0


def test_park_skips_referenced_and_recent_nodes():
    cache = make_cache(tier=TIER)
    a, b = toks(1, 2), toks(7, 8)
    cache.insert(a, now=0.0, max_new_pages=100)
    cache.insert(b, now=95.0, max_new_pages=100)
    matched, _ = cache.acquire(a + (5,), now=96.0)
    # a is referenced, b is too recent: nothing parks.
    assert cache.park_idle(now=100.0) == 0
    cache.release(a + (5,), matched, now=100.0)
    assert cache.park_idle(now=200.0) == 4 * PAGE


def test_host_budget_overflow_drops_lru_leaf():
    tier = KVTierConfig(host_budget_tokens=2 * PAGE, idle_park_us=10.0)
    cache = make_cache(tier=tier)
    cache.insert(toks(1, 2), now=0.0, max_new_pages=100)
    cache.insert(toks(7, 8), now=1.0, max_new_pages=100)
    cache.park_idle(now=100.0)
    # Only one 2-page entry fits the host budget; the other was dropped
    # (or evicted outright) -- never an over-budget host stash.
    assert cache.host_tokens <= 2 * PAGE
    assert cache.gpu_tokens == 0
    assert cache.dropped_host_tokens + cache.evicted_tokens >= 2 * PAGE


def test_unfittable_node_is_evicted_not_parked():
    tier = KVTierConfig(host_budget_tokens=PAGE, idle_park_us=10.0)
    cache = make_cache(tier=tier)
    cache.insert(toks(1, 2, 3), now=0.0, max_new_pages=100)
    assert cache.park_idle(now=100.0) == 0
    assert cache.host_tokens == 0 and cache.gpu_tokens == 0
    assert cache.evicted_tokens == 3 * PAGE


def test_no_gpu_node_below_host_node():
    cache = make_cache(tier=TIER)
    cache.insert(toks(1, 2), now=0.0, max_new_pages=100)
    cache.park_idle(now=100.0)
    # Inserting an extension under a parked prefix must not attach a
    # GPU node below a host node.
    assert cache.insert(toks(1, 2, 3, 4), now=200.0, max_new_pages=100) == 0
    for node in cache._iter_nodes():
        if not node.on_gpu:
            assert not any(c.on_gpu for c in node.children.values())


def test_park_without_tier_is_noop():
    cache = make_cache()
    cache.insert(toks(1, 2), now=0.0, max_new_pages=100)
    assert cache.park_idle(now=1e12) == 0
    assert cache.gpu_tokens == 2 * PAGE


# -- hypothesis fuzz ---------------------------------------------------------

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "acquire", "release", "evict", "park"]),
        st.integers(0, 5),      # prompt family
        st.integers(1, 6),      # prompt length in pages
        st.integers(0, 3),      # divergence salt (0 = shared spine)
    ),
    min_size=1, max_size=40,
)


def _prompt(family, n_pages, salt):
    """Prompts within a family share a spine and diverge by salt."""
    out = []
    for p in range(n_pages):
        val = family * 100 + p + (salt * 1000 if salt and p == n_pages - 1
                                  else 0)
        out.extend([val] * PAGE)
    return tuple(out + [7])     # off-page tail so full pages can match


def _run_ops(ops, budget_tokens, capacity, tier):
    """Interpret an op list; returns (cache, structural digest)."""
    cache = make_cache(budget_tokens=budget_tokens,
                       capacity_tokens=capacity, tier=tier)
    held = []                   # outstanding (prompt, matched) acquires
    now = 0.0
    trace = []
    for op, family, n_pages, salt in ops:
        now += 1.0
        prompt = _prompt(family, n_pages, salt)
        if op == "insert":
            free = cache.pool.free_pages
            got = cache.insert(prompt, now, max_new_pages=free)
            trace.append(("ins", got))
        elif op == "acquire":
            probe = cache.probe(prompt)
            assert probe.matched_tokens < len(prompt)
            assert probe.matched_tokens % PAGE == 0
            matched, unparked = cache.acquire(prompt, now)
            assert matched == probe.matched_tokens
            assert unparked == probe.unpark_tokens
            held.append((prompt, matched))
            trace.append(("acq", matched, unparked))
        elif op == "release" and held:
            prompt_r, matched = held.pop(family % len(held))
            cache.release(prompt_r, matched, now)
            trace.append(("rel", matched))
        elif op == "evict":
            trace.append(("evt", cache.evict_pages(n_pages, now)))
        elif op == "park":
            trace.append(("park", cache.park_idle(now + salt * 10.0)))
        # Pool conservation after every op: pages freed exactly once
        # (the pool itself raises on double-free), placeholders account
        # for every cached GPU token.
        assert cache.pool.used_tokens == cache.gpu_tokens
        assert cache.gpu_tokens % PAGE == 0
        assert cache.host_tokens >= 0 and cache.gpu_tokens >= 0
        if tier is not None:
            assert cache.host_tokens <= tier.host_budget_tokens
    # Refcount conservation: releasing every outstanding acquire drains
    # the tree's references completely.
    for prompt_r, matched in held:
        now += 1.0
        cache.release(prompt_r, matched, now)
    assert cache.total_refs == 0
    return cache, trace


tier_strategy = st.none() | st.builds(
    KVTierConfig,
    host_budget_tokens=st.sampled_from([PAGE, 4 * PAGE, 64 * PAGE]),
    idle_park_us=st.sampled_from([0.0, 5.0, 1e6]),
)


@settings(max_examples=40, deadline=None)
@given(ops=op_strategy,
       budget=st.sampled_from([4 * PAGE, 16 * PAGE, 256 * PAGE]),
       capacity=st.none() | st.sampled_from([2 * PAGE, 8 * PAGE]),
       tier=tier_strategy)
def test_fuzz_interleavings_preserve_invariants(ops, budget, capacity, tier):
    cache, _ = _run_ops(ops, budget, capacity, tier)
    # After draining refs, everything must be evictable/droppable: a
    # full eviction returns the pool to empty (no leaked pages).
    cache.evict_pages(10**9, now=1e9)
    while cache._drop_lru_host_leaf():
        pass
    assert cache.pool.used_tokens == cache.gpu_tokens
    if capacity is not None:
        pass    # capacity already enforced per-op above


@settings(max_examples=20, deadline=None)
@given(ops=op_strategy,
       budget=st.sampled_from([16 * PAGE, 256 * PAGE]),
       tier=tier_strategy)
def test_fuzz_replay_is_bit_identical(ops, budget, tier):
    """The same op sequence on a fresh cache reproduces every return
    value and counter exactly (deterministic LRU tie-breaks)."""
    c1, t1 = _run_ops(ops, budget, None, tier)
    c2, t2 = _run_ops(ops, budget, None, tier)
    assert t1 == t2
    assert (c1.gpu_tokens, c1.host_tokens, c1.n_nodes) == \
           (c2.gpu_tokens, c2.host_tokens, c2.n_nodes)
    for c in (c1, c2):
        digest1 = sorted((n.tokens, n.on_gpu, n.refs)
                         for n in c1._iter_nodes())
        digest2 = sorted((n.tokens, n.on_gpu, n.refs)
                         for n in c2._iter_nodes())
        assert digest1 == digest2
    assert (c1.inserted_tokens, c1.evicted_tokens, c1.parked_tokens,
            c1.unparked_tokens, c1.dropped_host_tokens) == \
           (c2.inserted_tokens, c2.evicted_tokens, c2.parked_tokens,
            c2.unparked_tokens, c2.dropped_host_tokens)
