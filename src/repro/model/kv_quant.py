"""Quantized latent KV cache.

MLA already shrinks the cache ~28x; quantizing the stored latents to Int8
halves the remainder (and the per-step cache read traffic) at negligible
fidelity cost, because attention re-projects the latents through learned
up-matrices that absorb small perturbations.  This is the kind of
orthogonal optimization Section 5's injection framework is built to slot
in -- swap the cache class, keep the attention module.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..tensor.dtypes import INT8
from ..tensor.quant import QuantizedTensor, dequantize, quantize


class QuantizedLatentKVCache:
    """Drop-in for :class:`repro.model.kvcache.LatentKVCache` storing Int8.

    Each appended latent row is quantized group-wise along its feature
    axis; ``latents()`` dequantizes on read (the real system fuses the
    dequant into the up-projection GEMM).
    """

    def __init__(self, kv_rank: int, group_size: int = 32,
                 initial_capacity: int = 64) -> None:
        if kv_rank <= 0:
            raise ConfigError("kv_rank must be positive")
        if kv_rank % group_size != 0:
            raise ConfigError(
                f"kv_rank {kv_rank} must be a multiple of group {group_size}"
            )
        self.kv_rank = kv_rank
        self.group_size = group_size
        self._capacity = max(1, initial_capacity)
        self._len = 0
        self._payload = np.zeros((self._capacity, kv_rank), dtype=np.int8)
        self._scales = np.zeros((self._capacity, kv_rank // group_size),
                                dtype=np.float16)

    def __len__(self) -> int:
        return self._len

    def append(self, latent: np.ndarray) -> None:
        latent = np.asarray(latent, dtype=np.float32)
        if latent.ndim != 2 or latent.shape[1] != self.kv_rank:
            raise ConfigError(
                f"latent shape {latent.shape}, expected (*, {self.kv_rank})"
            )
        need = self._len + latent.shape[0]
        if need > self._capacity:
            while self._capacity < need:
                self._capacity *= 2
            self._payload = np.resize(self._payload,
                                      (self._capacity, self.kv_rank))
            self._scales = np.resize(
                self._scales, (self._capacity, self.kv_rank // self.group_size)
            )
        qt = quantize(latent, INT8, group_size=self.group_size)
        self._payload[self._len:need] = qt.payload
        self._scales[self._len:need] = qt.scales
        self._len = need

    def latents(self) -> np.ndarray:
        """Dequantized (seq, kv_rank) view of the stored latents."""
        if self._len == 0:
            return np.zeros((0, self.kv_rank), dtype=np.float32)
        qt = QuantizedTensor(
            payload=self._payload[:self._len],
            scales=self._scales[:self._len],
            shape=(self._len, self.kv_rank),
            dtype=INT8,
            group_size=self.group_size,
        )
        return dequantize(qt)

    def nbytes(self) -> int:
        """Storage footprint of the populated portion."""
        return int(self._len * (self.kv_rank
                                + 2 * self.kv_rank // self.group_size))

    def reset(self) -> None:
        self._len = 0
