"""Tests for the autograd engine: gradients checked against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Adam,
    Tensor,
    causal_attend,
    clip_grad_norm,
    cross_entropy,
    embedding,
    rmsnorm,
    rope_apply,
    softmax,
)
from repro.errors import AutogradError


def numeric_grad(f, x: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Central finite differences of a scalar function of x."""
    g = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    for __ in it:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        hi = f()
        x[idx] = orig - eps
        lo = f()
        x[idx] = orig
        g[idx] = (hi - lo) / (2 * eps)
    return g.astype(np.float32)


def check_grad(build, x_data, atol=2e-2):
    """``build(t)`` returns a scalar Tensor from parameter ``t``."""
    t = Tensor.param(x_data.copy())
    out = build(t)
    out.backward()
    num = numeric_grad(lambda: float(build(Tensor.param(t.data)).data), t.data)
    assert np.allclose(t.grad, num, atol=atol), (t.grad, num)


class TestBasicOps:
    def test_add_mul_grad(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        check_grad(lambda t: ((t * 3.0 + 1.0) * t).sum(), x)

    def test_broadcast_add_grad(self):
        a = Tensor.param(np.ones((3, 4), dtype=np.float32))
        b = Tensor.param(np.ones((1, 4), dtype=np.float32))
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (1, 4)
        assert np.all(b.grad == 3.0)

    def test_matmul_grad(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((3, 5)).astype(np.float32)
        w = rng.standard_normal((5, 2)).astype(np.float32)
        check_grad(lambda t: (t @ Tensor(w)).sum(), x)
        check_grad(lambda t: (Tensor(x) @ t).sum(), w)

    def test_batched_matmul_grad(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 3, 4)).astype(np.float32)
        y = rng.standard_normal((2, 4, 3)).astype(np.float32)
        check_grad(lambda t: (t @ Tensor(y)).sum(), x)

    def test_div_pow_grad(self):
        rng = np.random.default_rng(3)
        x = (rng.standard_normal((4,)) + 3.0).astype(np.float32)
        check_grad(lambda t: (t ** 2 / (t + 1.0)).sum(), x)

    def test_silu_sigmoid_exp_log(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((6,)).astype(np.float32)
        check_grad(lambda t: t.silu().sum(), x)
        check_grad(lambda t: t.sigmoid().sum(), x)
        check_grad(lambda t: t.exp().sum(), x)
        check_grad(lambda t: (t * t + 1.0).log().sum(), x)

    def test_mean_and_axes(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        check_grad(lambda t: (t.mean(axis=-1, keepdims=True) * t).sum(), x)

    def test_reshape_swapaxes(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        check_grad(lambda t: (t.reshape(2, 3, 2).swapaxes(0, 1) ** 2).sum(), x)

    def test_take_scatter_rows(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        idx = np.array([0, 2, 2])
        check_grad(lambda t: (t.take_rows(idx) ** 2).sum(), x)
        check_grad(lambda t: (t.take_rows(idx).scatter_rows(idx, 5) ** 2).sum(), x)

    def test_gather_grad(self):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((3, 5)).astype(np.float32)
        idx = np.array([[0, 1], [4, 4], [2, 0]])
        check_grad(lambda t: (t.gather(idx, axis=-1) ** 2).sum(), x)

    def test_second_use_accumulates(self):
        x = Tensor.param(np.array([2.0], dtype=np.float32))
        y = x * x + x * 3.0
        y.sum().backward()
        assert x.grad[0] == pytest.approx(2 * 2.0 + 3.0)

    def test_backward_requires_scalar(self):
        x = Tensor.param(np.ones((2, 2), dtype=np.float32))
        with pytest.raises(AutogradError):
            (x * 2).backward()

    def test_backward_on_constant_rejected(self):
        with pytest.raises(AutogradError):
            Tensor(np.float32(1.0)).backward()


class TestCompositeOps:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(9).standard_normal((4, 6)))
        s = softmax(x)
        assert np.allclose(s.data.sum(axis=-1), 1.0, atol=1e-5)

    def test_softmax_grad(self):
        rng = np.random.default_rng(10)
        x = rng.standard_normal((2, 4)).astype(np.float32)
        w = rng.standard_normal((2, 4)).astype(np.float32)
        check_grad(lambda t: (softmax(t) * Tensor(w)).sum(), x)

    def test_cross_entropy_matches_manual(self):
        rng = np.random.default_rng(11)
        z = rng.standard_normal((5, 7)).astype(np.float32)
        targets = rng.integers(0, 7, size=5)
        ce = cross_entropy(Tensor(z, requires_grad=True), targets)
        probs = np.exp(z - z.max(1, keepdims=True))
        probs /= probs.sum(1, keepdims=True)
        manual = -np.log(probs[np.arange(5), targets]).mean()
        assert float(ce.data) == pytest.approx(manual, abs=1e-5)

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(12)
        z = rng.standard_normal((4, 5)).astype(np.float32)
        targets = rng.integers(0, 5, size=4)
        check_grad(lambda t: cross_entropy(t, targets), z)

    def test_rmsnorm_matches_inference_module(self):
        from repro.model import RMSNorm
        rng = np.random.default_rng(13)
        x = rng.standard_normal((3, 8)).astype(np.float32)
        gain = rng.standard_normal(8).astype(np.float32)
        mod = RMSNorm(8)
        mod.gain[:] = gain
        got = rmsnorm(Tensor(x), Tensor(gain))
        assert np.allclose(got.data, mod(x), atol=1e-5)

    def test_rmsnorm_grad(self):
        rng = np.random.default_rng(14)
        x = rng.standard_normal((2, 6)).astype(np.float32)
        g = np.ones(6, dtype=np.float32)
        check_grad(lambda t: rmsnorm(t, Tensor(g)).sum(), x)

    def test_rope_matches_inference(self):
        from repro.model.attention import rope
        rng = np.random.default_rng(15)
        x = rng.standard_normal((4, 2, 8)).astype(np.float32)
        pos = np.arange(4)
        got = rope_apply(Tensor(x), pos)
        assert np.allclose(got.data, rope(x, pos), atol=1e-5)

    def test_rope_grad_is_inverse_rotation(self):
        rng = np.random.default_rng(16)
        x = rng.standard_normal((3, 1, 4)).astype(np.float32)
        check_grad(lambda t: (rope_apply(t, np.arange(3)) ** 2).sum(), x)

    def test_embedding_grad_scatter(self):
        w = Tensor.param(np.ones((6, 3), dtype=np.float32))
        out = embedding(w, np.array([1, 1, 4]))
        out.sum().backward()
        assert np.all(w.grad[1] == 2.0)
        assert np.all(w.grad[4] == 1.0)
        assert np.all(w.grad[0] == 0.0)

    def test_causal_attend_matches_inference(self):
        from repro.model.attention import _attend
        rng = np.random.default_rng(17)
        q = rng.standard_normal((5, 2, 4)).astype(np.float32)
        k = rng.standard_normal((5, 2, 4)).astype(np.float32)
        v = rng.standard_normal((5, 2, 4)).astype(np.float32)
        pos = np.arange(5)
        got = causal_attend(Tensor(q), Tensor(k), Tensor(v), pos)
        assert np.allclose(got.data, _attend(q, k, v, pos), atol=1e-4)

    def test_causal_attend_grad(self):
        rng = np.random.default_rng(18)
        q = rng.standard_normal((3, 1, 4)).astype(np.float32)
        k = rng.standard_normal((3, 1, 4)).astype(np.float32)
        v = rng.standard_normal((3, 1, 4)).astype(np.float32)
        check_grad(
            lambda t: (causal_attend(t, Tensor(k), Tensor(v),
                                     np.arange(3)) ** 2).sum(), q)


class TestOptim:
    def test_adam_reduces_quadratic(self):
        x = Tensor.param(np.array([5.0, -3.0], dtype=np.float32))
        opt = Adam([x], lr=0.1)
        for __ in range(200):
            opt.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            opt.step()
        assert np.abs(x.data).max() < 0.05

    def test_clip_grad_norm(self):
        x = Tensor.param(np.zeros(4, dtype=np.float32))
        x.grad = np.full(4, 10.0, dtype=np.float32)
        pre = clip_grad_norm([x], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0, abs=1e-5)

    def test_empty_params_rejected(self):
        with pytest.raises(AutogradError):
            Adam([])


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 4), st.integers(1, 5), st.integers(0, 2**31 - 1))
def test_property_linear_grad_matches_fd(m, k, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, k)).astype(np.float32)
    check_grad(lambda t: (t @ Tensor(np.ones((k, 1), dtype=np.float32))
                          ).silu().sum(), x)
