"""Pluggable kernel-backend registry (ROADMAP item 4).

The paper's core mechanism -- pick the AMX kernel above an ARI threshold
and AVX-512 at or below it (Figure 7), priced against calibrated
rooflines -- used to be re-implemented as copy-pasted closures in
``sched/workload.py`` with ``KT_AMX``/``KT_AVX512`` hard-coded in
``core/engine.py`` and ``BatchCostModel``.  This module collapses that
into one place:

- :class:`AriSelection` is the *single* shared implementation of the
  ARI-threshold selector and its kernel-name labeling; every pricing
  call site (batched decode, hybrid chunks, the monolithic engine paths)
  classifies through it, so the selection sites can no longer silently
  diverge.
- :class:`KernelBackend` bundles everything one hardware/software target
  needs: the two functional CPU kernels (latency lane + throughput
  lane), their calibrated :class:`~repro.hw.roofline.CPUKernelProfile`
  rooflines, the ARI crossover default, and a :class:`LaunchModel` of
  GPU launch/graph-capture constants.
- :func:`register_backend` / :func:`get_backend` form the registry.
  ``BatchSchedulerConfig(backend="...")`` and per-replica
  ``FleetConfig(backends=...)`` select a backend purely via config --
  portable Triton-style backends and mixed-hardware fleets become
  config, not code.

The default ``"kt-amx-avx512"`` backend reuses the exact
``KT_AMX``/``KT_AVX512`` profile objects and inherits every launch
constant from the machine spec, so selecting it (or leaving the knob
unset) is bit-identical to the pre-registry engine -- the golden pins
in ``tests/test_golden_regression.py`` are the acceptance bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Sequence

from ..hw.roofline import (
    CPUKernelProfile,
    KT_AMX,
    KT_AVX512,
    TORCH_AMX,
    TORCH_AVX512,
    TRITON_CPU_BULK,
    TRITON_CPU_TALL,
)
from ..hw.spec import MachineSpec
from .amx import AMXKernel
from .avx512 import AVX512Kernel
from .base import CPUGemmKernel
from .dispatch import DEFAULT_ARI_THRESHOLD, HybridKernel
from .vendor import TorchAMXKernel, TorchAVX512Kernel


@dataclass(frozen=True)
class LaunchModel:
    """Per-backend GPU launch and graph-capture constants.

    Every field is an *override*: ``None`` inherits the corresponding
    machine-spec value (``GPUSpec.kernel_launch_latency_us``,
    ``GPUSpec.graph_replay_latency_us``, ``GPUSpec.graph_launch_us``)
    or, for ``graph_instantiation_us``, the
    :class:`~repro.sched.cuda_graph.GraphCacheConfig` default.  A fully
    default :class:`LaunchModel` therefore prices exactly like the
    pre-registry engine -- :meth:`KernelBackend.apply_launch` returns
    the machine spec object unchanged, same floats and all.

    CPU-side per-call overhead is *not* here: it is calibrated per
    kernel family and lives on each
    :class:`~repro.hw.roofline.CPUKernelProfile` as
    ``call_overhead_us``.
    """

    kernel_launch_latency_us: float | None = None
    graph_replay_latency_us: float | None = None
    graph_launch_us: float | None = None
    graph_instantiation_us: float | None = None

    def __post_init__(self) -> None:
        for name in ("kernel_launch_latency_us", "graph_replay_latency_us",
                     "graph_launch_us", "graph_instantiation_us"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")

    @property
    def overrides_machine(self) -> bool:
        """Whether any GPU-spec field differs from the machine default."""
        return (self.kernel_launch_latency_us is not None
                or self.graph_replay_latency_us is not None
                or self.graph_launch_us is not None)


@dataclass(frozen=True)
class AriSelection:
    """The shared ARI-threshold kernel selector (Figure 7).

    One expert's GEMM runs on the latency-lane kernel when its
    aggregated token count is at or below ``ari_threshold`` and on the
    throughput lane above it; idle experts (zero tokens) dispatch
    nothing.  This is the single implementation behind every pricing
    call site -- ``batched_decode_layer_work``,
    ``hybrid_chunk_layer_work``, and the monolithic engine paths all
    build one of these and classify through it, which is what keeps the
    previously copy-pasted selection sites from diverging.
    """

    latency_profile: CPUKernelProfile
    throughput_profile: CPUKernelProfile
    ari_threshold: int
    latency_label: str = "avx512"
    throughput_label: str = "amx"

    def __post_init__(self) -> None:
        if self.ari_threshold < 0:
            raise ValueError("ari_threshold must be non-negative")

    def select_profile(self, tokens: float) -> CPUKernelProfile:
        """The roofline profile pricing a GEMM over ``tokens`` rows."""
        return (self.latency_profile if tokens <= self.ari_threshold
                else self.throughput_profile)

    def kernel_name(self, tokens: int) -> str:
        """Dispatch label of one expert's aggregated token count."""
        if tokens <= 0:
            return "idle"
        return (self.latency_label if tokens <= self.ari_threshold
                else self.throughput_label)

    def kernel_names(self, counts: Iterable[int]) -> tuple[str, ...]:
        """Per-expert dispatch labels over aggregated token counts."""
        return tuple(self.kernel_name(int(t)) for t in counts)


@dataclass(frozen=True)
class KernelBackend:
    """One pluggable CPU/GPU kernel backend.

    A backend bundles the four things the pricing stack needs to target
    a hardware/software combination:

    - functional CPU kernels: ``latency_kernel`` / ``throughput_kernel``
      factories returning :class:`~repro.kernels.base.CPUGemmKernel`
      instances (numpy-executable, so layout bugs surface as wrong
      numerics);
    - calibrated rooflines: ``latency_profile`` /
      ``throughput_profile`` :class:`CPUKernelProfile` objects pricing
      those kernels;
    - the ARI-based selection policy: ``ari_threshold`` plus the
      dispatch labels, exposed as an :class:`AriSelection` via
      :meth:`selection`;
    - a :class:`LaunchModel` of GPU launch/graph-capture constants,
      applied to a machine spec via :meth:`apply_launch`.

    ``requires_amx_lane`` marks backends whose throughput lane needs AMX
    tiles; on machines without AMX the throughput lane falls back to the
    latency lane, exactly like the pre-registry engine did.
    """

    name: str
    display_name: str
    latency_profile: CPUKernelProfile
    throughput_profile: CPUKernelProfile
    latency_kernel: Callable[[], CPUGemmKernel]
    throughput_kernel: Callable[[], CPUGemmKernel]
    ari_threshold: int = DEFAULT_ARI_THRESHOLD
    launch: LaunchModel = field(default_factory=LaunchModel)
    latency_label: str = "avx512"
    throughput_label: str = "amx"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("backend name must be non-empty")
        if self.ari_threshold < 0:
            raise ValueError("ari_threshold must be non-negative")

    @property
    def requires_amx_lane(self) -> bool:
        """Whether the throughput lane uses AMX tile instructions."""
        return self.throughput_profile.uses_amx

    def resolve_profiles(
        self, machine: MachineSpec | None = None,
    ) -> tuple[CPUKernelProfile, CPUKernelProfile]:
        """Effective (latency, throughput) profiles on ``machine``.

        The throughput lane degrades to the latency lane on CPUs
        without AMX when it needs tile instructions, mirroring the
        engine's historical ``_supported_kernel`` fallback.
        """
        throughput = self.throughput_profile
        if (machine is not None and throughput.uses_amx
                and not machine.cpu.has_amx):
            throughput = self.latency_profile
        return self.latency_profile, throughput

    def selection(self, machine: MachineSpec | None = None,
                  ari_threshold: int | None = None) -> AriSelection:
        """The backend's :class:`AriSelection` on ``machine``.

        ``ari_threshold`` overrides the backend default (serving configs
        expose it as a knob); ``None`` keeps the backend's calibrated
        crossover.
        """
        latency, throughput = self.resolve_profiles(machine)
        return AriSelection(
            latency_profile=latency,
            throughput_profile=throughput,
            ari_threshold=(self.ari_threshold if ari_threshold is None
                           else ari_threshold),
            latency_label=self.latency_label,
            throughput_label=self.throughput_label,
        )

    def apply_launch(self, machine: MachineSpec) -> MachineSpec:
        """``machine`` with this backend's launch constants applied.

        Returns the *same* spec object when the launch model overrides
        nothing, so the default backend keeps the exact float paths (and
        memo-key identity) of the pre-registry engine.
        """
        lm = self.launch
        if not lm.overrides_machine:
            return machine
        overrides = {
            name: value for name, value in (
                ("kernel_launch_latency_us", lm.kernel_launch_latency_us),
                ("graph_replay_latency_us", lm.graph_replay_latency_us),
                ("graph_launch_us", lm.graph_launch_us),
            ) if value is not None
        }
        return replace(machine, gpu=replace(machine.gpu, **overrides))

    def make_hybrid_kernel(self, ari_threshold: int | None = None
                           ) -> HybridKernel:
        """A functional :class:`HybridKernel` over this backend's lanes."""
        return HybridKernel(
            ari_threshold=(self.ari_threshold if ari_threshold is None
                           else ari_threshold),
            latency_kernel=self.latency_kernel(),
            throughput_kernel=self.throughput_kernel(),
        )


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------

DEFAULT_BACKEND = "kt-amx-avx512"

_REGISTRY: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend, *, replace: bool = False) -> KernelBackend:
    """Register ``backend`` under its name; returns it for chaining.

    Re-registering an existing name is an error unless ``replace=True``
    (tests use replacement to probe custom backends without leaking
    state).
    """
    if backend.name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {backend.name!r} is already registered; pass "
            "replace=True to override")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for test cleanup)."""
    if name == DEFAULT_BACKEND:
        raise ValueError("the default backend cannot be unregistered")
    _REGISTRY.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration-ordered."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> KernelBackend:
    """Look up a registered backend; unknown names fail fast.

    Raises :class:`ValueError` listing the valid choices -- config
    constructors call this at construction time so a typo'd backend
    name can never silently fall back or explode mid-run.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered backends: "
            f"{list(_REGISTRY)}") from None


def resolve_backend(
    backend: "str | KernelBackend | None",
) -> KernelBackend | None:
    """Normalize a backend knob: name -> registry lookup, ``None`` passes.

    ``None`` means "no explicit backend" -- callers keep their legacy
    profile-argument path, which the default backend reproduces
    bit-for-bit anyway.
    """
    if backend is None or isinstance(backend, KernelBackend):
        return backend
    return get_backend(backend)


# ---------------------------------------------------------------------------
# Built-in backends.
# ---------------------------------------------------------------------------

#: The paper's hybrid backend (Section 3.2): KT's cache-friendly AMX
#: kernel above the ARI crossover, the lightweight AVX-512 kernel at or
#: below it, CUDA-native launch constants straight from the machine spec.
#: Selecting this by name is bit-identical to leaving the knob unset.
KT_AMX_AVX512_BACKEND = register_backend(KernelBackend(
    name=DEFAULT_BACKEND,
    display_name="KT AMX/AVX-512",
    latency_profile=KT_AVX512,
    throughput_profile=KT_AMX,
    latency_kernel=AVX512Kernel,
    throughput_kernel=AMXKernel,
    description="KTransformers' hand-tuned AMX + AVX-512 kernel pair "
                "with spec-default CUDA launch constants (the paper's "
                "system; the bit-identity reference).",
))

#: PyTorch/oneDNN vendor baseline (Figure 3): generic row-major layouts,
#: ~7% of the AMX peak, Python-host launch latency.  The Fiddler system
#: profile draws its kernels from this backend.
TORCH_VENDOR_BACKEND = register_backend(KernelBackend(
    name="torch-vendor",
    display_name="PyTorch/oneDNN vendor",
    latency_profile=TORCH_AVX512,
    throughput_profile=TORCH_AMX,
    latency_kernel=TorchAVX512Kernel,
    throughput_kernel=TorchAMXKernel,
    latency_label="torch-avx512",
    throughput_label="torch-amx",
    launch=LaunchModel(kernel_launch_latency_us=16.0),
    description="Stock PyTorch dispatching to oneDNN (Figure 3's vendor "
                "arm): row-major layouts, 5.4/1.8 TFLOPS saturated, "
                "~16 us Python-host kernel launches.",
))

#: Portable Triton-style backend (PAPERS.md, arXiv:2605.23911): fused
#: cross-platform MoE dispatch with no AMX intrinsics -- both lanes run
#: tile-free portable code, trading peak throughput for portability --
#: and its own launch/bandwidth constants (JIT-managed Python-side graph
#: launches are heavier, instantiation walks the fused kernels once).
TRITON_PORTABLE_BACKEND = register_backend(KernelBackend(
    name="triton-portable",
    display_name="Triton portable",
    latency_profile=TRITON_CPU_TALL,
    throughput_profile=TRITON_CPU_BULK,
    latency_kernel=AVX512Kernel,
    throughput_kernel=AVX512Kernel,
    ari_threshold=8,
    latency_label="triton-tall",
    throughput_label="triton-bulk",
    launch=LaunchModel(
        kernel_launch_latency_us=8.0,
        graph_launch_us=14.0,
        graph_instantiation_us=600.0,
    ),
    description="Cross-platform fused-MoE dispatch in the Triton style: "
                "portable tile-free lanes (no AMX), a later ARI "
                "crossover, and heavier JIT launch/capture constants.",
))


def backend_summaries() -> list[dict[str, object]]:
    """One describing row per registered backend (CLI/bench reporting)."""
    return [
        {
            "name": b.name,
            "display_name": b.display_name,
            "latency_profile": b.latency_profile.name,
            "throughput_profile": b.throughput_profile.name,
            "ari_threshold": b.ari_threshold,
            "requires_amx_lane": b.requires_amx_lane,
            "overrides_launch": b.launch.overrides_machine,
        }
        for b in _REGISTRY.values()
    ]
