"""Accuracy evaluation: fidelity metrics and the trained-task harness."""

from .fidelity import mean_kl, relative_accuracy_change, top1_agreement
from .perplexity import answer_nll, corpus_nll, perplexity
from .harness import (
    TrainedTask,
    accuracy_row,
    deferral_vs_skipping_grid,
    engine_for,
    exact_match,
    trained_task,
)

__all__ = [
    "mean_kl", "relative_accuracy_change", "top1_agreement",
    "answer_nll", "corpus_nll", "perplexity",
    "TrainedTask", "accuracy_row", "deferral_vs_skipping_grid",
    "engine_for", "exact_match", "trained_task",
]
