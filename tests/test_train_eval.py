"""Tests for the training substrate and evaluation harness."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.eval import (
    engine_for,
    exact_match,
    mean_kl,
    relative_accuracy_change,
    top1_agreement,
)
from repro.model import MoETransformer, tiny_config
from repro.train import (
    Example,
    TrainableMoETransformer,
    TrainConfig,
    default_suite,
    example_loss,
    task,
    train,
    train_for_task,
)


class TestTasks:
    def test_suite_has_five_tasks(self):
        assert set(default_suite()) == {
            "modsum", "copy", "reverse", "majority", "recall"
        }

    def test_deterministic_generation(self):
        t = task("modsum")
        a = t.generate(10, seed=7)
        b = t.generate(10, seed=7)
        for x, y in zip(a, b):
            assert np.array_equal(x.prompt, y.prompt)
            assert np.array_equal(x.target, y.target)

    def test_modsum_correctness(self):
        t = task("modsum")
        for ex in t.generate(20, seed=0):
            a, b = ex.prompt[1] - 2, ex.prompt[2] - 2
            assert ex.target[0] - 2 == (a + b) % t.n_symbols

    def test_copy_and_reverse(self):
        for ex in task("copy").generate(5, seed=1):
            assert np.array_equal(ex.target, ex.prompt[1:-1])
        for ex in task("reverse").generate(5, seed=1):
            assert np.array_equal(ex.target, ex.prompt[1:-1][::-1])

    def test_majority_correctness(self):
        t = task("majority")
        for ex in t.generate(20, seed=2):
            seq = ex.prompt[1:-1] - 2
            counts = np.bincount(seq, minlength=t.n_symbols)
            assert ex.target[0] - 2 == np.argmax(counts)

    def test_recall_correctness(self):
        t = task("recall")
        for ex in t.generate(20, seed=3):
            body = ex.prompt[1:-2] - 2
            query = ex.prompt[-1] - 2
            keys, values = body[0::2], body[1::2]
            assert ex.target[0] - 2 == values[list(keys).index(query)]

    def test_splits_disjoint_lengths(self):
        tr, te = task("copy").splits(50, 20, seed=0)
        assert len(tr) == 50 and len(te) == 20

    def test_unknown_task(self):
        with pytest.raises(ConfigError):
            task("sudoku")

    def test_tokens_within_vocab(self):
        for t in default_suite().values():
            for ex in t.generate(10, seed=4):
                assert ex.prompt.max() < t.min_vocab
                assert ex.target.max() < t.min_vocab


class TestTrainableModel:
    @pytest.mark.parametrize("config_name", ["tiny-qw", "tiny-ds"])
    def test_forward_matches_inference_model(self, config_name):
        """The train/deploy contract: same weights -> same logits."""
        cfg = tiny_config(config_name, seed=11)
        tm = TrainableMoETransformer(cfg)
        inf = MoETransformer(cfg)
        inf.load_state_dict(tm.export_state_dict())
        tokens = np.array([1, 5, 9, 2])
        assert np.allclose(tm.forward(tokens).data, inf.forward(tokens),
                           atol=1e-4)

    def test_state_dict_keys_match(self):
        cfg = tiny_config("tiny-ds")
        tm = TrainableMoETransformer(cfg)
        inf = MoETransformer(cfg)
        assert set(tm.export_state_dict()) == set(inf.state_dict())

    def test_gradients_reach_every_parameter_family(self):
        cfg = tiny_config("tiny", seed=0)
        tm = TrainableMoETransformer(cfg)
        ex = Example(np.array([0, 3, 4, 1]), np.array([5]))
        example_loss(tm, ex).backward()
        grads = {name: p.grad for name, p in tm.params.items()}
        assert grads["embed_tokens.weight"] is not None
        assert grads["lm_head.weight"] is not None
        assert grads["layers.0.mlp.gate.weight"] is not None
        assert grads["layers.0.mlp.shared_experts.0.w_gate"] is not None
        assert grads["layers.0.self_attn.wq.weight"] is not None
        # At least top_k experts received gradient in each layer.
        touched = sum(
            1 for n, g in grads.items()
            if ".experts." in n and n.endswith("w_gate") and g is not None
            and np.abs(g).sum() > 0
        )
        assert touched >= cfg.top_k

    def test_training_reduces_loss(self):
        cfg = tiny_config("tiny", seed=1)
        tm = TrainableMoETransformer(cfg)
        examples = task("modsum").generate(64, seed=0)
        report = train(tm, examples, TrainConfig(steps=40, batch_size=4))
        assert report.final_loss < report.initial_loss * 0.8

    def test_train_for_task_end_to_end(self):
        model, report, test = train_for_task(
            tiny_config("tiny-qw", top_k=4), task("modsum"), n_train=64,
            train_config=TrainConfig(steps=30),
        )
        assert isinstance(model, MoETransformer)
        assert len(test) == 64
        assert report.final_loss < report.initial_loss

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ConfigError):
            train_for_task(tiny_config("tiny", vocab_size=4), task("modsum"))

    def test_empty_examples_rejected(self):
        with pytest.raises(ConfigError):
            train(TrainableMoETransformer(tiny_config("tiny")), [])


class TestEvalHarness:
    def test_exact_match_counts_correctly(self):
        class Oracle:
            def __init__(self, answers):
                self.answers = iter(answers)

            def generate(self, prompt, max_new_tokens, greedy=True):
                return next(self.answers)

        examples = [Example(np.array([0]), np.array([5])),
                    Example(np.array([0]), np.array([6]))]
        engine = Oracle([np.array([5]), np.array([7])])
        assert exact_match(engine, examples) == 0.5

    def test_exact_match_empty_rejected(self):
        with pytest.raises(ConfigError):
            exact_match(MoETransformer(tiny_config("tiny")), [])

    def test_engine_for_modes(self):
        from repro.core import DeferralEngine, SkippingEngine
        model = MoETransformer(tiny_config("tiny-qw", top_k=6))
        assert engine_for(model, "standard", 0) is model
        assert isinstance(engine_for(model, "deferral", 2), DeferralEngine)
        assert isinstance(engine_for(model, "skipping", 2), SkippingEngine)
        with pytest.raises(ConfigError):
            engine_for(model, "pruning", 1)

    def test_fidelity_metrics(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((10, 6)).astype(np.float32)
        assert top1_agreement(a, a) == 1.0
        assert mean_kl(a, a) == pytest.approx(0.0, abs=1e-9)
        b = a + rng.standard_normal((10, 6)) * 5
        assert top1_agreement(a, b) < 1.0
        assert mean_kl(a, b) > 0.0

    def test_relative_accuracy_change(self):
        assert relative_accuracy_change(0.8, 0.4) == pytest.approx(-50.0)
        with pytest.raises(ConfigError):
            relative_accuracy_change(0.0, 0.5)

    def test_mismatched_logits_rejected(self):
        with pytest.raises(ConfigError):
            mean_kl(np.zeros((2, 3)), np.zeros((3, 3)))
