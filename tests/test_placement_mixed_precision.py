"""Tests for expert-popularity placement and mixed-precision assignment."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model import MoETransformer, tiny_config
from repro.moe import (
    PRECISION_LADDER,
    apply_mixed_precision,
    assign_expert_precision,
    bandwidth_savings,
    expert_sensitivity,
    placement_speedup_estimate,
    plan_gpu_residency,
    profile_expert_popularity,
    zipf_popularity,
)
from repro.tensor import BF16, INT4, INT8


class TestProfiling:
    def test_counts_shape_and_totals(self):
        model = MoETransformer(tiny_config("tiny-qw"))
        corpus = [np.array([1, 2, 3]), np.array([4, 5, 6, 7])]
        counts = profile_expert_popularity(model, corpus)
        n_moe = sum(1 for l in model.layers if l.is_moe)
        assert counts.shape == (n_moe, model.config.n_experts)
        # Every token picks exactly top_k experts in every MoE layer.
        expected = 7 * model.config.top_k
        assert np.all(counts.sum(axis=1) == expected)

    def test_dense_layers_excluded(self):
        model = MoETransformer(tiny_config("tiny-ds"))
        counts = profile_expert_popularity(model, [np.array([1, 2])])
        assert counts.shape[0] == model.config.n_layers - 1

    def test_empty_corpus_rejected(self):
        model = MoETransformer(tiny_config("tiny"))
        with pytest.raises(ConfigError):
            profile_expert_popularity(model, [])

    def test_zipf_shapes_and_mass(self):
        counts = zipf_popularity(4, 16, total_activations=1000, exponent=1.2)
        assert counts.shape == (4, 16)
        assert np.all(counts.sum(axis=1) == 1000)

    def test_zipf_exponent_zero_is_balanced(self):
        flat = zipf_popularity(1, 64, 64000, exponent=0.0)
        skew = zipf_popularity(1, 64, 64000, exponent=1.5)
        assert flat.max() < skew.max()

    def test_zipf_invalid(self):
        with pytest.raises(ConfigError):
            zipf_popularity(0, 4, 10)
        with pytest.raises(ConfigError):
            zipf_popularity(1, 4, 10, exponent=-1)


class TestPlacement:
    def test_budget_respected(self):
        pop = zipf_popularity(4, 32, 10000, exponent=1.0)
        plan = plan_gpu_residency(pop, vram_budget_bytes=10 * 100.0,
                                  expert_bytes=100.0)
        assert plan.n_resident == 10
        assert plan.vram_used_bytes == pytest.approx(1000.0)

    def test_most_popular_pinned(self):
        pop = np.array([[100, 1, 1], [1, 50, 1]])
        plan = plan_gpu_residency(pop, vram_budget_bytes=2.0, expert_bytes=1.0)
        assert plan.is_on_gpu(0, 0)
        assert plan.is_on_gpu(1, 1)
        assert not plan.is_on_gpu(0, 1)

    def test_hit_rate_computation(self):
        pop = np.array([[80, 10, 10]])
        plan = plan_gpu_residency(pop, 1.0, 1.0)
        assert plan.expected_hit_rate == pytest.approx(0.8)

    def test_skewed_popularity_gives_high_hit_rate_cheaply(self):
        """The Fiddler observation: a small VRAM slice covers most traffic."""
        pop = zipf_popularity(8, 64, 100_000, exponent=1.5, seed=1)
        ten_pct_budget = 0.1 * pop.size
        plan = plan_gpu_residency(pop, ten_pct_budget, 1.0)
        assert plan.expected_hit_rate > 0.35

    def test_zero_budget(self):
        pop = zipf_popularity(2, 8, 100)
        plan = plan_gpu_residency(pop, 0.0, 1.0)
        assert plan.n_resident == 0
        assert plan.expected_hit_rate == 0.0

    def test_speedup_estimate(self):
        pop = np.array([[50, 50]])
        plan = plan_gpu_residency(pop, 1.0, 1.0)  # 50% hit rate
        s = placement_speedup_estimate(plan, cpu_expert_time_us=100.0,
                                       gpu_expert_time_us=10.0)
        assert s == pytest.approx(100.0 / 55.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            plan_gpu_residency(np.zeros(4), 1.0, 1.0)
        with pytest.raises(ConfigError):
            plan_gpu_residency(np.zeros((2, 2)), 1.0, 0.0)


class TestMixedPrecision:
    @pytest.fixture
    def block(self):
        model = MoETransformer(tiny_config("tiny-qw"))
        return next(l.mlp for l in model.layers if l.is_moe)

    def test_sensitivity_positive(self, block):
        s = expert_sensitivity(block)
        assert s.shape == (block.n_experts,)
        assert np.all(s > 0)

    def test_popularity_weighting(self, block):
        pop = np.zeros(block.n_experts)
        pop[3] = 100.0
        s = expert_sensitivity(block, popularity=pop)
        assert s[3] > 0
        assert np.all(np.delete(s, 3) == 0)

    def test_assignment_respects_budget(self):
        sens = np.array([5.0, 1.0, 3.0, 2.0])
        # Budget: all int4 plus one upgrade-to-int8 worth of bytes.
        elems = 1024.0
        budget = elems * (INT4.bytes_per_element * 4
                          + (INT8.bytes_per_element - INT4.bytes_per_element))
        a = assign_expert_precision(sens, elems, budget)
        assert a.total_bytes <= budget
        assert a.dtypes[0] is INT8       # most sensitive upgraded first
        assert a.dtypes[1] is INT4

    def test_huge_budget_all_bf16(self):
        a = assign_expert_precision(np.ones(4), 100.0, budget_bytes=1e9)
        assert all(dt is BF16 for dt in a.dtypes)
        assert bandwidth_savings(a) == pytest.approx(0.0)

    def test_minimal_budget_all_int4(self):
        elems = 64.0
        a = assign_expert_precision(np.ones(3), elems,
                                    budget_bytes=elems * INT4.bytes_per_element * 3)
        assert all(dt is INT4 for dt in a.dtypes)
        assert bandwidth_savings(a) > 0.6

    def test_budget_too_small_rejected(self):
        with pytest.raises(ConfigError):
            assign_expert_precision(np.ones(4), 100.0, budget_bytes=10.0)

    def test_apply_preserves_function_approximately(self, block):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, block.hidden)).astype(np.float32)
        routing = block.route(x)
        before = block.routed_forward(x, routing)

        sens = expert_sensitivity(block)
        elems = 3.0 * block.hidden * block.intermediate
        a = assign_expert_precision(sens, elems, budget_bytes=elems * 2.2
                                    * block.n_experts)
        mixed = apply_mixed_precision(block, a)
        after = mixed.routed_forward(x, routing)
        rel = np.abs(after - before).mean() / (np.abs(before).mean() + 1e-9)
        assert rel < 0.2

    def test_apply_shares_raw_weights(self, block):
        a = assign_expert_precision(np.ones(block.n_experts), 100.0, 1e9)
        mixed = apply_mixed_precision(block, a)
        assert mixed.experts[0].w_gate is block.experts[0].w_gate

    def test_apply_wrong_count_rejected(self, block):
        a = assign_expert_precision(np.ones(2), 100.0, 1e9)
        with pytest.raises(ConfigError):
            apply_mixed_precision(block, a)

    def test_ladder_ordering(self):
        bpes = [dt.bytes_per_element for dt in PRECISION_LADDER]
        assert bpes == sorted(bpes)
