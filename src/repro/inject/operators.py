"""Injectable replacement operators (the classes Listing 1 references).

These are the optimized modules the YAML rules swap in:

- ``operators.experts.FusedMoE`` -- replaces a stock MoE block with the
  fused CPU operator, selecting the kernel backend, quantizing expert
  weights, and recording the Expert Deferral configuration;
- ``operators.attention.FlashInferMLA`` -- replaces self-attention with the
  FlashInfer-backed MLA module (functionally identical here; carries the
  backend tag and the target device);
- ``operators.linear.MarlinLinear`` -- replaces ``Linear`` projections with
  group-quantized (Marlin-style) versions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import InjectionError
from ..kernels.amx import AMXKernel
from ..kernels.avx512 import AVX512Kernel
from ..kernels.base import CPUGemmKernel
from ..kernels.dispatch import HybridKernel
from ..model.modules import Linear, Module
from ..model.moe_layer import ExpertModule, ModuleList, MoEBlock
from ..tensor.dtypes import BF16, QUANT_GROUP_SIZE, DType, dtype as lookup_dtype
from ..tensor.quant import QuantizedTensor, dequantize, quantize
from .injector import register_operator

_BACKENDS: dict[str, type[CPUGemmKernel] | type[HybridKernel]] = {
    "amx": AMXKernel,
    "avx512": AVX512Kernel,
    "hybrid_amx_avx512": HybridKernel,
}


def make_kernel(backend: str) -> CPUGemmKernel:
    """Instantiate a CPU kernel backend by its YAML name."""
    key = backend.lower()
    if key not in _BACKENDS:
        raise InjectionError(
            f"unknown kernel backend {backend!r}; "
            f"expected one of {sorted(_BACKENDS)}"
        )
    return _BACKENDS[key]()


def _parse_dtype(name: str) -> DType:
    try:
        return lookup_dtype(name)
    except Exception as exc:
        raise InjectionError(f"unknown data_type {name!r}") from exc


@register_operator("operators.experts.FusedMoE")
class FusedMoEOperator(MoEBlock):
    """Optimized MoE block: fused CPU kernels + quantization + deferral tag.

    Shares the original block's router/shared/expert weights (no copies);
    only the packed representation and the kernel change.
    """

    backend: str
    n_deferred_experts: int

    @classmethod
    def from_module(
        cls,
        block: MoEBlock,
        backend: str = "hybrid_AMX_AVX512",
        data_type: str = "bf16",
        n_deferred_experts: int = 0,
    ) -> "FusedMoEOperator":
        if not isinstance(block, MoEBlock):
            raise InjectionError(
                f"FusedMoE can only replace MoE blocks, got {type(block).__name__}"
            )
        if n_deferred_experts < 0:
            raise InjectionError("n_deferred_experts must be >= 0")
        dt = _parse_dtype(data_type)
        self = cls.__new__(cls)
        Module.__init__(self)
        self.hidden = block.hidden
        self.intermediate = block.intermediate
        self.router_config = block.router_config
        self.kernel = make_kernel(backend)
        self.gate = block.gate
        self.shared_experts = block.shared_experts
        self.experts = ModuleList([
            _requantized_expert(e, dt) for e in block.experts
        ])
        self._fused = None
        object.__setattr__(self, "backend", backend)
        object.__setattr__(self, "n_deferred_experts", n_deferred_experts)
        return self


def _requantized_expert(expert: ExpertModule, dt: DType) -> ExpertModule:
    """An ExpertModule view over the same raw weights with a new storage dtype."""
    new = ExpertModule.__new__(ExpertModule)
    Module.__init__(new)
    new.hidden = expert.hidden
    new.intermediate = expert.intermediate
    new.weight_dtype = dt
    new.w_gate = expert.w_gate
    new.w_up = expert.w_up
    new.w_down = expert.w_down
    new._packed = None
    return new


@register_operator("operators.attention.FlashInferMLA")
class FlashInferMLA(Module):
    """Attention wrapper tagged with the FlashInfer backend.

    The numpy reproduction has no CUDA kernels to swap, so this delegates
    to the wrapped attention module while carrying the backend metadata
    (and, in the simulator, the FlashInfer kernel-count profile).
    """

    backend = "flashinfer"

    def __init__(self, inner: Module, absorb: bool = True) -> None:
        super().__init__()
        if not hasattr(inner, "make_cache"):
            raise InjectionError(
                f"FlashInferMLA must wrap an attention module, "
                f"got {type(inner).__name__}"
            )
        self.inner = inner
        self.absorb = absorb

    @classmethod
    def from_module(cls, inner: Module, absorb: bool = True) -> "FlashInferMLA":
        return cls(inner, absorb=absorb)

    def make_cache(self):
        return self.inner.make_cache()

    def forward(self, x, cache, positions=None):
        return self.inner(x, cache, positions)


@register_operator("operators.linear.MarlinLinear")
class MarlinLinear(Module):
    """Group-quantized linear projection (Marlin-style Int4/Int8 GEMM)."""

    def __init__(self, in_features: int, out_features: int,
                 qweight: QuantizedTensor, bias: Optional[np.ndarray],
                 data_type: DType) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.qweight = qweight
        self.data_type = data_type
        object.__setattr__(self, "bias", bias)
        self._dense: Optional[np.ndarray] = None

    @classmethod
    def from_module(cls, linear: Linear, data_type: str = "int4") -> "MarlinLinear":
        if not isinstance(linear, Linear):
            raise InjectionError(
                f"MarlinLinear can only replace Linear, got {type(linear).__name__}"
            )
        dt = _parse_dtype(data_type)
        if not dt.quantized:
            raise InjectionError("MarlinLinear requires a quantized data_type")
        w = linear.weight
        k, n = w.shape
        pad = (-n) % QUANT_GROUP_SIZE
        if pad:
            w = np.concatenate(
                [w, np.zeros((k, pad), dtype=np.float32)], axis=1
            )
        return cls(k, n, quantize(w, dt), linear.bias, dt)

    def _weight(self) -> np.ndarray:
        if self._dense is None:
            self._dense = dequantize(self.qweight)[:, :self.out_features]
        return self._dense

    def forward(self, x: np.ndarray) -> np.ndarray:
        y = np.asarray(x, dtype=np.float32) @ self._weight()
        if self.bias is not None:
            y = y + self.bias
        return y
