"""End-to-end engine tests + the Section 4.2 deferral autotuner.

The calibration classes here pin the reproduction to the paper's headline
evaluation bands (Sections 6.2-6.4).
"""

import pytest

from repro.baselines import FIDDLER, LLAMACPP
from repro.core import (
    KTRANSFORMERS,
    autotune_deferral,
    decode_works,
    heuristic_deferred_count,
    run_decode,
    run_prefill,
)
from repro.errors import ConfigError
from repro.hw import paper_testbed
from repro.model import DS2, DS3, QW2
from repro.sched.workload import decode_layer_work
from repro.tensor import BF16, INT4, INT8

MACHINE = paper_testbed("a100")
MACHINE_4080 = paper_testbed("4080")


@pytest.fixture(scope="module")
def ds3_decode():
    out = {}
    for sys_ in (FIDDLER, LLAMACPP, KTRANSFORMERS):
        out[sys_.name] = run_decode(sys_, DS3, MACHINE, BF16, n_tokens=6)
    out["kt_defer"] = run_decode(KTRANSFORMERS, DS3, MACHINE, BF16,
                                 n_tokens=6, n_deferred=3)
    return out


class TestDecodeCalibration:
    """Decode-phase speedups, Section 6.2 / Figure 12 (BF16, A100)."""

    def test_kt_beats_fiddler_within_band(self, ds3_decode):
        ratio = (ds3_decode["ktransformers"].tokens_per_s
                 / ds3_decode["fiddler"].tokens_per_s)
        assert 2.4 <= ratio <= 4.3

    def test_kt_beats_llamacpp_within_band(self, ds3_decode):
        ratio = (ds3_decode["ktransformers"].tokens_per_s
                 / ds3_decode["llamacpp"].tokens_per_s)
        assert 1.25 <= ratio <= 1.8

    def test_deferral_gain_near_paper_33pct(self, ds3_decode):
        gain = (ds3_decode["kt_defer"].tokens_per_s
                / ds3_decode["ktransformers"].tokens_per_s)
        assert 1.2 <= gain <= 1.45

    def test_overall_speedup_vs_llamacpp(self, ds3_decode):
        """Paper: 1.66x-2.56x overall including deferral."""
        ratio = (ds3_decode["kt_defer"].tokens_per_s
                 / ds3_decode["llamacpp"].tokens_per_s)
        assert 1.66 <= ratio <= 2.6

    def test_llamacpp_beats_fiddler_at_decode(self, ds3_decode):
        assert (ds3_decode["llamacpp"].tokens_per_s
                > ds3_decode["fiddler"].tokens_per_s)

    @pytest.mark.parametrize("preset,dtype", [(DS3, INT4), (DS2, INT8)])
    def test_quantized_decode_band_vs_llamacpp(self, preset, dtype):
        """Paper: 1.77x-1.93x over llama.cpp for quantized models."""
        kt = run_decode(KTRANSFORMERS, preset, MACHINE_4080, dtype, n_tokens=4)
        ll = run_decode(LLAMACPP, preset, MACHINE_4080, dtype, n_tokens=4)
        assert 1.4 <= kt.tokens_per_s / ll.tokens_per_s <= 2.2


class TestUtilizationFigure10:
    """CPU/GPU utilization before/after deferral (Figure 10)."""

    def test_baseline_utilization_shape(self, ds3_decode):
        r = ds3_decode["ktransformers"]
        cpu = r.utilization("cpu")
        gpu = r.utilization("gpu")
        assert 0.55 <= cpu <= 0.9     # paper: 74%
        assert 0.1 <= gpu <= 0.5      # paper: 28%
        assert cpu > gpu

    def test_deferral_saturates_cpu(self, ds3_decode):
        before = ds3_decode["ktransformers"].utilization("cpu")
        after = ds3_decode["kt_defer"].utilization("cpu")
        assert after > before
        assert after > 0.9            # paper: ~100%

    def test_deferral_raises_gpu_utilization(self, ds3_decode):
        before = ds3_decode["ktransformers"].utilization("gpu")
        after = ds3_decode["kt_defer"].utilization("gpu")
        assert after > before


class TestPrefillCalibration:
    """Prefill-phase comparisons, Section 6.2 / Figure 11."""

    def test_kt_wins_all_prompt_lengths(self):
        for plen in (32, 512, 4096):
            kt = run_prefill(KTRANSFORMERS, DS3, MACHINE, BF16, plen)
            fi = run_prefill(FIDDLER, DS3, MACHINE, BF16, plen)
            ll = run_prefill(LLAMACPP, DS3, MACHINE, BF16, plen)
            assert kt.tokens_per_s > fi.tokens_per_s
            assert kt.tokens_per_s > ll.tokens_per_s

    def test_crossover_fiddler_llamacpp(self):
        """llama.cpp wins short prompts (fusion), Fiddler long (AMX)."""
        short_f = run_prefill(FIDDLER, DS3, MACHINE, BF16, 64)
        short_l = run_prefill(LLAMACPP, DS3, MACHINE, BF16, 64)
        long_f = run_prefill(FIDDLER, DS3, MACHINE, BF16, 8192)
        long_l = run_prefill(LLAMACPP, DS3, MACHINE, BF16, 8192)
        assert short_l.tokens_per_s > short_f.tokens_per_s
        assert long_f.tokens_per_s > long_l.tokens_per_s

    def test_prefill_speedup_band(self):
        """Paper: 4.62x-19.74x prefill speedups vs existing systems."""
        kt = run_prefill(KTRANSFORMERS, DS3, MACHINE, BF16, 8192)
        fi = run_prefill(FIDDLER, DS3, MACHINE, BF16, 8192)
        ll = run_prefill(LLAMACPP, DS3, MACHINE, BF16, 8192)
        assert 3.0 <= kt.tokens_per_s / fi.tokens_per_s <= 20.0
        assert 4.0 <= kt.tokens_per_s / ll.tokens_per_s <= 20.0

    def test_throughput_grows_with_prompt_length(self):
        slow = run_prefill(KTRANSFORMERS, DS3, MACHINE, BF16, 32)
        fast = run_prefill(KTRANSFORMERS, DS3, MACHINE, BF16, 2048)
        assert fast.tokens_per_s > slow.tokens_per_s

    def test_invalid_prompt_rejected(self):
        with pytest.raises(ConfigError):
            run_prefill(KTRANSFORMERS, DS3, MACHINE, BF16, 0)


class TestAutotune:
    """Section 4.2: deferral-count selection."""

    def _work(self, preset, dtype=BF16):
        return decode_layer_work(
            preset, MACHINE, dtype, 128, KTRANSFORMERS.decode_kernel,
            KTRANSFORMERS.numa_strategy, KTRANSFORMERS.decode_kernels_per_layer,
        )

    def test_heuristic_ds3_bf16_defers_3(self):
        """Paper's chosen configuration: 5 immediate + 3 deferred."""
        d = heuristic_deferred_count(self._work(DS3), DS3.top_k)
        assert d == 3

    def test_heuristic_qw2_bf16_defers_2(self):
        d = heuristic_deferred_count(self._work(QW2), QW2.top_k)
        assert d == 2

    def test_heuristic_ds2_bf16_near_paper(self):
        d = heuristic_deferred_count(self._work(DS2), DS2.top_k)
        assert d in (3, 4)  # paper: 4

    def test_heuristic_quantized_on_4080_matches_paper(self):
        """Quantized runs use the RTX 4080, whose slower HBM widens the GPU
        window relative to the (4x smaller) Int4 CPU expert time; the paper
        defers 6 for DS-3/Int4 and 4 for DS-2/Int8."""
        def work_4080(preset, dtype):
            return decode_layer_work(
                preset, MACHINE_4080, dtype, 128, KTRANSFORMERS.decode_kernel,
                KTRANSFORMERS.numa_strategy,
                KTRANSFORMERS.decode_kernels_per_layer,
            )
        assert heuristic_deferred_count(work_4080(DS3, INT4), DS3.top_k) == 6
        assert heuristic_deferred_count(work_4080(DS2, INT8), DS2.top_k) == 4

    def test_heuristic_zero_when_no_gpu_window(self):
        from repro.sched.workload import DecodeLayerWork
        w = DecodeLayerWork(gpu_attn_us=0.0, gpu_shared_us=0.0,
                            cpu_routed_us=800.0, transfer_bytes=1.0,
                            n_gpu_kernels=1)
        assert heuristic_deferred_count(w, 8) == 0

    def test_autotune_agrees_with_heuristic_roughly(self):
        works = decode_works(KTRANSFORMERS, DS3, MACHINE, BF16, 128)
        result = autotune_deferral(works, MACHINE, DS3.top_k, n_tokens=4)
        assert abs(result.n_deferred - 3) <= 1
        assert result.tokens_per_s > 0
        assert set(result.all_throughputs) == set(range(0, 7))

    def test_autotune_empty_rejected(self):
        with pytest.raises(ConfigError):
            autotune_deferral([], MACHINE, 8)
