"""Self-tuning control plane vs static configs under traffic shifts.

Three arms over the canonical 3-phase traffic-shift scenario (diurnal
ramp -> flash crowd -> hot-set shift,
:func:`~repro.serving.traffic.three_phase_scenario`), all emitted to
``benchmarks/BENCH_adaptive.json``:

- **static_small** -- ``prefill_chunk_tokens=256, max_batch_size=4``:
  tuned for the light interactive phase, collapses when the hot set
  shifts to long analytic prompts (a 1536-token prompt needs ~6 chunked
  iterations of TTFT);
- **static_large** -- ``prefill_chunk_tokens=2048, max_batch_size=32``:
  tuned for throughput, gives up a little attainment on the light
  phase;
- **adaptive** -- starts from *static_small's exact config* plus an
  :class:`~repro.serving.controller.ControllerConfig`: the online
  controller observes windowed SLO attainment and hill-climbs the
  chunk/batch knobs at runtime, with no per-phase tuning.

Claims asserted: the adaptive arm reaches >= 0.9x the best static
config's goodput on *every* phase, beats the worst static config by
>= 1.3x on at least one phase, and every arm (controller decisions
included) is bit-reproducible run-to-run.
"""

import json
from pathlib import Path

from repro.bench import format_table
from repro.model import QW2, MoETransformer, tiny_config
from repro.serving import (
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    ControllerConfig,
    InferenceSession,
    ServingSLO,
    three_phase_scenario,
)

OUT_PATH = Path(__file__).parent / "BENCH_adaptive.json"

SCENARIO = dict(
    prompt_len=64, max_new_tokens=10, vocab_size=64,
    phase_us=20e6, trough_interarrival_us=2e6,
    peak_factor=3.0, burst_factor=8.0, long_prompt_len=1536,
    requests_per_phase=(20, 18, 9), seed=7,
)
KV_BUDGET = 16384
SLO = ServingSLO(ttft_ms=3000, tpot_ms=300)

STATIC_ARMS = {
    "static_small": dict(prefill_chunk_tokens=256, max_batch_size=4),
    "static_large": dict(prefill_chunk_tokens=2048, max_batch_size=32),
}
ADAPTIVE_BASE = "static_small"     # the adaptive arm starts from this config

CONTROLLER = dict(
    window_us=2.5e6, warmup_windows=1, ewma_alpha=0.5,
    chunk_ladder=(128, 256, 512, 1024, 2048),
    batch_ladder=(4, 8, 16, 32),
)

MIN_VS_BEST = 0.9        # adaptive >= 0.9x best static, every phase
MIN_VS_WORST = 1.3       # adaptive >= 1.3x worst static, some phase

_SESSION = InferenceSession(MoETransformer(tiny_config("tiny-qw")), QW2)


def _phase_goodput(stats, phases):
    """Per-phase goodput (SLO-attaining completions per phase second)."""
    out = []
    for p in phases:
        done = [t for t in stats.timings if p.covers(t.arrival_us)]
        shed = [s for s in stats.shed if p.covers(s.arrival_us)]
        good = sum(1 for t in done if SLO.met_by(t) and not t.timed_out)
        submitted = len(done) + len(shed)
        span_s = (p.end_us - p.start_us) / 1e6
        out.append({
            "name": p.name,
            "submitted": submitted,
            "good": good,
            "goodput_per_s": good / span_s,
            "attainment": good / submitted if submitted else 0.0,
        })
    return out


def _run(knobs, adaptive):
    workload, phases = three_phase_scenario(**SCENARIO)
    config = BatchSchedulerConfig(kv_budget_tokens=KV_BUDGET, **knobs)
    controller = (ControllerConfig(slo=SLO, **CONTROLLER)
                  if adaptive else None)
    server = ContinuousBatchingServer(_SESSION, config,
                                      controller=controller)
    stats = server.replay(list(workload))
    out = {
        "timings": [(t.arrival_us, t.start_us, t.first_token_us,
                     t.finish_us) for t in stats.timings],
        "phases": _phase_goodput(stats, phases),
        "summary": stats.summary(),
        "overall_attainment": stats.goodput(SLO)["attainment"],
    }
    if adaptive:
        out["decision_trace"] = stats.controller.trace()
    return out


def _arms():
    arms = {}
    runs = [(name, knobs, False) for name, knobs in STATIC_ARMS.items()]
    runs.append(("adaptive", STATIC_ARMS[ADAPTIVE_BASE], True))
    for name, knobs, adaptive in runs:
        run1 = _run(knobs, adaptive)
        run2 = _run(knobs, adaptive)
        run1["bit_reproducible"] = (
            run1["timings"] == run2["timings"]
            and run1["summary"] == run2["summary"]
            and run1.get("decision_trace") == run2.get("decision_trace"))
        arms[name] = run1
    return arms


def test_adaptive_serving(run_once):
    arms = run_once(_arms)
    statics = [arms[name] for name in STATIC_ARMS]
    adaptive = arms["adaptive"]
    n_phases = len(adaptive["phases"])
    best = [max(s["phases"][i]["goodput_per_s"] for s in statics)
            for i in range(n_phases)]
    worst = [min(s["phases"][i]["goodput_per_s"] for s in statics)
             for i in range(n_phases)]
    got = [adaptive["phases"][i]["goodput_per_s"] for i in range(n_phases)]

    OUT_PATH.write_text(json.dumps(
        {"model_costs": QW2.name,
         "scenario": {k: v for k, v in SCENARIO.items()},
         "slo": {"ttft_ms": SLO.ttft_ms, "tpot_ms": SLO.tpot_ms},
         "static_arms": STATIC_ARMS,
         "adaptive_base": ADAPTIVE_BASE,
         "controller": {k: v for k, v in CONTROLLER.items()},
         "claims": {"min_vs_best": MIN_VS_BEST,
                    "min_vs_worst": MIN_VS_WORST},
         "arms": {k: {kk: vv for kk, vv in v.items() if kk != "timings"}
                  for k, v in arms.items()}}, indent=2))

    print()
    phase_names = [p["name"] for p in adaptive["phases"]]
    print(format_table(
        ["arm"] + [f"{n} (good/s)" for n in phase_names] + ["attainment"],
        [(name,) + tuple(round(p["goodput_per_s"], 3)
                         for p in arm["phases"])
         + (round(arm["overall_attainment"], 3),)
         for name, arm in arms.items()],
        title=("Adaptive vs static configs "
               "(QW2 costs, 3-phase traffic shift)"),
    ))

    # Every arm is bit-reproducible -- the adaptive arm's controller
    # decisions included.
    for arm in arms.values():
        assert arm["bit_reproducible"]

    # The controller actually adapted (and its counters surfaced).
    assert adaptive["summary"]["ctrl_moves"] >= 2
    assert adaptive["summary"]["ctrl_windows"] >= 6
    for arm_name in STATIC_ARMS:
        assert "ctrl_windows" not in arms[arm_name]["summary"]

    # Headline: starting from static_small's exact knobs, the online
    # controller reaches >= 0.9x the best static config on every phase
    # -- no per-phase tuning -- and beats the worst static config by
    # >= 1.3x where the static mismatch bites (the hot-set shift).
    for i, name in enumerate(phase_names):
        assert got[i] >= MIN_VS_BEST * best[i], (
            f"phase {name}: adaptive {got[i]:.3f} < "
            f"{MIN_VS_BEST} x best static {best[i]:.3f}")
    assert any(got[i] >= MIN_VS_WORST * worst[i]
               for i in range(n_phases)), (
        f"adaptive {got} never beats worst static {worst} "
        f"by {MIN_VS_WORST}x")
