"""Unit helpers used throughout the hardware model.

Internal conventions (chosen once, used everywhere):

- **time** is measured in microseconds (float)
- **bandwidth** in bytes per second
- **compute throughput** in FLOP/s
- **capacity** in bytes

The constructors below exist so call sites read like the paper's prose
(``GBps(220)``, ``TFLOPS(73.7)``) instead of raw powers of ten.
"""

from __future__ import annotations

US_PER_S = 1e6

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def GBps(value: float) -> float:
    """Bandwidth: gigabytes per second -> bytes per second (decimal GB)."""
    return value * 1e9


def TFLOPS(value: float) -> float:
    """Compute: teraFLOP/s -> FLOP/s."""
    return value * 1e12


def GFLOPS(value: float) -> float:
    """Compute: gigaFLOP/s -> FLOP/s."""
    return value * 1e9


def ms(value: float) -> float:
    """Time: milliseconds -> microseconds."""
    return value * 1e3


def us(value: float) -> float:
    """Time: microseconds (identity, for readability)."""
    return value


def seconds(value: float) -> float:
    """Time: seconds -> microseconds."""
    return value * US_PER_S


def us_to_s(value_us: float) -> float:
    """Convert microseconds back to seconds (for tokens/s reporting)."""
    return value_us / US_PER_S


def tokens_per_second(tokens: float, elapsed_us: float) -> float:
    """Throughput helper: tokens produced over a simulated duration."""
    if elapsed_us <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_us}")
    return tokens / us_to_s(elapsed_us)
