"""CPU-GPU coordination: launch modes, decode/prefill task-graph builders."""

from .cuda_graph import (
    GRAPH_LAUNCH_US,
    GpuExecutor,
    GraphCache,
    GraphCacheConfig,
    GraphLookup,
    LaunchMode,
)
from .decode import (
    DecodeScheduleConfig,
    batched_step_time_us,
    build_decode_step,
    hybrid_step_time_us,
    simulate_decode,
)
from .kv_offload import (
    KVOffloadCost,
    gpu_kv_budget_tokens,
    kv_bytes_per_token_layer,
    kv_cache_total_bytes,
    kv_offload_step_cost,
)
from .multi_gpu import (
    PipelineConfig,
    interstage_transfer_us,
    simulate_pipelined_decode,
    simulate_pipelined_prefill,
    stage_boundary_bytes,
    stage_works,
    staged_interval_us,
    staged_step_time_us,
    vram_per_stage_bytes,
)
from .prefill import build_prefill_chunk, simulate_prefill
from .workload import (
    DecodeLayerWork,
    ExpertGemmDispatch,
    PrefillLayerWork,
    decode_layer_work,
    prefill_layer_work,
    scheduling_penalty,
)

__all__ = [
    "GRAPH_LAUNCH_US", "GpuExecutor", "GraphCache", "GraphCacheConfig",
    "GraphLookup", "LaunchMode",
    "DecodeScheduleConfig", "batched_step_time_us", "build_decode_step",
    "hybrid_step_time_us", "simulate_decode",
    "build_prefill_chunk", "simulate_prefill",
    "KVOffloadCost", "gpu_kv_budget_tokens", "kv_bytes_per_token_layer",
    "kv_cache_total_bytes", "kv_offload_step_cost",
    "PipelineConfig", "interstage_transfer_us", "simulate_pipelined_decode",
    "simulate_pipelined_prefill", "stage_boundary_bytes", "stage_works",
    "staged_interval_us", "staged_step_time_us", "vram_per_stage_bytes",
    "DecodeLayerWork", "ExpertGemmDispatch", "PrefillLayerWork",
    "decode_layer_work", "prefill_layer_work", "scheduling_penalty",
]
