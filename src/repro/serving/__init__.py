"""Serving layer: sessions (real tokens, simulated clocks) and servers.

Two servers share the same workload/stats types: the paper's batch-1
``LocalServer`` and the iteration-level ``ContinuousBatchingServer``
(optionally priority-aware with swap/recompute preemption).
"""

from .continuous import (
    BatchCostModel,
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    serving_expert_cache,
)
from .metrics import (
    BatchTimeline,
    CachePoint,
    ExpertCacheTimeline,
    FaultStats,
    GraphStats,
    PreemptionStats,
    RequestTiming,
    ServingSLO,
    ServingStats,
    ShedRecord,
    TimelinePoint,
    percentile,
    percentiles,
)
from .priority import Priority, PriorityConfig
from .resilience import DegradationTracker, ResilienceConfig, RetryState
from .server import LocalServer, TimedRequest, poisson_workload
from .session import (
    GenerationRequest,
    GenerationResult,
    InferenceSession,
    PhaseCostModel,
)

__all__ = [
    "BatchCostModel", "BatchSchedulerConfig", "ContinuousBatchingServer",
    "serving_expert_cache",
    "BatchTimeline", "CachePoint", "ExpertCacheTimeline", "FaultStats",
    "GraphStats", "PreemptionStats", "RequestTiming", "ServingSLO",
    "ServingStats",
    "ShedRecord", "TimelinePoint", "percentile", "percentiles",
    "Priority", "PriorityConfig",
    "DegradationTracker", "ResilienceConfig", "RetryState",
    "LocalServer", "TimedRequest", "poisson_workload",
    "GenerationRequest", "GenerationResult", "InferenceSession",
    "PhaseCostModel",
]
