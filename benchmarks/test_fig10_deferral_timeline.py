"""Figure 10: execution timelines under Expert Deferral configurations.

Paper anchors (DS-3 BF16 single layer): without deferral, CPU utilization
74% and GPU 28% with only ~5% overlap; deferring 3 experts saturates the
CPU (100%), lifts GPU utilization to 37%, cuts layer time by 26%, and
raises end-to-end decode throughput 33%.  Deferring a 4th expert adds
nothing (the CPU is already saturated).
"""

from repro.bench import fig10_deferral_timeline, format_table


def test_fig10_deferral_timeline(run_once):
    rows = run_once(fig10_deferral_timeline)
    print()
    print(format_table(
        ["deferred", "us/token", "CPU util %", "GPU util %", "overlap %"],
        [(r.n_deferred, r.time_per_token_us, r.cpu_utilization * 100,
          r.gpu_utilization * 100, r.overlap_fraction * 100) for r in rows],
        title="Figure 10: DS-3 BF16 decode under deferral configurations",
    ))
    by = {r.n_deferred: r for r in rows}

    base, best = by[0], by[3]
    # Baseline shape: CPU-dominant, GPU mostly idle.
    assert 0.55 <= base.cpu_utilization <= 0.90   # paper: 74%
    assert 0.10 <= base.gpu_utilization <= 0.50   # paper: 28%

    # Deferring 3 experts saturates the CPU and speeds up the step.
    assert best.cpu_utilization > 0.93            # paper: ~100%
    assert best.gpu_utilization > base.gpu_utilization
    reduction = 1.0 - best.time_per_token_us / base.time_per_token_us
    assert 0.15 <= reduction <= 0.35              # paper: 26% layer-time cut

    # Monotone improvement 0 -> 2 -> 3; no further gain at 4.
    assert by[2].time_per_token_us < by[0].time_per_token_us
    assert by[3].time_per_token_us <= by[2].time_per_token_us
    assert by[4].time_per_token_us >= by[3].time_per_token_us * 0.98
