"""Kernel interface: functional numpy execution + simulated cost.

Each kernel family bundles two views of the same operation:

- :meth:`run` executes the GEMM for real (numpy), following the memory
  traversal order of the corresponding native kernel so that layout bugs
  surface as wrong numerics in tests;
- :meth:`cost_us` returns the simulated wall-clock duration from the
  calibrated roofline profile, used by the discrete-event simulator.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import KernelError
from ..hw.roofline import CPUKernelProfile, cpu_gemm_time_us
from ..hw.spec import CPUSpec
from ..tensor.layout import PackedWeights, pad_activations


class CPUGemmKernel(abc.ABC):
    """A CPU kernel computing ``x @ W`` over tile-packed weights."""

    profile: CPUKernelProfile

    @abc.abstractmethod
    def run(self, x: np.ndarray, weights: PackedWeights) -> np.ndarray:
        """Compute ``x @ W`` functionally; returns an (m, n) float32 array."""

    def cost_us(
        self,
        m: int,
        weights: PackedWeights,
        cpu: CPUSpec,
        threads_fraction: float = 1.0,
        weights_cached: bool = False,
    ) -> float:
        """Simulated duration of :meth:`run` on ``cpu``."""
        k, n = weights.original_shape
        return cpu_gemm_time_us(
            self.profile, m, k, n, weights.dtype, cpu,
            threads_fraction=threads_fraction,
            weights_cached=weights_cached,
        )

    def _check_shapes(self, x: np.ndarray, weights: PackedWeights) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise KernelError(f"activations must be (m, k), got shape {x.shape}")
        if x.shape[1] != weights.rows:
            raise KernelError(
                f"activation width {x.shape[1]} != weight rows {weights.rows}"
            )
        return pad_activations(x, weights.padded_shape[0])
