"""Graph-cache, grouped-dispatch, and warmup-refactor tests (hypothesis).

Four contracts the graph-captured decode path rests on:

- **capture-once**: for any lookup sequence, a key pays capture cost at
  most once per residency -- a mirror LRU model agrees with the cache on
  every hit/miss/eviction decision, and a replay never bills capture;
- **determinism**: the cache is a pure function of its call history, so
  two caches fed the same sequence return bit-identical lookups, and a
  re-capture after eviction costs exactly what the first capture did;
- **pricing**: the per-expert and grouped GEMM dispatch arms reprice
  cache-hit work with the documented kernel counts and monotone
  fragmentation penalty, while ``dispatch=None`` stays bit-identical to
  the legacy single-blob model;
- **warmup refactor**: the single-simulation warmup in
  ``batched_step_time_us`` reproduces the explicit two-simulation
  formula bit-for-bit, perturbed or not, deferred or not.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import KT_AVX512, paper_testbed
from repro.model import QW2
from repro.moe import NumaStrategy
from repro.moe.expert_cache import ExpertCacheConfig, ExpertCacheManager
from repro.sched import (
    DecodeScheduleConfig,
    ExpertGemmDispatch,
    GraphCache,
    GraphCacheConfig,
    LaunchMode,
    batched_step_time_us,
    decode_layer_work,
)
from repro.sched.decode import simulate_decode
from repro.sched.workload import (
    FRAGMENTED_STREAM_PENALTY,
    GROUPED_GATHER_US_PER_EXPERT,
    apply_expert_cache,
)
from repro.tensor import BF16
from repro.errors import ConfigError

MACHINE = paper_testbed("a100")


# ---------------------------------------------------------------------------
# GraphCacheConfig bucketing
# ---------------------------------------------------------------------------

class TestBucketing:
    """batch_bucket() pads up to the smallest covering bucket."""

    def test_exact_and_padded(self):
        cfg = GraphCacheConfig(batch_buckets=(1, 2, 4, 8))
        assert cfg.batch_bucket(1) == 1
        assert cfg.batch_bucket(3) == 4
        assert cfg.batch_bucket(8) == 8

    def test_beyond_last_clamps(self):
        cfg = GraphCacheConfig(batch_buckets=(1, 4))
        assert cfg.batch_bucket(100) == 4

    def test_invalid_batch_rejected(self):
        with pytest.raises(ConfigError):
            GraphCacheConfig().batch_bucket(0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            GraphCacheConfig(batch_buckets=())
        with pytest.raises(ConfigError):
            GraphCacheConfig(batch_buckets=(4, 2))
        with pytest.raises(ConfigError):
            GraphCacheConfig(max_graphs=0)
        with pytest.raises(ConfigError):
            GraphCacheConfig(instantiation_us=-1.0)


# ---------------------------------------------------------------------------
# GraphCache unit behaviour
# ---------------------------------------------------------------------------

class TestGraphCache:
    """Capture/replay/evict accounting on hand-picked sequences."""

    def make(self, max_graphs=2):
        return GraphCache(GraphCacheConfig(max_graphs=max_graphs), MACHINE)

    def test_first_lookup_captures_second_replays(self):
        cache = self.make()
        first = cache.lookup(("a",), n_kernels=10)
        assert first.captured and first.capture_us == cache.capture_cost_us(10)
        second = cache.lookup(("a",), n_kernels=10)
        assert not second.captured and second.capture_us == 0.0
        assert cache.captures == 1 and cache.replays == 1

    def test_capture_cost_formula(self):
        cache = self.make()
        lat = MACHINE.gpu.kernel_launch_latency_us
        inst = cache.config.instantiation_us
        assert cache.capture_cost_us(7) == 7 * lat + inst
        with pytest.raises(ConfigError):
            cache.capture_cost_us(0)

    def test_lru_evicts_coldest(self):
        cache = self.make(max_graphs=2)
        cache.lookup(("a",), 5)
        cache.lookup(("b",), 5)
        cache.lookup(("a",), 5)          # refresh a: b is now coldest
        look = cache.lookup(("c",), 5)
        assert look.evicted == ("b",)
        assert cache.n_cached == 2 and cache.evictions == 1
        # b was evicted: touching it again is a fresh capture.
        assert cache.lookup(("b",), 5).captured

    def test_recapture_cost_identical(self):
        cache = self.make(max_graphs=1)
        first = cache.lookup(("a",), 9)
        cache.lookup(("b",), 3)          # evicts a
        again = cache.lookup(("a",), 9)
        assert again.captured and again.capture_us == first.capture_us


# ---------------------------------------------------------------------------
# Hypothesis: mirror-LRU model agreement + determinism
# ---------------------------------------------------------------------------

@st.composite
def lookup_sequences(draw):
    """A (max_graphs, [(key, n_kernels)]) pair over a small key pool."""
    max_graphs = draw(st.integers(1, 4))
    keys = draw(st.lists(st.integers(0, 6), min_size=1, max_size=40))
    n_kernels = draw(st.integers(1, 50))
    return max_graphs, [((k,), n_kernels) for k in keys]


@given(lookup_sequences())
@settings(max_examples=200, deadline=None)
def test_fuzz_capture_once_per_residency(seq):
    """The cache agrees with a plain ordered-dict LRU on every decision."""
    max_graphs, lookups = seq
    cache = GraphCache(GraphCacheConfig(max_graphs=max_graphs), MACHINE)
    model: dict[tuple, None] = {}          # insertion order == recency
    for key, n_kernels in lookups:
        look = cache.lookup(key, n_kernels)
        if key in model:                   # model predicts a replay
            assert not look.captured and look.capture_us == 0.0
            model.pop(key)
            model[key] = None
        else:                              # model predicts a capture
            assert look.captured
            assert look.capture_us == cache.capture_cost_us(n_kernels)
            if len(model) >= max_graphs:
                coldest = next(iter(model))
                assert look.evicted == coldest
                model.pop(coldest)
            else:
                assert look.evicted is None
            model[key] = None
        assert cache.n_cached == len(model) <= max_graphs


@given(lookup_sequences())
@settings(max_examples=100, deadline=None)
def test_fuzz_lookup_determinism(seq):
    """Two caches fed the same history return bit-identical lookups."""
    max_graphs, lookups = seq
    a = GraphCache(GraphCacheConfig(max_graphs=max_graphs), MACHINE)
    b = GraphCache(GraphCacheConfig(max_graphs=max_graphs), MACHINE)
    for key, n_kernels in lookups:
        assert a.lookup(key, n_kernels) == b.lookup(key, n_kernels)
    assert (a.captures, a.replays, a.evictions) == \
        (b.captures, b.replays, b.evictions)


@given(lookup_sequences())
@settings(max_examples=100, deadline=None)
def test_fuzz_recapture_price_stable(seq):
    """Every capture of a given (key, n_kernels) costs the same amount."""
    max_graphs, lookups = seq
    cache = GraphCache(GraphCacheConfig(max_graphs=max_graphs), MACHINE)
    seen: dict[tuple, float] = {}
    for key, n_kernels in lookups:
        look = cache.lookup(key, n_kernels)
        if look.captured:
            assert seen.setdefault(key, look.capture_us) == look.capture_us


# ---------------------------------------------------------------------------
# Dispatch pricing arms
# ---------------------------------------------------------------------------

def _base_work(batch=16, ctx=256):
    return decode_layer_work(
        QW2, MACHINE, BF16, context_len=ctx, cpu_profile=KT_AVX512,
        numa_strategy=NumaStrategy.TENSOR_PARALLEL,
        kernels_per_layer=45, batch_size=batch,
    )


class TestDispatchPricing:
    """apply_expert_cache arms: kernel counts, penalties, legacy identity."""

    def test_legacy_none_is_bit_identical(self):
        work = _base_work()
        a = apply_expert_cache(work, QW2, MACHINE, BF16, 64, 48, 6)
        b = apply_expert_cache(work, QW2, MACHINE, BF16, 64, 48, 6,
                               dispatch=None)
        assert a == b
        assert a.n_gpu_kernels == work.n_gpu_kernels

    def test_per_expert_adds_n_hit_kernels(self):
        work = _base_work()
        out = apply_expert_cache(work, QW2, MACHINE, BF16, 64, 48, 6,
                                 dispatch=ExpertGemmDispatch("per-expert"))
        assert out.n_gpu_kernels == work.n_gpu_kernels + 6
        legacy = apply_expert_cache(work, QW2, MACHINE, BF16, 64, 48, 6)
        # Splitting one blob into 6 floored kernels can only cost more.
        assert out.gpu_shared_us >= legacy.gpu_shared_us

    def test_grouped_adds_one_kernel_plus_gather(self):
        work = _base_work()
        out = apply_expert_cache(
            work, QW2, MACHINE, BF16, 64, 48, 6,
            dispatch=ExpertGemmDispatch("grouped", layout_contiguity=1.0))
        assert out.n_gpu_kernels == work.n_gpu_kernels + 1
        legacy = apply_expert_cache(work, QW2, MACHINE, BF16, 64, 48, 6)
        gather = GROUPED_GATHER_US_PER_EXPERT * 6
        assert out.gpu_shared_us == pytest.approx(
            legacy.gpu_shared_us + gather)

    def test_grouped_cost_monotone_in_fragmentation(self):
        work = _base_work()
        costs = [
            apply_expert_cache(
                work, QW2, MACHINE, BF16, 64, 48, 6,
                dispatch=ExpertGemmDispatch("grouped", layout_contiguity=c),
            ).gpu_shared_us
            for c in (1.0, 0.5, 0.0)
        ]
        assert costs[0] <= costs[1] <= costs[2]
        assert FRAGMENTED_STREAM_PENALTY > 0

    def test_bad_dispatch_rejected(self):
        with pytest.raises(ValueError):
            ExpertGemmDispatch("blocked")
        with pytest.raises(ValueError):
            ExpertGemmDispatch("grouped", layout_contiguity=1.5)


# ---------------------------------------------------------------------------
# Arena slots and layout contiguity
# ---------------------------------------------------------------------------

def _manager(capacity=6, n_layers=2, n_experts=8):
    cfg = ExpertCacheConfig(
        n_layers=n_layers, n_experts=n_experts, expert_bytes=1e6,
        vram_budget_bytes=capacity * 1e6, max_uploads_per_step=8)
    return ExpertCacheManager(cfg, MACHINE.interconnect)


class TestArenaSlots:
    """Slot assignment invariants behind layout_contiguity."""

    def test_warm_start_slots_unique_and_bounded(self):
        mgr = _manager()
        mgr.warm_start([{0, 1, 2}, {3, 4}])
        slots = mgr.arena_slots()
        assert len(slots) == 5
        values = sorted(slots.values())
        assert values == sorted(set(values))
        assert all(0 <= s < 6 for s in values)

    def test_warm_start_contiguous_layout(self):
        mgr = _manager()
        mgr.warm_start([{0, 1, 2, 3}, set()])
        counts = np.zeros((2, 8), dtype=np.int64)
        counts[0, :4] = 5
        result = mgr.step(counts)
        assert result.layout_contiguity == 1.0

    def test_contiguity_in_unit_interval_under_churn(self):
        rng = np.random.default_rng(3)
        mgr = _manager(capacity=4)
        for _ in range(30):
            counts = rng.integers(0, 4, size=(2, 8))
            result = mgr.step(counts)
            assert 0.0 <= result.layout_contiguity <= 1.0
            slots = mgr.arena_slots()
            assert len(set(slots.values())) == len(slots)
            assert all(0 <= s < 4 for s in slots.values())
            assert len(slots) == mgr.n_resident

    def test_single_hit_expert_is_fully_contiguous(self):
        mgr = _manager()
        mgr.warm_start([{2}, set()])
        counts = np.zeros((2, 8), dtype=np.int64)
        counts[0, 2] = 7
        assert mgr.step(counts).layout_contiguity == 1.0


# ---------------------------------------------------------------------------
# Warmup refactor regression pin
# ---------------------------------------------------------------------------

def _works(n_layers=4, batch=8):
    return [_base_work(batch=batch, ctx=128)] * n_layers


def _crc_perturb(task, now):
    """Deterministic fault hook: jitter scaled by a digest of the name."""
    scale = 1.0 + (zlib.crc32(task.name.encode()) % 100) / 1000.0
    return task.duration * scale


@pytest.mark.parametrize("mode", [LaunchMode.PER_KERNEL_PYTHON,
                                  LaunchMode.PER_KERNEL_CPP,
                                  LaunchMode.CUDA_GRAPH])
@pytest.mark.parametrize("n_deferred", [0, 2])
@pytest.mark.parametrize("perturb", [None, _crc_perturb])
def test_single_sim_warmup_matches_two_sim_formula(mode, n_deferred, perturb):
    """The refactored warmup equals pricing the prefix in its own sim."""
    works = _works()
    config = DecodeScheduleConfig(launch_mode=mode, overlap_cpu_gpu=True,
                                  top_k=QW2.top_k, n_deferred=n_deferred)
    n_steps, warmup = 3, 2
    got = batched_step_time_us(works, config, MACHINE, n_steps=n_steps,
                               warmup_steps=warmup, perturb=perturb)
    full = simulate_decode(works, config, MACHINE, warmup + n_steps,
                           perturb=perturb).now
    prefix = simulate_decode(works, config, MACHINE, warmup,
                             perturb=perturb).now
    assert got == (full - prefix) / n_steps


def test_zero_warmup_is_plain_average():
    works = _works()
    config = DecodeScheduleConfig(launch_mode=LaunchMode.CUDA_GRAPH,
                                  overlap_cpu_gpu=True, top_k=QW2.top_k)
    got = batched_step_time_us(works, config, MACHINE, n_steps=4,
                               warmup_steps=0)
    assert got == simulate_decode(works, config, MACHINE, 4).now / 4
