"""Reference GEMM used as numerical ground truth in kernel tests."""

from __future__ import annotations

import numpy as np

from ..tensor.layout import PackedWeights, unpack_matrix


def reference_gemm(x: np.ndarray, weights: PackedWeights) -> np.ndarray:
    """Plain ``x @ W`` over the unpacked (dequantized) weight matrix."""
    w = unpack_matrix(weights)
    return np.asarray(x, dtype=np.float32) @ w
