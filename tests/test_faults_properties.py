"""Property tests for the chaos harness (hypothesis).

Three contracts the fault-injection design rests on:

- **bit-reproducibility**: one seeded plan replayed twice produces
  bit-identical ``ServingStats`` -- timings, summaries, fault counters;
- **identity**: an *empty* plan injected through the full fault plumbing
  leaves the run bit-identical to a server with no injector at all (the
  perturbed code paths short-circuit to the exact same float arithmetic);
- **conservation**: whatever the plan does, the serving loop never moves
  time backwards, releases every KV page, and accounts for every
  submitted request as completed, timed out, or shed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ClockJitter,
    CpuStraggler,
    FaultInjector,
    FaultPlan,
    NumaContention,
    PcieDegradation,
    RetryPolicy,
    UploadFailureWindow,
)
from repro.model import DS3, MoETransformer, tiny_config
from repro.serving import (
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    ResilienceConfig,
    poisson_workload,
    serving_expert_cache,
)
from repro.tensor import BF16

_SESSION = None


def get_session():
    """Module-wide tiny session (model construction dominates test time)."""
    global _SESSION
    if _SESSION is None:
        model = MoETransformer(tiny_config("tiny-qw"))
        _SESSION = InferenceSession(model, DS3)
    return _SESSION


def _window(kind, **extra):
    """Strategy for one fault window of ``kind`` inside the serving horizon."""
    return st.builds(
        lambda start, length, kw: kind(start, start + length, **kw),
        st.floats(0.0, 30e6), st.floats(1e5, 30e6),
        st.fixed_dictionaries(extra),
    )


plan_strategy = st.builds(
    FaultPlan,
    seed=st.integers(0, 10_000),
    pcie=st.lists(
        _window(PcieDegradation,
                bandwidth_fraction=st.floats(0.05, 1.0)),
        max_size=2).map(tuple),
    stragglers=st.lists(
        _window(CpuStraggler, slowdown=st.floats(1.0, 3.0)),
        max_size=2).map(tuple),
    numa=st.lists(
        _window(NumaContention, slowdown=st.floats(1.0, 2.0)),
        max_size=1).map(tuple),
    upload_failures=st.lists(
        _window(UploadFailureWindow, probability=st.floats(0.0, 1.0)),
        max_size=2).map(tuple),
    jitter=st.one_of(st.none(),
                     st.builds(ClockJitter, sigma=st.floats(0.0, 0.1))),
)

workload_strategy = st.fixed_dictionaries({
    "n_requests": st.integers(2, 6),
    "mean_interarrival_us": st.sampled_from([1e5, 1e6]),
    "prompt_len": st.integers(4, 16),
    "max_new_tokens": st.integers(2, 6),
    "seed": st.integers(0, 10_000),
})

resilience_strategy = st.one_of(
    st.none(),
    st.builds(
        ResilienceConfig,
        retry=st.builds(RetryPolicy,
                        max_retries=st.integers(1, 4),
                        base_us=st.sampled_from([1e4, 1e5]),
                        seed=st.integers(0, 100)),
        queue_timeout_us=st.one_of(st.none(),
                                   st.sampled_from([2e6, 10e6])),
        decode_timeout_us=st.one_of(st.none(),
                                    st.sampled_from([5e6, 30e6])),
        degrade_after=st.integers(1, 4),
        degrade_cooldown_iters=st.integers(1, 6),
    ),
)


def _replay(wl_params, plan=None, resilience=None, cache_experts=12):
    session = get_session()
    workload = poisson_workload(vocab_size=64, **wl_params)
    cache = serving_expert_cache(
        session, vram_budget_bytes=cache_experts * DS3.expert_bytes(BF16))
    server = ContinuousBatchingServer(
        session,
        BatchSchedulerConfig(kv_budget_tokens=256, max_batch_size=4),
        expert_cache=cache,
        fault_injector=None if plan is None else FaultInjector(plan),
        resilience=resilience,
    )
    stats = server.replay(list(workload))
    return workload, server, stats


@settings(max_examples=6, deadline=None)
@given(wl=workload_strategy, plan=plan_strategy, res=resilience_strategy)
def test_same_seed_is_bit_identical(wl, plan, res):
    """One plan, two replays: every stat -- fault counters included --
    must match bit for bit."""
    _, _, s1 = _replay(wl, plan=plan, resilience=res)
    _, _, s2 = _replay(wl, plan=plan, resilience=res)
    assert s1.timings == s2.timings
    assert s1.summary() == s2.summary()
    assert s1.faults.recovery_times_us == s2.faults.recovery_times_us
    assert s1.faults.retry_attempt_histogram == s2.faults.retry_attempt_histogram


@settings(max_examples=6, deadline=None)
@given(wl=workload_strategy, seed=st.integers(0, 10_000))
def test_empty_plan_equals_no_injector(wl, seed):
    """Injecting nothing must not move a single float: the perturbed
    pricing paths short-circuit to the unperturbed memos."""
    _, srv0, s0 = _replay(wl, plan=None)
    _, srv1, s1 = _replay(wl, plan=FaultPlan.empty(seed=seed))
    assert s0.timings == s1.timings
    assert srv0.timeline.points == srv1.timeline.points
    assert srv0.cache_timeline.points == srv1.cache_timeline.points
    base, injected = s0.summary(), s1.summary()
    assert base == {k: v for k, v in injected.items()
                    if not k.startswith("fault_")}
    # And the fault channel saw nothing at all.
    assert all(v == 0.0 for k, v in injected.items()
               if k.startswith("fault_"))


@settings(max_examples=8, deadline=None)
@given(wl=workload_strategy, plan=plan_strategy, res=resilience_strategy)
def test_conservation_under_any_plan(wl, plan, res):
    """No time travel, no leaked pages, every request accounted for."""
    workload, server, stats = _replay(wl, plan=plan, resilience=res)
    # Clock monotone: iteration records strictly advance.
    points = server.timeline.points
    assert all(b.t_us > a.t_us for a, b in zip(points, points[1:]))
    # Every request completed (possibly cut off) or was explicitly shed.
    assert stats.n_requests + stats.faults.shed_requests == len(workload)
    timed_out = sum(1 for t in stats.timings if t.timed_out)
    assert timed_out == stats.faults.timed_out_requests
    # Timestamps stay ordered even under perturbation.
    for t in stats.timings:
        assert t.arrival_us <= t.start_us <= t.first_token_us <= t.finish_us
    # All KV pages and reservations released.
    assert server.pool.n_slots == 0
    assert server.pool.used_tokens == 0
    assert server._reserved_pages == 0
    # Fault counters are internally consistent.
    f = stats.faults
    assert f.retries_attempted == sum(f.retry_attempt_histogram.values())
    assert f.retries_succeeded <= f.retries_attempted
    assert f.fault_stall_us >= 0.0
    assert np.isfinite(stats.summary()["tokens_per_s"])
