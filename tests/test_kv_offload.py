"""Closed-form unit tests for ``repro.sched.kv_offload`` (ISSUE 7).

The module prices the two KV-placement regimes the paper contrasts --
MLA's compressed latent (~28x smaller per token) against full-MHA K/V
-- and, since ISSUE 7, the serving engine's host-tier page transfers.
Everything here is checked against hand-computed byte counts and the
roofline primitives, so a silent change to any pricing formula fails
loudly.
"""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.hw.roofline import pcie_transfer_time_us
from repro.hw.spec import paper_testbed
from repro.model.presets import DS3, QW2
from repro.sched.decode import kv_swap_transfer_us
from repro.sched.kv_offload import (
    gpu_kv_budget_tokens,
    kv_bytes_per_token_layer,
    kv_cache_total_bytes,
    kv_offload_step_cost,
    kv_page_transfer_us,
)
from repro.sched.workload import ACTIVATION_BYTES, kv_token_bytes

MACHINE = paper_testbed("a100")
MHA = dataclasses.replace(DS3, kv_rank=0)


# -- per-token units ---------------------------------------------------------

def test_mla_latent_unit():
    assert kv_bytes_per_token_layer(DS3) == DS3.kv_rank * ACTIVATION_BYTES


def test_mha_full_kv_unit():
    assert kv_bytes_per_token_layer(MHA) == 2.0 * DS3.hidden * ACTIVATION_BYTES


def test_mla_vs_mha_compression_ratio():
    # The paper's headline: MLA's latent is ~28x smaller than full K/V
    # at DeepSeek-V3 dimensions (2*7168 / 512 = 28).
    ratio = kv_bytes_per_token_layer(MHA) / kv_bytes_per_token_layer(DS3)
    assert ratio == pytest.approx(2.0 * DS3.hidden / DS3.kv_rank)
    assert 20.0 < ratio < 40.0


def test_unit_matches_sched_workload():
    # Two modules, one formula: swap pricing and offload pricing must
    # agree on the per-token-per-layer unit for every preset.
    for preset in (DS3, QW2, MHA):
        assert kv_bytes_per_token_layer(preset) == kv_token_bytes(preset)


def test_total_bytes_closed_form():
    n = 4096
    assert kv_cache_total_bytes(DS3, n) == \
        DS3.kv_rank * ACTIVATION_BYTES * n * DS3.n_layers


# -- page transfer pricing (host KV tier) ------------------------------------

def test_page_transfer_matches_closed_form():
    link = MACHINE.interconnect
    for n in (16, 1024, 8192):
        expected = pcie_transfer_time_us(
            kv_bytes_per_token_layer(DS3) * DS3.n_layers * n, link)
        assert kv_page_transfer_us(DS3, n, link) == expected


def test_page_transfer_bit_identical_to_swap_pricing():
    """Parked-session pricing == preemption-swap pricing, bit for bit:
    one set of goldens covers both paths."""
    link = MACHINE.interconnect
    for preset in (DS3, MHA):
        for n in (0, 1, 64, 1024, 8192):
            assert kv_page_transfer_us(preset, n, link) == \
                kv_swap_transfer_us(n, kv_token_bytes(preset),
                                    preset.n_layers, link)


def test_page_transfer_zero_tokens_is_free():
    # No transfer issued at all -- not even link latency.
    assert kv_page_transfer_us(DS3, 0, MACHINE.interconnect) == 0.0


def test_page_transfer_negative_raises():
    with pytest.raises(ConfigError):
        kv_page_transfer_us(DS3, -1, MACHINE.interconnect)


def test_page_transfer_scales_with_degraded_link():
    link = MACHINE.interconnect
    slow = dataclasses.replace(link, pcie_bandwidth=link.pcie_bandwidth / 4)
    fast = kv_page_transfer_us(DS3, 1024, link)
    degraded = kv_page_transfer_us(DS3, 1024, slow)
    assert degraded > fast


# -- VRAM budget boundaries --------------------------------------------------

def test_budget_zero_when_weights_fill_vram():
    vram = MACHINE.gpu.vram_capacity
    assert gpu_kv_budget_tokens(DS3, MACHINE, weight_bytes=vram) == 0
    assert gpu_kv_budget_tokens(DS3, MACHINE, weight_bytes=vram * 0.9) == 0


def test_budget_closed_form():
    weights = 10e9
    spare = MACHINE.gpu.vram_capacity * 0.9 - weights
    per_token = kv_bytes_per_token_layer(DS3) * DS3.n_layers
    assert gpu_kv_budget_tokens(DS3, MACHINE, weights) == int(
        spare // per_token)


def test_budget_mla_dwarfs_mha():
    weights = 10e9
    assert gpu_kv_budget_tokens(DS3, MACHINE, weights) > \
        20 * gpu_kv_budget_tokens(MHA, MACHINE, weights)


def test_budget_invalid_layout_raises():
    broken = dataclasses.replace(DS3, kv_rank=0, hidden=0)
    with pytest.raises(ConfigError):
        gpu_kv_budget_tokens(broken, MACHINE, weight_bytes=0.0)


# -- per-step offload cost ---------------------------------------------------

def test_step_cost_all_resident_has_no_fetch():
    cost = kv_offload_step_cost(DS3, MACHINE, context_len=1024,
                                weight_bytes=10e9)
    assert cost.offloaded_tokens == 0
    assert cost.fetch_us_per_layer == 0.0
    assert cost.offload_fraction == 0.0
    assert cost.total_us_per_layer == cost.attn_us_per_layer


def test_step_cost_overflow_pays_pcie():
    # Choose weights that leave room for ~2000 MHA tokens, then overflow.
    per_token = kv_bytes_per_token_layer(MHA) * MHA.n_layers
    weights = MACHINE.gpu.vram_capacity * 0.9 - per_token * 2000
    budget = gpu_kv_budget_tokens(MHA, MACHINE, weight_bytes=weights)
    assert budget == 2000
    ctx = budget + 5000
    cost = kv_offload_step_cost(MHA, MACHINE, context_len=ctx,
                                weight_bytes=weights)
    assert cost.gpu_tokens == budget
    assert cost.offloaded_tokens == 5000
    assert cost.fetch_us_per_layer == pcie_transfer_time_us(
        kv_bytes_per_token_layer(MHA) * 5000, MACHINE.interconnect)
    assert 0.0 < cost.offload_fraction < 1.0


def test_step_cost_zero_context():
    cost = kv_offload_step_cost(DS3, MACHINE, context_len=0,
                                weight_bytes=10e9)
    assert cost.offload_fraction == 0.0
    assert cost.offloaded_tokens == 0


def test_step_cost_negative_context_raises():
    with pytest.raises(ConfigError):
        kv_offload_step_cost(DS3, MACHINE, context_len=-1, weight_bytes=0.0)
