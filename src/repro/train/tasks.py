"""Synthetic benchmark tasks (the accuracy-suite substitute).

The paper evaluates deferral on HumanEval/MBPP/GSM8K/StrategyQA/LiveBench.
Those need frontier-scale models; what the experiment actually measures is
*how much a trained MoE transformer's task performance degrades* under
Expert Deferral vs Expert Skipping.  That question reproduces on any task a
tiny trained MoE can master, so this module provides a suite of symbolic
tasks spanning the same capability categories:

- ``modsum``     -- modular arithmetic (math reasoning stand-in)
- ``copy``       -- echo a sequence (instruction following)
- ``reverse``    -- reverse a sequence (symbol manipulation / "coding")
- ``majority``   -- most frequent symbol (classification / commonsense)
- ``recall``     -- key-value lookup (long-range retrieval)

Every task is generated deterministically from a seed with disjoint
train/test splits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigError

BOS = 0
SEP = 1
N_SPECIAL = 2  # symbol tokens start here


@dataclass(frozen=True)
class Example:
    """One prompt/answer pair (token ids)."""

    prompt: np.ndarray
    target: np.ndarray


@dataclass(frozen=True)
class Task:
    """A synthetic benchmark: generator plus metadata."""

    name: str
    n_symbols: int
    answer_len: int
    generate_fn: Callable[[int, np.random.Generator], list[Example]] = field(
        repr=False
    )

    @property
    def min_vocab(self) -> int:
        return N_SPECIAL + self.n_symbols

    def generate(self, n: int, seed: int) -> list[Example]:
        if n <= 0:
            raise ConfigError("need a positive number of examples")
        return self.generate_fn(n, np.random.default_rng(seed))

    def splits(self, n_train: int, n_test: int, seed: int = 0
               ) -> tuple[list[Example], list[Example]]:
        """Disjoint train/test splits (drawn from one stream, then cut)."""
        allx = self.generate_fn(n_train + n_test,
                                np.random.default_rng(seed))
        return allx[:n_train], allx[n_train:]


def _sym(values: np.ndarray) -> np.ndarray:
    return (np.asarray(values) + N_SPECIAL).astype(np.int64)


def _make_modsum(n_symbols: int) -> Task:
    def gen(n: int, rng: np.random.Generator) -> list[Example]:
        out = []
        for __ in range(n):
            a, b = rng.integers(0, n_symbols, size=2)
            prompt = np.concatenate([[BOS], _sym([a, b]), [SEP]])
            out.append(Example(prompt, _sym([(a + b) % n_symbols])))
        return out

    return Task("modsum", n_symbols, answer_len=1, generate_fn=gen)


def _make_copy(n_symbols: int, length: int) -> Task:
    def gen(n: int, rng: np.random.Generator) -> list[Example]:
        out = []
        for __ in range(n):
            seqv = rng.integers(0, n_symbols, size=length)
            prompt = np.concatenate([[BOS], _sym(seqv), [SEP]])
            out.append(Example(prompt, _sym(seqv)))
        return out

    return Task("copy", n_symbols, answer_len=length, generate_fn=gen)


def _make_reverse(n_symbols: int, length: int) -> Task:
    def gen(n: int, rng: np.random.Generator) -> list[Example]:
        out = []
        for __ in range(n):
            seqv = rng.integers(0, n_symbols, size=length)
            prompt = np.concatenate([[BOS], _sym(seqv), [SEP]])
            out.append(Example(prompt, _sym(seqv[::-1])))
        return out

    return Task("reverse", n_symbols, answer_len=length, generate_fn=gen)


def _make_majority(n_symbols: int, length: int) -> Task:
    if length % 2 == 0:
        raise ConfigError("majority needs an odd sequence length")

    def gen(n: int, rng: np.random.Generator) -> list[Example]:
        out = []
        for __ in range(n):
            seqv = rng.integers(0, n_symbols, size=length)
            counts = np.bincount(seqv, minlength=n_symbols)
            prompt = np.concatenate([[BOS], _sym(seqv), [SEP]])
            out.append(Example(prompt, _sym([int(np.argmax(counts))])))
        return out

    return Task("majority", n_symbols, answer_len=1, generate_fn=gen)


def _make_recall(n_keys: int, n_values: int, n_pairs: int) -> Task:
    """Associative recall: ``k1 v1 k2 v2 ... SEP kq`` -> ``vq``.

    Keys use symbols [0, n_keys), values [n_keys, n_keys + n_values).
    """

    def gen(n: int, rng: np.random.Generator) -> list[Example]:
        out = []
        for __ in range(n):
            keys = rng.choice(n_keys, size=n_pairs, replace=False)
            values = rng.integers(n_keys, n_keys + n_values, size=n_pairs)
            qi = rng.integers(0, n_pairs)
            body = np.empty(2 * n_pairs, dtype=np.int64)
            body[0::2] = keys
            body[1::2] = values
            prompt = np.concatenate(
                [[BOS], _sym(body), [SEP], _sym([keys[qi]])]
            )
            out.append(Example(prompt, _sym([values[qi]])))
        return out

    return Task("recall", n_keys + n_values, answer_len=1, generate_fn=gen)


def default_suite(n_symbols: int = 8) -> dict[str, Task]:
    """The five-task suite used by the Table 2 / Figure 13 reproduction.

    Copy and reverse carry multi-token answers so that most answer tokens
    are produced in the *decode* phase -- the only phase deferral and
    skipping modify (a 1-token answer is emitted straight from prefill).
    """
    return {
        "modsum": _make_modsum(n_symbols),
        "copy": _make_copy(n_symbols, length=6),
        "reverse": _make_reverse(n_symbols, length=5),
        "majority": _make_majority(3, length=5),
        "recall": _make_recall(n_keys=4, n_values=4, n_pairs=3),
    }


def task(name: str, **kwargs) -> Task:
    """Fetch one task from the default suite by name."""
    suite = default_suite(**kwargs)
    if name not in suite:
        raise ConfigError(
            f"unknown task {name!r}; expected one of {sorted(suite)}"
        )
    return suite[name]
