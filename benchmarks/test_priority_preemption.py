"""Priority-aware preemptive scheduling vs. the FIFO baseline (ISSUE 5).

Replays one mixed-class workload under >= 2x overload -- a burst of
long-running BATCH hogs saturating a 2-slot decode batch, with sparse
latency-sensitive INTERACTIVE arrivals spread behind them -- through
three serving arms:

- **fifo** -- the PR 4 scheduler (``priorities=None``): strict arrival
  order, INTERACTIVE requests queue behind the whole BATCH backlog;
- **priority** -- ``PriorityConfig`` with weighted aging and the *auto*
  swap/recompute cost model: INTERACTIVE arrivals preempt the
  worst-effective-priority BATCH victim (swap wins on the clean PCIe
  link -- KV pages move in microseconds vs. seconds of re-prefill);
- **priority-recompute** -- the recompute mechanism forced, showing what
  the cost model saves: every resume pays a full chunked re-prefill.

Emits per-arm class-level TTFT/TPOT percentiles, per-class goodput under
the TTFT/TPOT SLO, preemption counters, and the workload/overload
parameters to ``benchmarks/BENCH_priority.json``.

Headline claims checked here (the ISSUE 5 acceptance criteria):

- INTERACTIVE TTFT p95 and SLO attainment are *strictly* better under
  the priority scheduler than under FIFO at >= 2x overload;
- aggregate tokens/s stays within 10% of FIFO (preemption reorders
  work, it does not burn meaningful throughput);
- both arms are bit-reproducible: two runs produce identical timings,
  summaries, and preemption counters.
"""

import dataclasses
import json
from pathlib import Path

from repro.bench import format_table
from repro.model import DS3, MoETransformer, tiny_config
from repro.serving import (
    BatchSchedulerConfig,
    ContinuousBatchingServer,
    InferenceSession,
    Priority,
    PriorityConfig,
    ServingSLO,
    poisson_workload,
)

OUT_PATH = Path(__file__).parent / "BENCH_priority.json"

# BATCH hogs: arrive almost together, hold a decode slot for tens of
# simulated seconds each.  INTERACTIVE: tiny prompts, few tokens, spread
# across the whole backlog-draining window.
N_BATCH, BATCH_INTERARRIVAL_US = 6, 0.5e6
BATCH_PROMPT, BATCH_NEW_TOKENS = 48, 48
N_INTER, INTER_INTERARRIVAL_US = 8, 7e6
INTER_PROMPT, INTER_NEW_TOKENS = 8, 4

SCHED = dict(kv_budget_tokens=256, max_batch_size=2)
PRIORITIES = PriorityConfig(aging_us=120e6)   # auto swap/recompute
FORCED_RECOMPUTE = PriorityConfig(aging_us=120e6, mechanism="recompute")

# Interactive target: first token within 15 s of arrival (one prefill
# pass plus bounded queueing), steady 2 s/token after.  FIFO misses it
# for every INTERACTIVE request stuck behind the BATCH backlog.
SLO = ServingSLO(ttft_ms=15_000.0, tpot_ms=2_000.0)

MIN_OVERLOAD = 2.0            # offered backlog vs. arrival span
MAX_THROUGHPUT_LOSS = 0.10    # aggregate tokens/s vs. FIFO


def _workload():
    batch = poisson_workload(
        N_BATCH, BATCH_INTERARRIVAL_US, prompt_len=BATCH_PROMPT,
        max_new_tokens=BATCH_NEW_TOKENS, vocab_size=64, seed=1,
        priority=Priority.BATCH)
    inter = poisson_workload(
        N_INTER, INTER_INTERARRIVAL_US, prompt_len=INTER_PROMPT,
        max_new_tokens=INTER_NEW_TOKENS, vocab_size=64, seed=2,
        priority=Priority.INTERACTIVE)
    return sorted(batch + inter, key=lambda t: t.arrival_us)


def _run_arm(priorities):
    """One full replay; fresh session/server per run so repeat runs
    share no state at all (the bit-repro claim is end to end)."""
    session = InferenceSession(MoETransformer(tiny_config("tiny-qw")), DS3)
    server = ContinuousBatchingServer(
        session, BatchSchedulerConfig(**SCHED), priorities=priorities)
    stats = server.replay(_workload())
    return {
        "summary": stats.summary(),
        "by_class": stats.class_summary(),
        "goodput_interactive": stats.goodput(
            SLO, priority=int(Priority.INTERACTIVE)),
        "goodput_batch": stats.goodput(SLO, priority=int(Priority.BATCH)),
        "timings": [dataclasses.asdict(t) for t in stats.timings],
    }


def _sweep():
    return {
        # fifo and priority run twice: each pair must be bit-identical.
        "fifo": [_run_arm(None) for _ in range(2)],
        "priority": [_run_arm(PRIORITIES) for _ in range(2)],
        "priority_recompute": _run_arm(FORCED_RECOMPUTE),
    }


def _overload_factor(arm):
    """Backlog pressure: time to drain the offered work over the window
    it arrived in.  >= 2 means the server needs at least twice the
    arrival span to serve the load -- the ISSUE 5 overload bar."""
    arrivals = [t["arrival_us"] for t in arm["timings"]]
    finishes = [t["finish_us"] for t in arm["timings"]]
    return (max(finishes) - min(arrivals)) / (max(arrivals) - min(arrivals))


def test_priority_preemption(run_once):
    arms = run_once(_sweep)
    fifo, fifo_again = arms["fifo"]
    prio, prio_again = arms["priority"]
    rec = arms["priority_recompute"]

    overload = _overload_factor(fifo)
    OUT_PATH.write_text(json.dumps({
        "model_costs": DS3.name,
        "slo": {"ttft_ms": SLO.ttft_ms, "tpot_ms": SLO.tpot_ms},
        "scheduler": SCHED,
        "priority_config": dataclasses.asdict(PRIORITIES),
        "workload": {
            "batch": {"n": N_BATCH, "interarrival_us": BATCH_INTERARRIVAL_US,
                      "prompt_len": BATCH_PROMPT,
                      "max_new_tokens": BATCH_NEW_TOKENS},
            "interactive": {"n": N_INTER,
                            "interarrival_us": INTER_INTERARRIVAL_US,
                            "prompt_len": INTER_PROMPT,
                            "max_new_tokens": INTER_NEW_TOKENS},
        },
        "overload_factor": overload,
        "arms": {"fifo": fifo, "priority": prio,
                 "priority_recompute": rec},
    }, indent=2))

    def row(label, arm):
        s = arm["summary"]
        cls = arm["by_class"]["interactive"]
        g = arm["goodput_interactive"]
        return (label, cls["ttft_p95_ms"] / 1e3, cls["tpot_p95_ms"] / 1e3,
                g["attainment"], s["tokens_per_s"],
                s.get("preempt_total", 0.0), s.get("preempt_swaps", 0.0),
                s.get("preempt_recomputes", 0.0))

    print()
    print(format_table(
        ["arm", "INT TTFT p95 (s)", "INT TPOT p95 (s)", "INT attainment",
         "tokens/s", "preempts", "swaps", "recomputes"],
        [row("fifo", fifo), row("priority", prio),
         row("recompute", rec)],
        title=f"Priority preemption vs FIFO at {overload:.1f}x overload "
              f"({N_BATCH} BATCH hogs + {N_INTER} INTERACTIVE)",
    ))

    # --- Bit-reproducibility: identical replays run to run. ---
    assert fifo == fifo_again
    assert prio == prio_again

    # --- The scenario is a genuine >= 2x overload. ---
    assert overload >= MIN_OVERLOAD

    # --- Preemption actually engaged, and the ledger balances. ---
    s = prio["summary"]
    assert s["preempt_total"] >= 1
    assert s["preempt_swaps"] + s["preempt_recomputes"] == s["preempt_total"]
    # Auto picks swap on the clean link: both transfer legs are priced.
    assert s["preempt_swaps"] >= 1
    assert s["preempt_swap_stall_ms"] > 0
    assert rec["summary"]["preempt_recomputes"] >= 1
    assert rec["summary"]["preempt_swaps"] == 0

    # --- Headline: INTERACTIVE latency and attainment beat FIFO. ---
    f_int, p_int = fifo["by_class"]["interactive"], prio["by_class"]["interactive"]
    assert p_int["ttft_p95_ms"] < f_int["ttft_p95_ms"]
    assert (prio["goodput_interactive"]["attainment"]
            > fifo["goodput_interactive"]["attainment"])

    # --- Aggregate throughput holds within 10% of FIFO. ---
    assert (prio["summary"]["tokens_per_s"]
            >= (1.0 - MAX_THROUGHPUT_LOSS) * fifo["summary"]["tokens_per_s"])

    # --- Token conservation: preemption reorders, never drops. ---
    def served(arm):
        return sorted((t["arrival_us"], t["prompt_tokens"],
                       t["generated_tokens"]) for t in arm["timings"])
    assert served(prio) == served(fifo) == served(rec)

    # --- The cost model earns its keep: forced recompute pays seconds
    # of re-prefill per resume, reflected in BATCH-class latency. ---
    assert (rec["summary"]["preempt_recompute_tokens"] > 0)
    assert (rec["by_class"]["batch"]["ttft_p95_ms"]
            >= prio["by_class"]["batch"]["ttft_p95_ms"])
