"""Timeline traces: utilization, overlap, and text Gantt rendering.

The paper's Figure 10 reasons about CPU/GPU utilization percentages and the
fraction of time both devices compute simultaneously.  This module derives
those quantities exactly from the simulator's task records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .event_sim import Simulator, Task, TaskState


@dataclass(frozen=True)
class Interval:
    """A half-open occupancy interval [start, end) on a named resource."""

    resource: str
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An immutable view over the completed tasks of one simulation run."""

    def __init__(self, intervals: Sequence[Interval]) -> None:
        self.intervals = sorted(intervals, key=lambda iv: (iv.start, iv.end))

    @classmethod
    def from_simulator(cls, sim: Simulator) -> "Trace":
        """Every completed task as an interval -- zero-width ones included.

        Zero-duration tasks (graph-mode sync points, zero-cost markers)
        are kept as zero-width intervals so ``count()`` and
        ``total_duration()`` see every task that ran; interval-merging
        queries filter them where positive width is required.
        """
        ivs = [
            Interval(t.resource.name, t.name, t.start_time, t.end_time)
            for t in sim.all_tasks
            if t.state is TaskState.DONE
        ]
        return cls(ivs)

    # -- queries -------------------------------------------------------------

    def span(self) -> tuple[float, float]:
        """Earliest start and latest end across all intervals."""
        if not self.intervals:
            return (0.0, 0.0)
        return (
            min(iv.start for iv in self.intervals),
            max(iv.end for iv in self.intervals),
        )

    def for_resource(self, resource: str) -> list[Interval]:
        return [iv for iv in self.intervals if iv.resource == resource]

    def busy_segments(self, resource: str) -> list[tuple[float, float]]:
        """Merged (union) busy segments for one resource.

        Zero-width intervals occupy no time, so they are filtered here
        rather than at trace construction (where they still count).
        """
        return _merge([(iv.start, iv.end) for iv in self.for_resource(resource)
                       if iv.end > iv.start])

    def busy_time(self, resource: str) -> float:
        """Wall-clock time during which ``resource`` runs >= 1 task."""
        return sum(e - s for s, e in self.busy_segments(resource))

    def utilization(self, resource: str,
                    window: Optional[tuple[float, float]] = None) -> float:
        """Fraction of the window during which the resource is busy."""
        lo, hi = window if window is not None else self.span()
        if hi <= lo:
            return 0.0
        segs = _clip(self.busy_segments(resource), lo, hi)
        return sum(e - s for s, e in segs) / (hi - lo)

    def overlap_time(self, res_a: str, res_b: str) -> float:
        """Wall-clock time during which *both* resources are busy."""
        return _intersection_length(
            self.busy_segments(res_a), self.busy_segments(res_b)
        )

    def overlap_fraction(self, res_a: str, res_b: str) -> float:
        lo, hi = self.span()
        if hi <= lo:
            return 0.0
        return self.overlap_time(res_a, res_b) / (hi - lo)

    def count(self, resource: Optional[str] = None,
              name_prefix: Optional[str] = None) -> int:
        """Number of intervals matching the filters."""
        n = 0
        for iv in self.intervals:
            if resource is not None and iv.resource != resource:
                continue
            if name_prefix is not None and not iv.name.startswith(name_prefix):
                continue
            n += 1
        return n

    def total_duration(self, resource: Optional[str] = None,
                       name_prefix: Optional[str] = None) -> float:
        """Sum of interval durations matching the filters (with overlap)."""
        total = 0.0
        for iv in self.intervals:
            if resource is not None and iv.resource != resource:
                continue
            if name_prefix is not None and not iv.name.startswith(name_prefix):
                continue
            total += iv.duration
        return total

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome ``chrome://tracing`` / Perfetto JSON for the timeline.

        Resources map to process names; each interval becomes a complete
        ('X') event with microsecond timestamps.
        """
        resources = sorted({iv.resource for iv in self.intervals})
        pid_of = {r: i + 1 for i, r in enumerate(resources)}
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_of[r],
                "args": {"name": r},
            }
            for r in resources
        ]
        for iv in self.intervals:
            events.append({
                "name": iv.name,
                "ph": "X",
                "pid": pid_of[iv.resource],
                "tid": 1,
                "ts": iv.start,
                "dur": iv.duration,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save_chrome_trace(self, path: str) -> None:
        """Write the Chrome-trace JSON to ``path``."""
        import json

        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_chrome_trace(), f)

    # -- rendering -----------------------------------------------------------

    def render_gantt(self, width: int = 80,
                     resources: Optional[Iterable[str]] = None) -> str:
        """ASCII Gantt chart: one row per resource, '#' marks busy time."""
        lo, hi = self.span()
        if hi <= lo:
            return "(empty trace)"
        names = list(resources) if resources is not None else sorted(
            {iv.resource for iv in self.intervals}
        )
        label_w = max(len(n) for n in names) + 2
        scale = width / (hi - lo)
        lines = []
        for res in names:
            row = [" "] * width
            for s, e in self.busy_segments(res):
                a = int((s - lo) * scale)
                b = max(a + 1, int((e - lo) * scale))
                for i in range(a, min(b, width)):
                    row[i] = "#"
            lines.append(f"{res:<{label_w}}|{''.join(row)}|")
        footer = f"{'':<{label_w}} {lo:.1f}us {'.' * (width - 20)} {hi:.1f}us"
        return "\n".join(lines + [footer])


# -- interval arithmetic ------------------------------------------------------

def _merge(segments: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping segments."""
    if not segments:
        return []
    segs = sorted(segments)
    out = [segs[0]]
    for s, e in segs[1:]:
        ps, pe = out[-1]
        if s <= pe:
            out[-1] = (ps, max(pe, e))
        else:
            out.append((s, e))
    return out


def _clip(segments: list[tuple[float, float]], lo: float,
          hi: float) -> list[tuple[float, float]]:
    out = []
    for s, e in segments:
        s2, e2 = max(s, lo), min(e, hi)
        if e2 > s2:
            out.append((s2, e2))
    return out


def _intersection_length(a: list[tuple[float, float]],
                         b: list[tuple[float, float]]) -> float:
    """Total length of the intersection of two merged segment lists."""
    i = j = 0
    total = 0.0
    while i < len(a) and j < len(b):
        s = max(a[i][0], b[j][0])
        e = min(a[i][1], b[j][1])
        if e > s:
            total += e - s
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total
